#!/usr/bin/env python
"""Load-test driver for the yield-estimation job service.

Fires a burst of estimation jobs at the service and reports throughput,
latency percentiles and the plan-cache behaviour of the burst.  Two
targets:

* **in-process** (default) — builds a :class:`repro.service.ServiceApp`
  with ``--service-workers`` and drives it through the in-process
  client: no sockets, so the numbers isolate the service layer itself.
  This is what the CI ``service`` step runs.
* **a live server** (``--url``) — speaks the same wire contract over
  HTTP to a ``repro.cli serve`` instance, including transport cost.

Examples (from the repo root)::

    PYTHONPATH=src python tools/loadtest.py --jobs 64 --service-workers 4
    PYTHONPATH=src python tools/loadtest.py --jobs 16 \\
        --workload read --spec 4.995e-11 --budget 150 \\
        --knobs '{"n_steps": 300}'
    PYTHONPATH=src python tools/loadtest.py --url http://127.0.0.1:8626

Every job uses a distinct seed (``--seed`` + index) unless
``--same-seed`` is given — identical submissions are the single-flight
compile scenario, distinct seeds the steady-state serving scenario.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import api  # noqa: E402
from repro.errors import ConfigError  # noqa: E402
from repro.service import ServiceApp, ServiceClient  # noqa: E402


class HttpClient(ServiceClient):
    """The in-process client's verbs, carried over a real socket.

    ``submit``/``wait``/``estimate`` are inherited unchanged — they
    only speak through ``get``/``post``/``delete``, which is the point:
    one client logic, two transports.
    """

    def __init__(self, base_url: str):
        self.base_url = base_url.rstrip("/")

    def _call(self, method: str, path: str, body: Any = None) -> Tuple[int, Dict]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=600) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def get(self, path: str):
        return self._call("GET", path)

    def post(self, path: str, body: Any = None):
        return self._call("POST", path, body)

    def delete(self, path: str):
        return self._call("DELETE", path)


def percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def run_burst(client: ServiceClient, requests: List[api.EstimateRequest],
              timeout: float) -> Dict[str, Any]:
    """Submit every request from its own thread, poll all to settlement."""
    envelopes: List[Optional[dict]] = [None] * len(requests)
    refused = 0
    lock = threading.Lock()

    def submit(index: int) -> None:
        nonlocal refused
        try:
            envelope = client.submit(requests[index])
        except ConfigError:
            with lock:
                refused += 1
            return
        envelopes[index] = envelope

    t0 = time.perf_counter()
    threads = [threading.Thread(target=submit, args=(i,))
               for i in range(len(requests))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    submit_wall = time.perf_counter() - t0

    finals = [client.wait(e["job_id"], timeout=timeout)
              for e in envelopes if e is not None]
    total_wall = time.perf_counter() - t0

    statuses: Dict[str, int] = {}
    for final in finals:
        statuses[final["status"]] = statuses.get(final["status"], 0) + 1
    latencies = sorted(
        final["finished_s"] - final["submitted_s"]
        for final in finals if final.get("finished_s")
    )
    prepares = sorted(
        final["prepare_s"] for final in finals
        if final.get("prepare_s") is not None
    )
    done = statuses.get("done", 0)
    return {
        "jobs": len(requests),
        "refused": refused,
        "statuses": statuses,
        "submit_wall_s": round(submit_wall, 4),
        "total_wall_s": round(total_wall, 4),
        "qps": round(done / total_wall, 2) if total_wall > 0 else 0.0,
        "latency_p50_s": round(percentile(latencies, 0.50), 5),
        "latency_p90_s": round(percentile(latencies, 0.90), 5),
        "latency_max_s": round(latencies[-1], 5) if latencies else 0.0,
        "prepare_cold_s": round(prepares[-1], 5) if prepares else None,
        "prepare_warm_s": round(prepares[0], 5) if prepares else None,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="burst load-test for the yield-estimation service"
    )
    parser.add_argument("--jobs", type=int, default=32,
                        help="burst size (default 32)")
    parser.add_argument("--workload", default="analytic-linear",
                        help="registered workload name")
    parser.add_argument("--spec", type=float, default=4.0,
                        help="failure spec in the workload's native unit")
    parser.add_argument("--method", choices=api.METHODS, default="gis")
    parser.add_argument("--budget", type=int, default=2000)
    parser.add_argument("--rel-err", type=float, default=None,
                        help="target relative error (default: none — fixed "
                             "budget, comparable latencies)")
    parser.add_argument("--knobs", type=str, default="{}",
                        help="workload knobs as a JSON object")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; job i uses seed+i unless --same-seed")
    parser.add_argument("--same-seed", action="store_true",
                        help="submit N identical jobs (the single-flight "
                             "compile scenario)")
    parser.add_argument("--job-workers", type=int, default=1,
                        help="workers requested per job")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-job settlement timeout [s]")
    parser.add_argument("--url", type=str, default=None,
                        help="drive a live server at this base URL instead "
                             "of an in-process app")
    parser.add_argument("--service-workers", type=int, default=4,
                        help="in-process mode: the service's worker budget")
    parser.add_argument("--queue-limit", type=int, default=4096,
                        help="in-process mode: the service's queue bound")
    parser.add_argument("--json-out", type=str, default=None, metavar="PATH",
                        help="also write the report as JSON to PATH")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        knobs = json.loads(args.knobs)
    except ValueError as exc:
        print(f"error: --knobs is not valid JSON: {exc}")
        return 2
    requests = [
        api.EstimateRequest(
            workload=args.workload, spec=args.spec, method=args.method,
            seed=args.seed if args.same_seed else args.seed + i,
            budget=args.budget, rel_err=args.rel_err,
            workers=args.job_workers, knobs=knobs,
        )
        for i in range(args.jobs)
    ]

    app = None
    try:
        if args.url:
            client: ServiceClient = HttpClient(args.url)
            target = args.url
        else:
            app = ServiceApp(
                workers_total=args.service_workers, queue_limit=args.queue_limit
            )
            client = ServiceClient(app)
            target = f"in-process ({args.service_workers} workers)"

        report = run_burst(client, requests, timeout=args.timeout)
        report["target"] = target
        report["workload"] = args.workload
        _, stats = client.get("/v1/stats")
        report["plan_cache"] = stats.get("plan_cache", {})
    except ConfigError as exc:
        print(f"error: {exc}")
        return 2
    finally:
        if app is not None:
            app.close(drain=True)

    print(f"target            : {report['target']}")
    print(f"workload          : {report['workload']}  "
          f"({args.method}, budget {args.budget})")
    print(f"jobs              : {report['jobs']} "
          f"(refused {report['refused']}, statuses {report['statuses']})")
    print(f"submit wall       : {report['submit_wall_s']:.3f} s")
    print(f"total wall        : {report['total_wall_s']:.3f} s  "
          f"-> {report['qps']:.1f} done jobs/s")
    print(f"latency p50/p90   : {report['latency_p50_s']:.4f} / "
          f"{report['latency_p90_s']:.4f} s  (max {report['latency_max_s']:.4f})")
    if report["prepare_cold_s"] is not None:
        print(f"prepare cold/warm : {report['prepare_cold_s']:.4f} / "
              f"{report['prepare_warm_s']:.4f} s")
    print(f"plan cache        : {report['plan_cache']}")

    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.json_out}")
    failed = report["statuses"].get("failed", 0)
    return 1 if (failed or report["refused"]) else 0


if __name__ == "__main__":
    sys.exit(main())
