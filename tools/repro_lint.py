#!/usr/bin/env python
"""AST lint for the project's known determinism and diagnostics hazards.

Run from the repo root (CI runs it as a gating ``static-analysis`` step)::

    python tools/repro_lint.py [paths...]

With no arguments it lints ``src/repro``.  Exit status 1 when any
finding is reported.  Codes:

* **R001** — call through the *global* ``np.random`` state
  (``np.random.rand``, ``np.random.seed``, ...) anywhere in the
  library.  Global-state draws are invisible to the shard plan and
  break the bit-reproducibility contract; constructors
  (``default_rng``, ``SeedSequence``, ``Generator``, ...) are the
  sanctioned API and stay allowed.
* **R002** — iteration over an unordered ``set``/``frozenset``
  expression in ``engine/`` or ``spice/`` (stamp and merge paths).
  Set iteration order is salted per process; wrap in ``sorted(...)``.
* **R003** — bare ``assert`` in ``engine/`` or ``spice/``.  Asserts
  vanish under ``python -O`` and carry no diagnostic code; raise a
  typed :mod:`repro.errors` exception instead.
* **R004** — ``raise`` of a builtin exception (``ValueError``,
  ``TypeError``, ``KeyError``, ``IndexError``, ``AssertionError``,
  ``RuntimeError``, ``Exception``) anywhere in the library.  Public
  entry points must raise the typed :mod:`repro.errors` hierarchy so
  callers can catch by family and read a diagnostic code.
  ``NotImplementedError`` (abstract hooks) and
  ``argparse.ArgumentTypeError`` (the CLI's usage-error channel) are
  allowed.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

# Directories (relative to src/repro) whose stamp/merge paths get the
# stricter R002/R003 treatment.
STRICT_DIRS = ("engine", "spice")

# np.random attributes that are constructors/types, not global-state draws.
RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "RandomState",
}

BUILTIN_RAISES = {
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "AssertionError",
    "RuntimeError",
    "Exception",
}

Finding = Tuple[Path, int, str, str]


def _is_np_random(node: ast.AST) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _is_unordered_set(node: ast.AST) -> bool:
    """True for an expression that evaluates to a salted-order set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _iter_targets(tree: ast.AST) -> Iterator[Tuple[int, ast.AST]]:
    """(lineno, iterable-expression) of every for/comprehension loop."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.lineno, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield node.lineno, gen.iter


def lint_file(path: Path, strict: bool) -> List[Finding]:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, "R000", f"syntax error: {exc.msg}")]

    findings: List[Finding] = []

    for node in ast.walk(tree):
        # R001: np.random.<draw> through the global state.
        if (
            isinstance(node, ast.Attribute)
            and _is_np_random(node.value)
            and node.attr not in RANDOM_ALLOWED
        ):
            findings.append(
                (
                    path, node.lineno, "R001",
                    f"global-state np.random.{node.attr} — pass an "
                    "np.random.Generator through the shard plan instead",
                )
            )

        # R003: bare assert in stamp/merge code.
        if strict and isinstance(node, ast.Assert):
            findings.append(
                (
                    path, node.lineno, "R003",
                    "bare assert — raise a typed repro.errors exception "
                    "(asserts vanish under python -O)",
                )
            )

        # R004: builtin raises.
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BUILTIN_RAISES:
                findings.append(
                    (
                        path, node.lineno, "R004",
                        f"raise {name} — use the typed repro.errors "
                        "hierarchy so callers get a diagnostic code",
                    )
                )

    # R002: iterating an unordered set expression.
    if strict:
        for lineno, it in _iter_targets(tree):
            if _is_unordered_set(it):
                findings.append(
                    (
                        path, lineno, "R002",
                        "iteration over an unordered set — wrap in "
                        "sorted(...) so stamp/merge order is deterministic",
                    )
                )

    return findings


def _is_strict(path: Path) -> bool:
    parts = path.parts
    return any(
        d in parts[i + 1:]
        for i, part in enumerate(parts)
        if part == "repro"
        for d in STRICT_DIRS
    )


def main(argv: List[str]) -> int:
    roots = [Path(a) for a in argv] or [Path("src/repro")]
    files: List[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.py")))

    all_findings: List[Finding] = []
    for path in files:
        all_findings.extend(lint_file(path, strict=_is_strict(path)))

    for path, lineno, code, message in all_findings:
        print(f"{path}:{lineno}: {code} {message}")
    if all_findings:
        print(f"repro_lint: {len(all_findings)} finding(s)")
        return 1
    print(f"repro_lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
