#!/usr/bin/env python
"""Quickstart: extract the high-sigma read-failure rate of a 6T SRAM cell.

This walks the full gradient-importance-sampling flow in five steps:

1. build the transistor-level read workload (a batched 6T cell with
   Pelgrom threshold mismatch on all six devices),
2. look at the nominal access time,
3. run the gradient search for the most probable failure point,
4. run the full gradient-IS estimation,
5. convert to sigma and per-megabit yield.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.experiments import make_read_limitstate
from repro.highsigma import GradientImportanceSampling, MpfpSearch, array_yield
from repro.sram.cell import CELL_DEVICE_ORDER

# ----------------------------------------------------------------------
# 1. The workload: read-access time of a 6T cell must stay below 55 ps.
#    The limit state wraps the batched transistor-level engine; its
#    u-space is the 6 per-device threshold shifts in sigma units.
# ----------------------------------------------------------------------
SPEC = 55e-12
limit_state = make_read_limitstate(spec=SPEC)
print(f"workload: {limit_state.name}  (u-space dim = {limit_state.dim})")

# ----------------------------------------------------------------------
# 2. Nominal behaviour: simulate the unvaried cell once.
# ----------------------------------------------------------------------
t_nominal = limit_state.metric(np.zeros(6))
print(f"nominal access time: {t_nominal*1e12:.1f} ps (spec {SPEC*1e12:.0f} ps)")

# ----------------------------------------------------------------------
# 3. Stage 1 by hand (the estimator below does this internally too):
#    the gradient walk to the most probable failure point.
# ----------------------------------------------------------------------
search = MpfpSearch(limit_state)
mpfp = search.run()
print(f"\nMPFP found in {mpfp.n_evals} simulations "
      f"({mpfp.iterations} iterations, converged={mpfp.converged})")
print(f"reliability index beta = {mpfp.beta:.3f}")
print("most probable failure pattern (threshold shifts, in sigmas):")
for device, shift in zip(CELL_DEVICE_ORDER, mpfp.u_star):
    bar = "#" * int(round(abs(shift) * 8))
    print(f"  {device:8s} {shift:+6.2f}  {bar}")

# ----------------------------------------------------------------------
# 4. The full estimator: gradient search + defensive mean-shift IS.
# ----------------------------------------------------------------------
limit_state.reset_counter()
gis = GradientImportanceSampling(limit_state, n_max=4000, target_rel_err=0.08)
result = gis.run(np.random.default_rng(0))
print(f"\n{result.summary()}")

# ----------------------------------------------------------------------
# 5. What it means for an array.
# ----------------------------------------------------------------------
p = result.p_fail
print(f"\nfailure sigma: {result.sigma_level:.2f}")
for mb in (1, 8, 64):
    cells = mb * (1 << 20)
    y = array_yield(p, cells)
    print(f"  {mb:3d} Mb array, zero repair: {100*y:6.2f} % yield")
print(f"  (plain Monte Carlo would need ~{(1-p)/(p*0.08**2):.2e} "
      f"simulations for the same accuracy; this run used {result.n_evals})")
