#!/usr/bin/env python
"""Design-space sweep: write-failure sigma vs wordline pulse width.

The workload the paper's introduction motivates: a memory designer must
pick the wordline pulse width for the write operation.  Too short and
slow cells fail to flip (dynamic write failure); too long and the access
time budget of the whole macro suffers.  This sweep extracts the write
failure sigma as a function of pulse width with gradient IS — each point
is a full high-sigma extraction that plain Monte Carlo could not do at
all past ~4 sigma.

Run:  python examples/write_yield_sweep.py
"""

import numpy as np

from repro.experiments import make_write_limitstate, render_series
from repro.highsigma import GradientImportanceSampling, array_yield
from repro.sram.testbench import OperationTiming

# Sweep the wordline pulse width; the spec for "the cell flipped in time"
# is the pulse width itself (trip later than WL-fall = failed write).
# The nominal trip is ~26 ps, so the interesting cliff sits just above
# that: each extra handful of picoseconds buys roughly a sigma.
PULSE_WIDTHS_PS = (32, 36, 40, 48, 64)

sigmas, pfails = [], []
for width_ps in PULSE_WIDTHS_PS:
    width = width_ps * 1e-12
    timing = OperationTiming(wl_width=width, t_hold=0.3e-9)
    ls = make_write_limitstate(spec=width, timing=timing, n_steps=300)
    try:
        res = GradientImportanceSampling(ls, n_max=3500, target_rel_err=0.1).run(
            np.random.default_rng(width_ps)
        )
        sigmas.append(res.sigma_level)
        pfails.append(res.p_fail)
        print(f"  WL width {width_ps:4d} ps -> write-failure sigma "
              f"{res.sigma_level:5.2f}  (p = {res.p_fail:.3e}, "
              f"{res.n_evals} sims)")
    except Exception as exc:
        sigmas.append(None)
        pfails.append(None)
        print(f"  WL width {width_ps:4d} ps -> {type(exc).__name__}: {exc}")

print()
print(
    render_series(
        list(PULSE_WIDTHS_PS),
        {"failure_sigma": sigmas, "p_fail": pfails},
        x_label="wl_width_ps",
        title="Write-failure sigma vs wordline pulse width",
    )
)

# Designer's question: the shortest pulse meeting a 1 ppb cell budget.
print("\nshortest pulse meeting given per-cell failure budgets:")
for target_sigma, label in ((5.0, "~3e-7 (5.0 sigma)"), (6.0, "~1e-9 (6.0 sigma)")):
    ok = [w for w, s in zip(PULSE_WIDTHS_PS, sigmas) if s is not None and s >= target_sigma]
    answer = f"{min(ok)} ps" if ok else "none in sweep range"
    print(f"  budget {label:>18s}: {answer}")

mb64 = 64 * (1 << 20)
valid = [(w, p) for w, p in zip(PULSE_WIDTHS_PS, pfails) if p]
if valid:
    w, p = valid[-1]
    print(f"\nat WL width {w} ps a 64 Mb macro writes with "
          f"{100*array_yield(p, mb64):.2f} % zero-repair yield")
