#!/usr/bin/env python
"""Compare all high-sigma methods on one SRAM read workload.

Reproduces a single row-group of the paper's comparison table
interactively: gradient IS vs minimum-norm IS vs spherical-search IS vs
scaled-sigma sampling vs plain Monte Carlo, all against the same
transistor-level read-access limit state at a ~4-sigma spec corner.

Run:  python examples/method_comparison.py
"""


from repro.experiments import (
    Workload,
    calibrate_read_spec,
    default_methods,
    make_read_limitstate,
    render_table,
    run_comparison,
)

print("calibrating a 4-sigma read-access spec (one gradient search)...")
spec = calibrate_read_spec(sigma_target=4.0)
print(f"  spec = {spec*1e12:.1f} ps\n")

workload = Workload(
    name="sram-read-4sigma",
    make=lambda: make_read_limitstate(spec),
    exact_pfail=None,
    dim=6,
    description="6T read access time at a 4-sigma spec corner",
)

# A shared sampling budget so the comparison is cost-fair; plain MC gets
# a generous 120k (still ~100x short of what it would need at 5 sigma).
methods = default_methods(n_max=4000, target_rel_err=0.1, mc_budget=120000)

print("running 5 methods (the MC row simulates 120k cells; ~2 min)...")
rows = run_comparison(workload, methods, seeds=(0,))

print()
print(
    render_table(
        rows,
        ["method", "p_fail", "sigma", "rel_err", "n_evals", "n_failures",
         "speedup_vs_mc", "converged", "error"],
        title=f"6T read-access failure @ spec {spec*1e12:.1f} ps",
    )
)

gis = next(r for r in rows if r["method"] == "gis")
print(
    f"\ngradient IS: sigma {gis['sigma']:.2f} from {gis['n_evals']} simulations "
    f"({gis['diagnostics']['search_evals']} spent in the gradient search)"
)
print("note how the pre-sampling methods spend their whole budget hunting for")
print("the failure region, and plain MC has a handful of failures at best.")
