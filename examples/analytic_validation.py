#!/usr/bin/env python
"""Validate the estimators against closed-form failure probabilities.

Before trusting any high-sigma tool on a circuit (where truth is
unknowable), check it on geometries where the failure probability has a
closed form.  This example reproduces the exactness checks: a hyperplane
at 4/5/6 sigma, a curved boundary where FORM is an order of magnitude
off, and a two-region union that requires multi-start.

Run:  python examples/analytic_validation.py
"""

import numpy as np
from scipy import stats

from repro.experiments import render_table
from repro.highsigma import (
    GradientImportanceSampling,
    LinearLimitState,
    QuadraticLimitState,
    UnionLimitState,
)

rows = []

# ----------------------------------------------------------------------
# Hyperplanes at increasing sigma: P = Phi(-beta) exactly.
# ----------------------------------------------------------------------
for beta in (4.0, 5.0, 6.0):
    ls = LinearLimitState(beta=beta, dim=6)
    res = GradientImportanceSampling(ls, n_max=5000, target_rel_err=0.05).run(
        np.random.default_rng(int(beta))
    )
    rows.append({
        "case": f"hyperplane beta={beta:g}",
        "exact": ls.exact_pfail(),
        "estimate": res.p_fail,
        "log10_err": abs(np.log10(res.p_fail / ls.exact_pfail())),
        "n_evals": res.n_evals,
    })

# ----------------------------------------------------------------------
# Curved boundary: sampling sees the curvature, FORM does not.
# ----------------------------------------------------------------------
ls = QuadraticLimitState(beta=5.0, dim=12, kappa=0.15)
res = GradientImportanceSampling(ls, n_max=8000, target_rel_err=0.05).run(
    np.random.default_rng(7)
)
rows.append({
    "case": "curved boundary (d=12)",
    "exact": ls.exact_pfail(),
    "estimate": res.p_fail,
    "log10_err": abs(np.log10(res.p_fail / ls.exact_pfail())),
    "n_evals": res.n_evals,
})
form = stats.norm.sf(5.0)
rows.append({
    "case": "  ... FORM (for contrast)",
    "exact": ls.exact_pfail(),
    "estimate": form,
    "log10_err": abs(np.log10(form / ls.exact_pfail())),
    "n_evals": 0,
})

# ----------------------------------------------------------------------
# Two failure regions: single-start misses mass, multi-start covers it.
# ----------------------------------------------------------------------
union = UnionLimitState([4.0, 4.2], dim=8)
for starts, label in ((1, "union, single-start"), (8, "union, multi-start")):
    ls = UnionLimitState([4.0, 4.2], dim=8)
    res = GradientImportanceSampling(
        ls, n_max=8000, n_starts=starts, target_rel_err=0.05
    ).run(np.random.default_rng(starts))
    rows.append({
        "case": label,
        "exact": union.exact_pfail(),
        "estimate": res.p_fail,
        "log10_err": abs(np.log10(res.p_fail / union.exact_pfail())),
        "n_evals": res.n_evals,
    })

print(render_table(
    rows,
    ["case", "exact", "estimate", "log10_err", "n_evals"],
    title="Gradient IS vs closed-form failure probabilities",
))
print("\nreading guide: log10_err is decades of error; 0.04 means ~10%.")
print("FORM's error on the curved case is what pure design-point methods")
print("inherit; sampling around the design point corrects it.")
