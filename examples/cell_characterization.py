#!/usr/bin/env python
"""Characterise a 6T bitcell with the transistor-level simulator directly.

The layer below the statistics: build the cell, look at actual read and
write waveforms from the reference MNA engine, measure static noise
margins from butterfly curves, and see how a threshold shift distorts all
of it.  Useful as an introduction to the circuit substrate the
high-sigma machinery drives.

Run:  python examples/cell_characterization.py
"""

import numpy as np

from repro.sram import ReadTestbench, WriteTestbench, butterfly_snm
from repro.sram.cell import CellDesign


def sparkline(waveform, t_stop, width=60, vmax=1.0):
    """Render a waveform as a crude ASCII strip."""
    levels = " .:-=+*#%@"
    ts = np.linspace(waveform.t_start, t_stop, width)
    out = []
    for t in ts:
        frac = min(max(waveform.at(t) / vmax, 0.0), 1.0)
        out.append(levels[int(round(frac * (len(levels) - 1)))])
    return "".join(out)


design = CellDesign()
print(f"cell: W_pd={design.w_pd*1e9:.0f}n W_pg={design.w_pg*1e9:.0f}n "
      f"W_pu={design.w_pu*1e9:.0f}n L={design.l*1e9:.0f}n "
      f"(cell ratio {design.cell_ratio:.2f}, pull-up ratio {design.pullup_ratio:.2f})")

# ----------------------------------------------------------------------
# Read operation waveforms.
# ----------------------------------------------------------------------
read = ReadTestbench(design)
res = read.simulate(None)
t_stop = read.timing.t_stop
print("\nread operation (cell stores 0; BL discharges, BLB holds):")
for node in ("wl", "bl", "blb", "q"):
    print(f"  {node:3s} |{sparkline(res.waveform(node), t_stop)}|")
sample = read.access_sample(None)
print(f"  access time to {read.dv_spec*1e3:.0f} mV differential: "
      f"{sample.value*1e12:.1f} ps")

# ----------------------------------------------------------------------
# Write operation waveforms.
# ----------------------------------------------------------------------
write = WriteTestbench(design)
resw = write.simulate(None)
print("\nwrite operation (drivers flip the cell from 1 to 0):")
for node in ("wl", "q", "qb"):
    print(f"  {node:3s} |{sparkline(resw.waveform(node), write.timing.t_stop)}|")
trip = write.trip_sample(None)
print(f"  write trip time: {trip.value*1e12:.1f} ps")

# ----------------------------------------------------------------------
# Static noise margins.
# ----------------------------------------------------------------------
print("\nstatic noise margins (butterfly method):")
for vdd in (1.0, 0.8):
    hold = butterfly_snm(design, vdd=vdd, mode="hold")
    rd = butterfly_snm(design, vdd=vdd, mode="read")
    print(f"  VDD={vdd:.1f} V: hold SNM {hold*1e3:5.0f} mV, read SNM {rd*1e3:5.0f} mV")

# ----------------------------------------------------------------------
# What mismatch does: weaken the accessed pass gate by 3 sigma.
# ----------------------------------------------------------------------
sigma_pg = read.space.sigma_vector()[2]
u = np.zeros(6)
u[3 - 1] = 0.0  # clarity: axes are CELL_DEVICE_ORDER
u[2] = 3.0
slow = read.access_sample(u)
print(f"\nwith a +3-sigma ({3*sigma_pg*1e3:.0f} mV) threshold shift on the "
      f"accessed pass gate:")
print(f"  access time: {sample.value*1e12:.1f} ps -> {slow.value*1e12:.1f} ps "
      f"({slow.value/sample.value:.2f}x)")
print("  (this is the failure mechanism the gradient search discovers on its own;")
print("   see examples/quickstart.py)")
