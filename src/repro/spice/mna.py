"""Modified-nodal-analysis system assembly.

The solvers express every analysis as a root-finding problem
``F(x) = 0`` where ``x`` stacks the node voltages and the branch currents
of voltage-source-like elements.  :class:`StampContext` is the accumulator
elements write their KCL currents and Jacobian entries into; it hides the
ground-node special case and the branch-row offset so element ``stamp``
implementations stay readable.

Sign convention: the residual at a node is the sum of currents *leaving*
the node into the elements, so a converged solution has every KCL row at
zero.  Conductances are the derivatives of those leaving currents.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.spice.netlist import GROUND_INDEX

__all__ = ["StampContext", "assemble", "system_size"]


class StampContext:
    """Accumulator for residual and Jacobian contributions of one assembly.

    Parameters
    ----------
    x:
        Current iterate: node voltages followed by branch currents.
    num_nodes:
        Number of non-ground nodes (branch rows start here).
    time:
        Simulation time handed to time-dependent sources (``None`` selects
        each source's DC value — that is how the operating-point solver
        asks for ``t = 0`` semantics).
    gmin:
        Conductance from every node to ground added by homotopy stepping.
    source_scale:
        Multiplier applied to all independent sources (source stepping).
    """

    def __init__(
        self,
        x: np.ndarray,
        num_nodes: int,
        time: Optional[float] = None,
        gmin: float = 0.0,
        source_scale: float = 1.0,
    ):
        self.x = x
        self.num_nodes = num_nodes
        self.time = time
        self.gmin = gmin
        self.source_scale = source_scale
        size = x.shape[0]
        self.residual = np.zeros(size)
        self.jacobian = np.zeros((size, size))

    # -- reads ---------------------------------------------------------

    def v(self, node: int) -> float:
        """Voltage of a node index (ground reads as 0)."""
        if node == GROUND_INDEX:
            return 0.0
        return float(self.x[node])

    def branch_current(self, branch: int) -> float:
        """Current unknown of branch index ``branch``."""
        return float(self.x[self.num_nodes + branch])

    def source_value(self, shape) -> float:
        """Evaluate a source shape at the context time, with source scaling."""
        if self.time is None:
            return self.source_scale * shape.dc_value()
        return self.source_scale * shape.value(self.time)

    # -- writes --------------------------------------------------------

    def add_kcl(self, node: int, current: float) -> None:
        """Add a current leaving ``node`` to that node's KCL residual."""
        if node != GROUND_INDEX:
            self.residual[node] += current

    def add_jac(self, row_node: int, col_node: int, value: float) -> None:
        """Add ``d(residual[row]) / d(v[col])`` for two node indices."""
        if row_node != GROUND_INDEX and col_node != GROUND_INDEX:
            self.jacobian[row_node, col_node] += value

    def branch_row(self, branch: int) -> int:
        """Matrix row/column of a branch-current unknown."""
        return self.num_nodes + branch

    def add_branch_residual(self, branch: int, value: float) -> None:
        """Add to a branch (voltage-constraint) equation residual."""
        self.residual[self.num_nodes + branch] += value

    def add_branch_jac(self, branch: int, col: int, value: float) -> None:
        """Jacobian entry of a branch equation w.r.t. unknown column ``col``.

        ``col`` is an absolute column: use a node index directly for node
        voltages (ground is skipped) or :meth:`branch_row` for branch
        currents.
        """
        if col != GROUND_INDEX:
            self.jacobian[self.num_nodes + branch, col] += value

    def add_node_branch_jac(self, node: int, branch: int, value: float) -> None:
        """Jacobian of a node KCL row w.r.t. a branch current."""
        if node != GROUND_INDEX:
            self.jacobian[node, self.num_nodes + branch] += value


def system_size(circuit) -> int:
    """Total unknown count: node voltages plus branch currents."""
    return circuit.num_nodes + len(circuit.branch_elements())


def assign_branches(circuit) -> Dict[str, int]:
    """Assign branch indices to the elements that need them (in order)."""
    mapping: Dict[str, int] = {}
    for i, elem in enumerate(circuit.branch_elements()):
        elem.branch_index = i
        mapping[elem.name] = i
    return mapping


def assemble(
    circuit,
    x: np.ndarray,
    time: Optional[float] = None,
    gmin: float = 0.0,
    source_scale: float = 1.0,
    extra_stamps: Optional[List] = None,
) -> StampContext:
    """Build residual and Jacobian at iterate ``x``.

    ``extra_stamps`` is a list of callables ``stamp(ctx)`` the transient
    engine uses to inject capacitor companion models and initial-condition
    clamps without mutating the circuit.
    """
    ctx = StampContext(x, circuit.num_nodes, time=time, gmin=gmin, source_scale=source_scale)
    for elem in circuit.elements:
        elem.stamp(ctx)
    if gmin > 0.0:
        for node in range(circuit.num_nodes):
            ctx.residual[node] += gmin * ctx.x[node]
            ctx.jacobian[node, node] += gmin
    if extra_stamps:
        for stamp in extra_stamps:
            stamp(ctx)
    return ctx
