"""Transient analysis: trapezoidal integration with LTE step control.

The engine integrates the circuit's differential-algebraic system using
companion models for the (constant) lumped capacitors:

* first step and post-breakpoint steps use backward Euler (damps the
  trapezoidal rule's tendency to ring across source corners),
* subsequent steps use the trapezoidal rule,
* the local truncation error is estimated from the deviation between the
  corrector solution and a linear predictor, and the step size adapts with
  the usual 1/3-power controller,
* steps are clipped to land exactly on source breakpoints (pulse corners,
  PWL knots) so no corner is straddled.

Initial conditions are applied by clamping chosen nodes with a stiff
Norton equivalent during the initial operating-point solve only — the
standard way to preload an SRAM cell's state before a read or write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConvergenceError, SimulationError
from repro.spice import mna
from repro.spice.dcop import NewtonOptions, newton_solve, solve_dc
from repro.spice.netlist import GROUND_INDEX
from repro.spice.waveform import Waveform

__all__ = ["TransientOptions", "TransientResult", "run_transient"]

#: Stiff clamp conductance used to impose initial conditions (siemens).
IC_CLAMP_G = 1.0e4


@dataclass(frozen=True)
class TransientOptions:
    """Integration control knobs.

    ``reltol``/``abstol_v`` feed the LTE acceptance test; ``max_step``
    defaults to 1/200 of the simulated window, which keeps waveform
    measurements well resolved even on flat stretches.
    """

    reltol: float = 2e-3
    abstol_v: float = 1e-6
    min_step: float = 1e-16
    max_step: Optional[float] = None
    initial_step: Optional[float] = None
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    max_rejections: int = 40


@dataclass
class TransientResult:
    """Dense transient solution: times and per-node voltage samples."""

    times: np.ndarray
    node_names: List[str]
    voltages: np.ndarray  # shape (num_steps, num_nodes)
    steps_accepted: int
    steps_rejected: int
    newton_iterations: int

    def waveform(self, node: str) -> Waveform:
        """Waveform of a named node (ground returns an all-zero waveform)."""
        if node in ("0", "gnd", "GND"):
            return Waveform(self.times, np.zeros_like(self.times), name=node)
        idx = self.node_names.index(node)
        return Waveform(self.times, self.voltages[:, idx], name=node)

    def final_voltage(self, node: str) -> float:
        """Voltage of a node at the last accepted time point."""
        return float(self.waveform(node).values[-1])


def _collect_caps(circuit) -> List[Tuple[int, int, float]]:
    caps: List[Tuple[int, int, float]] = []
    for elem in circuit.elements:
        caps.extend(elem.caps())
    return caps


def _collect_breakpoints(circuit, t_stop: float) -> np.ndarray:
    points: List[float] = []
    for elem in circuit.elements:
        shape = getattr(elem, "shape", None)
        if shape is None or not hasattr(shape, "breakpoints"):
            continue
        base = list(shape.breakpoints())
        period = getattr(shape, "period", 0.0)
        if period and period > 0:
            t0 = base[0]
            reps = int(np.ceil((t_stop - t0) / period)) + 1
            for k in range(reps):
                points.extend(b + k * period for b in base)
        else:
            points.extend(base)
    points = sorted({p for p in points if 0.0 < p < t_stop})
    return np.array(points)


def _companion_stamp(
    caps: Sequence[Tuple[int, int, float]],
    coef: float,
    v_prev: np.ndarray,
    i_prev: Optional[np.ndarray],
) -> Callable:
    """Build the capacitor companion-model stamp for one timestep.

    With ``coef = 1/h`` this is backward Euler
    (``i = coef*C*(v - v_prev)``); with ``coef = 2/h`` it is trapezoidal
    (``i = coef*C*(v - v_prev) - i_prev``).
    """

    def stamp(ctx) -> None:
        for k, (na, nb, c) in enumerate(caps):
            g = coef * c
            va_prev = 0.0 if na == GROUND_INDEX else v_prev[na]
            vb_prev = 0.0 if nb == GROUND_INDEX else v_prev[nb]
            hist = g * (va_prev - vb_prev)
            if i_prev is not None:
                hist += i_prev[k]
            i = g * (ctx.v(na) - ctx.v(nb)) - hist
            ctx.add_kcl(na, i)
            ctx.add_kcl(nb, -i)
            ctx.add_jac(na, na, g)
            ctx.add_jac(na, nb, -g)
            ctx.add_jac(nb, na, -g)
            ctx.add_jac(nb, nb, g)

    return stamp


def _cap_currents(
    caps: Sequence[Tuple[int, int, float]],
    coef: float,
    v_new: np.ndarray,
    v_prev: np.ndarray,
    i_prev: Optional[np.ndarray],
) -> np.ndarray:
    out = np.zeros(len(caps))
    for k, (na, nb, c) in enumerate(caps):
        va = 0.0 if na == GROUND_INDEX else v_new[na]
        vb = 0.0 if nb == GROUND_INDEX else v_new[nb]
        va_p = 0.0 if na == GROUND_INDEX else v_prev[na]
        vb_p = 0.0 if nb == GROUND_INDEX else v_prev[nb]
        out[k] = coef * c * ((va - vb) - (va_p - vb_p))
        if i_prev is not None:
            out[k] -= i_prev[k]
    return out


def _ic_stamp(clamps: Sequence[Tuple[int, float]]) -> Callable:
    """Norton clamp pulling given node indices toward target voltages."""

    def stamp(ctx) -> None:
        for node, target in clamps:
            ctx.add_kcl(node, IC_CLAMP_G * (ctx.v(node) - target))
            ctx.add_jac(node, node, IC_CLAMP_G)

    return stamp


def run_transient(
    circuit,
    t_stop: float,
    ic: Optional[Dict[str, float]] = None,
    options: Optional[TransientOptions] = None,
) -> TransientResult:
    """Integrate ``circuit`` from 0 to ``t_stop`` seconds.

    Parameters
    ----------
    circuit:
        The netlist to simulate.
    t_stop:
        End time in seconds (must be positive).
    ic:
        Optional mapping of node names to initial voltages, imposed via
        stiff clamps during the initial operating-point solve (the clamp
        is released for the integration itself).
    options:
        Integration controls; defaults are tuned for the nanosecond-scale
        SRAM testbenches in this repository.
    """
    if t_stop <= 0:
        raise SimulationError(f"t_stop must be positive, got {t_stop!r}")
    opts = options or TransientOptions()
    mna.assign_branches(circuit)
    caps = _collect_caps(circuit)
    if not caps:
        raise SimulationError(
            f"circuit {circuit.title!r} has no capacitors; transient analysis "
            "of a purely resistive network is a DC sweep, not an ODE"
        )

    max_step = opts.max_step if opts.max_step is not None else t_stop / 200.0
    h = opts.initial_step if opts.initial_step is not None else max_step / 50.0
    breakpoints = _collect_breakpoints(circuit, t_stop)

    # Initial state: operating point at t = 0 with IC clamps.
    extra = []
    if ic:
        clamps = [(circuit.index_of(name), float(v)) for name, v in ic.items()]
        extra.append(_ic_stamp(clamps))
    op = solve_dc(circuit, time=0.0, options=opts.newton, extra_stamps=extra or None)
    x = op.x.copy()
    num_nodes = circuit.num_nodes

    times = [0.0]
    history = [x[:num_nodes].copy()]
    cap_i = np.zeros(len(caps))
    use_trap = False  # first step is backward Euler
    t = 0.0
    bp_idx = 0
    accepted = 0
    rejected = 0
    newton_total = 0
    rejections_in_a_row = 0
    # Slope of each node from the previous accepted step, for prediction.
    prev_slope: Optional[np.ndarray] = None

    # Breakpoint bookkeeping tolerance: float accumulation of t can leave
    # it a few ulps shy of a corner; treating "within bp_tol" as "at the
    # corner" prevents spurious sub-minimum steps.
    bp_tol = 1e-12 * t_stop
    while t < t_stop - 1e-12 * t_stop:
        h = min(h, max_step, t_stop - t)
        # Land exactly on the next breakpoint if this step would cross it.
        hit_breakpoint = False
        while bp_idx < len(breakpoints) and breakpoints[bp_idx] <= t + bp_tol:
            bp_idx += 1
        if bp_idx < len(breakpoints) and t + h >= breakpoints[bp_idx] - bp_tol:
            h = breakpoints[bp_idx] - t
            hit_breakpoint = True
            if h <= bp_tol:
                # Already effectively at the corner: snap and move on.
                t = breakpoints[bp_idx]
                bp_idx += 1
                continue
        if h < opts.min_step:
            raise SimulationError(
                f"timestep underflow at t={t:.3e}s in circuit {circuit.title!r}"
            )

        v_prev = x[:num_nodes].copy()
        coef = (2.0 / h) if use_trap else (1.0 / h)
        i_hist = cap_i if use_trap else None
        stamp = _companion_stamp(caps, coef, v_prev, i_hist)

        # Predictor for the LTE estimate (and a warm Newton start).
        if prev_slope is not None:
            v_pred = v_prev + prev_slope * h
        else:
            v_pred = v_prev
        x_guess = x.copy()
        x_guess[:num_nodes] = v_pred

        try:
            x_new, iters = newton_solve(
                circuit, x_guess, time=t + h, options=opts.newton, extra_stamps=[stamp]
            )
            newton_total += iters
        except ConvergenceError:
            rejected += 1
            rejections_in_a_row += 1
            if rejections_in_a_row > opts.max_rejections:
                raise SimulationError(
                    f"transient Newton kept failing near t={t:.3e}s "
                    f"in circuit {circuit.title!r}"
                )
            h = max(h * 0.25, 4 * opts.min_step)
            use_trap = False
            continue

        v_new = x_new[:num_nodes]
        # LTE test (skipped when we had no slope history or we were forced
        # onto a breakpoint with a tiny step anyway).
        if prev_slope is not None:
            scale = opts.reltol * np.maximum(np.abs(v_new), np.abs(v_prev)) + opts.abstol_v
            err = float(np.max(np.abs(v_new - v_pred) / scale)) / 8.0
        else:
            err = 0.5
        if err > 1.0 and not hit_breakpoint and h > 4 * opts.min_step:
            rejected += 1
            rejections_in_a_row += 1
            if rejections_in_a_row > opts.max_rejections:
                # Accept anyway rather than dying on a pathological corner;
                # accuracy here is bounded by max_step densification.
                rejections_in_a_row = 0
            else:
                h = max(h * max(0.2, min(0.9 / err ** (1.0 / 3.0), 0.9)), 4 * opts.min_step)
                continue

        # Accept.
        cap_i = _cap_currents(caps, coef, v_new, v_prev, i_hist)
        # The slope across a source corner is useless (often enormous) as
        # a predictor for the next step; drop it so the post-corner step
        # starts from a flat prediction instead of rejecting its way down.
        prev_slope = None if hit_breakpoint else (v_new - v_prev) / h
        x = x_new
        t += h
        times.append(t)
        history.append(v_new.copy())
        accepted += 1
        rejections_in_a_row = 0
        use_trap = not hit_breakpoint  # restart with BE right after a corner
        growth = min(2.0, max(0.3, 0.9 / max(err, 1e-3) ** (1.0 / 3.0)))
        h = h * growth

    return TransientResult(
        times=np.array(times),
        node_names=circuit.node_names,
        voltages=np.array(history),
        steps_accepted=accepted,
        steps_rejected=rejected,
        newton_iterations=newton_total,
    )
