"""DC operating-point solver: damped Newton with gmin and source stepping.

The solve strategy mirrors what production simulators do, scaled down:

1. plain damped Newton from the supplied (or zero) initial guess;
2. on failure, **gmin stepping** — solve a sequence of problems with a
   shunt conductance from every node to ground, relaxed geometrically from
   1e-2 S down to 1e-12 S, each solve seeding the next;
3. on failure, **source stepping** — ramp all independent sources from 0
   to 100 % in increments, again chaining solutions.

Newton steps are damped by clamping the per-node voltage update to
``max_step`` volts, which tames the exponential device characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.spice import mna

__all__ = ["NewtonOptions", "OperatingPoint", "newton_solve", "solve_dc"]


@dataclass(frozen=True)
class NewtonOptions:
    """Knobs for the damped Newton iteration."""

    max_iterations: int = 120
    abstol: float = 1e-10
    reltol: float = 1e-7
    vntol: float = 1e-8
    max_step: float = 0.4

    def converged(self, residual: np.ndarray, dx: np.ndarray, x: np.ndarray) -> bool:
        """Joint residual + update convergence test."""
        if not np.all(np.isfinite(residual)):
            return False
        res_ok = float(np.max(np.abs(residual))) < self.abstol * 10.0
        dx_ok = bool(np.all(np.abs(dx) < self.reltol * np.abs(x) + self.vntol))
        return res_ok or dx_ok


@dataclass
class OperatingPoint:
    """A converged DC solution.

    ``voltages`` maps node names to volts, ``branch_currents`` maps
    voltage-source names to amperes, and ``x`` is the raw unknown vector
    (useful as a transient initial state).
    """

    voltages: Dict[str, float]
    branch_currents: Dict[str, float]
    x: np.ndarray
    iterations: int
    strategy: str = "newton"

    def v(self, node: str) -> float:
        """Voltage of a named node (ground reads as 0)."""
        if node in ("0", "gnd", "GND"):
            return 0.0
        return self.voltages[node]

    def i(self, source_name: str) -> float:
        """Branch current through a named voltage source."""
        return self.branch_currents[source_name]


def newton_solve(
    circuit,
    x0: np.ndarray,
    time: Optional[float] = None,
    gmin: float = 0.0,
    source_scale: float = 1.0,
    options: Optional[NewtonOptions] = None,
    extra_stamps: Optional[List] = None,
) -> tuple:
    """Run one damped Newton iteration to convergence.

    Returns ``(x, iterations)``; raises
    :class:`~repro.errors.ConvergenceError` if the iteration limit is hit
    or the Jacobian becomes singular beyond rescue.
    """
    opts = options or NewtonOptions()
    x = x0.copy()
    num_nodes = circuit.num_nodes
    last_residual = float("inf")
    for iteration in range(1, opts.max_iterations + 1):
        ctx = mna.assemble(
            circuit, x, time=time, gmin=gmin, source_scale=source_scale,
            extra_stamps=extra_stamps,
        )
        residual = ctx.residual
        if not np.all(np.isfinite(residual)):
            raise ConvergenceError(
                f"non-finite residual in circuit {circuit.title!r}",
                iterations=iteration,
                residual=float("inf"),
            )
        jac = ctx.jacobian
        # A tiny Tikhonov floor keeps isolated nodes (gate-only nets during
        # stepping) from making the matrix exactly singular.
        jac = jac + 1e-14 * np.eye(jac.shape[0])
        try:
            dx = np.linalg.solve(jac, -residual)
        except np.linalg.LinAlgError:
            raise ConvergenceError(
                f"singular Jacobian in circuit {circuit.title!r}",
                iterations=iteration,
                residual=float(np.max(np.abs(residual))),
            ) from None
        # Damp voltage updates only; branch currents may move freely.
        dv = dx[:num_nodes]
        biggest = float(np.max(np.abs(dv))) if dv.size else 0.0
        if biggest > opts.max_step:
            dx = dx * (opts.max_step / biggest)
        x = x + dx
        last_residual = float(np.max(np.abs(residual)))
        if opts.converged(residual, dx, x):
            return x, iteration
    raise ConvergenceError(
        f"Newton did not converge in {opts.max_iterations} iterations "
        f"for circuit {circuit.title!r}",
        iterations=opts.max_iterations,
        residual=last_residual,
    )


#: gmin homotopy ladder, strongest shunt first.
GMIN_LADDER = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 1e-12, 0.0)

#: source-stepping ramp.
SOURCE_RAMP = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def solve_dc(
    circuit,
    x0: Optional[np.ndarray] = None,
    time: Optional[float] = None,
    options: Optional[NewtonOptions] = None,
    extra_stamps: Optional[List] = None,
) -> OperatingPoint:
    """Find the DC operating point, escalating through homotopies.

    ``time=None`` evaluates sources at their DC value; pass a time to get
    the quiescent solution consistent with the sources at that instant
    (the transient engine uses this for its initial point).
    """
    mna.assign_branches(circuit)
    size = mna.system_size(circuit)
    x = x0.copy() if x0 is not None else np.zeros(size)
    strategy = "newton"

    try:
        x, iters = newton_solve(
            circuit, x, time=time, options=options, extra_stamps=extra_stamps
        )
        return _package(circuit, x, iters, strategy)
    except ConvergenceError:
        pass

    # gmin stepping.
    strategy = "gmin-stepping"
    try:
        xg = np.zeros(size)
        iters = 0
        for gmin in GMIN_LADDER:
            xg, it = newton_solve(
                circuit, xg, time=time, gmin=gmin, options=options,
                extra_stamps=extra_stamps,
            )
            iters += it
        return _package(circuit, xg, iters, strategy)
    except ConvergenceError:
        pass

    # Source stepping.
    strategy = "source-stepping"
    xs = np.zeros(size)
    iters = 0
    try:
        for scale in SOURCE_RAMP:
            xs, it = newton_solve(
                circuit, xs, time=time, source_scale=scale, options=options,
                extra_stamps=extra_stamps,
            )
            iters += it
        return _package(circuit, xs, iters, strategy)
    except ConvergenceError as exc:
        raise ConvergenceError(
            f"all DC strategies failed for circuit {circuit.title!r}: {exc}",
            iterations=iters,
            residual=exc.residual,
        ) from exc


def _package(circuit, x: np.ndarray, iterations: int, strategy: str) -> OperatingPoint:
    voltages = {name: float(x[i]) for i, name in enumerate(circuit.node_names)}
    branch_currents = {
        elem.name: float(x[circuit.num_nodes + elem.branch_index])
        for elem in circuit.branch_elements()
    }
    return OperatingPoint(
        voltages=voltages,
        branch_currents=branch_currents,
        x=x,
        iterations=iterations,
        strategy=strategy,
    )
