"""Serializable compiled plans and the content-addressed plan cache.

``CompiledTransient`` construction is pure setup — node partitioning,
terminal-gather maps, scatter rounds, the Schur peel, hoisted per-step
tables — repeated identically by every spawn-pool worker, every repeated
CLI invocation and (per the ROADMAP) every future service request.  This
module makes that setup a build artifact:

* :class:`CompiledPlan` — an explicit, versioned snapshot of a compiled
  instance's serializable state.  It round-trips through pickle and
  through a checksummed byte container (:meth:`CompiledPlan.to_bytes` /
  :meth:`CompiledPlan.from_bytes`), and :meth:`CompiledPlan.restore`
  rebuilds a working ``CompiledTransient`` that is *bit-identical* to
  the fresh compile: the only state not shipped verbatim are the
  derived tables (``_plan``, ``_s_mat``, ``_m_mat``) that are pure
  numpy functions of the shipped state — the plan audit's P004/P005
  recomputation checks are exactly the proof that the rebuild equals
  the original.
* :func:`plan_fingerprint` — a structural content address over
  ``(netlist structure, grid, probes, compile options, plan-format
  version)``, the compile-side analogue of the run journal's shard-plan
  fingerprint.  Per-run variation inputs (``delta_vth``/``beta_mult``
  element attributes) are deliberately *excluded*: the compiler ignores
  them, so retargeting a variation sweep never busts the cache.
* :class:`PlanCache` — two tiers.  An in-process LRU of state templates
  (restores share the big immutable arrays and skip the audit — the
  template just came out of the compiler, or an audited disk load, in
  this very process), and an opt-in on-disk store of byte containers
  under a cache dir (``<fingerprint>.plan``), written atomically and
  fully re-audited on load.
* :func:`compile_cached` — the drop-in compile entry the sram bench
  registry and the CLI route through.

Admission policy (ROADMAP invariant): a plan that did not just come out
of the compiler in-process passes :func:`~repro.spice.audit.assert_plan_clean`
before first use — ``CompiledTransient.__setstate__`` runs it on every
unpickle and disk load.  Format-versioning policy: bump
:data:`~repro.spice.compile.PLAN_FORMAT_VERSION` on any change to the
serialized layout; the cache treats old-version entries as plain misses
(never errors), while a *direct* load of a stale or tampered payload is
refused loudly with diagnostic ``P008``.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pickle
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass
from pathlib import Path
from types import SimpleNamespace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, PlanAuditError
from repro.spice.compile import (
    PLAN_FORMAT_VERSION,
    CompiledTransient,
    _SchurSolver,
)
from repro.spice.diagnostics import DIAGNOSTIC_CODES, Diagnostic
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)

__all__ = [
    "CompiledPlan",
    "PlanCache",
    "compile_cached",
    "plan_fingerprint",
    "fingerprint_of",
    "plan_payload_error",
    "default_plan_cache",
    "configure_default_plan_cache",
    "reset_default_plan_cache",
]

#: Magic string identifying the byte container of a serialized plan.
_PLAN_MAGIC = "repro-plan"

#: Default in-process LRU capacity.  Templates share their arrays with
#: the instances handed out, so an entry costs references while its
#: plans are alive — but a full-size array-slice plan pins a few hundred
#: MB once nothing else holds it, so the tier stays deliberately small.
_DEFAULT_MAX_ENTRIES = 8


def plan_payload_error(message: str, subject: str = "plan payload") -> PlanAuditError:
    """A ``P008`` refusal: serialized plan container/version/checksum bad."""
    diag = Diagnostic("P008", "error", subject, message, DIAGNOSTIC_CODES["P008"][1])
    return PlanAuditError(
        f"P008 {subject}: {message}", code="P008", diagnostics=[diag]
    )


# ----------------------------------------------------------------------
# Structural fingerprint
# ----------------------------------------------------------------------

#: Structural parameters per element type, beyond name/terminals.  A
#: :class:`Mosfet` is special-cased: ``delta_vth``/``beta_mult`` are
#: per-run variation inputs the compiler snapshots *out* of the plan.
_ELEMENT_FIELDS: List[Tuple[type, Tuple[str, ...]]] = [
    (Resistor, ("resistance",)),
    (Capacitor, ("capacitance",)),
    (VoltageSource, ("shape",)),
    (CurrentSource, ("shape",)),
    (Vcvs, ("gain",)),
    (Vccs, ("gm",)),
]


def _canon(obj: object) -> object:
    """Canonical JSON-able form; floats by exact hex, arrays by digest."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj.hex()
    if isinstance(obj, np.generic):
        return _canon(obj.item())
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        digest = hashlib.sha256(arr.tobytes()).hexdigest()
        return ["ndarray", list(arr.shape), str(arr.dtype), digest]
    if is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: getattr(obj, f.name) for f in dataclass_fields(obj)}
        return [type(obj).__name__, _canon(fields)]
    if isinstance(obj, Mapping):
        return [[_canon(k), _canon(obj[k])] for k in sorted(obj)]
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    raise ConfigError(
        f"plan fingerprint: cannot canonicalise a {type(obj).__name__}"
    )


def _describe_element(elem: object) -> object:
    if isinstance(elem, Mosfet):
        params: Dict[str, object] = {
            "model": elem.model,
            "w": elem.w,
            "l": elem.l,
        }
    else:
        names: Tuple[str, ...] = ()
        for klass, klass_fields in _ELEMENT_FIELDS:
            if isinstance(elem, klass):
                names = klass_fields
                break
        params = {n: getattr(elem, n) for n in names}
    return [
        type(elem).__name__,
        getattr(elem, "name", ""),
        list(getattr(elem, "terminals", ())),
        _canon(params),
    ]


def _resolved_options(options: Mapping[str, object]) -> Dict[str, object]:
    """Fill compile options with ``CompiledTransient.__init__`` defaults.

    Resolving through the live signature keeps the fingerprint honest if
    a default ever changes: same request, new default, new address.
    """
    sig = inspect.signature(CompiledTransient.__init__)
    resolved: Dict[str, object] = {}
    for name, param in sig.parameters.items():
        if name in ("self", "circuit", "grid", "probes"):
            continue
        resolved[name] = options[name] if name in options else param.default
    unknown = [k for k in options if k not in resolved]
    if unknown:
        raise ConfigError(f"plan fingerprint: unknown compile option(s) {unknown!r}")
    return resolved


def plan_fingerprint(
    circuit: object,
    grid: np.ndarray,
    probes: Sequence[object] = (),
    **options: object,
) -> str:
    """Content address of a compile request.

    sha256 over a canonical JSON document of the plan-format version,
    the netlist structure (element types, names, terminals and
    structural parameters, in netlist order — node-index assignment is a
    pure function of that order), the exact grid, the probes, and every
    compile option with defaults resolved.  Floats canonicalise by hex
    (bit-exact), arrays by shape/dtype/content digest.
    """
    doc = {
        "format": PLAN_FORMAT_VERSION,
        "title": getattr(circuit, "title", ""),
        "num_nodes": getattr(circuit, "num_nodes", 0),
        "elements": [_describe_element(e) for e in circuit.elements],
        "grid": _canon(np.asarray(grid, dtype=float)),
        "probes": [_canon(p) for p in probes],
        "options": _canon(_resolved_options(options)),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def fingerprint_of(ct: CompiledTransient) -> str:
    """Fingerprint a compiled instance from its resolved attributes.

    The request-side :func:`plan_fingerprint` is the cache key; this is
    the canonicalised identity of an instance you already hold (probes
    regrouped by kind, assembly/solver as resolved or requested exactly
    as the constructor stored them).
    """
    return plan_fingerprint(
        ct.circuit,
        ct.grid,
        probes=(*ct._cross_probes, *ct._peak_probes, *ct._value_probes),
        kernel=ct.kernel,
        assembly=ct.assembly,
        solver=ct._solver_choice,
        newton_max_iter=ct.newton_max_iter,
        newton_tol=ct.newton_tol,
        max_step=ct.max_step,
        min_pivot=ct.min_pivot,
        clip=ct.clip,
    )


# ----------------------------------------------------------------------
# State templates
# ----------------------------------------------------------------------

def _fresh_containers(state: Mapping[str, object]) -> Dict[str, object]:
    """Copy every mutable container of a plan state, sharing the arrays.

    Restored plans must be mutation-isolated from the cache (and from
    each other): the audit test-suite edits ``_plan`` attributes,
    ``_SchurSolver.groups`` and probe lists in place to prove detection,
    and a cache that handed out shared containers would let one
    instance's surgery corrupt every later restore.  ndarrays are shared
    deliberately — they are treated as immutable plan constants, and
    sharing them is what makes an in-process cache hit nearly free.
    """
    out: Dict[str, object] = {}
    for key, value in state.items():
        if isinstance(value, SimpleNamespace):
            out[key] = SimpleNamespace(**vars(value))
        elif isinstance(value, _SchurSolver):
            clone = object.__new__(_SchurSolver)
            clone.__dict__.update(value.__dict__)
            clone.groups = [(s, nodes) for s, nodes in value.groups]
            out[key] = clone
        elif isinstance(value, list):
            out[key] = list(value)
        elif isinstance(value, dict):
            out[key] = dict(value)
        else:
            out[key] = value
    return out


def _restore_template(template: Mapping[str, object]) -> CompiledTransient:
    """Instantiate from a full in-process state template, no audit.

    Memory-tier templates include the derived tables and came from a
    compile (or an audited disk restore) in this process, so this is the
    one restore path the ROADMAP admission invariant does not gate.
    """
    ct = object.__new__(CompiledTransient)
    ct.__dict__.update(_fresh_containers(template))
    return ct


# ----------------------------------------------------------------------
# The serialized artifact
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CompiledPlan:
    """A versioned, serializable snapshot of a compiled transient plan.

    ``state`` is the compact attribute dict ``CompiledTransient.__getstate__``
    emits: everything but the derived tables, which
    :meth:`CompiledTransient.__setstate__` rebuilds bit-identically on
    :meth:`restore`.
    """

    fingerprint: str
    format_version: int
    state: Dict[str, object]

    @classmethod
    def from_compiled(
        cls, ct: CompiledTransient, fingerprint: Optional[str] = None
    ) -> "CompiledPlan":
        payload = ct.__getstate__()
        state = payload["state"]
        if not isinstance(state, dict):  # pragma: no cover - getstate contract
            raise plan_payload_error("compiled instance produced a non-dict state")
        return cls(
            fingerprint=fingerprint if fingerprint is not None else fingerprint_of(ct),
            format_version=PLAN_FORMAT_VERSION,
            state=_fresh_containers(state),
        )

    def restore(self) -> CompiledTransient:
        """Rebuild a working, audited ``CompiledTransient``.

        Routes through ``__setstate__``: format check, derived-table
        rebuild, then ``assert_plan_clean`` — the admission gate.
        """
        ct = object.__new__(CompiledTransient)
        ct.__setstate__(
            {"format": self.format_version, "state": _fresh_containers(self.state)}
        )
        return ct

    # -- byte container ------------------------------------------------

    def to_bytes(self) -> bytes:
        """``<u32 header length><JSON header><pickled state>``.

        The header carries magic, format version, fingerprint and a
        sha256 of the body, so staleness and tampering are decidable
        without unpickling anything.
        """
        body = pickle.dumps(self.state, protocol=pickle.HIGHEST_PROTOCOL)
        head = json.dumps(
            {
                "magic": _PLAN_MAGIC,
                "format": self.format_version,
                "fingerprint": self.fingerprint,
                "sha256": hashlib.sha256(body).hexdigest(),
                "nbytes": len(body),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        return struct.pack("<I", len(head)) + head + body

    @staticmethod
    def peek(blob: bytes) -> Dict[str, object]:
        """Parse and validate the container header, body untouched."""
        if len(blob) < 4:
            raise plan_payload_error("truncated container (no header length)")
        (hlen,) = struct.unpack_from("<I", blob)
        if hlen == 0 or 4 + hlen > len(blob):
            raise plan_payload_error("truncated container (header out of range)")
        try:
            head = json.loads(blob[4 : 4 + hlen].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise plan_payload_error("container header is not valid JSON") from None
        if not isinstance(head, dict) or head.get("magic") != _PLAN_MAGIC:
            raise plan_payload_error("container header magic mismatch")
        return head

    @classmethod
    def from_bytes(
        cls, blob: bytes, expected_fingerprint: Optional[str] = None
    ) -> "CompiledPlan":
        """Decode a byte container, refusing stale or tampered payloads.

        Raises :class:`~repro.errors.PlanAuditError` (``P008``) on a
        format-version mismatch, a fingerprint mismatch against
        ``expected_fingerprint``, or any checksum/shape violation.  The
        cache never routes a stale *version* here — it treats those as
        misses; a direct load is refused loudly instead.
        """
        head = CompiledPlan.peek(blob)
        if head.get("format") != PLAN_FORMAT_VERSION:
            raise plan_payload_error(
                f"stale plan format {head.get('format')!r} "
                f"(this build reads version {PLAN_FORMAT_VERSION})"
            )
        fingerprint = head.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise plan_payload_error("container header carries no fingerprint")
        if expected_fingerprint is not None and fingerprint != expected_fingerprint:
            raise plan_payload_error(
                f"fingerprint mismatch: payload {fingerprint[:16]}..., "
                f"expected {expected_fingerprint[:16]}..."
            )
        (hlen,) = struct.unpack_from("<I", blob)
        body = blob[4 + hlen :]
        if len(body) != head.get("nbytes"):
            raise plan_payload_error(
                f"body is {len(body)} bytes, header promises {head.get('nbytes')!r}"
            )
        if hashlib.sha256(body).hexdigest() != head.get("sha256"):
            raise plan_payload_error("body checksum mismatch (tampered payload)")
        try:
            state = pickle.loads(body)
        except Exception as exc:
            raise plan_payload_error(f"body does not unpickle: {exc}") from exc
        if not isinstance(state, dict):
            raise plan_payload_error("body is not a plan state dict")
        return cls(fingerprint=fingerprint, format_version=PLAN_FORMAT_VERSION, state=state)


# ----------------------------------------------------------------------
# The two-tier cache
# ----------------------------------------------------------------------

class PlanCache:
    """Content-addressed compiled-plan cache: in-process LRU + disk dir.

    ``get``/``put`` are keyed on :func:`plan_fingerprint` strings.  The
    memory tier stores full state templates and restores without
    re-auditing (in-process provenance); the disk tier stores
    :meth:`CompiledPlan.to_bytes` containers as ``<fingerprint>.plan``
    files, written atomically, and every disk load is re-audited by
    ``__setstate__``.  Stale-format disk entries count as misses
    (``stats["stale"]``); corrupt ones raise ``P008`` — losing a cache
    entry is routine, silently running a damaged one never is.

    ``get``/``put`` are serialized by an internal lock: the job service
    shares the process-wide default cache across executor threads, and
    an ``OrderedDict`` being re-ordered concurrently is not safe.  The
    lock does *not* make compile-on-miss single-flight — that is the
    service executor's job (it holds a compile lock around the whole
    get-compile-put sequence so N identical submissions miss once).
    """

    def __init__(
        self,
        cache_dir: Optional[object] = None,
        max_entries: int = _DEFAULT_MAX_ENTRIES,
    ):
        if int(max_entries) < 1:
            raise ConfigError(f"plan cache: max_entries must be >= 1, got {max_entries!r}")
        self.max_entries = int(max_entries)
        self._lock = threading.RLock()
        self._mem: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self.cache_dir: Optional[Path] = None
        if cache_dir is not None:
            path = Path(cache_dir)
            try:
                path.mkdir(parents=True, exist_ok=True)
                probe = path / ".write-probe"
                probe.write_bytes(b"")
                probe.unlink()
            except OSError as exc:
                raise ConfigError(
                    f"plan cache: cache dir {str(path)!r} is not writable: {exc}"
                ) from exc
            self.cache_dir = path
        self.stats: Dict[str, int] = {
            "mem_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "stores": 0,
            "stale": 0,
        }

    @property
    def hits(self) -> int:
        return self.stats["mem_hits"] + self.stats["disk_hits"]

    def __len__(self) -> int:
        return len(self._mem)

    def clear(self) -> None:
        """Drop the memory tier (disk entries are left in place)."""
        with self._lock:
            self._mem.clear()

    def _disk_path(self, fingerprint: str) -> Path:
        return self.cache_dir / f"{fingerprint}.plan"

    def _remember(self, fingerprint: str, ct: CompiledTransient) -> None:
        self._mem[fingerprint] = _fresh_containers(ct.__dict__)
        self._mem.move_to_end(fingerprint)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    def get(self, fingerprint: str) -> Optional[CompiledTransient]:
        """A fresh instance for the fingerprint, or ``None`` on a miss."""
        with self._lock:
            template = self._mem.get(fingerprint)
            if template is not None:
                self._mem.move_to_end(fingerprint)
                self.stats["mem_hits"] += 1
                return _restore_template(template)
            if self.cache_dir is not None:
                path = self._disk_path(fingerprint)
                try:
                    blob = path.read_bytes()
                except OSError:
                    blob = None
                if blob is not None:
                    head = CompiledPlan.peek(blob)
                    if head.get("format") != PLAN_FORMAT_VERSION:
                        self.stats["stale"] += 1
                    else:
                        plan = CompiledPlan.from_bytes(blob, expected_fingerprint=fingerprint)
                        ct = plan.restore()  # audited by __setstate__
                        self._remember(fingerprint, ct)
                        self.stats["disk_hits"] += 1
                        return ct
            self.stats["misses"] += 1
            return None

    def put(self, fingerprint: str, ct: CompiledTransient) -> None:
        """Admit a freshly compiled instance under its fingerprint."""
        with self._lock:
            self._remember(fingerprint, ct)
            self.stats["stores"] += 1
        if self.cache_dir is not None:
            blob = CompiledPlan.from_compiled(ct, fingerprint=fingerprint).to_bytes()
            path = self._disk_path(fingerprint)
            tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
            try:
                tmp.write_bytes(blob)
                os.replace(tmp, path)
            except OSError as exc:
                raise ConfigError(
                    f"plan cache: cannot write {str(path)!r}: {exc}"
                ) from exc


def compile_cached(
    circuit: object,
    grid: np.ndarray,
    probes: Sequence[object] = (),
    cache: Optional[PlanCache] = None,
    **options: object,
) -> CompiledTransient:
    """Compile through the plan cache: hit restores, miss compiles + stores.

    The drop-in replacement for constructing ``CompiledTransient``
    directly; ``cache=None`` routes through :func:`default_plan_cache`
    (which honours ``REPRO_PLAN_CACHE`` for the disk tier).
    """
    plan_cache = default_plan_cache() if cache is None else cache
    fingerprint = plan_fingerprint(circuit, grid, probes, **options)
    ct = plan_cache.get(fingerprint)
    if ct is None:
        ct = CompiledTransient(circuit, grid, probes, **options)
        plan_cache.put(fingerprint, ct)
    return ct


# ----------------------------------------------------------------------
# Process-wide default cache
# ----------------------------------------------------------------------

_default_cache: Optional[PlanCache] = None


def default_plan_cache() -> PlanCache:
    """The process-wide cache, created on first use.

    The disk tier comes from the ``REPRO_PLAN_CACHE`` environment
    variable when set (so spawn workers, which inherit the environment,
    share the same store); otherwise the default cache is memory-only.
    """
    global _default_cache
    if _default_cache is None:
        _default_cache = PlanCache(cache_dir=os.environ.get("REPRO_PLAN_CACHE") or None)
    return _default_cache


def configure_default_plan_cache(
    cache_dir: Optional[object] = None,
    max_entries: int = _DEFAULT_MAX_ENTRIES,
) -> PlanCache:
    """Replace the process-wide cache (the CLI's ``--plan-cache`` hook)."""
    global _default_cache
    _default_cache = PlanCache(cache_dir=cache_dir, max_entries=max_entries)
    return _default_cache


def reset_default_plan_cache() -> None:
    """Forget the process-wide cache (tests; re-reads the environment)."""
    global _default_cache
    _default_cache = None
