"""Smooth EKV-flavoured MOSFET compact model with process-variation hooks.

The model is a bulk-referenced, source/drain-symmetric EKV formulation:

* pinch-off voltage ``VP`` with the full body-effect term (smoothly
  clamped so it is defined for any gate voltage a Newton iteration might
  visit),
* forward/reverse normalised currents ``i_f/i_r`` through the classic
  squared-softplus interpolation, giving one C^inf expression valid from
  deep subthreshold to strong inversion,
* first-order channel-length modulation via a smooth ``|vds|`` factor.

The source/drain symmetry matters for SRAM work: the access transistors of
a 6T cell conduct in both directions during read and write, and an
asymmetric (``if vds < 0: swap``) model would put derivative kinks exactly
where the dynamic-stability boundary lives.

Per-instance statistical variation enters through two knobs that the
variation subpackage drives:

* ``delta_vth`` — additive threshold shift in volts (the dominant
  Pelgrom mismatch term),
* ``beta_mult`` — multiplicative current-factor variation.

All evaluation functions are vectorised over numpy arrays so the same
model card serves both the scalar MNA engine and the batched 6T engine.
Parameter values are PTM-45nm-flavoured: they produce realistic on/off
ratios, subthreshold slopes near 90 mV/dec and SRAM-like read/write
behaviour, but they are not a fitted PDK (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.spice.mathutils import (
    smooth_abs,
    smooth_abs_grad,
    smooth_relu,
    smooth_relu_grad,
    softplus,
    softplus_grad,
)

__all__ = [
    "MosfetModel",
    "MosfetOpPoint",
    "nmos_45nm",
    "pmos_45nm",
    "THERMAL_VOLTAGE",
]

#: Thermal voltage kT/q at 300 K, in volts.
THERMAL_VOLTAGE = 0.02585


@dataclass(frozen=True)
class MosfetModel:
    """A MOSFET model card.

    Attributes
    ----------
    name:
        Card name, e.g. ``"nmos_45nm"``.
    polarity:
        ``+1`` for NMOS, ``-1`` for PMOS.
    vto:
        Zero-bias threshold voltage magnitude in volts (positive for both
        polarities; the polarity flip is handled internally).
    kp:
        Transconductance parameter ``mu * Cox`` in A/V^2.
    n_slope:
        EKV slope factor (dimensionless, typically 1.2–1.5).
    gamma:
        Body-effect coefficient in sqrt(V).
    phi:
        Surface potential ``2 phi_F`` in volts.
    lambda_clm:
        Channel-length modulation coefficient in 1/V.
    cox:
        Gate-oxide capacitance per area in F/m^2 (for lumped caps).
    cj:
        Junction capacitance per gate width in F/m.
    cov:
        Gate overlap capacitance per gate width in F/m.
    avt:
        Pelgrom threshold-mismatch coefficient in V*m (sigma(dVth) =
        avt / sqrt(W*L)).
    abeta:
        Pelgrom current-factor mismatch coefficient in m (relative sigma
        of beta = abeta / sqrt(W*L)).
    """

    name: str
    polarity: int
    vto: float
    kp: float
    n_slope: float
    gamma: float
    phi: float
    lambda_clm: float
    cox: float
    cj: float
    cov: float
    avt: float
    abeta: float

    def with_overrides(self, **kwargs) -> "MosfetModel":
        """Return a copy of the card with the given fields replaced."""
        return replace(self, **kwargs)

    def beta(self, w: float, l: float, beta_mult=1.0):
        """Current factor ``kp * W / L`` scaled by the variation multiplier."""
        return self.kp * (w / l) * np.asarray(beta_mult, dtype=float)

    def vth_sigma(self, w: float, l: float) -> float:
        """Pelgrom threshold-mismatch sigma for a ``W x L`` device, in volts."""
        return self.avt / np.sqrt(w * l)

    def beta_rel_sigma(self, w: float, l: float) -> float:
        """Pelgrom relative current-factor mismatch sigma for a ``W x L`` device."""
        return self.abeta / np.sqrt(w * l)

    # ------------------------------------------------------------------
    # Core current evaluation
    # ------------------------------------------------------------------

    def ids(self, vg, vd, vs, vb=0.0, delta_vth=0.0, beta_mult=1.0, w=1e-6, l=45e-9):
        """Drain current (into the drain terminal) and its derivatives.

        Parameters are terminal voltages in volts (any broadcastable numpy
        shapes).  Returns a tuple ``(ids, gm, gds, gms, gmb)`` where the
        conductances are the partial derivatives of the drain current with
        respect to ``vg``, ``vd``, ``vs`` and ``vb`` respectively.  By
        construction ``gmb = -(gm + gds + gms)`` (the current depends on
        terminal-voltage differences only), which MNA stamping relies on.
        """
        p = float(self.polarity)
        # Flip everything into NMOS-referenced, bulk-referenced voltages.
        vgb = p * (np.asarray(vg, dtype=float) - vb)
        vdb = p * (np.asarray(vd, dtype=float) - vb)
        vsb = p * (np.asarray(vs, dtype=float) - vb)

        # delta_vth raises the threshold *magnitude* for both polarities:
        # a positive shift always weakens the device.  (Foundry decks vary
        # in sign convention for PMOS; magnitude-increase is the one that
        # keeps MPFP vectors directly interpretable.)
        vto_eff = self.vto + np.asarray(delta_vth, dtype=float)

        ut = THERMAL_VOLTAGE
        k_half = np.sqrt(self.phi) + 0.5 * self.gamma

        # Pinch-off voltage with body effect, smoothly clamped.
        arg = vgb - vto_eff + k_half * k_half
        q = smooth_relu(arg, eps=1e-3)
        dq = smooth_relu_grad(arg, eps=1e-3)
        sqrt_q = np.sqrt(q)
        vp = vgb - vto_eff - self.gamma * (sqrt_q - k_half)
        dvp_dvgb = 1.0 - self.gamma * dq / (2.0 * sqrt_q)

        n = self.n_slope
        beta = self.beta(w, l, beta_mult)
        i_spec = 2.0 * n * beta * ut * ut

        # Forward / reverse normalised currents.
        xf = (vp - vsb) / (2.0 * n * ut)
        xr = (vp - vdb) / (2.0 * n * ut)
        sf = softplus(xf)
        sr = softplus(xr)
        i_f = sf * sf
        i_r = sr * sr
        # d i_f / d(vp - vsb) etc.
        dif = sf * softplus_grad(xf) / (n * ut)
        dir_ = sr * softplus_grad(xr) / (n * ut)

        vds = vdb - vsb
        clm = 1.0 + self.lambda_clm * smooth_abs(vds, eps=5e-3)
        dclm_dvds = self.lambda_clm * smooth_abs_grad(vds, eps=5e-3)

        core = i_spec * (i_f - i_r)
        ids_ref = core * clm

        # Derivatives in the NMOS-referenced frame (w.r.t. vgb, vdb, vsb).
        d_dvgb = i_spec * (dif - dir_) * dvp_dvgb * clm
        d_dvdb = i_spec * dir_ * clm + core * dclm_dvds
        d_dvsb = -i_spec * dif * clm - core * dclm_dvds

        # Back to physical terminals.  ids_phys = p * ids_ref and each
        # referenced voltage is p * (v_terminal - vb), so the p factors
        # cancel for g, d, s; the bulk derivative balances the other three.
        ids_phys = p * ids_ref
        gm = d_dvgb
        gds = d_dvdb
        gms = d_dvsb
        gmb = -(gm + gds + gms)
        return ids_phys, gm, gds, gms, gmb

    # ------------------------------------------------------------------
    # Lumped capacitances
    # ------------------------------------------------------------------

    def capacitances(self, w: float, l: float):
        """Constant lumped terminal capacitances ``(cgs, cgd, cgb, cdb, csb)``.

        A charge-conserving constant-capacitance approximation: half the
        channel charge to each of source and drain plus overlap, a small
        gate-bulk term, and junction capacitance on the diffusions.  Using
        voltage-independent capacitances keeps the transient Jacobian
        contribution constant, which is a large robustness and speed win,
        at the cost of ignoring Meyer-style bias dependence (the dynamic
        metrics we extract are dominated by relative drive strengths, not
        by the C(V) shape).
        """
        c_ch = self.cox * w * l
        cgs = 0.5 * c_ch + self.cov * w
        cgd = 0.5 * c_ch + self.cov * w
        cgb = 0.1 * c_ch
        cdb = self.cj * w
        csb = self.cj * w
        return cgs, cgd, cgb, cdb, csb


@dataclass(frozen=True)
class MosfetOpPoint:
    """Operating-point snapshot of a single MOSFET instance."""

    ids: float
    vgs: float
    vds: float
    vbs: float
    gm: float
    gds: float


def nmos_45nm() -> MosfetModel:
    """PTM-45nm-flavoured NMOS card (see module docstring for caveats)."""
    return MosfetModel(
        name="nmos_45nm",
        polarity=+1,
        vto=0.47,
        kp=4.5e-4,
        n_slope=1.35,
        gamma=0.35,
        phi=0.85,
        lambda_clm=0.25,
        cox=1.3e-2,
        cj=8.0e-10,
        cov=2.4e-10,
        avt=2.5e-9,
        abeta=1.0e-8,
    )


def pmos_45nm() -> MosfetModel:
    """PTM-45nm-flavoured PMOS card (weaker kp, as in real processes)."""
    return MosfetModel(
        name="pmos_45nm",
        polarity=-1,
        vto=0.43,
        kp=2.1e-4,
        n_slope=1.35,
        gamma=0.33,
        phi=0.85,
        lambda_clm=0.28,
        cox=1.3e-2,
        cj=8.0e-10,
        cov=2.4e-10,
        avt=2.5e-9,
        abeta=1.0e-8,
    )
