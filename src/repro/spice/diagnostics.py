"""Netlist linter: coded structural diagnostics for circuits.

The batched compiler historically rejected malformed circuits one
``raise`` at a time, from deep inside :class:`~repro.spice.compile.
CompiledTransient` — the first problem found, nothing else, no machine-
readable identity.  This module is the *pre-compile* static pass: it
walks a :class:`~repro.spice.netlist.Circuit` (and optionally the probe
set that will be compiled against it), finds every structural problem in
one sweep, and reports them as :class:`Diagnostic` records with stable
codes, so tools (the ``netlist-lint`` CLI subcommand, CI, strict
compilation) can act on findings without parsing prose.

Diagnostic code space
---------------------

====== ========= ===========================================================
code   severity  meaning (fix hint in the registry below)
====== ========= ===========================================================
N001   warning   dangling node: attached to a single element
N002   error     disconnected island: nodes unreachable from any rail/ground
N003   error     controlled source (Vcvs/Vccs): unsupported by the compiler
N004   error     current source: unsupported by the batched compiler
N005   error     floating voltage source (minus not ground / drives ground)
N006   error     node driven by more than one voltage source
N007   warning   rail-only device: every terminal pinned to a rail/ground
N008   error     probe references a node that is not an unknown
N009   warning   unknown node with no DC path to any rail or ground
N010   warning   unknown node with no capacitance attached
N011   error     unsupported element type for the batched compiler
N012   error     duplicate probe name
N013   error     circuit has no MOSFETs (nothing to batch-evaluate)
N014   error     circuit has no unknown nodes (every node is a rail)
====== ========= ===========================================================

Plan-level (``P0xx``) and determinism (``D0xx``) codes live in the same
registry; they are emitted by :func:`repro.spice.audit.audit_plan` and
:mod:`repro.engine.audit` respectively.  Severity is binary: ``error``
findings make strict compilation and the CLI fail; ``warning`` findings
flag singular-by-construction or degenerate patterns that the solvers
survive via the pivot-guard rescue but that usually indicate a netlist
mistake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.netlist import GROUND_INDEX, Circuit

__all__ = [
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "lint_circuit",
    "lint_errors",
    "format_diagnostics",
]


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``code`` is a stable identifier from :data:`DIAGNOSTIC_CODES`;
    ``severity`` is ``"error"`` or ``"warning"``; ``subject`` names the
    node, element, probe or plan artifact the finding is about;
    ``message`` states the problem and ``hint`` how to fix it.
    """

    code: str
    severity: str
    subject: str
    message: str
    hint: str = ""

    def __str__(self) -> str:
        tail = f"  [{self.hint}]" if self.hint else ""
        return f"{self.code} {self.severity:<7s} {self.subject}: {self.message}{tail}"


#: Every diagnostic code the static-analysis layer can emit, with its
#: one-line meaning and the generic fix hint.  ``N0xx`` are netlist
#: findings (:func:`lint_circuit`), ``P0xx`` compiled-plan findings
#: (:func:`repro.spice.audit.audit_plan`), ``D0xx`` determinism findings
#: (:mod:`repro.engine.audit`).
DIAGNOSTIC_CODES: Dict[str, Tuple[str, str]] = {
    "N001": (
        "dangling node: attached to a single element",
        "connect the node to at least one more element, or remove it",
    ),
    "N002": (
        "disconnected island: nodes unreachable from any rail or ground",
        "wire the island to the rest of the circuit or delete it",
    ),
    "N003": (
        "controlled source: the batched compiler rejects Vcvs/Vccs",
        "replace the controlled source with the device it models",
    ),
    "N004": (
        "current source: the batched compiler rejects CurrentSource",
        "model the load with a resistor to a rail instead",
    ),
    "N005": (
        "floating voltage source: minus terminal must be ground and the "
        "plus terminal must not be",
        "ground the minus terminal (rails are grounded sources)",
    ),
    "N006": (
        "node driven by more than one voltage source",
        "drive each rail node from exactly one source",
    ),
    "N007": (
        "rail-only device: every terminal pinned to a rail or ground",
        "the device contributes nothing solvable; remove it or free a node",
    ),
    "N008": (
        "probe references a node that is not an unknown",
        "probe an unknown node (rails are known; probe the driven side)",
    ),
    "N009": (
        "unknown node with no DC path to any rail or ground",
        "add a resistive/channel path so the DC operating point is defined",
    ),
    "N010": (
        "unknown node with no capacitance attached",
        "attach a capacitor: the integrator needs a C row for every node",
    ),
    "N011": (
        "unsupported element type for the batched compiler",
        "compiled circuits may use MOSFETs, R, C and grounded V sources",
    ),
    "N012": (
        "duplicate probe name",
        "give every probe a unique name",
    ),
    "N013": (
        "circuit has no MOSFETs",
        "the batched compiler targets MOSFET circuits; add devices",
    ),
    "N014": (
        "circuit has no unknown nodes",
        "free at least one node from its voltage source",
    ),
    "P001": (
        "scatter round with a target-row collision",
        "rebuild the rounds with _scatter_rounds; do not edit them by hand",
    ),
    "P002": (
        "scatter rounds do not replay the dense k-ascending accumulation",
        "rounds must apply each row's stamps in ascending column order",
    ),
    "P003": (
        "Schur border/interior partition is not bordered-block-diagonal",
        "recompile; a hand-modified partition breaks the block elimination",
    ),
    "P004": (
        "gather/index map out of range or not total",
        "recompile; terminal maps must target the extended state exactly",
    ),
    "P005": (
        "hoisted per-step table shape or value inconsistent with the grid",
        "recompile against the grid actually integrated",
    ),
    "P006": (
        "retirement can touch metric probes",
        "retire only after every probe is provably settled",
    ),
    "P007": (
        "probe table inconsistent with the compiled plan",
        "probe rows must address compiled unknowns and grid steps",
    ),
    "P008": (
        "serialized plan payload refused: bad container, checksum or "
        "format version",
        "recompile to refresh a stale plan; a corrupt payload must be "
        "refetched, never patched",
    ),
    "D001": (
        "shard RNG streams are not disjoint",
        "spawn one child stream per shard from a single SeedSequence",
    ),
    "D002": (
        "budget split does not match the deterministic shard plan",
        "split budgets with split_budget(total, n_shards)",
    ),
    "D003": (
        "shard merge order is not ascending contiguous shard indexes",
        "sort results by shard index before merging",
    ),
    "D004": (
        "shard stream was not spawned from the parent SeedSequence",
        "derive shard streams with rng.spawn, not fresh seeds",
    ),
    "D005": (
        "journal plan fingerprint does not match the current shard plan",
        "resume only with the identical seed, n_shards and budget split",
    ),
    "D006": (
        "journal carries duplicate records for one shard index",
        "journal each shard at most once; delete the corrupt journal",
    ),
    "D007": (
        "journal shard index outside the current plan",
        "the journaled plan had more shards; re-run or fix n_shards",
    ),
    "A001": (
        "unknown workload name in an estimation request",
        "pick a registered workload; GET /v1/workloads or "
        "repro.api.list_workloads() enumerate them",
    ),
    "A002": (
        "unknown workload knob in an estimation request",
        "only the knobs the workload's registry entry declares are "
        "settable; check list_workloads() for the legal set",
    ),
    "A003": (
        "estimation request field holds an invalid value",
        "fix the offending field (positive budget/workers, finite spec, "
        "a value from the knob's declared choices, ...)",
    ),
    "A004": (
        "unsupported estimation method in a request",
        "use one of repro.api.METHODS ('gis', 'mc')",
    ),
    "A005": (
        "malformed request envelope (bad JSON, wrong types, unknown or "
        "missing fields)",
        "submit a JSON object matching EstimateRequest.to_json(): "
        "required 'workload' and 'spec', optional knobs under 'knobs'",
    ),
    "A006": (
        "unknown job id or service route",
        "poll only ids returned by POST /v1/jobs; see the README "
        "'Serving' section for the route table",
    ),
    "A007": (
        "service refused the submission (shutting down or queue full)",
        "retry later or raise the service queue_limit",
    ),
}


def _diag(code: str, severity: str, subject: str, message: str) -> Diagnostic:
    return Diagnostic(code, severity, subject, message, DIAGNOSTIC_CODES[code][1])


def lint_errors(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """The error-severity subset of a diagnostic list."""
    return [d for d in diagnostics if d.severity == "error"]


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line human-readable rendering (one finding per line)."""
    if not diagnostics:
        return "clean (no diagnostics)"
    return "\n".join(str(d) for d in diagnostics)


def _probe_nodes(probe: object) -> List[str]:
    """Node names a probe reads (duck-typed over the probe classes)."""
    coeffs = getattr(probe, "coeffs", None)
    if isinstance(coeffs, Mapping):
        return sorted(coeffs)
    node = getattr(probe, "node", None)
    return [node] if isinstance(node, str) else []


def lint_circuit(circuit: Circuit, probes: Sequence[object] = ()) -> List[Diagnostic]:
    """Structural lint of ``circuit`` (plus ``probes``) without compiling.

    Returns every finding, ordered by code then subject — deterministic
    for a given netlist.  ``error`` findings are exactly the patterns the
    batched compiler refuses (reported all at once, with codes, instead
    of the compiler's first-failure raise); ``warning`` findings are
    legal-but-degenerate patterns (dangling nodes, missing DC paths,
    capacitance-free nodes) that usually indicate a netlist mistake.
    """
    diags: List[Diagnostic] = []
    elements = circuit.elements
    num_nodes = circuit.num_nodes

    def name_of(idx: int) -> str:
        return circuit.node_name(idx)

    # -- per-element classification ------------------------------------
    rail_driver: Dict[int, List[str]] = {}
    for elem in elements:
        if isinstance(elem, Vcvs) or isinstance(elem, Vccs):
            diags.append(
                _diag(
                    "N003", "error", elem.name,
                    f"controlled source {type(elem).__name__} is not "
                    "supported by the batched compiler",
                )
            )
        elif isinstance(elem, CurrentSource):
            diags.append(
                _diag(
                    "N004", "error", elem.name,
                    "current sources are not supported by the batched compiler",
                )
            )
        elif isinstance(elem, VoltageSource):
            plus, minus = elem.nodes
            if minus != GROUND_INDEX:
                diags.append(
                    _diag(
                        "N005", "error", elem.name,
                        f"minus terminal {name_of(minus)!r} is not ground "
                        "(floating sources are not supported)",
                    )
                )
            elif plus == GROUND_INDEX:
                diags.append(
                    _diag("N005", "error", elem.name, "source drives ground")
                )
            else:
                rail_driver.setdefault(plus, []).append(elem.name)
        elif isinstance(elem, (Mosfet, Resistor, Capacitor)):
            pass
        elif elem.caps():
            pass  # purely capacitive composites compile fine
        else:
            diags.append(
                _diag(
                    "N011", "error", elem.name,
                    f"element type {type(elem).__name__} is not supported "
                    "by the batched compiler",
                )
            )

    for node, drivers in sorted(rail_driver.items()):
        if len(drivers) > 1:
            diags.append(
                _diag(
                    "N006", "error", name_of(node),
                    f"driven by {len(drivers)} voltage sources "
                    f"({', '.join(sorted(drivers))})",
                )
            )

    rails: Set[int] = set(rail_driver)
    known: Set[int] = rails | {GROUND_INDEX}
    unknowns = [i for i in range(num_nodes) if i not in rails]

    # -- connectivity ---------------------------------------------------
    attach_count: Dict[int, int] = {i: 0 for i in range(num_nodes)}
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(num_nodes)}
    adjacency[GROUND_INDEX] = set()
    conductive: Dict[int, Set[int]] = {i: set() for i in range(num_nodes)}
    conductive[GROUND_INDEX] = set()
    cap_touched: Set[int] = set()

    def link(graph: Dict[int, Set[int]], a: int, b: int) -> None:
        if a != b:
            graph[a].add(b)
            graph[b].add(a)

    for elem in elements:
        touched = set(elem.nodes)
        for node in touched:
            if node != GROUND_INDEX:
                attach_count[node] += 1
        for a in touched:
            for b in touched:
                link(adjacency, a, b)
        for na, nb, _c in elem.caps():
            cap_touched.add(na)
            cap_touched.add(nb)
        if isinstance(elem, (Resistor, VoltageSource, Vcvs)):
            link(conductive, elem.nodes[0], elem.nodes[1])
        elif isinstance(elem, Mosfet):
            nd, _ng, ns, _nb = elem.nodes
            link(conductive, nd, ns)  # the channel is the DC path

    for node in unknowns:
        if attach_count[node] == 1:
            diags.append(
                _diag(
                    "N001", "warning", name_of(node),
                    "attached to a single element",
                )
            )

    def reachable(graph: Dict[int, Set[int]], seeds: Set[int]) -> Set[int]:
        seen = set(seeds)
        stack = sorted(seeds)
        while stack:
            node = stack.pop()
            for nb in sorted(graph.get(node, ())):
                if nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        return seen

    connected = reachable(adjacency, known)
    island = sorted(i for i in range(num_nodes) if i not in connected)
    if island:
        diags.append(
            _diag(
                "N002", "error", ", ".join(name_of(i) for i in island),
                "unreachable from every rail and ground",
            )
        )

    dc_reached = reachable(conductive, {GROUND_INDEX})
    for node in unknowns:
        if node in connected and node not in dc_reached:
            diags.append(
                _diag(
                    "N009", "warning", name_of(node),
                    "no resistive or channel path to any rail or ground",
                )
            )

    for node in unknowns:
        if node in connected and node not in cap_touched:
            diags.append(
                _diag(
                    "N010", "warning", name_of(node),
                    "no capacitance attached (singular C row on the grid)",
                )
            )

    # -- rail-only devices ----------------------------------------------
    for elem in elements:
        if isinstance(elem, (Mosfet, Resistor, Capacitor)):
            if set(elem.nodes) <= known:
                diags.append(
                    _diag(
                        "N007", "warning", elem.name,
                        "every terminal is pinned to a rail or ground",
                    )
                )

    # -- circuit-level compilability ------------------------------------
    if not circuit.mosfets():
        diags.append(_diag("N013", "error", circuit.title, "circuit has no MOSFETs"))
    if not unknowns:
        diags.append(
            _diag("N014", "error", circuit.title, "circuit has no unknown nodes")
        )

    # -- probes ----------------------------------------------------------
    unknown_names = {name_of(i) for i in unknowns}
    seen_names: Set[str] = set()
    for probe in probes:
        pname = getattr(probe, "name", repr(probe))
        if pname in seen_names:
            diags.append(_diag("N012", "error", pname, "duplicate probe name"))
        seen_names.add(pname)
        for node in _probe_nodes(probe):
            if node not in unknown_names:
                diags.append(
                    _diag(
                        "N008", "error", pname,
                        f"references {node!r}, which is not an unknown node",
                    )
                )

    diags.sort(key=lambda d: (d.code, d.subject))
    return diags
