"""A compact pure-Python circuit simulator (the SPICE substrate).

This subpackage replaces the HSPICE/ngspice + PTM-model dependency of the
original paper with a self-contained modified-nodal-analysis engine:

* :mod:`repro.spice.netlist` — circuit container and node bookkeeping.
* :mod:`repro.spice.elements` — resistors, capacitors, sources, MOSFETs.
* :mod:`repro.spice.mosfet` — smooth EKV-flavoured compact model with
  per-instance threshold/beta variation (vectorised; shared with the
  batched SRAM engine).
* :mod:`repro.spice.dc` — Newton operating-point solver with gmin and
  source stepping.
* :mod:`repro.spice.transient` — trapezoidal/backward-Euler transient
  analysis with local-truncation-error step control.
* :mod:`repro.spice.waveform` — waveform container and measurements.
* :mod:`repro.spice.sensitivity` — finite-difference gradients of scalar
  measurements with respect to named instance parameters.
* :mod:`repro.spice.diagnostics` — coded structural netlist lint
  (``lint_circuit``; the ``N0xx`` codes).
* :mod:`repro.spice.audit` — compile-plan auditor (``audit_plan``; the
  ``P0xx`` codes) proving a :class:`~repro.spice.compile.CompiledTransient`
  well-formed without running it.
* :mod:`repro.spice.plan` — serialized compiled plans
  (:class:`~repro.spice.plan.CompiledPlan`) and the content-addressed
  plan cache (:class:`~repro.spice.plan.PlanCache`,
  :func:`~repro.spice.plan.compile_cached`): compile once, restore
  audited anywhere.
"""

from repro.spice.mosfet import MosfetModel, MosfetOpPoint, nmos_45nm, pmos_45nm
from repro.spice.netlist import Circuit
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.sources import dc, pulse, pwl
from repro.spice.dcop import OperatingPoint, solve_dc
from repro.spice.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    format_diagnostics,
    lint_circuit,
    lint_errors,
)
from repro.spice.audit import assert_plan_clean, audit_plan
from repro.spice.plan import (
    CompiledPlan,
    PlanCache,
    compile_cached,
    plan_fingerprint,
)
from repro.spice.transient import TransientOptions, TransientResult, run_transient
from repro.spice.waveform import Waveform

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Vcvs",
    "Vccs",
    "Mosfet",
    "MosfetModel",
    "MosfetOpPoint",
    "nmos_45nm",
    "pmos_45nm",
    "dc",
    "pulse",
    "pwl",
    "solve_dc",
    "OperatingPoint",
    "run_transient",
    "TransientOptions",
    "TransientResult",
    "Waveform",
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "lint_circuit",
    "lint_errors",
    "format_diagnostics",
    "audit_plan",
    "assert_plan_clean",
    "CompiledPlan",
    "PlanCache",
    "compile_cached",
    "plan_fingerprint",
]
