"""Compiled-plan auditor: statically prove a ``CompiledTransient`` well-formed.

:func:`audit_plan` inspects the artifacts a compile produced — gather
maps, incidence matrices, scatter rounds, the Schur partition, hoisted
per-step tables, probe tables — and checks every invariant the fused
integrator relies on, *without running a transient*:

* **P004** — the terminal gather maps and incidence matrices are total
  and in-range, and the incidence stamps are exactly the ±1 pattern the
  device wiring implies (recomputed symbolically from the terminal maps,
  entry for entry).
* **P001/P002** — the sparse assembly's scatter rounds are collision-free
  (no round targets a Jacobian row twice) and replay the dense matmul's
  k-ascending per-entry accumulation order exactly: per row, the rounds
  must apply the same (column, sign) stamps, in ascending column order,
  as the nonzeros of the incidence matrix.  This is the static proof
  behind the "sparse is bit-equal to dense" invariant.
* **P003** — the Schur decomposition is a genuine bordered-block-diagonal
  partition of the compile-time Jacobian pattern: border plus interior
  blocks partition the unknowns exactly, every interior block fits the
  unrolled-solve width, the border respects the size cap, and no two
  distinct interior blocks couple except through the border.
* **P005** — the hoisted per-step tables (``C/h``, base Jacobian,
  capacitive injection, rail drives, rail waveforms) are shape-consistent
  with the grid and reproduce a fresh recomputation exactly.
* **P006/P007** — probe tables address compiled unknowns and grid steps,
  and a retirement policy can never corrupt a metric probe (no value
  probes, peak windows open before retirement can begin).
* **P008** — issued by the serialization layer (:mod:`repro.spice.plan`
  and ``CompiledTransient.__setstate__``), not by the auditor itself: a
  serialized plan payload with a bad container, checksum or format
  version is refused before the audit ever sees it.

The auditor is the admission gate the ROADMAP's compiled-circuit cache
and remote shard dispatch need: a cached or deserialized plan gets
:func:`assert_plan_clean` run once at admission instead of trusting the
producer.  The engine-side determinism audit lives in
:mod:`repro.engine.audit`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import PlanAuditError
from repro.spice.compile import (
    CompiledTransient,
    RetirePolicy,
    _SCHUR_MAX_BLOCK,
    _schur_border_cap,
)
from repro.spice.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    format_diagnostics,
    lint_errors,
)
from repro.spice.sources import DcShape

__all__ = ["audit_plan", "assert_plan_clean"]


def _diag(code: str, severity: str, subject: str, message: str) -> Diagnostic:
    return Diagnostic(code, severity, subject, message, DIAGNOSTIC_CODES[code][1])


def _audit_index_maps(ct: CompiledTransient, diags: List[Diagnostic]) -> None:
    """P004: gather maps total and in-range, incidence stamps symbolic."""
    nu = ct.n_unknowns
    n_dev = ct.n_devices
    n_ext = ct._n_ext

    for what, idx in (
        ("drain", ct._d_idx),
        ("gate", ct._g_idx),
        ("source", ct._s_idx),
        ("bulk", ct._b_idx),
    ):
        idx = np.asarray(idx)
        if idx.shape != (n_dev,):
            diags.append(
                _diag(
                    "P004", "error", f"{what}_idx",
                    f"shape {idx.shape} != ({n_dev},)",
                )
            )
            continue
        if idx.size and (idx.min() < 0 or idx.max() >= n_ext):
            diags.append(
                _diag(
                    "P004", "error", f"{what}_idx",
                    f"targets outside the extended state [0, {n_ext})",
                )
            )

    rows = sorted(ct._row_of_node.values())
    if rows != list(range(n_ext)):
        diags.append(
            _diag(
                "P004", "error", "row_of_node",
                f"rows {rows} do not partition the extended state "
                f"[0, {n_ext})",
            )
        )

    s_mat = ct._s_mat
    m_mat = ct._m_mat
    if s_mat.shape != (nu, n_dev):
        diags.append(
            _diag(
                "P004", "error", "s_mat",
                f"shape {s_mat.shape} != ({nu}, {n_dev})",
            )
        )
        return
    if m_mat.shape != (nu * nu, 4 * n_dev):
        diags.append(
            _diag(
                "P004", "error", "m_mat",
                f"shape {m_mat.shape} != ({nu * nu}, {4 * n_dev})",
            )
        )
        return

    # Recompute both incidence matrices from the terminal maps — the
    # symbolic cross-check: a plan whose stamps disagree with its own
    # wiring assembles a wrong Jacobian no matter how it is applied.
    s_ref = np.zeros((nu, n_dev))
    m_ref = np.zeros((nu * nu, 4 * n_dev))
    for k in range(n_dev):
        rd, rg, rs, rb = (
            int(ct._d_idx[k]), int(ct._g_idx[k]),
            int(ct._s_idx[k]), int(ct._b_idx[k]),
        )
        if rd < nu:
            s_ref[rd, k] += 1.0
        if rs < nu:
            s_ref[rs, k] -= 1.0
        for g_kind, rt in enumerate((rg, rd, rs, rb)):
            if rt >= nu:
                continue
            if rd < nu:
                m_ref[rd * nu + rt, g_kind * n_dev + k] += 1.0
            if rs < nu:
                m_ref[rs * nu + rt, g_kind * n_dev + k] -= 1.0
    if not np.array_equal(s_mat, s_ref):
        diags.append(
            _diag(
                "P004", "error", "s_mat",
                "current-incidence stamps disagree with the terminal maps",
            )
        )
    if not np.array_equal(m_mat, m_ref):
        diags.append(
            _diag(
                "P004", "error", "m_mat",
                "Jacobian-incidence stamps disagree with the terminal maps",
            )
        )


def _audit_scatter_rounds(ct: CompiledTransient, diags: List[Diagnostic]) -> None:
    """P001/P002: rounds collision-free and replaying the dense order."""
    rounds = ct._jac_rounds
    if ct.assembly != "sparse":
        if rounds is not None:
            diags.append(
                _diag(
                    "P002", "error", "jac_rounds",
                    "dense assembly carries scatter rounds it will not apply",
                )
            )
        return
    if rounds is None:
        diags.append(
            _diag(
                "P002", "error", "jac_rounds",
                "sparse assembly compiled without scatter rounds",
            )
        )
        return

    m_mat = ct._m_mat
    # Replay the rounds symbolically: per target row, the (column, sign)
    # stamps in round order.
    replayed: dict = {}
    for r, (rp, cp, rm, cm) in enumerate(rounds):
        targets = np.concatenate([rp, rm])
        if np.unique(targets).size != targets.size:
            diags.append(
                _diag(
                    "P001", "error", f"round {r}",
                    "round targets a Jacobian row more than once "
                    "(fancy-index accumulation would drop stamps)",
                )
            )
        for row, col in zip(rp, cp):
            replayed.setdefault(int(row), []).append((int(col), 1.0))
        for row, col in zip(rm, cm):
            replayed.setdefault(int(row), []).append((int(col), -1.0))

    rows, cols = np.nonzero(m_mat)
    expected: dict = {}
    for row, col in zip(rows, cols):
        # np.nonzero is row-major: per row, columns already ascend — the
        # k-ascending order the dense matmul reduces in.
        expected.setdefault(int(row), []).append((int(col), float(m_mat[row, col])))
    if replayed != expected:
        bad = sorted(
            set(replayed) ^ set(expected)
            | {r for r in set(replayed) & set(expected) if replayed[r] != expected[r]}
        )
        diags.append(
            _diag(
                "P002", "error", f"rows {bad[:8]}",
                "scatter rounds do not replay the incidence matrix's "
                "k-ascending per-entry accumulation order",
            )
        )


def _audit_schur(ct: CompiledTransient, diags: List[Diagnostic]) -> None:
    """P003: the partition is genuinely bordered-block-diagonal."""
    schur = ct._schur
    if ct.solver != "schur":
        if schur is not None:
            diags.append(
                _diag(
                    "P003", "error", "solver",
                    f"solver={ct.solver!r} but a Schur decomposition is attached",
                )
            )
        return
    if schur is None:
        diags.append(
            _diag("P003", "error", "solver", "solver='schur' without a decomposition")
        )
        return

    nu = ct.n_unknowns
    border = np.asarray(schur.h)
    if border.ndim != 1 or not np.array_equal(border, np.unique(border)):
        diags.append(
            _diag("P003", "error", "border", "border rows not sorted unique")
        )
        return
    if border.size and (border.min() < 0 or border.max() >= nu):
        diags.append(
            _diag("P003", "error", "border", f"border rows outside [0, {nu})")
        )
        return
    if border.size > _schur_border_cap(nu):
        diags.append(
            _diag(
                "P003", "error", "border",
                f"border size {border.size} exceeds the cap "
                f"{_schur_border_cap(nu)} for {nu} unknowns",
            )
        )

    block_of = np.full(nu, -1, dtype=int)
    block_of[border] = -2  # border marker
    block_id = 0
    for s, nodes in schur.groups:
        if s > _SCHUR_MAX_BLOCK:
            diags.append(
                _diag(
                    "P003", "error", f"block size {s}",
                    f"interior block exceeds the unrolled-solve width "
                    f"{_SCHUR_MAX_BLOCK}",
                )
            )
        nodes = np.asarray(nodes)
        if nodes.ndim != 2 or nodes.shape[1] != s:
            diags.append(
                _diag(
                    "P003", "error", f"block size {s}",
                    f"block stack shape {nodes.shape} is not (n_blocks, {s})",
                )
            )
            continue
        for blk in nodes:
            for node in blk:
                node = int(node)
                if not (0 <= node < nu):
                    diags.append(
                        _diag(
                            "P003", "error", f"node {node}",
                            f"interior node outside [0, {nu})",
                        )
                    )
                elif block_of[node] == -2:
                    diags.append(
                        _diag(
                            "P003", "error", f"node {node}",
                            "node appears in the border and an interior block",
                        )
                    )
                elif block_of[node] != -1:
                    diags.append(
                        _diag(
                            "P003", "error", f"node {node}",
                            "node appears in two interior blocks",
                        )
                    )
                else:
                    block_of[node] = block_id
            block_id += 1
    missing = np.flatnonzero(block_of == -1)
    if missing.size:
        diags.append(
            _diag(
                "P003", "error", f"nodes {missing.tolist()}",
                "unknowns covered by neither the border nor any block",
            )
        )
        return

    # No coupling between two distinct interior blocks: rebuild the
    # compile-time pattern exactly as _build_solver does.
    pattern = (ct.cmat != 0.0) | (ct._gmat != 0.0)
    entries = np.unique(np.nonzero(ct._m_mat)[0])
    pattern[entries // nu, entries % nu] = True
    np.fill_diagonal(pattern, True)
    adj = pattern | pattern.T
    np.fill_diagonal(adj, False)
    for i, j in zip(*np.nonzero(adj)):
        bi, bj = block_of[i], block_of[j]
        if bi >= 0 and bj >= 0 and bi != bj:
            diags.append(
                _diag(
                    "P003", "error", f"nodes ({int(i)}, {int(j)})",
                    "Jacobian pattern couples two distinct interior blocks "
                    "outside the border",
                )
            )
            break


def _audit_plan_tables(ct: CompiledTransient, diags: List[Diagnostic]) -> None:
    """P005: hoisted per-step tables reproduce a fresh recomputation."""
    plan = ct._plan
    grid = ct.grid
    nu = ct.n_unknowns
    nr = len(ct._rail_nodes)
    n_steps = grid.size - 1

    if plan.n_steps != n_steps or plan.hs.shape != (n_steps,):
        diags.append(
            _diag(
                "P005", "error", "hs",
                f"{plan.n_steps} plan steps for a {grid.size}-point grid",
            )
        )
        return
    hs = np.diff(grid)
    if not np.array_equal(plan.hs, hs) or np.any(hs <= 0):
        diags.append(
            _diag("P005", "error", "hs", "step sizes disagree with the grid")
        )
        return
    if not (
        np.array_equal(plan.t_prev, grid[:-1]) and np.array_equal(plan.t_now, grid[1:])
    ):
        diags.append(
            _diag("P005", "error", "t_prev/t_now", "step times disagree with the grid")
        )

    extrap = np.zeros_like(hs)
    extrap[1:] = hs[1:] / hs[:-1]
    if not np.array_equal(plan.extrap, extrap):
        diags.append(
            _diag(
                "P005", "error", "extrap",
                "warm-start extrapolation ratios disagree with the grid",
            )
        )

    rails = ct._rail_vals
    if rails.shape != (grid.size, nr) or not np.all(np.isfinite(rails)):
        diags.append(
            _diag(
                "P005", "error", "rail_vals",
                f"shape {rails.shape} != ({grid.size}, {nr}) or non-finite",
            )
        )
        return
    for j, shape in enumerate(ct._rail_shapes):
        if isinstance(shape, DcShape) and j in ct._varying_rails:
            diags.append(
                _diag(
                    "P005", "error", ct.rail_names[j],
                    "DC rail marked time-varying",
                )
            )

    checks = (
        ("cmat_h", plan.cmat_h, ct.cmat[None, :, :] / hs[:, None, None]),
        ("base_jac", plan.base_jac, ct.cmat[None, :, :] / hs[:, None, None]
         + ct._gmat[None, :, :]),
        ("cap_inj", plan.cap_inj,
         (np.diff(rails, axis=0) / hs[:, None]) @ ct._cap_rail.T),
        ("g_rhs", plan.g_rhs, rails[1:] @ ct._g_rail.T),
    )
    for name, got, want in checks:
        if got.shape != want.shape or not np.array_equal(got, want):
            diags.append(
                _diag(
                    "P005", "error", name,
                    "hoisted table does not reproduce its recomputation "
                    f"(shape {got.shape}, expected {want.shape})",
                )
            )
    if not np.array_equal(plan.g_diag, np.diag(ct._gmat)):
        diags.append(
            _diag("P005", "error", "g_diag", "diagonal drive disagrees with G")
        )
    if plan.v_eff.shape != (n_steps, nu) or not np.all(np.isfinite(plan.v_eff)):
        diags.append(
            _diag(
                "P005", "error", "v_eff",
                f"shape {plan.v_eff.shape} != ({n_steps}, {nu}) or non-finite",
            )
        )


def _audit_probes(
    ct: CompiledTransient, retire: Optional[RetirePolicy], diags: List[Diagnostic]
) -> None:
    """P006/P007: probe tables valid; retirement cannot corrupt metrics."""
    nu = ct.n_unknowns
    n_steps = ct._plan.n_steps
    if ct._cross_mat is not None:
        if ct._cross_mat.shape != (len(ct._cross_probes), nu):
            diags.append(
                _diag(
                    "P007", "error", "cross_mat",
                    f"shape {ct._cross_mat.shape} != "
                    f"({len(ct._cross_probes)}, {nu})",
                )
            )
        else:
            for probe, rowv in zip(ct._cross_probes, ct._cross_mat):
                if not np.any(rowv != 0.0):
                    diags.append(
                        _diag(
                            "P007", "warning", probe.name,
                            "cross probe with an all-zero coefficient row "
                            "never crosses",
                        )
                    )
    if ct._peak_rows is not None:
        if ct._peak_rows.size and (
            ct._peak_rows.min() < 0 or ct._peak_rows.max() >= nu
        ):
            diags.append(
                _diag(
                    "P007", "error", "peak_rows",
                    f"peak probe rows outside [0, {nu})",
                )
            )
        if ct._peak_track is None or ct._peak_track.shape != (
            len(ct._peak_probes), n_steps
        ):
            diags.append(
                _diag(
                    "P007", "error", "peak_track",
                    "peak tracking table inconsistent with the grid",
                )
            )
    for probe, vstep in zip(ct._value_probes, ct._value_steps):
        if not (0 <= int(vstep) < n_steps):
            diags.append(
                _diag(
                    "P007", "error", probe.name,
                    f"value probe step {int(vstep)} outside [0, {n_steps})",
                )
            )

    if retire is None:
        return
    cross_names = [p.name for p in ct._cross_probes]
    if retire.probe not in cross_names:
        diags.append(
            _diag(
                "P006", "error", retire.probe,
                f"retire policy names no compiled cross probe "
                f"(cross probes: {cross_names})",
            )
        )
    if ct._value_probes:
        diags.append(
            _diag(
                "P006", "error", ", ".join(p.name for p in ct._value_probes),
                "retirement with value probes: a retired sample has no "
                "state left to snapshot",
            )
        )
    for probe in ct._peak_probes:
        if probe.t_from > retire.after:
            diags.append(
                _diag(
                    "P006", "error", probe.name,
                    f"peak window opens at t={probe.t_from:g}, after "
                    f"retirement can begin (t={retire.after:g}) — a retired "
                    "sample would report a zero peak",
                )
            )
    if retire.min_count < 1 or retire.frac_divisor < 1:
        diags.append(
            _diag(
                "P006", "error", retire.probe,
                "retire thresholds must be positive",
            )
        )


def audit_plan(
    ct: CompiledTransient, retire: Optional[RetirePolicy] = None
) -> List[Diagnostic]:
    """Audit every compiled artifact of ``ct``; returns the findings.

    Pass the :class:`~repro.spice.compile.RetirePolicy` a run will use to
    additionally prove retirement cannot corrupt the metric probes
    (``P006``).  An empty list means the plan is well-formed; see
    :data:`~repro.spice.diagnostics.DIAGNOSTIC_CODES` for the ``P0xx``
    code meanings.
    """
    diags: List[Diagnostic] = []
    _audit_index_maps(ct, diags)
    _audit_scatter_rounds(ct, diags)
    _audit_schur(ct, diags)
    _audit_plan_tables(ct, diags)
    _audit_probes(ct, retire, diags)
    diags.sort(key=lambda d: (d.code, d.subject))
    return diags


def assert_plan_clean(
    ct: CompiledTransient, retire: Optional[RetirePolicy] = None
) -> List[Diagnostic]:
    """Raise :class:`~repro.errors.PlanAuditError` on error findings.

    The admission gate for plans that did not just come out of the
    compiler in this process (a cache hit, a deserialized remote plan).
    Returns the full diagnostic list (warnings included) when clean.
    """
    diags = audit_plan(ct, retire=retire)
    errors = lint_errors(diags)
    if errors:
        raise PlanAuditError(
            f"compiled plan for {ct.circuit.title!r} failed its audit:\n"
            + format_diagnostics(errors),
            code=errors[0].code,
            diagnostics=diags,
        )
    return diags
