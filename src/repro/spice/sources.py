"""Time-dependent source waveform descriptions.

Source shapes are small immutable objects with a ``value(t)`` method and a
``dc_value()`` used by the operating-point solver.  They are deliberately
independent of the element classes so the same shape can drive a voltage
or a current source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import NetlistError

__all__ = ["SourceShape", "DcShape", "PulseShape", "PwlShape", "dc", "pulse", "pwl"]


class SourceShape:
    """Base class for source waveforms."""

    def value(self, t: float) -> float:
        """Source value at time ``t`` (seconds)."""
        raise NotImplementedError

    def dc_value(self) -> float:
        """Value used for the DC operating point (the ``t = 0`` value)."""
        return self.value(0.0)


@dataclass(frozen=True)
class DcShape(SourceShape):
    """A constant source."""

    level: float

    def value(self, t: float) -> float:
        return self.level


@dataclass(frozen=True)
class PulseShape(SourceShape):
    """SPICE-style periodic pulse.

    Attributes mirror the classic ``PULSE(v1 v2 td tr tf pw per)`` card; a
    non-positive ``period`` means a single pulse.
    """

    v1: float
    v2: float
    delay: float
    rise: float
    fall: float
    width: float
    period: float = 0.0

    def __post_init__(self):
        if self.rise < 0 or self.fall < 0 or self.width < 0:
            raise NetlistError("pulse rise/fall/width must be non-negative")

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        tl = t - self.delay
        if self.period > 0:
            tl = tl % self.period
        rise = max(self.rise, 1e-15)
        fall = max(self.fall, 1e-15)
        if tl < self.rise:
            return self.v1 + (self.v2 - self.v1) * tl / rise
        tl -= self.rise
        if tl < self.width:
            return self.v2
        tl -= self.width
        if tl < self.fall:
            return self.v2 + (self.v1 - self.v2) * tl / fall
        return self.v1

    def breakpoints(self) -> Tuple[float, ...]:
        """Times where the waveform has slope discontinuities (one period).

        The transient engine clips steps to land on these, which keeps the
        local-truncation-error estimate honest across source corners.
        """
        t0 = self.delay
        pts = (
            t0,
            t0 + self.rise,
            t0 + self.rise + self.width,
            t0 + self.rise + self.width + self.fall,
        )
        return pts


@dataclass(frozen=True)
class PwlShape(SourceShape):
    """Piecewise-linear source defined by ``(time, value)`` points."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self):
        times = [p[0] for p in self.points]
        if len(times) < 1:
            raise NetlistError("pwl source needs at least one point")
        if any(t1 >= t2 for t1, t2 in zip(times, times[1:])):
            raise NetlistError("pwl times must be strictly increasing")

    def value(self, t: float) -> float:
        times = np.array([p[0] for p in self.points])
        vals = np.array([p[1] for p in self.points])
        return float(np.interp(t, times, vals))

    def breakpoints(self) -> Tuple[float, ...]:
        """All knot times."""
        return tuple(p[0] for p in self.points)


def dc(level: float) -> DcShape:
    """Constant source shape."""
    return DcShape(float(level))


def pulse(
    v1: float,
    v2: float,
    delay: float = 0.0,
    rise: float = 10e-12,
    fall: float = 10e-12,
    width: float = 1e-9,
    period: float = 0.0,
) -> PulseShape:
    """SPICE-style pulse shape (single-shot unless ``period`` > 0)."""
    return PulseShape(v1, v2, delay, rise, fall, width, period)


def pwl(points: Sequence[Tuple[float, float]]) -> PwlShape:
    """Piecewise-linear shape from ``(time, value)`` pairs."""
    return PwlShape(tuple((float(t), float(v)) for t, v in points))
