"""Gradient estimation of scalar metrics with respect to parameters.

The gradient importance-sampling flow needs ``∂(metric)/∂(u_i)`` where the
metric comes out of a transient simulation — a classic simulation-in-the-
loop sensitivity problem.  This module provides three estimators with a
shared signature over a black-box callable ``f: R^d -> float``:

* :func:`forward_difference` — d+1 evaluations, first-order accurate;
* :func:`central_difference` — 2d evaluations, second-order accurate (the
  default for MPFP searches, whose line searches are sensitive to gradient
  noise);
* :func:`spsa_gradient` — simultaneous-perturbation stochastic
  approximation, 2 evaluations per repeat regardless of dimension; the
  cheap option the paper's "gradient at SPICE cost" argument rests on when
  d grows past a handful of transistors.

A convenience wrapper perturbs MOSFET ``delta_vth`` attributes on a built
circuit directly, for users working below the u-space abstraction.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "forward_difference",
    "central_difference",
    "spsa_gradient",
    "mosfet_vth_gradient",
]


def forward_difference(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    step: float = 1e-4,
    f0: Optional[float] = None,
) -> np.ndarray:
    """First-order forward-difference gradient.

    ``f0`` may be supplied to reuse an already-computed centre value,
    bringing the cost to exactly ``d`` evaluations.
    """
    x = np.asarray(x, dtype=float)
    if f0 is None:
        f0 = f(x)
    grad = np.zeros_like(x)
    for i in range(x.size):
        xp = x.copy()
        xp[i] += step
        grad[i] = (f(xp) - f0) / step
    return grad


def central_difference(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    step: float = 1e-4,
) -> np.ndarray:
    """Second-order central-difference gradient (2d evaluations)."""
    x = np.asarray(x, dtype=float)
    grad = np.zeros_like(x)
    for i in range(x.size):
        xp = x.copy()
        xm = x.copy()
        xp[i] += step
        xm[i] -= step
        grad[i] = (f(xp) - f(xm)) / (2.0 * step)
    return grad


def spsa_gradient(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    step: float = 1e-3,
    repeats: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Simultaneous-perturbation gradient estimate (2 evals per repeat).

    Each repeat draws a Rademacher direction ``Δ`` and forms the usual
    SPSA estimator ``(f(x+cΔ) - f(x-cΔ)) / (2cΔ_i)``; repeats are
    averaged.  Unbiased to first order for any ``d`` at fixed cost, at the
    price of O(1/sqrt(repeats)) directional noise — which the MPFP line
    search tolerates but the final convergence test should not rely on.
    """
    x = np.asarray(x, dtype=float)
    gen = rng if rng is not None else np.random.default_rng()
    grad = np.zeros_like(x)
    for _ in range(max(1, repeats)):
        delta = gen.choice([-1.0, 1.0], size=x.size)
        fp = f(x + step * delta)
        fm = f(x - step * delta)
        grad += (fp - fm) / (2.0 * step * delta)
    return grad / max(1, repeats)


def mosfet_vth_gradient(
    circuit,
    metric: Callable[[], float],
    device_names: Sequence[str],
    step: float = 1e-3,
    scheme: str = "central",
) -> np.ndarray:
    """Gradient of a circuit metric w.r.t. per-device threshold shifts.

    ``metric`` is a zero-argument callable that re-simulates the *current*
    circuit and returns the scalar of interest; this function perturbs the
    ``delta_vth`` attribute of each named MOSFET around its present value
    and restores it afterwards.

    Parameters
    ----------
    circuit:
        A built :class:`~repro.spice.netlist.Circuit`.
    metric:
        Re-simulating metric evaluator (e.g. a closure over a testbench).
    device_names:
        MOSFET element names, one gradient entry each, in order.
    step:
        Threshold perturbation in volts.
    scheme:
        ``"central"`` or ``"forward"``.
    """
    if scheme not in ("central", "forward"):
        raise ConfigError(f"unknown scheme {scheme!r}")
    devices = [circuit[name] for name in device_names]
    grad = np.zeros(len(devices))
    base = metric() if scheme == "forward" else None
    for i, dev in enumerate(devices):
        original = dev.delta_vth
        try:
            if scheme == "central":
                dev.delta_vth = original + step
                fp = metric()
                dev.delta_vth = original - step
                fm = metric()
                grad[i] = (fp - fm) / (2.0 * step)
            else:
                dev.delta_vth = original + step
                grad[i] = (metric() - base) / step
        finally:
            dev.delta_vth = original
    return grad
