"""Circuit container and node bookkeeping.

A :class:`Circuit` is an ordered collection of named elements wired to
named nodes.  Node names are arbitrary strings; ``"0"`` and ``"gnd"`` are
the ground node.  Indices are assigned in first-mention order, which makes
system assembly deterministic and test output stable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.errors import NetlistError

if TYPE_CHECKING:  # import cycle: elements bind back to the circuit
    from repro.spice.elements import Element

__all__ = ["Circuit", "GROUND", "GROUND_INDEX"]

#: Canonical spellings of the ground node.
GROUND = ("0", "gnd", "GND")

#: Index used internally for the ground node (never a matrix row).
GROUND_INDEX = -1


class Circuit:
    """A flat netlist: named elements connected to named nodes.

    Parameters
    ----------
    title:
        Free-form description used in reprs and error messages.
    """

    def __init__(self, title: str = "untitled"):
        self.title = title
        self._elements: List["Element"] = []
        self._names: Dict[str, int] = {}
        self._node_index: Dict[str, int] = {}
        self._node_names: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def node(self, name: str) -> int:
        """Return the index for node ``name``, creating it if new.

        Ground aliases always map to :data:`GROUND_INDEX`.
        """
        if not name:
            raise NetlistError("node name must be a non-empty string")
        if name in GROUND:
            return GROUND_INDEX
        if name not in self._node_index:
            self._node_index[name] = len(self._node_names)
            self._node_names.append(name)
        return self._node_index[name]

    def add(self, element: "Element") -> "Circuit":
        """Add an element; returns ``self`` for chaining.

        Raises :class:`~repro.errors.NetlistError` on a duplicate element
        name.  The element's node names are resolved to indices here, so
        elements become usable by the solvers immediately.
        """
        if element.name in self._names:
            raise NetlistError(
                f"duplicate element name {element.name!r} in circuit {self.title!r}"
            )
        element.bind(self)
        self._names[element.name] = len(self._elements)
        self._elements.append(element)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def elements(self) -> List["Element"]:
        """Elements in insertion order."""
        return list(self._elements)

    def __getitem__(self, name: str) -> "Element":
        """Look an element up by name."""
        try:
            return self._elements[self._names[name]]
        except KeyError:
            raise NetlistError(f"no element named {name!r} in circuit {self.title!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._names

    @property
    def num_nodes(self) -> int:
        """Number of non-ground nodes (the KCL row count)."""
        return len(self._node_names)

    @property
    def node_names(self) -> List[str]:
        """Non-ground node names in index order."""
        return list(self._node_names)

    def node_name(self, index: int) -> str:
        """Inverse of :meth:`node` for non-ground indices."""
        if index == GROUND_INDEX:
            return "0"
        return self._node_names[index]

    def index_of(self, name: str) -> int:
        """Index of an *existing* node; raises if the node is unknown."""
        if name in GROUND:
            return GROUND_INDEX
        if name not in self._node_index:
            raise NetlistError(f"unknown node {name!r} in circuit {self.title!r}")
        return self._node_index[name]

    def branch_elements(self) -> List["Element"]:
        """Elements that carry an MNA branch-current unknown (voltage sources)."""
        return [e for e in self._elements if getattr(e, "needs_branch", False)]

    def mosfets(self) -> List["Element"]:
        """All MOSFET instances, in insertion order."""
        return [e for e in self._elements if getattr(e, "is_mosfet", False)]

    def __repr__(self) -> str:
        return (
            f"Circuit({self.title!r}, nodes={self.num_nodes}, "
            f"elements={len(self._elements)})"
        )

    def summary(self) -> str:
        """Multi-line human-readable netlist listing (for debugging)."""
        lines = [f"* circuit: {self.title}"]
        for elem in self._elements:
            lines.append(f"  {elem!r}")
        return "\n".join(lines)
