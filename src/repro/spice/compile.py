"""Batched circuit compiler: a :class:`~repro.spice.netlist.Circuit` in,
a fused batched transient kernel out.

PR 2 hand-wired one circuit (the 6T cell) into a fused integrator; this
module makes "batched fused integration" a property of the SPICE layer.
:class:`CompiledTransient` analyses a netlist once and emits everything
the fused inner loop needs, so scenario diversity becomes a *compile
step* instead of a per-circuit rewrite:

* **Node partitioning.**  Nodes pinned by a grounded voltage source
  become *rails* — known, possibly time-varying voltages; the remaining
  nodes are the unknowns the Newton iteration solves for.
* **Terminal-gather index maps.**  Every MOSFET terminal resolves to a
  row of an extended state matrix ``(n_unknown + n_rails + 1, n)``
  (unknowns, rails, ground), so gathering all device voltages is one
  ``np.take`` per terminal per iteration regardless of device count.
* **One stacked device evaluation.**  All devices evaluate in a single
  pass over ``(n_devices, n_samples)`` arrays — a faithful transcription
  of :meth:`repro.spice.mosfet.MosfetModel.ids` (same smooth clamps,
  same epsilons) with the model-card scalars broadcast as per-device
  columns.  ``kernel="reference"`` instead calls ``MosfetModel.ids``
  device by device inside the *same* step loop: the transparent
  cross-check, pinned against the fused path by the test suite.
* **Precomputed assembly, dense or sparse.**  Residual and Jacobian
  contributions are assembled by two precomputed incidence matrices
  (``F += S @ ids``, ``J += (M @ G_stack).reshape(nu, nu, -1)``), not
  per-device Python.  The Jacobian matmul is *quadratic* in the node
  count (``nu²`` rows for a linear number of device stamps) — fine to a
  few dozen unknowns, pure waste beyond.  The ``assembly="sparse"``
  pass (auto-selected above :data:`SPARSE_ASSEMBLY_THRESHOLD` unknowns)
  instead scatters the COO-style device stamps through precomputed
  index *rounds* — each round touches every Jacobian entry at most
  once, so a plain fancy ``out[rows] += src[cols]`` accumulates without
  collisions, and the per-entry accumulation order reproduces the dense
  inner products bit-for-bit (the stamp values are exact ±1, so only
  addition order matters, and rounds apply stamps in the matmul's
  k-ascending order).  The residual matmul is linear in the node count
  and stays shared by both paths, so the sparse pass is bit-equal to
  the dense one, which stays selectable as the permanent cross-check.
* **Structure-exploiting solves.**  Above 4 unknowns the compiler also
  inspects the Jacobian's compile-time sparsity pattern: when it is
  bordered-block-diagonal (a column: leaker pairs touching only the two
  bitlines; a multi-column array slice: per-column cell pairs against a
  border of all bitlines, with the shared mux data lines peeling off as
  their own interior blocks), the fused path solves through a batched
  Schur complement (:class:`_SchurSolver`) — block solves folded onto
  the unrolled eliminations, a border system through :func:`solveN`,
  vectorised back-substitution — instead of the cubic blocked
  elimination.  ``solver="blocked"`` forces the generic elimination
  (the permanent cross-check the benchmarks time the peel against) and
  ``solver="schur"`` makes a non-decomposing pattern a loud compile
  error.  The solver choice is independent of the assembly choice, and
  the reference kernel keeps ``np.linalg.solve`` as the cross-check for
  both.
* **``solveN``.**  Batched dense solves over ``(nu, nu, n)`` stacks:
  fully unrolled closed-form elimination for ``nu <= 4`` (PR 2's
  ``solve4`` generalised down to 1) and blocked in-place elimination
  above, both with a per-pivot magnitude guard that re-solves degenerate
  samples through the row-pivoted ``np.linalg.solve`` — pathological
  matrices lose speed, never accuracy.
* **Linear elements.**  Capacitors (explicit and the MOSFETs' lumped
  terminal caps) build the constant ``C`` matrix; couplings to moving
  rails inject ``C * dV_rail/dt`` per step.  Resistors build a constant
  conductance matrix; resistors to rails contribute a per-step drive
  term (this is how write drivers compile).  Controlled sources and
  current sources are rejected — the compiler targets the fixed-topology
  statistical workloads, and refusing loudly beats integrating wrongly.
* **Observation probes.**  Metric extraction compiles too:
  :class:`CrossProbe` records first rising zero crossings of linear node
  combinations (with optional per-sample offsets — e.g. a per-sample
  sense threshold), :class:`PeakProbe` tracks running maxima past a
  start time, :class:`ValueProbe` snapshots a combination at a grid
  time.  :class:`RetirePolicy` generalises PR 2's sample retirement:
  once a designated probe has recorded its crossing and the retirement
  time has passed, samples are scattered to the output arrays and the
  working set is compacted.

The integration scheme is the one the batched 6T engine established:
backward Euler on a fixed grid, damped active-set Newton with linear
extrapolation warm starts, clamped to the physically reachable band.
Invariants the compiler must keep (see ROADMAP.md): the fused device
math stays a faithful ``MosfetModel.ids`` transcription, the reference
kernel stays available, and retirement never changes metrics — only
aux tails after the retirement point.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import CompileError, LintError, SimulationError
from repro.spice.elements import (
    CurrentSource,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.mosfet import THERMAL_VOLTAGE
from repro.spice.netlist import GROUND_INDEX, Circuit
from repro.spice.sources import DcShape

__all__ = [
    "CompiledTransient",
    "CrossProbe",
    "PeakProbe",
    "ValueProbe",
    "RetirePolicy",
    "transient_grid",
    "solveN",
    "solve4",
    "SPARSE_ASSEMBLY_THRESHOLD",
    "PLAN_FORMAT_VERSION",
]

# Smoothing epsilons — must match MosfetModel.ids exactly.
_EPS_RELU = 1e-3
_EPS_ABS = 5e-3

#: Unknown-node count above which ``assembly="auto"`` switches from the
#: dense incidence matmuls to the scatter-stamp pass.  At or below this
#: the matmuls are small enough that BLAS wins; above it the dense
#: Jacobian assembly is the dominant per-iteration cost (quadratic in
#: the node count for a linear number of stamps).
SPARSE_ASSEMBLY_THRESHOLD = 8

#: Active-sample count below which the sparse pass delegates the
#: Jacobian to the dense matmul.  BLAS switches to gemv-style kernels on
#: very skinny right-hand sides and those reduce the inner dimension in
#: a different order, so the scatter rounds would no longer be
#: bit-equal; at these sizes the matmul costs next to nothing, so
#: delegating keeps the bit-equality guarantee without giving up any of
#: the bulk speedup.
_SPARSE_MIN_BATCH = 16

#: Serialization format version of the compiled-plan state (see
#: :mod:`repro.spice.plan` for the byte container and the cache built on
#: top).  Bump this on ANY change to the attribute set
#: :meth:`CompiledTransient.__getstate__` emits or to how
#: :meth:`CompiledTransient.__setstate__` rebuilds the derived tables —
#: a payload carrying a stale version is refused with diagnostic
#: ``P008`` (and treated as a plain cache miss by the plan cache), never
#: silently reinterpreted.
PLAN_FORMAT_VERSION = 1


def _scatter_rounds(mat: np.ndarray):
    """Decompose an incidence matrix into collision-free scatter rounds.

    ``mat`` is a stamp matrix with entries in ``{0, +1, -1}`` (the
    compiler's ``S`` and ``M`` matrices are built that way: each
    (entry, column) pair is stamped at most once, and a +1/-1 collision
    cancels to an exact 0 which ``np.nonzero`` drops).  The result is a
    list of rounds ``(rows_pos, cols_pos, rows_neg, cols_neg)``: round
    ``r`` holds the ``r``-th nonzero (in ascending column order) of each
    row, so within a round every target row is unique and a buffered
    fancy ``out[rows] += src[cols]`` is collision-free.  Applying the
    rounds in order accumulates each output entry in ascending-column
    order — the same order the BLAS matmul kernels reduce the inner
    dimension, which is what makes the sparse pass bit-equal to the
    dense one (stamp determinism; the ±1 products are exact, so only
    addition order can differ, and it does not).
    """
    rows, cols = np.nonzero(mat)
    vals = mat[rows, cols]
    if not np.all(np.abs(vals) == 1.0):
        raise SimulationError(
            "scatter assembly requires pure ±1 stamps; got values "
            f"{sorted(set(vals.tolist()))}"
        )
    rounds = []
    if rows.size == 0:
        return rounds
    # np.nonzero returns row-major order: within each row, columns ascend.
    first = np.r_[0, np.flatnonzero(np.diff(rows)) + 1]
    counts = np.diff(np.r_[first, rows.size])
    rank = np.arange(rows.size) - np.repeat(first, counts)
    for r in range(int(rank.max()) + 1):
        sel = rank == r
        rr, cc, vv = rows[sel], cols[sel], vals[sel]
        pos = vv > 0
        rounds.append((rr[pos], cc[pos], rr[~pos], cc[~pos]))
    return rounds


def _incidence_matrices(
    d_idx: np.ndarray,
    g_idx: np.ndarray,
    s_idx: np.ndarray,
    b_idx: np.ndarray,
    nu: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Current/Jacobian incidence matrices from the terminal index maps.

    ``S[node, dev]`` stamps device currents into the residual
    (``F += S @ ids``); ``M[nu*row + col, kind*n_dev + dev]`` stamps the
    four conductances into the flattened Jacobian (``J += M @ G_stack``
    with ``G_stack`` rows ``[gm, gds, gms, gmb]`` per device).  Both are
    pure functions of the four terminal-row arrays and the unknown
    count, which is why compilation and plan restore
    (:meth:`CompiledTransient.__setstate__`) share this builder: a
    deserialized plan rebuilds them bit-identically instead of shipping
    the dense ``nu² x 4·n_dev`` stamp matrix (~235 MB at array-slice
    scale).  The plan audit's ``P004`` check replays the same stamping
    loop entry for entry.
    """
    n_dev = int(d_idx.size)
    s_mat = np.zeros((nu, n_dev))
    m_mat = np.zeros((nu * nu, 4 * n_dev))
    for k in range(n_dev):
        rd, rg, rs, rb = int(d_idx[k]), int(g_idx[k]), int(s_idx[k]), int(b_idx[k])
        if rd < nu:
            s_mat[rd, k] += 1.0
        if rs < nu:
            s_mat[rs, k] -= 1.0
        for g_kind, rt in enumerate((rg, rd, rs, rb)):  # gm, gds, gms, gmb
            if rt >= nu:
                continue                # rail/ground: fixed voltage
            if rd < nu:
                m_mat[rd * nu + rt, g_kind * n_dev + k] += 1.0
            if rs < nu:
                m_mat[rs * nu + rt, g_kind * n_dev + k] -= 1.0
    return s_mat, m_mat


# ----------------------------------------------------------------------
# Batched dense solvers
# ----------------------------------------------------------------------

def _lapack_rescue(a: np.ndarray, b: np.ndarray, x: np.ndarray, bad: np.ndarray) -> None:
    """Re-solve the ``bad`` samples of ``a x = b`` through ``np.linalg.solve``.

    ``a`` is the *original* ``(nu, nu, m)`` stack (the elimination works on
    copies), ``b`` the original right-hand sides; results overwrite the
    corresponding columns of ``x`` in place.
    """
    idx = np.flatnonzero(bad)
    sub_a = np.ascontiguousarray(a[:, :, idx].transpose(2, 0, 1))
    sub_b = np.ascontiguousarray(b[:, idx].T)[..., None]
    x[:, idx] = np.linalg.solve(sub_a, sub_b)[..., 0].T


def solve1(a: np.ndarray, b: np.ndarray, min_pivot: float = 1e-18) -> np.ndarray:
    """Trivial 1x1 stack solve with the same pivot guard as its siblings."""
    a00 = a[0, 0]
    bad = np.abs(a00) < min_pivot
    if bad.any():
        a00 = np.where(bad, 1.0, a00)
    x = (b[0] / a00)[None, :].copy()
    if bad.any():
        _lapack_rescue(a, b, x, bad)
    return x


def solve2(a: np.ndarray, b: np.ndarray, min_pivot: float = 1e-18) -> np.ndarray:
    """Unrolled 2x2 stack solve (see :func:`solve4` for the contract)."""
    a00, a01 = a[0]
    a10, a11 = a[1]
    b0, b1 = b

    bad = np.abs(a00) < min_pivot
    if bad.any():
        a00 = np.where(bad, 1.0, a00)
    p0 = 1.0 / a00
    f1 = a10 * p0
    a11 = a11 - f1 * a01
    b1 = b1 - f1 * b0
    bad1 = np.abs(a11) < min_pivot
    if bad1.any():
        a11 = np.where(bad1, 1.0, a11)
        bad |= bad1
    x1 = b1 / a11
    x0 = (b0 - a01 * x1) * p0
    x = np.stack([x0, x1])
    if bad.any():
        _lapack_rescue(a, b, x, bad)
    return x


def solve3(a: np.ndarray, b: np.ndarray, min_pivot: float = 1e-18) -> np.ndarray:
    """Unrolled 3x3 stack solve (see :func:`solve4` for the contract)."""
    a00, a01, a02 = a[0]
    a10, a11, a12 = a[1]
    a20, a21, a22 = a[2]
    b0, b1, b2 = b

    bad = np.abs(a00) < min_pivot
    if bad.any():
        a00 = np.where(bad, 1.0, a00)
    p0 = 1.0 / a00
    f1 = a10 * p0
    f2 = a20 * p0
    a11 = a11 - f1 * a01
    a12 = a12 - f1 * a02
    b1 = b1 - f1 * b0
    a21 = a21 - f2 * a01
    a22 = a22 - f2 * a02
    b2 = b2 - f2 * b0

    bad1 = np.abs(a11) < min_pivot
    if bad1.any():
        a11 = np.where(bad1, 1.0, a11)
        bad |= bad1
    p1 = 1.0 / a11
    f2 = a21 * p1
    a22 = a22 - f2 * a12
    b2 = b2 - f2 * b1

    bad2 = np.abs(a22) < min_pivot
    if bad2.any():
        a22 = np.where(bad2, 1.0, a22)
        bad |= bad2
    x2 = b2 / a22
    x1 = (b1 - a12 * x2) * p1
    x0 = (b0 - a01 * x1 - a02 * x2) * p0
    x = np.stack([x0, x1, x2])
    if bad.any():
        _lapack_rescue(a, b, x, bad)
    return x


def solve4(a: np.ndarray, b: np.ndarray, min_pivot: float = 1e-18) -> np.ndarray:
    """Solve ``a[:, :, i] @ x[:, i] = b[:, i]`` for a stack of 4x4 systems.

    ``a`` has shape ``(4, 4, n)`` and ``b`` shape ``(4, n)``; returns ``x``
    of shape ``(4, n)``.  Inputs are not modified.

    The elimination is fully unrolled (closed-form) and runs in natural
    pivot order, which for the diagonally dominant Newton Jacobians
    ``C/h + G`` is exactly what partial pivoting would choose.  Samples
    whose pivot magnitude drops below ``min_pivot`` (cancellation-level
    for conductance-scale entries) are re-solved through the row-pivoted
    ``np.linalg.solve``, so pathological matrices lose speed, never
    accuracy.
    """
    a00, a01, a02, a03 = a[0]
    a10, a11, a12, a13 = a[1]
    a20, a21, a22, a23 = a[2]
    a30, a31, a32, a33 = a[3]
    b0, b1, b2, b3 = b

    bad = np.abs(a00) < min_pivot
    if bad.any():
        # Keep the guarded samples finite through the closed-form pass
        # (they are re-solved below); avoids divide-by-zero noise.
        a00 = np.where(bad, 1.0, a00)
    p0 = 1.0 / a00
    f1 = a10 * p0
    f2 = a20 * p0
    f3 = a30 * p0
    a11 = a11 - f1 * a01
    a12 = a12 - f1 * a02
    a13 = a13 - f1 * a03
    b1 = b1 - f1 * b0
    a21 = a21 - f2 * a01
    a22 = a22 - f2 * a02
    a23 = a23 - f2 * a03
    b2 = b2 - f2 * b0
    a31 = a31 - f3 * a01
    a32 = a32 - f3 * a02
    a33 = a33 - f3 * a03
    b3 = b3 - f3 * b0

    bad1 = np.abs(a11) < min_pivot
    if bad1.any():
        a11 = np.where(bad1, 1.0, a11)
        bad |= bad1
    p1 = 1.0 / a11
    f2 = a21 * p1
    f3 = a31 * p1
    a22 = a22 - f2 * a12
    a23 = a23 - f2 * a13
    b2 = b2 - f2 * b1
    a32 = a32 - f3 * a12
    a33 = a33 - f3 * a13
    b3 = b3 - f3 * b1

    bad2 = np.abs(a22) < min_pivot
    if bad2.any():
        a22 = np.where(bad2, 1.0, a22)
        bad |= bad2
    p2 = 1.0 / a22
    f3 = a32 * p2
    a33 = a33 - f3 * a23
    b3 = b3 - f3 * b2
    bad3 = np.abs(a33) < min_pivot
    if bad3.any():
        a33 = np.where(bad3, 1.0, a33)
        bad |= bad3

    x3 = b3 / a33
    x2 = (b2 - a23 * x3) * p2
    x1 = (b1 - a12 * x2 - a13 * x3) * p1
    x0 = (b0 - a01 * x1 - a02 * x2 - a03 * x3) * p0
    x = np.stack([x0, x1, x2, x3])

    if bad.any():
        _lapack_rescue(a, b, x, bad)
    return x


def _solve_blocked(a: np.ndarray, b: np.ndarray, min_pivot: float) -> np.ndarray:
    """Blocked in-place Gaussian elimination for ``(n, n, m)`` stacks, n > 4.

    One vectorised rank-1 update per pivot (O(n) numpy calls total, every
    call elementwise over the full sample axis), natural pivot order with
    the shared pivot guard.
    """
    n = a.shape[0]
    aw = a.copy()
    bw = b.copy()
    bad = np.zeros(a.shape[2], dtype=bool)
    for k in range(n):
        piv = aw[k, k]
        bk = np.abs(piv) < min_pivot
        if bk.any():
            piv = np.where(bk, 1.0, piv)
            aw[k, k] = piv
            bad |= bk
        if k + 1 < n:
            f = aw[k + 1:, k] / piv
            aw[k + 1:, k + 1:] -= f[:, None, :] * aw[k, k + 1:][None, :, :]
            bw[k + 1:] -= f * bw[k]
    x = np.empty_like(bw)
    for k in range(n - 1, -1, -1):
        acc = bw[k]
        if k + 1 < n:
            acc = acc - (aw[k, k + 1:] * x[k + 1:]).sum(axis=0)
        x[k] = acc / aw[k, k]
    if bad.any():
        _lapack_rescue(a, b, x, bad)
    return x


_UNROLLED_SOLVERS = {1: solve1, 2: solve2, 3: solve3, 4: solve4}

#: Caps for the compile-time Schur decomposition.  Interior blocks must
#: fold onto the unrolled solvers; the border system goes through
#: :func:`solveN`, so it may exceed 4 unknowns (blocked elimination) —
#: the cap on the border is *relative* to the circuit size, because the
#: Schur path only pays off while the border stays a small fraction of
#: the node count (a multi-column array slice peels per-column cell
#: pairs against a border of all bitlines: 2 per column).
_SCHUR_MAX_BLOCK = 4
_SCHUR_MIN_BORDER_CAP = 4


def _schur_border_cap(nu: int) -> int:
    """Largest border the Schur decomposition is allowed to accumulate.

    ``nu // 4`` keeps the border solve (cubic in the border size)
    negligible next to the peeled interior work, with an absolute floor
    of :data:`_SCHUR_MIN_BORDER_CAP` so small circuits keep the exact
    behaviour the column compiled to before the cap was generalised.
    """
    return max(_SCHUR_MIN_BORDER_CAP, nu // 4)


class _SchurSolver:
    """Structure-exploiting batched solve for bordered-block-diagonal systems.

    Large compiled circuits are rarely dense: a column's leaker cells
    couple only to their partner node and the two bitlines, so after
    removing a small *border* set (the bitlines) the Jacobian graph falls
    apart into tiny independent blocks.  This solver finds that structure
    once at compile time — a greedy peel: while some connected component
    of the non-border graph exceeds :data:`_SCHUR_MAX_BLOCK` nodes, move
    its highest-degree node into the border (deterministic, ties broken
    by node index) — and then solves every batch through the Schur
    complement: block solves folded over (block, rhs, sample) onto the
    unrolled :func:`solveN` kernels, a border system through
    :func:`solveN` (unrolled to 4 unknowns, blocked elimination above —
    a multi-column array's border is every bitline, two per column),
    and a vectorised back-substitution.  Cost is linear in the node
    count instead of cubic, and every path keeps the pivot guard with
    the LAPACK rescue.

    Construction raises :class:`SimulationError` when the pattern does
    not decompose within the border cap (:func:`_schur_border_cap` —
    relative to the node count, so bigger circuits may peel bigger
    borders while dense patterns still refuse); callers fall back to
    the generic blocked elimination.
    """

    def __init__(self, pattern: np.ndarray, min_pivot: float):
        nu = pattern.shape[0]
        adj = (pattern | pattern.T)
        np.fill_diagonal(adj, False)
        degree = adj.sum(axis=1)
        border_cap = _schur_border_cap(nu)

        border: List[int] = []
        while True:
            comps = self._components(adj, border)
            big = [c for c in comps if len(c) > _SCHUR_MAX_BLOCK]
            if not big:
                break
            if len(border) >= border_cap:
                raise CompileError(
                    "schur: pattern does not decompose within the border cap",
                    code="P003",
                )
            cand = np.concatenate(big)
            border.append(int(cand[np.argmax(degree[cand])]))
        if not comps or not border:
            # Fully decoupled or trivially small systems are not worth a
            # dedicated path; the generic solver handles them.
            raise CompileError("schur: no bordered structure to exploit", code="P003")

        self.min_pivot = float(min_pivot)
        self.h = np.array(sorted(border), dtype=int)
        groups: Dict[int, List[np.ndarray]] = {}
        for comp in comps:
            groups.setdefault(len(comp), []).append(np.sort(comp))
        # Deterministic group order: by block size, blocks by first node.
        self.groups = []
        for s in sorted(groups):
            nodes = np.stack(sorted(groups[s], key=lambda c: int(c[0])))
            self.groups.append((s, nodes))

    @staticmethod
    def _components(adj: np.ndarray, border: List[int]) -> List[np.ndarray]:
        nu = adj.shape[0]
        alive = np.ones(nu, dtype=bool)
        alive[list(border)] = False
        seen = np.zeros(nu, dtype=bool)
        comps = []
        for start in range(nu):
            if not alive[start] or seen[start]:
                continue
            comp = [start]
            seen[start] = True
            stack = [start]
            while stack:
                node = stack.pop()
                for nb in np.flatnonzero(adj[node] & alive & ~seen):
                    seen[nb] = True
                    comp.append(int(nb))
                    stack.append(int(nb))
            comps.append(np.array(sorted(comp), dtype=int))
        return comps

    def solve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Solve ``a[:, :, i] @ x[:, i] = b[:, i]`` through the Schur path."""
        h_idx = self.h
        h = h_idx.size
        m = a.shape[2]
        min_pivot = self.min_pivot
        x = np.empty_like(b)

        b_h = b[h_idx].copy()
        schur = a[h_idx[:, None], h_idx[None, :]].copy()     # (h, h, m)
        saved = []
        for s, nodes in self.groups:
            nc = nodes.shape[0]
            d_blk = a[nodes[:, :, None], nodes[:, None, :]]   # (nc, s, s, m)
            c_blk = a[nodes[:, :, None], h_idx[None, None, :]]  # (nc, s, h, m)
            r_blk = a[h_idx[None, :, None], nodes[:, None, :]]  # (nc, h, s, m)
            b_d = b[nodes]                                    # (nc, s, m)

            # Solve D z = [b_D | C] with the rhs axis folded into the
            # sample axis: (s, s, nc * (1 + h) * m) hits the unrolled
            # closed-form eliminations for s <= 4.
            r = 1 + h
            rhs = np.concatenate([b_d[:, :, None, :], c_blk], axis=2)
            rhs_f = np.ascontiguousarray(
                rhs.transpose(1, 0, 2, 3)
            ).reshape(s, nc * r * m)
            d_f = np.ascontiguousarray(
                np.broadcast_to(
                    d_blk.transpose(1, 2, 0, 3)[:, :, :, None, :],
                    (s, s, nc, r, m),
                )
            ).reshape(s, s, nc * r * m)
            z = solveN(d_f, rhs_f, min_pivot).reshape(s, nc, r, m)
            z_b = z[:, :, 0, :]                               # (s, nc, m)
            z_c = z[:, :, 1:, :]                              # (s, nc, h, m)

            schur -= np.einsum("npsm,snqm->pqm", r_blk, z_c)
            b_h -= np.einsum("npsm,snm->pm", r_blk, z_b)
            saved.append((nodes, z_b, z_c))

        x_h = solveN(schur, b_h, min_pivot)
        x[h_idx] = x_h
        for nodes, z_b, z_c in saved:
            x_d = z_b - np.einsum("snpm,pm->snm", z_c, x_h)
            x[nodes] = x_d.transpose(1, 0, 2)
        return x


def solveN(a: np.ndarray, b: np.ndarray, min_pivot: float = 1e-18) -> np.ndarray:
    """Batched dense solve of ``a[:, :, i] @ x[:, i] = b[:, i]``.

    ``a`` is ``(n, n, m)``, ``b`` is ``(n, m)``; returns ``(n, m)``.
    Dispatches to the fully unrolled closed-form eliminations for
    ``n <= 4`` and to blocked elimination above; every path carries the
    per-pivot guard with the ``np.linalg.solve`` rescue.
    """
    n = a.shape[0]
    if a.shape[1] != n or b.shape[0] != n:
        raise SimulationError(
            f"solveN: shape mismatch a={a.shape}, b={b.shape}"
        )
    solver = _UNROLLED_SOLVERS.get(n)
    if solver is not None:
        return solver(a, b, min_pivot)
    return _solve_blocked(a, b, min_pivot)


# ----------------------------------------------------------------------
# Observation probes and retirement policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CrossProbe:
    """First rising zero crossing of ``sum_k coeffs[k] * v_k + offset``.

    ``coeffs`` maps unknown-node names to coefficients; ``offset`` is the
    default additive constant (a per-sample array can be supplied at run
    time through ``probe_offsets``).  The crossing time uses the same
    linear interpolation inside the step as the batched 6T engine; a
    sample that never crosses reports ``nan``.
    """

    name: str
    coeffs: Mapping[str, float]
    offset: float = 0.0


@dataclass(frozen=True)
class PeakProbe:
    """Running maximum of one unknown node for ``t >= t_from``."""

    name: str
    node: str
    t_from: float = 0.0


@dataclass(frozen=True)
class ValueProbe:
    """Snapshot of ``sum_k coeffs[k] * v_k + offset`` at the first grid
    point with ``t >= t``.  Incompatible with retirement (a retired
    sample has no state to snapshot); the run rejects the combination."""

    name: str
    coeffs: Mapping[str, float]
    t: float
    offset: float = 0.0


@dataclass(frozen=True)
class RetirePolicy:
    """When and how samples leave the working set.

    A sample retires once the :class:`CrossProbe` named ``probe`` has
    recorded its crossing and the grid time has passed ``after``;
    compaction triggers only when at least ``max(min_count,
    m // frac_divisor)`` samples are retireable, so the bookkeeping cost
    never exceeds its savings.  Retired samples keep the peak/final
    values they had at retirement — callers must only retire once those
    are provably settled (the 6T read retires after the wordline has
    fully fallen).
    """

    probe: str
    after: float
    min_count: int = 16
    frac_divisor: int = 8


def transient_grid(
    t_stop: float,
    breakpoints: Sequence[float] = (),
    n_steps: int = 400,
) -> np.ndarray:
    """Fixed integration grid over ``[0, t_stop]`` landing on breakpoints.

    Segment point counts blend the segment's share of the total span with
    an equal share per segment, so sharp source corners (short segments)
    keep enough density to resolve their transients while long flat
    tails do not starve.  Deterministic for a given breakpoint set.
    """
    if t_stop <= 0:
        raise SimulationError(f"t_stop must be positive, got {t_stop!r}")
    edges = sorted({0.0, float(t_stop)}
                   | {float(b) for b in breakpoints if 0.0 < float(b) < t_stop})
    segs = list(zip(edges, edges[1:]))
    pieces = []
    for a, b in segs:
        w = 0.5 * ((b - a) / t_stop) + 0.5 / len(segs)
        k = max(8, int(round(n_steps * w)))
        pieces.append(np.linspace(a, b, k, endpoint=False))
    pieces.append(np.array([t_stop]))
    return np.unique(np.concatenate(pieces))


# ----------------------------------------------------------------------
# The compiler
# ----------------------------------------------------------------------

class CompiledTransient:
    """A circuit compiled into a batched fixed-grid transient kernel.

    Parameters
    ----------
    circuit:
        The netlist.  Supported elements: MOSFETs, capacitors, resistors
        and grounded voltage sources (which define the rails).  Anything
        else raises :class:`~repro.errors.SimulationError`.
    grid:
        Integration grid (monotonic, starting at the initial time).  Use
        :func:`transient_grid` to build one from the source breakpoints,
        or pass an engine's own grid for bit-compatible integration.
    probes:
        Observation probes evaluated inside the step loop.
    kernel:
        ``"fast"`` — the fused stacked device evaluation with
        :func:`solveN`; ``"reference"`` — per-device
        :meth:`MosfetModel.ids` calls and ``np.linalg.solve`` inside the
        same step loop (slower, maximally transparent).
    assembly:
        ``"dense"`` — residual/Jacobian assembly through the incidence
        matmuls; ``"sparse"`` — precomputed scatter-stamp rounds,
        bit-equal to the dense pass but linear (not quadratic) in the
        node count; ``"auto"`` (default) — sparse above
        :data:`SPARSE_ASSEMBLY_THRESHOLD` unknowns, dense at or below.
        The resolved choice is exposed as :attr:`assembly`.
    solver:
        Linear-solver policy of the fused path.  ``"auto"`` (default) —
        use the compile-time Schur decomposition when the Jacobian
        pattern is bordered-block-diagonal, the generic guarded
        elimination otherwise; ``"blocked"`` — always the generic
        :func:`solveN` path (unrolled to 4 unknowns, blocked elimination
        above: the permanent cross-check for the structured solve);
        ``"schur"`` — require the Schur decomposition, raising when the
        pattern does not decompose.  The resolved choice is exposed as
        :attr:`solver` (``"schur"`` or ``"blocked"``); the reference
        kernel always keeps the row-pivoted ``np.linalg.solve``.
    newton_max_iter / newton_tol / max_step / min_pivot:
        Damped-Newton controls (defaults match the batched 6T engine).
    clip:
        ``(lo, hi)`` clamp band for Newton updates; ``None`` derives it
        from the rail voltage range over the grid (±0.4 V), matching the
        6T engine's physically-reachable-band clamp.  Warm-start
        extrapolations are clipped to the band widened by 0.1 V.
    strict:
        Run :func:`repro.spice.diagnostics.lint_circuit` over the
        circuit and probes before compiling and raise
        :class:`~repro.errors.LintError` (with every finding attached)
        when the linter reports error-severity diagnostics.  The
        default (``False``) keeps the compiler's own first-failure
        rejections, which raise :class:`~repro.errors.CompileError`
        carrying the matching diagnostic code.

    Construction snapshots the circuit; mutating element attributes
    afterwards (e.g. ``delta_vth``) does not affect compiled runs — the
    varied parameters are per-run inputs instead.
    """

    def __init__(
        self,
        circuit: Circuit,
        grid: np.ndarray,
        probes: Sequence[object] = (),
        kernel: str = "fast",
        assembly: str = "auto",
        solver: str = "auto",
        newton_max_iter: int = 40,
        newton_tol: float = 5e-8,
        max_step: float = 0.4,
        min_pivot: float = 1e-18,
        clip: Optional[Tuple[float, float]] = None,
        strict: bool = False,
    ):
        if kernel not in ("fast", "reference"):
            raise CompileError(
                f"kernel must be 'fast' or 'reference', got {kernel!r}"
            )
        if assembly not in ("auto", "dense", "sparse"):
            raise CompileError(
                f"assembly must be 'auto', 'dense' or 'sparse', got {assembly!r}"
            )
        if solver not in ("auto", "schur", "blocked"):
            raise CompileError(
                f"solver must be 'auto', 'schur' or 'blocked', got {solver!r}"
            )
        if strict:
            from repro.spice.diagnostics import (
                format_diagnostics,
                lint_circuit,
                lint_errors,
            )

            diags = lint_circuit(circuit, probes)
            errors = lint_errors(diags)
            if errors:
                raise LintError(
                    f"strict compile of {circuit.title!r}: the netlist "
                    "linter found errors:\n" + format_diagnostics(errors),
                    code=errors[0].code,
                    diagnostics=diags,
                )
        self._solver_choice = solver
        self.circuit = circuit
        self.kernel = kernel
        self.newton_max_iter = int(newton_max_iter)
        self.newton_tol = float(newton_tol)
        self.max_step = float(max_step)
        self.min_pivot = float(min_pivot)
        self.grid = np.asarray(grid, dtype=float)
        if self.grid.ndim != 1 or self.grid.size < 2 or np.any(np.diff(self.grid) <= 0):
            raise SimulationError("grid must be a strictly increasing 1-D array")

        self._partition_nodes()
        if assembly == "auto":
            assembly = (
                "sparse" if self.n_unknowns > SPARSE_ASSEMBLY_THRESHOLD
                else "dense"
            )
        self.assembly = assembly
        self._build_linear_tables()
        self._build_device_tables()
        self._build_solver()
        self._build_plan()
        if clip is None:
            lo = min(0.0, float(self._rail_vals.min())) - 0.4
            hi = max(0.0, float(self._rail_vals.max())) + 0.4
        else:
            lo, hi = float(clip[0]), float(clip[1])
        self.clip = (lo, hi)
        self._extrap_clip = (lo - 0.1, hi + 0.1)
        self._compile_probes(probes)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _partition_nodes(self) -> None:
        """Split circuit nodes into rails (source-driven) and unknowns."""
        c = self.circuit
        rail_shape: Dict[int, object] = {}
        for elem in c.elements:
            if isinstance(elem, VoltageSource):
                np_, nm = elem.nodes
                if nm != GROUND_INDEX:
                    raise CompileError(
                        f"compile: voltage source {elem.name!r} must be "
                        "grounded (floating sources are not supported)",
                        code="N005",
                    )
                if np_ == GROUND_INDEX:
                    raise CompileError(
                        f"compile: voltage source {elem.name!r} drives ground",
                        code="N005",
                    )
                if np_ in rail_shape:
                    raise CompileError(
                        f"compile: node {c.node_name(np_)!r} driven by more "
                        "than one voltage source",
                        code="N006",
                    )
                rail_shape[np_] = elem.shape
            elif isinstance(elem, (Mosfet, Resistor)) or elem.caps():
                # MOSFETs, resistors and anything purely capacitive.
                continue
            else:
                if isinstance(elem, (Vcvs, Vccs)):
                    code = "N003"
                elif isinstance(elem, CurrentSource):
                    code = "N004"
                else:
                    code = "N011"
                raise CompileError(
                    f"compile: unsupported element {type(elem).__name__} "
                    f"({elem.name!r}); the batched compiler handles MOSFETs, "
                    "capacitors, resistors and grounded voltage sources",
                    code=code,
                )

        self._rail_nodes = sorted(rail_shape)           # circuit node indices
        self._rail_shapes = [rail_shape[i] for i in self._rail_nodes]
        self.rail_names = [c.node_name(i) for i in self._rail_nodes]
        self.node_names: List[str] = [
            c.node_name(i) for i in range(c.num_nodes) if i not in rail_shape
        ]
        self.n_unknowns = len(self.node_names)
        if self.n_unknowns == 0:
            raise CompileError("compile: circuit has no unknown nodes", code="N014")

        # circuit node index -> extended-state row.
        nu, nr = self.n_unknowns, len(self._rail_nodes)
        self._ground_row = nu + nr
        self._n_ext = nu + nr + 1
        row: Dict[int, int] = {GROUND_INDEX: self._ground_row}
        u = 0
        for i in range(c.num_nodes):
            if i in rail_shape:
                row[i] = nu + self._rail_nodes.index(i)
            else:
                row[i] = u
                u += 1
        self._row_of_node = row
        self._unknown_index = {
            name: k for k, name in enumerate(self.node_names)
        }

    def _build_linear_tables(self) -> None:
        """Constant C and G matrices plus rail-coupling vectors."""
        nu = self.n_unknowns
        nr = len(self._rail_nodes)
        row = self._row_of_node
        cmat = np.zeros((nu, nu))
        cap_rail = np.zeros((nu, nr))       # C coupling to each rail
        gmat = np.zeros((nu, nu))
        g_rail = np.zeros((nu, nr))         # conductance into each rail

        def is_unknown(r: int) -> bool:
            return r < nu

        def rail_col(r: int) -> Optional[int]:
            if nu <= r < nu + nr:
                return r - nu
            return None                     # ground

        for elem in self.circuit.elements:
            for na, nb, c in elem.caps():
                ra, rb = row[na], row[nb]
                au, bu = is_unknown(ra), is_unknown(rb)
                if au and bu:
                    cmat[ra, ra] += c
                    cmat[rb, rb] += c
                    cmat[ra, rb] -= c
                    cmat[rb, ra] -= c
                elif au:
                    cmat[ra, ra] += c
                    k = rail_col(rb)
                    if k is not None:
                        cap_rail[ra, k] += c
                elif bu:
                    cmat[rb, rb] += c
                    k = rail_col(ra)
                    if k is not None:
                        cap_rail[rb, k] += c
            if isinstance(elem, Resistor):
                g = 1.0 / elem.resistance
                ra, rb = row[elem.nodes[0]], row[elem.nodes[1]]
                au, bu = is_unknown(ra), is_unknown(rb)
                if au and bu:
                    gmat[ra, ra] += g
                    gmat[rb, rb] += g
                    gmat[ra, rb] -= g
                    gmat[rb, ra] -= g
                elif au:
                    gmat[ra, ra] += g
                    k = rail_col(rb)
                    if k is not None:
                        g_rail[ra, k] += g
                elif bu:
                    gmat[rb, rb] += g
                    k = rail_col(ra)
                    if k is not None:
                        g_rail[rb, k] += g

        self.cmat = cmat
        self._cap_rail = cap_rail
        self._gmat = gmat
        self._g_rail = g_rail
        self._has_g = bool(np.any(gmat != 0.0) or np.any(g_rail != 0.0))
        # Diagonal-conductance fast path: every conductance sits on the
        # diagonal (resistors to rails/ground only) — the common testbench
        # case, and the one the hand-written 6T write path used.
        self._g_is_diag = self._has_g and not np.any(
            gmat[~np.eye(nu, dtype=bool)] != 0.0
        )

    def _build_device_tables(self) -> None:
        """Per-device parameter columns and wiring index/incidence maps."""
        mosfets = self.circuit.mosfets()
        self.device_names = [m.name for m in mosfets]
        self._device_index = {n: k for k, n in enumerate(self.device_names)}
        n_dev = len(mosfets)
        self.n_devices = n_dev
        if n_dev == 0:
            raise CompileError("compile: circuit has no MOSFETs", code="N013")
        nu = self.n_unknowns
        row = self._row_of_node

        def col(values):
            return np.asarray(values, dtype=float)[:, None]  # (n_dev, 1)

        self._device_cards = [(m.model, m.w, m.l) for m in mosfets]
        self._p = col([float(m.model.polarity) for m in mosfets])
        self._vto = col([m.model.vto for m in mosfets])
        self._gamma = col([m.model.gamma for m in mosfets])
        self._n_slope = col([m.model.n_slope for m in mosfets])
        self._lam = col([m.model.lambda_clm for m in mosfets])
        self._beta0 = col([m.model.kp * (m.w / m.l) for m in mosfets])
        phi = np.asarray([m.model.phi for m in mosfets])
        gamma = np.asarray([m.model.gamma for m in mosfets])
        k_half = np.sqrt(phi) + 0.5 * gamma
        self._k_half = col(k_half)
        self._k_half_sq = self._k_half * self._k_half
        ut = THERMAL_VOLTAGE
        self._inv_2nut = 1.0 / (2.0 * self._n_slope * ut)
        self._inv_nut = 1.0 / (self._n_slope * ut)
        self._ispec_coeff = 2.0 * self._n_slope * ut * ut  # times beta -> i_spec

        d_idx, g_idx, s_idx, b_idx = [], [], [], []
        for m in mosfets:
            nd, ng, ns, nb = m.nodes
            d_idx.append(row[nd])
            g_idx.append(row[ng])
            s_idx.append(row[ns])
            b_idx.append(row[nb])
        self._d_idx = np.asarray(d_idx)
        self._g_idx = np.asarray(g_idx)
        self._s_idx = np.asarray(s_idx)
        self._b_idx = np.asarray(b_idx)

        # Current incidence: F_dev = S @ ids, S[node, dev] in {+1, -1, 0};
        # Jacobian stamps through M (see _incidence_matrices — shared
        # with plan restore, which rebuilds both from the index maps).
        self._s_mat, self._m_mat = _incidence_matrices(
            self._d_idx, self._g_idx, self._s_idx, self._b_idx, nu
        )
        # The sparse pass scatters only the Jacobian: its dense assembly
        # is quadratic in the node count (nu² rows against 4·n_dev
        # columns), while the residual matmul is linear (nu rows) — not
        # worth trading the exact-op bit-equality for.
        self._jac_rounds = (
            _scatter_rounds(self._m_mat) if self.assembly == "sparse" else None
        )

    def _build_solver(self) -> None:
        """Pick the batched solver for the fused path.

        At or below 4 unknowns the fully unrolled eliminations are
        unbeatable.  Above, try the Schur decomposition on the Jacobian's
        compile-time sparsity pattern (linear elements plus device
        stamps); when the pattern does not decompose, the generic
        blocked elimination in :func:`solveN` remains the fallback.  The
        ``solver=`` argument overrides the policy: ``"blocked"`` skips
        the Schur analysis entirely (the cross-check the smoke benchmark
        times the structured solve against), ``"schur"`` makes a
        non-decomposing pattern a compile error instead of a silent
        fallback.  The choice is per-compile and independent of the
        assembly pass, so ``assembly="sparse"`` and ``assembly="dense"``
        always run the identical solver on identical inputs.  The
        reference kernel keeps its row-pivoted ``np.linalg.solve``
        either way — it stays the cross-check for the structured solve
        too.
        """
        self._schur = None
        self.solver = "blocked"
        nu = self.n_unknowns
        if self._solver_choice == "blocked":
            return
        if nu <= 4:
            if self._solver_choice == "schur":
                raise CompileError(
                    "compile: solver='schur' needs more than 4 unknowns "
                    f"(got {nu}); the unrolled eliminations already cover "
                    "this size",
                    code="P003",
                )
            return
        pattern = (self.cmat != 0.0) | (self._gmat != 0.0)
        entries = np.unique(np.nonzero(self._m_mat)[0])
        pattern[entries // nu, entries % nu] = True
        np.fill_diagonal(pattern, True)
        try:
            self._schur = _SchurSolver(pattern, self.min_pivot)
        except SimulationError:
            if self._solver_choice == "schur":
                raise
            self._schur = None
        if self._schur is not None:
            self.solver = "schur"

    def _build_plan(self) -> None:
        """Per-step constant tables over the fixed grid."""
        self._eval_rail_waveforms()
        self._build_plan_tables()

    def _eval_rail_waveforms(self) -> None:
        """Rail voltages over the grid — the Python-loop half of the plan.

        Arbitrary ``SourceShape.value`` calls per grid point cannot be
        vectorised, so the result travels inside a serialized plan;
        everything in :meth:`_build_plan_tables` is pure numpy over the
        grid and compiled matrices and rebuilds bit-identically on
        restore.
        """
        grid = self.grid
        nr = len(self._rail_nodes)
        rail_vals = np.empty((grid.size, nr))
        varying = []
        for j, shape in enumerate(self._rail_shapes):
            if isinstance(shape, DcShape):
                rail_vals[:, j] = shape.level
            else:
                rail_vals[:, j] = [shape.value(float(t)) for t in grid]
                varying.append(j)
        self._rail_vals = rail_vals
        self._varying_rails = varying

    def _build_plan_tables(self) -> None:
        """Derived per-step tables: deterministic numpy on serialized state."""
        grid = self.grid
        rail_vals = self._rail_vals
        hs = np.diff(grid)
        n_steps = hs.size

        # Extrapolation ratio h_k / h_{k-1} for the Newton warm start
        # (0 for the first step, where no history exists).
        extrap = np.zeros_like(hs)
        extrap[1:] = hs[1:] / hs[:-1]

        cmat_h = self.cmat[None, :, :] / hs[:, None, None]
        base_jac = cmat_h + self._gmat[None, :, :]

        # Capacitive rail coupling: inject C * dV_rail/dt per step.
        drail_dt = np.diff(rail_vals, axis=0) / hs[:, None]       # (n_steps, nr)
        cap_inj = drail_dt @ self._cap_rail.T                     # (n_steps, nu)

        # Resistive rail drive.  On the diagonal fast path this is kept in
        # the hand-written engine's g * (y - v_eff) form (bit-compatible
        # with PR 2's write driver); the general path subtracts G_rail @ v.
        # Rail resistors already contributed to the gmat diagonal; here
        # only the drive side (g * v_rail) is assembled.
        g_diag = np.diag(self._gmat).copy()
        g_rhs = rail_vals[1:] @ self._g_rail.T                    # (n_steps, nu)
        with np.errstate(invalid="ignore", divide="ignore"):
            v_eff = np.where(g_diag > 0.0, g_rhs / np.where(g_diag > 0, g_diag, 1.0), 0.0)

        self._plan = SimpleNamespace(
            hs=hs,
            t_prev=grid[:-1],
            t_now=grid[1:],
            extrap=extrap,
            cmat_h=cmat_h,
            base_jac=base_jac,
            cap_inj=cap_inj,
            g_diag=g_diag,
            v_eff=v_eff,
            g_rhs=g_rhs,
            n_steps=n_steps,
        )

    def _compile_probes(self, probes: Sequence[object]) -> None:
        cross: List[CrossProbe] = []
        peak: List[PeakProbe] = []
        value: List[ValueProbe] = []
        names = set()
        for p in probes:
            if p.name in names:
                raise CompileError(
                    f"compile: duplicate probe name {p.name!r}", code="N012"
                )
            names.add(p.name)
            if isinstance(p, CrossProbe):
                cross.append(p)
            elif isinstance(p, PeakProbe):
                peak.append(p)
            elif isinstance(p, ValueProbe):
                value.append(p)
            else:
                raise CompileError(
                    f"compile: unknown probe type {type(p).__name__}", code="N011"
                )

        def coeff_row(coeffs: Mapping[str, float]) -> np.ndarray:
            rowv = np.zeros(self.n_unknowns)
            for node, c in coeffs.items():
                if node not in self._unknown_index:
                    raise CompileError(
                        f"compile: probe references {node!r}, which is not an "
                        f"unknown node (unknowns: {self.node_names})",
                        code="N008",
                    )
                rowv[self._unknown_index[node]] = float(c)
            return rowv

        self._cross_probes = cross
        self._cross_mat = (
            np.stack([coeff_row(p.coeffs) for p in cross]) if cross else None
        )
        for p in peak:
            if p.node not in self._unknown_index:
                raise CompileError(
                    f"compile: peak probe node {p.node!r} is not an unknown "
                    f"node (unknowns: {self.node_names})",
                    code="N008",
                )
        self._peak_probes = peak
        self._peak_rows = np.array(
            [self._unknown_index[p.node] for p in peak], dtype=int
        ) if peak else None
        t_now = self._plan.t_now
        self._peak_track = (
            np.stack([t_now >= p.t_from for p in peak]) if peak else None
        )
        self._value_probes = value
        self._value_mat = (
            np.stack([coeff_row(p.coeffs) for p in value]) if value else None
        )
        self._value_steps = np.array(
            [int(np.searchsorted(t_now, p.t, side="left")) for p in value],
            dtype=int,
        )
        for p, s in zip(value, self._value_steps):
            if s >= self._plan.n_steps:
                raise CompileError(
                    f"compile: value probe {p.name!r} at t={p.t:g} falls "
                    "beyond the grid",
                    code="P007",
                )

    # ------------------------------------------------------------------
    # Device evaluation
    # ------------------------------------------------------------------

    def _device_eval_fused(self, y_ext: np.ndarray, vto_eff: np.ndarray,
                           i_spec: np.ndarray):
        """Currents and conductances of all devices in one stacked pass.

        ``y_ext`` is the ``(n_ext, m)`` extended state; ``vto_eff`` and
        ``i_spec`` are per-chunk ``(n_dev, m)`` precomputations.  Returns
        ``(ids (n_dev, m), g_stack (4*n_dev, m))`` with ``g_stack`` rows
        ordered ``[gm, gds, gms, gmb]`` blockwise, ready for the assembly
        matmul.  The formulas transcribe :meth:`MosfetModel.ids` with the
        scalar card parameters broadcast as ``(n_dev, 1)`` columns.
        """
        p = self._p
        vg = np.take(y_ext, self._g_idx, axis=0)
        vd = np.take(y_ext, self._d_idx, axis=0)
        vs = np.take(y_ext, self._s_idx, axis=0)
        vb = np.take(y_ext, self._b_idx, axis=0)
        vgb = p * (vg - vb)
        vdb = p * (vd - vb)
        vsb = p * (vs - vb)

        # Pinch-off voltage with the smoothly clamped body-effect term.
        vgb_t = vgb - vto_eff
        arg = vgb_t + self._k_half_sq
        root = np.sqrt(arg * arg + _EPS_RELU * _EPS_RELU)
        q = 0.5 * (arg + root)            # smooth_relu(arg)
        dq = 0.5 + 0.5 * (arg / root)     # smooth_relu_grad(arg)
        sqrt_q = np.sqrt(q)
        vp = vgb_t - self._gamma * (sqrt_q - self._k_half)
        dvp_dvgb = 1.0 - self._gamma * dq / (2.0 * sqrt_q)

        # Forward / reverse normalised currents (squared softplus).
        xf = (vp - vsb) * self._inv_2nut
        xr = (vp - vdb) * self._inv_2nut
        sf = np.maximum(xf, 0.0) + np.log1p(np.exp(-np.abs(xf)))
        sr = np.maximum(xr, 0.0) + np.log1p(np.exp(-np.abs(xr)))
        i_f = sf * sf
        i_r = sr * sr
        # sigmoid(x) via tanh — overflow-safe without boolean masking.
        dif = sf * (0.5 + 0.5 * np.tanh(0.5 * xf)) * self._inv_nut
        dir_ = sr * (0.5 + 0.5 * np.tanh(0.5 * xr)) * self._inv_nut

        vds = vdb - vsb
        root_ds = np.sqrt(vds * vds + _EPS_ABS * _EPS_ABS)
        clm = 1.0 + self._lam * (root_ds - _EPS_ABS)
        dclm_dvds = self._lam * (vds / root_ds)

        core = i_spec * (i_f - i_r)
        ids = p * (core * clm)

        n_dev = self.n_devices
        m = y_ext.shape[1]
        g_stack = np.empty((4 * n_dev, m))
        core_dclm = core * dclm_dvds
        gm = g_stack[0:n_dev]
        gds = g_stack[n_dev:2 * n_dev]
        gms = g_stack[2 * n_dev:3 * n_dev]
        np.multiply(i_spec * (dif - dir_) * dvp_dvgb, clm, out=gm)
        np.add(i_spec * dir_ * clm, core_dclm, out=gds)
        np.negative(i_spec * dif * clm + core_dclm, out=gms)
        np.negative(gm + gds + gms, out=g_stack[3 * n_dev:])
        return ids, g_stack

    def _device_eval_reference(self, y_ext: np.ndarray, dvth_t: np.ndarray,
                               bmult_t: np.ndarray):
        """Per-device :meth:`MosfetModel.ids` calls (transparent path)."""
        n_dev = self.n_devices
        m = y_ext.shape[1]
        ids = np.empty((n_dev, m))
        g_stack = np.empty((4 * n_dev, m))
        for k, (model, w, l) in enumerate(self._device_cards):
            i_k, gm, gds, gms, gmb = model.ids(
                y_ext[self._g_idx[k]],
                y_ext[self._d_idx[k]],
                y_ext[self._s_idx[k]],
                y_ext[self._b_idx[k]],
                delta_vth=dvth_t[k],
                beta_mult=bmult_t[k],
                w=w,
                l=l,
            )
            ids[k] = i_k
            g_stack[k] = gm
            g_stack[n_dev + k] = gds
            g_stack[2 * n_dev + k] = gms
            g_stack[3 * n_dev + k] = gmb
        return ids, g_stack

    # ------------------------------------------------------------------
    # Run-time input plumbing
    # ------------------------------------------------------------------

    def _param_matrix(self, spec, n: int, default: float, what: str) -> np.ndarray:
        """Normalise a per-device parameter spec into ``(n_dev, n)``."""
        out = np.full((self.n_devices, n), float(default))
        if spec is None:
            return out
        if isinstance(spec, Mapping):
            for name, val in spec.items():
                if name not in self._device_index:
                    raise SimulationError(
                        f"run: {what} names unknown device {name!r} "
                        f"(devices: {self.device_names})"
                    )
                out[self._device_index[name]] = np.broadcast_to(
                    np.asarray(val, dtype=float), (n,)
                )
            return out
        arr = np.atleast_2d(np.asarray(spec, dtype=float))
        if arr.shape != (n, self.n_devices):
            raise SimulationError(
                f"run: {what} matrix shape {arr.shape} != ({n}, {self.n_devices}) "
                "(columns follow compiled device order "
                f"{self.device_names})"
            )
        out[:] = arr.T
        return out

    def _initial_state(self, ic, n: int) -> np.ndarray:
        ic = dict(ic or {})
        missing = [name for name in self.node_names if name not in ic]
        if missing:
            raise SimulationError(
                f"run: initial conditions missing for unknown nodes {missing}"
            )
        y = np.empty((self.n_unknowns, n))
        for name, val in ic.items():
            if name not in self._unknown_index:
                raise SimulationError(
                    f"run: initial condition for {name!r}, which is not an "
                    f"unknown node (unknowns: {self.node_names})"
                )
            y[self._unknown_index[name]] = np.broadcast_to(
                np.asarray(val, dtype=float), (n,)
            )
        return y

    # ------------------------------------------------------------------
    # The batched integrator
    # ------------------------------------------------------------------

    def run(
        self,
        ic: Mapping[str, Union[float, np.ndarray]],
        n: Optional[int] = None,
        delta_vth=None,
        beta_mult=None,
        probe_offsets: Optional[Mapping[str, np.ndarray]] = None,
        retire: Optional[RetirePolicy] = None,
    ) -> SimpleNamespace:
        """Integrate a batch; returns per-sample outputs and diagnostics.

        ``delta_vth`` / ``beta_mult`` are per-device, per-sample
        variations: either a dict mapping device names to scalars or
        ``(n,)`` arrays (unnamed devices stay nominal), or a full
        ``(n, n_devices)`` matrix in compiled device order.
        ``probe_offsets`` overrides a :class:`CrossProbe`'s constant
        offset with a per-sample array.  ``retire`` enables sample
        retirement (see :class:`RetirePolicy`).

        Returns a namespace with ``final`` (dict node -> (n,) values at
        ``t_stop`` — or at retirement for retired samples), ``cross`` /
        ``peak`` / ``value`` (dicts keyed by probe name), ``converged``
        (per-sample Newton health) and ``n_sample_steps`` (total
        sample-step integrations, the throughput accounting unit).
        """
        if n is None:
            raise SimulationError("run: batch size n is required")
        n = int(n)
        if n < 1:
            raise SimulationError(f"run: batch size must be >= 1, got {n}")
        if retire is not None and self._value_probes:
            raise CompileError(
                "run: retirement and value probes cannot be combined (a "
                "retired sample has no state left to snapshot)",
                code="P006",
            )

        plan = self._plan
        nu = self.n_unknowns
        fused = self.kernel == "fast"
        dvth_t = self._param_matrix(delta_vth, n, 0.0, "delta_vth")
        bmult_t = self._param_matrix(beta_mult, n, 1.0, "beta_mult")
        if fused:
            # Per-chunk device precomputations, (n_dev, n).
            p1 = self._vto + dvth_t
            p2 = self._ispec_coeff * (self._beta0 * bmult_t)
            eval_fn = self._device_eval_fused
        else:
            p1, p2 = dvth_t, bmult_t
            eval_fn = self._device_eval_reference

        y = self._initial_state(ic, n)

        n_cross = len(self._cross_probes)
        offsets = np.zeros((n_cross, n))
        for j, probe in enumerate(self._cross_probes):
            offsets[j] = probe.offset
        if probe_offsets:
            for name, val in probe_offsets.items():
                for j, probe in enumerate(self._cross_probes):
                    if probe.name == name:
                        offsets[j] = np.broadcast_to(
                            np.asarray(val, dtype=float), (n,)
                        )
                        break
                else:
                    raise SimulationError(
                        f"run: probe_offsets names unknown cross probe {name!r}"
                    )

        retire_from = plan.n_steps
        retire_probe = -1
        if retire is not None:
            for j, probe in enumerate(self._cross_probes):
                if probe.name == retire.probe:
                    retire_probe = j
                    break
            else:
                raise CompileError(
                    f"run: retire policy names unknown cross probe {retire.probe!r}",
                    code="P006",
                )
            past = np.flatnonzero(plan.t_now >= retire.after)
            retire_from = int(past[0]) if past.size else plan.n_steps

        cross_mat = self._cross_mat
        if cross_mat is not None:
            prev_sig = cross_mat @ y + offsets
        else:
            prev_sig = None
        cross_time = np.full((n_cross, n), np.nan)
        n_peak = len(self._peak_probes)
        peaks = np.zeros((n_peak, n))
        peak_rows = self._peak_rows
        peak_track = self._peak_track
        converged = np.ones(n, dtype=bool)
        orig = np.arange(n)

        # Full-width outputs, scattered to as samples retire.
        cross_out = np.full((n_cross, n), np.nan)
        peak_out = np.zeros((n_peak, n))
        final_out = np.empty((nu, n))
        conv_out = np.ones(n, dtype=bool)
        value_out = np.zeros((len(self._value_probes), n))

        y_prev2: Optional[np.ndarray] = None
        y_ext = np.empty((self._n_ext, n))
        for j in range(len(self._rail_nodes)):
            if j not in self._varying_rails:
                y_ext[nu + j] = self._rail_vals[0, j]
        y_ext[self._ground_row] = 0.0

        max_iter = self.newton_max_iter
        newton_tol = self.newton_tol
        max_step = self.max_step
        min_pivot = self.min_pivot
        clip_lo, clip_hi = self.clip
        ex_lo, ex_hi = self._extrap_clip
        has_g = self._has_g
        g_is_diag = self._g_is_diag
        if has_g and g_is_diag:
            g_diag_col = plan.g_diag[:, None]
        gmat = self._gmat
        sparse = self.assembly == "sparse"
        s_mat = self._s_mat
        m_mat = self._m_mat
        jac_rounds = self._jac_rounds
        schur = self._schur
        n_sample_steps = 0

        for step in range(plan.n_steps):
            m = y.shape[1]
            n_sample_steps += m
            h = plan.hs[step]
            cmat_h = plan.cmat_h[step]
            base_jac = plan.base_jac[step][:, :, None]
            inj_col = plan.cap_inj[step][:, None]
            if has_g:
                if g_is_diag:
                    v_eff_col = plan.v_eff[step][:, None]
                else:
                    g_rhs_col = plan.g_rhs[step][:, None]

            y_prev = y
            if y_prev2 is not None:
                y_new = y_prev + (y_prev - y_prev2) * plan.extrap[step]
                np.clip(y_new, ex_lo, ex_hi, out=y_new)
            else:
                y_new = y_prev.copy()

            for j in self._varying_rails:
                y_ext[nu + j, :m] = self._rail_vals[step + 1, j]

            idx: Optional[np.ndarray] = None  # None == all samples active
            for _ in range(max_iter):
                if idx is None:
                    y_sub = y_new
                    y_prev_sub = y_prev
                    p1_sub = p1
                    p2_sub = p2
                    ext = y_ext[:, :m]
                else:
                    y_sub = y_new[:, idx]
                    y_prev_sub = y_prev[:, idx]
                    p1_sub = p1[:, idx]
                    p2_sub = p2[:, idx]
                    ext = y_ext[:, : idx.size]
                ext[:nu] = y_sub
                ids, g_stack = eval_fn(ext, p1_sub, p2_sub)
                f = s_mat @ ids
                f += cmat_h @ (y_sub - y_prev_sub)
                f -= inj_col
                if has_g:
                    if g_is_diag:
                        f += g_diag_col * (y_sub - v_eff_col)
                    else:
                        f += gmat @ y_sub
                        f -= g_rhs_col
                if sparse and ids.shape[1] >= _SPARSE_MIN_BATCH:
                    jac = np.zeros((nu * nu, ids.shape[1]))
                    for rp, cp, rm, cm in jac_rounds:
                        if rp.size:
                            jac[rp] += g_stack[cp]
                        if rm.size:
                            jac[rm] -= g_stack[cm]
                    jac = jac.reshape(nu, nu, -1)
                else:
                    jac = (m_mat @ g_stack).reshape(nu, nu, -1)
                jac += base_jac
                if fused:
                    if schur is not None:
                        try:
                            delta = schur.solve(jac, -f)
                        except np.linalg.LinAlgError:
                            # An exactly singular interior block defeats
                            # the block elimination even when the full
                            # matrix is solvable; the generic path
                            # recovers those pathological samples.
                            delta = solveN(jac, -f, min_pivot)
                    else:
                        delta = solveN(jac, -f, min_pivot)
                else:
                    delta = np.linalg.solve(
                        np.ascontiguousarray(jac.transpose(2, 0, 1)),
                        np.ascontiguousarray((-f).T)[..., None],
                    )[..., 0].T
                step_max = np.abs(delta).max(axis=0)
                scale = np.minimum(1.0, max_step / np.maximum(step_max, 1e-30))
                y_upd = np.clip(y_sub + delta * scale, clip_lo, clip_hi)
                if idx is None:
                    y_new = y_upd
                else:
                    y_new[:, idx] = y_upd
                still = step_max > newton_tol
                if not still.any():
                    idx = None if idx is None else idx[:0]
                    break
                idx = np.flatnonzero(still) if idx is None else idx[still]
            if idx is not None and idx.size:
                converged[idx] = False
            y_prev2 = y_prev
            y = y_new

            # Event tracking (linear interpolation inside the step).
            if cross_mat is not None:
                sig = cross_mat @ y + offsets
                crossing = (prev_sig < 0.0) & (sig >= 0.0) & np.isnan(cross_time)
                if crossing.any():
                    ps = prev_sig[crossing]
                    frac = ps / (ps - sig[crossing])
                    cross_time[crossing] = plan.t_prev[step] + frac * h
                prev_sig = sig
            for j in range(n_peak):
                if peak_track[j, step]:
                    np.maximum(peaks[j], y[peak_rows[j]], out=peaks[j])
            for j, vstep in enumerate(self._value_steps):
                if vstep == step:
                    value_out[j, orig] = (
                        self._value_mat[j] @ y + self._value_probes[j].offset
                    )

            # Retirement: scatter settled samples and compact the rest.
            if (
                retire_probe >= 0
                and step >= retire_from
                and step + 1 < plan.n_steps
            ):
                done = ~np.isnan(cross_time[retire_probe])
                n_done = int(np.count_nonzero(done))
                if n_done and n_done >= max(
                    retire.min_count, m // retire.frac_divisor
                ):
                    o = orig[done]
                    cross_out[:, o] = cross_time[:, done]
                    peak_out[:, o] = peaks[:, done]
                    final_out[:, o] = y[:, done]
                    conv_out[o] = converged[done]
                    keep = ~done
                    y = y[:, keep]
                    y_prev2 = y_prev2[:, keep]
                    p1 = p1[:, keep]
                    p2 = p2[:, keep]
                    offsets = offsets[:, keep]
                    prev_sig = prev_sig[:, keep]
                    cross_time = cross_time[:, keep]
                    peaks = peaks[:, keep]
                    converged = converged[keep]
                    orig = orig[keep]
                    if orig.size == 0:
                        break

        # Scatter the still-active remainder.
        cross_out[:, orig] = cross_time
        peak_out[:, orig] = peaks
        final_out[:, orig] = y
        conv_out[orig] = converged

        return SimpleNamespace(
            final={name: final_out[k] for k, name in enumerate(self.node_names)},
            cross={p.name: cross_out[j] for j, p in enumerate(self._cross_probes)},
            peak={p.name: peak_out[j] for j, p in enumerate(self._peak_probes)},
            value={p.name: value_out[j] for j, p in enumerate(self._value_probes)},
            converged=conv_out,
            n=n,
            n_sample_steps=n_sample_steps,
        )

    # ------------------------------------------------------------------
    # Serialization (repro.spice.plan builds the byte container and the
    # content-addressed cache on top of these hooks)
    # ------------------------------------------------------------------

    #: Attributes dropped from the pickled state: pure functions of the
    #: serialized attributes, and the only quadratically-sized tables
    #: (at array-slice scale ``_m_mat`` is ~235 MB and the per-step
    #: ``_plan`` stacks ~120 MB, against a few MB for everything else).
    #: :meth:`__setstate__` rebuilds them bit-identically; the plan
    #: audit's P004/P005 recomputation checks are exactly that proof.
    _DERIVED_STATE = ("_plan", "_s_mat", "_m_mat")

    def __getstate__(self) -> Dict[str, object]:
        state = {
            k: v for k, v in self.__dict__.items() if k not in self._DERIVED_STATE
        }
        return {"format": PLAN_FORMAT_VERSION, "state": state}

    def __setstate__(self, payload: Dict[str, object]) -> None:
        """Versioned, audited restore — the admission gate in person.

        A plan arriving here did *not* just come out of the compiler in
        this process (unpickle in a spawn worker, a cache-dir load), so
        per the ROADMAP invariant it passes :func:`assert_plan_clean`
        before first use.  A payload of the wrong shape or format
        version is refused with diagnostic ``P008``.
        """
        from repro.spice.audit import assert_plan_clean
        from repro.spice.plan import plan_payload_error

        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("state"), dict)
            or "format" not in payload
        ):
            raise plan_payload_error(
                "unrecognised CompiledTransient pickle payload (expected a "
                "{'format', 'state'} dict)"
            )
        if payload["format"] != PLAN_FORMAT_VERSION:
            raise plan_payload_error(
                f"plan format version {payload['format']!r} does not match "
                f"this build's version {PLAN_FORMAT_VERSION}"
            )
        self.__dict__.update(payload["state"])
        self._s_mat, self._m_mat = _incidence_matrices(
            self._d_idx, self._g_idx, self._s_idx, self._b_idx, self.n_unknowns
        )
        self._build_plan_tables()
        assert_plan_clean(self)

    def __repr__(self) -> str:
        return (
            f"CompiledTransient({self.circuit.title!r}, kernel={self.kernel!r}, "
            f"assembly={self.assembly!r}, solver={self.solver!r}, "
            f"unknowns={self.n_unknowns}, "
            f"devices={self.n_devices}, rails={self.rail_names}, "
            f"steps={self._plan.n_steps})"
        )
