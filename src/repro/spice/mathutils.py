"""Numerically robust scalar/array helpers shared by the device models.

Every function here is smooth (C^1 at least), vectorised over numpy arrays,
and safe against overflow for arguments of hundreds of thermal voltages —
the regime Newton iterations routinely visit before converging.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softplus",
    "softplus_grad",
    "smooth_abs",
    "smooth_abs_grad",
    "smooth_relu",
    "smooth_relu_grad",
    "sigmoid",
]


def softplus(x):
    """Overflow-safe ``log(1 + exp(x))``.

    For large positive ``x`` this tends to ``x``; for large negative ``x``
    it tends to ``exp(x)`` (returned as an exact 0 once it underflows,
    which is harmless downstream because the value is squared).
    """
    x = np.asarray(x, dtype=float)
    return np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))


def sigmoid(x):
    """Overflow-safe logistic function, the derivative of :func:`softplus`."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softplus_grad(x):
    """Derivative of :func:`softplus` (alias kept for readability at call sites)."""
    return sigmoid(x)


def smooth_abs(x, eps: float = 1e-3):
    """Smooth approximation of ``|x|``: ``sqrt(x**2 + eps**2) - eps``.

    Exactly zero at the origin and within ``eps`` of ``|x|`` everywhere,
    with a continuous derivative — used for channel-length-modulation
    factors that must not kink at ``vds = 0``.
    """
    x = np.asarray(x, dtype=float)
    return np.sqrt(x * x + eps * eps) - eps


def smooth_abs_grad(x, eps: float = 1e-3):
    """Derivative of :func:`smooth_abs`."""
    x = np.asarray(x, dtype=float)
    return x / np.sqrt(x * x + eps * eps)


def smooth_relu(x, eps: float = 1e-3):
    """Smooth approximation of ``max(x, 0)``: ``0.5 * (x + sqrt(x**2 + eps**2))``.

    Strictly positive everywhere (≈ ``eps/2`` at the origin), which keeps
    square roots of the form ``sqrt(smooth_relu(v))`` well defined during
    wild Newton excursions.
    """
    x = np.asarray(x, dtype=float)
    return 0.5 * (x + np.sqrt(x * x + eps * eps))


def smooth_relu_grad(x, eps: float = 1e-3):
    """Derivative of :func:`smooth_relu`."""
    x = np.asarray(x, dtype=float)
    return 0.5 * (1.0 + x / np.sqrt(x * x + eps * eps))
