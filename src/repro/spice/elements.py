"""Circuit element classes: R, C, V, I and the MOSFET instance.

Every element implements:

* ``bind(circuit)`` — resolve node names to indices (called by
  :meth:`repro.spice.netlist.Circuit.add`);
* ``stamp(ctx)`` — add its static (resistive / source / nonlinear DC)
  contribution to a :class:`repro.spice.mna.StampContext`;
* ``caps()`` — return linear lumped capacitors as ``(node_a, node_b, C)``
  triples with resolved indices; the transient engine turns these into
  companion-model stamps.

Voltage sources additionally set ``needs_branch`` and receive a
``branch_index`` during system setup.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import NetlistError
from repro.spice.mosfet import MosfetModel
from repro.spice.sources import DcShape, SourceShape

__all__ = [
    "Element",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Vcvs",
    "Vccs",
    "Mosfet",
]


def _as_shape(value: Union[float, SourceShape]) -> SourceShape:
    """Allow plain numbers wherever a source shape is expected."""
    if isinstance(value, SourceShape):
        return value
    return DcShape(float(value))


class Element:
    """Common base: name, terminal names, resolved terminal indices."""

    needs_branch = False
    is_mosfet = False

    def __init__(self, name: str, terminals: List[str]):
        if not name:
            raise NetlistError("element name must be a non-empty string")
        self.name = name
        self.terminals = list(terminals)
        self.nodes: List[int] = []

    def bind(self, circuit) -> None:
        """Resolve terminal node names to indices against ``circuit``."""
        self.nodes = [circuit.node(t) for t in self.terminals]

    def stamp(self, ctx) -> None:
        raise NotImplementedError

    def caps(self) -> List[Tuple[int, int, float]]:
        """Lumped linear capacitors contributed by this element."""
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.terminals})"


class Resistor(Element):
    """Linear two-terminal resistor."""

    def __init__(self, name: str, a: str, b: str, resistance: float):
        super().__init__(name, [a, b])
        if resistance <= 0:
            raise NetlistError(f"resistor {name!r}: resistance must be positive")
        self.resistance = float(resistance)

    def stamp(self, ctx) -> None:
        na, nb = self.nodes
        g = 1.0 / self.resistance
        i = g * (ctx.v(na) - ctx.v(nb))
        ctx.add_kcl(na, i)
        ctx.add_kcl(nb, -i)
        ctx.add_jac(na, na, g)
        ctx.add_jac(na, nb, -g)
        ctx.add_jac(nb, na, -g)
        ctx.add_jac(nb, nb, g)


class Capacitor(Element):
    """Linear two-terminal capacitor (open in DC; companion model in transient)."""

    def __init__(self, name: str, a: str, b: str, capacitance: float):
        super().__init__(name, [a, b])
        if capacitance <= 0:
            raise NetlistError(f"capacitor {name!r}: capacitance must be positive")
        self.capacitance = float(capacitance)

    def stamp(self, ctx) -> None:
        # DC: a capacitor is an open circuit; the transient engine adds
        # the companion-model stamp through `extra_stamps`.
        return

    def caps(self) -> List[Tuple[int, int, float]]:
        na, nb = self.nodes
        return [(na, nb, self.capacitance)]


class VoltageSource(Element):
    """Independent voltage source with an MNA branch-current unknown."""

    needs_branch = True

    def __init__(self, name: str, plus: str, minus: str, shape: Union[float, SourceShape]):
        super().__init__(name, [plus, minus])
        self.shape = _as_shape(shape)
        self.branch_index: Optional[int] = None

    def stamp(self, ctx) -> None:
        np_, nm = self.nodes
        b = self.branch_index
        i = ctx.branch_current(b)
        # Branch current flows out of the + terminal through the source
        # into the - terminal, i.e. it *leaves* the + node into the network.
        ctx.add_kcl(np_, i)
        ctx.add_kcl(nm, -i)
        ctx.add_node_branch_jac(np_, b, 1.0)
        ctx.add_node_branch_jac(nm, b, -1.0)
        # Constraint row: v(+) - v(-) - V(t) = 0.
        ctx.add_branch_residual(b, ctx.v(np_) - ctx.v(nm) - ctx.source_value(self.shape))
        ctx.add_branch_jac(b, np_, 1.0)
        ctx.add_branch_jac(b, nm, -1.0)


class CurrentSource(Element):
    """Independent current source; positive current flows plus → minus internally.

    That is, the source pushes current *into* the minus node's network side
    (conventional SPICE direction: current through the source from + to -).
    """

    def __init__(self, name: str, plus: str, minus: str, shape: Union[float, SourceShape]):
        super().__init__(name, [plus, minus])
        self.shape = _as_shape(shape)

    def stamp(self, ctx) -> None:
        np_, nm = self.nodes
        i = ctx.source_value(self.shape)
        ctx.add_kcl(np_, i)
        ctx.add_kcl(nm, -i)


class Vccs(Element):
    """Voltage-controlled current source: ``i(out+ -> out-) = gm * v(c+, c-)``.

    Terminal order: output plus, output minus, control plus, control
    minus.  The output current flows from ``out+`` through the source to
    ``out-`` (i.e. it *leaves* the ``out+`` node into the element).
    """

    def __init__(self, name: str, out_p: str, out_n: str, ctrl_p: str, ctrl_n: str,
                 gm: float):
        super().__init__(name, [out_p, out_n, ctrl_p, ctrl_n])
        self.gm = float(gm)

    def stamp(self, ctx) -> None:
        op, on, cp, cn = self.nodes
        i = self.gm * (ctx.v(cp) - ctx.v(cn))
        ctx.add_kcl(op, i)
        ctx.add_kcl(on, -i)
        ctx.add_jac(op, cp, self.gm)
        ctx.add_jac(op, cn, -self.gm)
        ctx.add_jac(on, cp, -self.gm)
        ctx.add_jac(on, cn, self.gm)


class Vcvs(Element):
    """Voltage-controlled voltage source: ``v(out+, out-) = gain * v(c+, c-)``.

    Uses an MNA branch current like an independent voltage source.
    """

    needs_branch = True

    def __init__(self, name: str, out_p: str, out_n: str, ctrl_p: str, ctrl_n: str,
                 gain: float):
        super().__init__(name, [out_p, out_n, ctrl_p, ctrl_n])
        self.gain = float(gain)
        self.branch_index: Optional[int] = None

    def stamp(self, ctx) -> None:
        op, on, cp, cn = self.nodes
        b = self.branch_index
        i = ctx.branch_current(b)
        ctx.add_kcl(op, i)
        ctx.add_kcl(on, -i)
        ctx.add_node_branch_jac(op, b, 1.0)
        ctx.add_node_branch_jac(on, b, -1.0)
        # Constraint: v(out+) - v(out-) - gain * (v(c+) - v(c-)) = 0.
        ctx.add_branch_residual(
            b, ctx.v(op) - ctx.v(on) - self.gain * (ctx.v(cp) - ctx.v(cn))
        )
        ctx.add_branch_jac(b, op, 1.0)
        ctx.add_branch_jac(b, on, -1.0)
        ctx.add_branch_jac(b, cp, -self.gain)
        ctx.add_branch_jac(b, cn, self.gain)


class Mosfet(Element):
    """A MOSFET instance: model card + geometry + per-instance variation.

    Terminals are ordered drain, gate, source, bulk.  The statistical
    attributes ``delta_vth`` (volts) and ``beta_mult`` (dimensionless) are
    plain mutable floats so the variation machinery can retarget one built
    circuit across thousands of samples without re-netlisting.
    """

    is_mosfet = True

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        bulk: str,
        model: MosfetModel,
        w: float,
        l: float,
        delta_vth: float = 0.0,
        beta_mult: float = 1.0,
    ):
        super().__init__(name, [drain, gate, source, bulk])
        if w <= 0 or l <= 0:
            raise NetlistError(f"mosfet {name!r}: W and L must be positive")
        self.model = model
        self.w = float(w)
        self.l = float(l)
        self.delta_vth = float(delta_vth)
        self.beta_mult = float(beta_mult)

    def stamp(self, ctx) -> None:
        nd, ng, ns, nb = self.nodes
        vd, vg, vs, vb = ctx.v(nd), ctx.v(ng), ctx.v(ns), ctx.v(nb)
        ids, gm, gds, gms, gmb = self.model.ids(
            vg,
            vd,
            vs,
            vb,
            delta_vth=self.delta_vth,
            beta_mult=self.beta_mult,
            w=self.w,
            l=self.l,
        )
        ids = float(ids)
        # Drain current enters the drain terminal and exits the source.
        ctx.add_kcl(nd, ids)
        ctx.add_kcl(ns, -ids)
        for col, g in ((ng, gm), (nd, gds), (ns, gms), (nb, gmb)):
            ctx.add_jac(nd, col, float(g))
            ctx.add_jac(ns, col, -float(g))

    def caps(self) -> List[Tuple[int, int, float]]:
        nd, ng, ns, nb = self.nodes
        cgs, cgd, cgb, cdb, csb = self.model.capacitances(self.w, self.l)
        return [
            (ng, ns, cgs),
            (ng, nd, cgd),
            (ng, nb, cgb),
            (nd, nb, cdb),
            (ns, nb, csb),
        ]

    def op_point(self, voltages) -> "MosfetOpPoint":
        """Operating-point summary given a node-voltage lookup callable."""
        from repro.spice.mosfet import MosfetOpPoint

        nd, ng, ns, nb = self.nodes
        vd, vg, vs, vb = (voltages(n) for n in (nd, ng, ns, nb))
        ids, gm, gds, _gms, _gmb = self.model.ids(
            vg, vd, vs, vb,
            delta_vth=self.delta_vth, beta_mult=self.beta_mult, w=self.w, l=self.l,
        )
        return MosfetOpPoint(
            ids=float(ids), vgs=vg - vs, vds=vd - vs, vbs=vb - vs,
            gm=float(gm), gds=float(gds),
        )

    def __repr__(self) -> str:
        return (
            f"Mosfet({self.name!r}, d/g/s/b={self.terminals}, "
            f"{self.model.name}, W={self.w:.3g}, L={self.l:.3g}, "
            f"dVth={self.delta_vth:+.4g})"
        )
