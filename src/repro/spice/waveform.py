"""Waveform container and the measurement primitives SRAM metrics build on.

A :class:`Waveform` is an immutable ``(times, values)`` pair with the
measurement vocabulary of a SPICE ``.measure`` card: threshold crossings,
trigger/target delays, slew, and window extrema.  Crossing times are
linearly interpolated between samples, so measurement resolution is finer
than the integration grid.

Measurements raise :class:`~repro.errors.MeasurementError` when the event
they look for never happens — SRAM dynamic-failure metrics depend on
distinguishing "the bitline never developed" from "the simulator broke",
so silent NaN returns are deliberately avoided.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeasurementError

__all__ = ["Waveform"]


class Waveform:
    """A sampled scalar signal over time."""

    def __init__(self, times, values, name: str = ""):
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or times.shape != values.shape:
            raise MeasurementError("waveform times/values must be equal-length 1-D arrays")
        if times.size < 2:
            raise MeasurementError("waveform needs at least two samples")
        if np.any(np.diff(times) <= 0):
            raise MeasurementError("waveform times must be strictly increasing")
        self.times = times
        self.values = values
        self.name = name

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------

    def at(self, t: float) -> float:
        """Linearly interpolated value at time ``t`` (clamped to the window)."""
        return float(np.interp(t, self.times, self.values))

    @property
    def t_start(self) -> float:
        return float(self.times[0])

    @property
    def t_stop(self) -> float:
        return float(self.times[-1])

    def window(self, t_from: float, t_to: float) -> "Waveform":
        """Sub-waveform restricted to ``[t_from, t_to]`` (endpoints interpolated)."""
        if t_to <= t_from:
            raise MeasurementError(f"empty window [{t_from}, {t_to}]")
        inside = (self.times > t_from) & (self.times < t_to)
        times = np.concatenate(([t_from], self.times[inside], [t_to]))
        values = np.concatenate(([self.at(t_from)], self.values[inside], [self.at(t_to)]))
        return Waveform(times, values, name=self.name)

    # ------------------------------------------------------------------
    # Crossings and delays
    # ------------------------------------------------------------------

    def cross(
        self,
        level: float,
        direction: str = "either",
        occurrence: int = 1,
        after: float = 0.0,
    ) -> float:
        """Time of the n-th crossing of ``level``.

        ``direction`` is ``"rise"``, ``"fall"`` or ``"either"``;
        ``occurrence`` counts from 1; ``after`` ignores earlier events.
        Raises :class:`~repro.errors.MeasurementError` if the requested
        crossing never happens.
        """
        if direction not in ("rise", "fall", "either"):
            raise MeasurementError(f"bad crossing direction {direction!r}")
        if occurrence < 1:
            raise MeasurementError("occurrence counts from 1")
        d = self.values - level
        count = 0
        for k in range(len(d) - 1):
            a, b = d[k], d[k + 1]
            rising = a < 0.0 <= b
            falling = a > 0.0 >= b
            if direction == "rise" and not rising:
                continue
            if direction == "fall" and not falling:
                continue
            if direction == "either" and not (rising or falling):
                continue
            # Interpolate the crossing instant.
            frac = a / (a - b) if a != b else 0.0
            t_cross = self.times[k] + frac * (self.times[k + 1] - self.times[k])
            if t_cross < after:
                continue
            count += 1
            if count == occurrence:
                return float(t_cross)
        raise MeasurementError(
            f"waveform {self.name!r}: crossing #{occurrence} of {level} V "
            f"({direction}) after {after:.3e}s not found"
        )

    def has_cross(self, level: float, direction: str = "either", after: float = 0.0) -> bool:
        """Whether the crossing exists (the predicate form of :meth:`cross`)."""
        try:
            self.cross(level, direction=direction, after=after)
            return True
        except MeasurementError:
            return False

    def delay_to(
        self,
        other: "Waveform",
        level_self: float,
        level_other: float,
        direction_self: str = "either",
        direction_other: str = "either",
    ) -> float:
        """Trigger/target delay: ``other``'s crossing minus this one's."""
        t0 = self.cross(level_self, direction=direction_self)
        t1 = other.cross(level_other, direction=direction_other, after=t0)
        return t1 - t0

    def slew(self, low_frac: float = 0.1, high_frac: float = 0.9) -> float:
        """Rise/fall time between fractional levels of the full swing."""
        vmin, vmax = float(np.min(self.values)), float(np.max(self.values))
        if vmax - vmin < 1e-12:
            raise MeasurementError(f"waveform {self.name!r} is flat; slew undefined")
        lo = vmin + low_frac * (vmax - vmin)
        hi = vmin + high_frac * (vmax - vmin)
        t_lo = self.cross(lo)
        t_hi = self.cross(hi, after=t_lo)
        return t_hi - t_lo

    # ------------------------------------------------------------------
    # Extrema and algebra
    # ------------------------------------------------------------------

    def vmax(self) -> float:
        return float(np.max(self.values))

    def vmin(self) -> float:
        return float(np.min(self.values))

    def final(self) -> float:
        """Last sample value."""
        return float(self.values[-1])

    def __sub__(self, other: "Waveform") -> "Waveform":
        """Pointwise difference on the union grid (for differential signals)."""
        grid = np.union1d(self.times, other.times)
        lo = max(self.t_start, other.t_start)
        hi = min(self.t_stop, other.t_stop)
        grid = grid[(grid >= lo) & (grid <= hi)]
        if grid.size < 2:
            raise MeasurementError("waveforms do not overlap in time")
        a = np.interp(grid, self.times, self.values)
        b = np.interp(grid, other.times, other.values)
        return Waveform(grid, a - b, name=f"{self.name}-{other.name}")

    def __repr__(self) -> str:
        return (
            f"Waveform({self.name!r}, n={self.times.size}, "
            f"t=[{self.t_start:.3e}, {self.t_stop:.3e}], "
            f"v=[{self.vmin():.3f}, {self.vmax():.3f}])"
        )
