"""Command-line interface for the common extraction flows.

Four subcommands wrap the library's main entry points so a designer can
run the extractions without writing Python:

* ``read-sigma``  — gradient-IS extraction of the read-access failure
  sigma at a given spec (or a spec calibrated to a target sigma);
  ``--system`` runs the ten-dimensional system-level read (cell + sense
  amplifier) on the compiled batched path, with ``--sa-model`` choosing
  the latch offset extractor;
* ``write-sigma`` — same for the write-trip failure;
* ``sa-sigma``    — sense-amplifier offset failure sigma on the compiled
  latch (batched bisection);
* ``column-sigma``— read failure sigma of a *full column* (accessed cell
  plus leakers, one variation axis per transistor) on the compiled
  column with sparse assembly and structured solves;
* ``array-sigma`` — read failure sigma of a multi-column *array slice*
  (``--cols`` columns behind a shared bitline mux, the metric measured
  on the muxed data lines) on the compiled slice with the per-column
  Schur peel;
* ``serve``       — run the yield-estimation job service: the HTTP
  server over :mod:`repro.api` (``POST /v1/jobs`` …) with a bounded
  worker budget and the shared plan cache;
* ``snm``         — static noise margins of the cell;
* ``netlist-lint``— structural lint of the bench netlists plus (with
  ``--audit``) the compile-plan audit over every assembly/solver
  combination — the static gate CI runs before anything samples;
* ``compare``     — the full method-comparison table on one workload.

Examples::

    python -m repro.cli read-sigma --spec-ps 55
    python -m repro.cli read-sigma --spec-ps 60 --system --sa-model latch
    python -m repro.cli write-sigma --target-sigma 5 --vdd 0.9
    python -m repro.cli sa-sigma --spec-mv 80
    python -m repro.cli column-sigma --spec-ps 60 --leakers 15
    python -m repro.cli array-sigma --spec-ps 60 --cols 4 --leakers 15
    python -m repro.cli snm --vdd 0.8
    python -m repro.cli compare --target-sigma 4 --budget 4000
    python -m repro.cli read-sigma --spec-ps 55 --workers 4 --starts 4
    python -m repro.cli read-sigma --spec-ps 55 --json
    python -m repro.cli serve --port 8626 --service-workers 4

The sigma subcommands are thin shells over :mod:`repro.api` — the same
typed facade the HTTP service executes — so a CLI run, a library call
and a served job are bit-identical for the same workload, seed and
shard plan.  ``--json`` prints the facade's ``schema_version``-stamped
:class:`~repro.api.EstimateResult` envelope instead of the human
report: the exact document ``GET /v1/jobs/{id}`` returns under
``"result"``.

Parallelism: ``--workers N`` shards the sampling budget across ``N``
worker processes through :mod:`repro.engine` (per-shard RNG streams
spawned from one seed, shard accumulators merged exactly).  The shard
plan is pinned to ``--shards`` (default: ``--workers``), so results are
bit-identical for any worker count with the same ``--shards`` — e.g.
``--shards 4 --workers 1`` reproduces ``--shards 4 --workers 4`` on a
laptop with no free cores.

Fault tolerance: ``--retries N`` re-dispatches failed or lost shard
jobs, ``--shard-timeout S`` declares hung pooled attempts lost (and
recycles the pool), and ``--journal PATH`` checkpoints completed shards
so ``--resume`` replays them after an interruption.  All of it rides on
the shard-plan determinism above, so a retried or resumed run is
bit-identical to a fault-free one::

    python -m repro.cli array-sigma --spec-ps 60 --workers 4 \\
        --retries 2 --shard-timeout 300 --journal run.journal
    # interrupted? same command + --resume finishes the missing shards

Plan caching: ``--plan-cache DIR`` (or the ``REPRO_PLAN_CACHE``
environment variable) backs the sigma subcommands with a
content-addressed store of compiled transient plans, so a rerun with
the same circuit structure and compile options restores its plan —
re-audited on load — instead of recompiling.  Each run reports one
``plan cache`` hit/miss line.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.errors import ConfigError, JournalError

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    """Argparse type for counts that must be strictly positive.

    Raising :class:`argparse.ArgumentTypeError` makes argparse print the
    usage line plus a one-line error and exit with status 2 — a loud,
    traceback-free rejection of ``--cols 0`` or ``--leakers -3``.
    """
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if parsed <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {parsed}"
        )
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="High-sigma SRAM dynamic-characteristic extraction "
                    "(gradient importance sampling)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--vdd", type=float, default=1.0, help="supply voltage [V]")
        p.add_argument("--seed", type=int, default=0, help="random seed")
        p.add_argument("--budget", type=int, default=4000,
                       help="sampling budget (simulations)")
        p.add_argument("--rel-err", type=float, default=0.1,
                       help="target relative standard error")
        p.add_argument("--n-steps", type=int, default=400,
                       help="transient grid density of the batched engine")
        p.add_argument("--kernel", choices=("fast", "reference"), default="fast",
                       help="batched-engine integrator: the fused fast "
                            "kernel (default) or the reference per-device "
                            "loop (slower, maximally transparent)")
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for sharded sampling (and the "
                            "multi-start search stage); with --shards "
                            "pinned, changing only this never changes the "
                            "estimate")
        p.add_argument("--shards", type=int, default=None,
                       help="shard plan the estimate depends on (default: "
                            "follows --workers); pin this to reproduce a "
                            "run on any machine / worker count")
        p.add_argument("--starts", type=int, default=1,
                       help="gradient-search starts (multi-start covers "
                            "multiple failure regions; starts shard over "
                            "--workers)")
        p.add_argument("--retries", type=int, default=0,
                       help="re-dispatch a failed/lost/timed-out shard up "
                            "to this many extra times (same plan index, "
                            "stream and budget, so retried runs stay "
                            "bit-identical to fault-free ones)")
        p.add_argument("--shard-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="declare a pooled shard attempt lost after this "
                            "many seconds and recycle the worker pool "
                            "(combine with --retries to survive hung "
                            "workers)")
        p.add_argument("--journal", type=str, default=None, metavar="PATH",
                       help="checkpoint completed shards to PATH as they "
                            "finish, so an interrupted run can resume")
        p.add_argument("--resume", action="store_true",
                       help="with --journal: replay already-journaled "
                            "shards (after a plan audit) and execute only "
                            "the missing ones — bit-identical to an "
                            "uninterrupted run")
        p.add_argument("--plan-cache", type=str, default=None, metavar="DIR",
                       help="content-addressed store for compiled plans: "
                            "compile once, restore (audited) on later runs "
                            "with the same circuit structure and compile "
                            "options; REPRO_PLAN_CACHE is the environment "
                            "equivalent")
        p.add_argument("--json", action="store_true",
                       help="print the schema_version-stamped EstimateResult "
                            "JSON envelope (the service's result document) "
                            "instead of the human report")

    p_read = sub.add_parser("read-sigma", help="read-access failure sigma")
    common(p_read)
    group = p_read.add_mutually_exclusive_group(required=True)
    group.add_argument("--spec-ps", type=float, help="access-time spec [ps]")
    group.add_argument("--target-sigma", type=float,
                       help="calibrate the spec to this sigma first")
    p_read.add_argument("--system", action="store_true",
                        help="system-level read: ten variation axes (six "
                             "cell + four sense-amp); requires --spec-ps")
    p_read.add_argument("--sa-model", choices=("linear", "latch"),
                        default="linear",
                        help="with --system: sense-amp offset extractor — "
                             "the validated first-order model or batched "
                             "bisection on the compiled latch transient")

    p_write = sub.add_parser("write-sigma", help="write-trip failure sigma")
    common(p_write)
    group = p_write.add_mutually_exclusive_group(required=True)
    group.add_argument("--spec-ps", type=float, help="trip-time spec [ps]")
    group.add_argument("--target-sigma", type=float,
                       help="calibrate the spec to this sigma first")

    p_sa = sub.add_parser(
        "sa-sigma", help="sense-amp offset failure sigma (compiled latch)"
    )
    common(p_sa)
    p_sa.add_argument("--spec-mv", type=float, required=True,
                      help="input-referred offset spec [mV]")

    p_col = sub.add_parser(
        "column-sigma",
        help="column-level read failure sigma (accessed cell + leakers)",
    )
    common(p_col)
    p_col.add_argument("--spec-ps", type=float, required=True,
                       help="access-time spec [ps]")
    p_col.add_argument("--leakers", type=_positive_int, default=15,
                       help="unaccessed cells on the column (u-space has "
                            "6 * (leakers + 1) axes)")
    p_col.add_argument("--leaker-data", choices=("adversarial", "friendly"),
                       default="adversarial",
                       help="stored pattern of the unaccessed cells")
    p_col.add_argument("--assembly", choices=("auto", "dense", "sparse"),
                       default="auto",
                       help="compiler assembly pass: sparse scatter stamps "
                            "(auto above the node-count threshold) or the "
                            "dense incidence matmuls (cross-check)")

    p_arr = sub.add_parser(
        "array-sigma",
        help="array-slice read failure sigma (columns + shared bitline mux)",
    )
    common(p_arr)
    p_arr.add_argument("--spec-ps", type=float, required=True,
                       help="access-time spec on the muxed data lines [ps]")
    p_arr.add_argument("--cols", type=_positive_int, default=4,
                       help="read columns behind the shared mux (u-space "
                            "has 6 * cols * (leakers + 1) axes)")
    p_arr.add_argument("--leakers", type=_positive_int, default=15,
                       help="unaccessed cells per column")
    p_arr.add_argument("--leaker-data", choices=("adversarial", "friendly"),
                       default="adversarial",
                       help="stored pattern of the unaccessed cells")
    p_arr.add_argument("--assembly", choices=("auto", "dense", "sparse"),
                       default="auto",
                       help="compiler assembly pass: sparse scatter stamps "
                            "(auto above the node-count threshold) or the "
                            "dense incidence matmuls (cross-check)")
    p_arr.add_argument("--solver", choices=("auto", "schur", "blocked"),
                       default="auto",
                       help="fused-path linear solver: the per-column Schur "
                            "peel (auto on the array's bordered pattern) or "
                            "the generic guarded elimination (cross-check)")

    p_serve = sub.add_parser(
        "serve", help="run the yield-estimation job service (HTTP)"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind")
    p_serve.add_argument("--port", type=int, default=8626,
                         help="port to bind (0 picks a free one)")
    p_serve.add_argument("--service-workers", type=_positive_int, default=2,
                         metavar="N",
                         help="total worker budget shared by all jobs; a job "
                              "asking for more is granted fewer workers, "
                              "which never changes its estimate (the shard "
                              "plan is pinned by the request)")
    p_serve.add_argument("--queue-limit", type=_positive_int, default=64,
                         help="maximum unsettled jobs before submissions are "
                              "refused with 503/A007")
    p_serve.add_argument("--spool-dir", type=str, default=None, metavar="DIR",
                         help="directory settled jobs are journaled to "
                              "(default: a private temp dir, removed on "
                              "shutdown — the service never touches the cwd)")
    p_serve.add_argument("--plan-cache", type=str, default=None, metavar="DIR",
                         help="content-addressed compiled-plan store shared "
                              "by all jobs (REPRO_PLAN_CACHE is the "
                              "environment equivalent)")

    p_snm = sub.add_parser("snm", help="static noise margins (butterfly)")
    p_snm.add_argument("--vdd", type=float, default=1.0)

    p_lint = sub.add_parser(
        "netlist-lint",
        help="lint the bench netlists and (optionally) audit their "
             "compiled plans",
    )
    p_lint.add_argument(
        "--circuit",
        choices=("6t", "latch", "column", "write", "array", "read", "all"),
        default="all",
        help="which circuit to lint: a compiled bench, the example read "
             "testbench, or all of them",
    )
    p_lint.add_argument(
        "--audit", action="store_true",
        help="also run the compile-plan audit over every legal "
             "assembly/solver combination of each bench",
    )
    p_lint.add_argument(
        "--strict-warnings", action="store_true",
        help="treat warning-severity findings as failures too",
    )

    p_cmp = sub.add_parser("compare", help="all methods on one workload")
    common(p_cmp)
    p_cmp.add_argument("--target-sigma", type=float, default=4.0)
    p_cmp.add_argument("--mc-budget", type=int, default=100000)

    return parser


def _report(result, spec: float, extra: str = "") -> None:
    from repro.highsigma.sigma import array_yield

    lo, hi = result.ci()
    print(f"spec              : {spec*1e12:.2f} ps{extra}")
    print(f"p_fail            : {result.p_fail:.4e}  (CI95 [{lo:.3e}, {hi:.3e}])")
    print(f"sigma             : {result.sigma_level:.3f}")
    print(f"simulations       : {result.n_evals} "
          f"(search {result.diagnostics.get('search_evals', '?')}, "
          f"sampling {result.diagnostics.get('n_sampling', '?')})")
    print(f"converged         : {result.converged}")
    if 0 < result.p_fail < 1:
        y = array_yield(result.p_fail, 1 << 20)
        print(f"1 Mb zero-repair  : {100*y:.2f} % yield")


def _make_runner(args):
    """Build the fault-tolerant runner the CLI flags describe (or None).

    The returned runner is persistent (one pool amortised across the
    estimator's rounds) and owns a retry policy and, with ``--journal``,
    a :class:`~repro.engine.journal.RunJournal`.  The caller must close
    it (see :func:`_finish_runner`).
    """
    from repro.engine.journal import RunJournal
    from repro.engine.sharding import RetryPolicy, ShardedRunner, resolve_shards

    if args.retries < 0:
        raise ConfigError(f"--retries must be >= 0, got {args.retries}")
    if args.resume and not args.journal:
        raise ConfigError("--resume requires --journal PATH")
    if args.retries == 0 and args.shard_timeout is None and not args.journal:
        return None
    if args.journal and resolve_shards(args.shards, args.workers) < 2:
        raise ConfigError(
            "--journal needs a shard plan to checkpoint: set --shards >= 2 "
            "(or --workers >= 2)"
        )
    journal = RunJournal(args.journal, resume=args.resume) if args.journal else None
    retry = RetryPolicy(max_attempts=args.retries + 1, timeout=args.shard_timeout)
    return ShardedRunner(
        workers=args.workers, persistent=True, retry=retry, journal=journal
    )


def _finish_runner(runner) -> None:
    if runner is not None:
        runner.close()
        if runner.journal is not None:
            runner.journal.close()


def _report_faults(runner) -> None:
    if runner is None:
        return
    s = runner.fault_stats
    if any(
        s[k]
        for k in ("retries", "timeouts", "worker_deaths", "pool_recycles", "replayed")
    ):
        print(
            f"fault tolerance   : retries {s['retries']}, "
            f"timeouts {s['timeouts']}, "
            f"worker deaths {s['worker_deaths']}, "
            f"pool recycles {s['pool_recycles']}, "
            f"journal replays {s['replayed']}"
        )


def _setup_plan_cache(args):
    """Activate the compiled-plan cache the flags describe; returns it.

    Runs before the limit state is built — that is where the compiles
    happen.  ``--plan-cache DIR`` replaces the process default with one
    backed by DIR (an unwritable DIR is a :class:`ConfigError`, reported
    like any other flag conflict); otherwise the lazy default applies,
    which reads ``REPRO_PLAN_CACHE`` on first use.
    """
    from repro.spice.plan import configure_default_plan_cache, default_plan_cache

    if getattr(args, "plan_cache", None):
        return configure_default_plan_cache(cache_dir=args.plan_cache)
    return default_plan_cache()


def _report_plan_cache(cache) -> None:
    s = cache.stats
    print(
        f"plan cache        : hits {s['mem_hits']} memory / "
        f"{s['disk_hits']} disk, misses {s['misses']}, stale {s['stale']}"
    )


def _run_request(args, workload: str, spec: float, knobs: dict):
    """Execute one sigma subcommand through the :mod:`repro.api` facade.

    Builds the same :class:`~repro.api.EstimateRequest` the HTTP service
    would run, attaches the CLI-owned fault-tolerant runner when the
    flags ask for one (journaling is a CLI-only concern, so the runner
    is built here and handed in), and returns ``(result, runner)``.
    """
    from repro import api

    request = api.EstimateRequest(
        workload=workload, spec=spec, method="gis", seed=args.seed,
        budget=args.budget, rel_err=args.rel_err, n_starts=args.starts,
        workers=args.workers, n_shards=args.shards, retries=args.retries,
        shard_timeout=args.shard_timeout, knobs=knobs,
    )
    runner = _make_runner(args)
    try:
        result = api.estimate(request, runner=runner)
    finally:
        _finish_runner(runner)
    return result, runner


def _emit_json(result) -> int:
    import json

    print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    return 0


def _run_sigma(args, kind: str) -> int:
    from repro.experiments.workloads import (
        calibrate_read_spec,
        calibrate_write_spec,
    )

    plan_cache = _setup_plan_cache(args)
    calibrate = calibrate_read_spec if kind == "read" else calibrate_write_spec
    system = kind == "read" and getattr(args, "system", False)

    if args.spec_ps is not None:
        spec = args.spec_ps * 1e-12
        note = ""
    else:
        if system:
            print("error: --system needs an explicit --spec-ps "
                  "(calibration runs on the single-cell workload)")
            return 2
        if not args.json:
            print(f"calibrating {kind} spec for {args.target_sigma:g} sigma ...")
        spec = calibrate(
            args.target_sigma, n_steps=args.n_steps, vdd=args.vdd, kernel=args.kernel
        )
        note = f"  (calibrated for {args.target_sigma:g} sigma)"

    if system:
        workload = "system-read"
        knobs = {"vdd": args.vdd, "n_steps": args.n_steps,
                 "kernel": args.kernel, "sa_model": args.sa_model}
        note += f"  (system-level, sa={args.sa_model})"
    else:
        workload = kind
        knobs = {"vdd": args.vdd, "n_steps": args.n_steps, "kernel": args.kernel}
    result, runner = _run_request(args, workload, spec, knobs)
    if args.json:
        return _emit_json(result)
    _report(result, spec, note)
    _report_faults(runner)
    _report_plan_cache(plan_cache)
    return 0


def _run_sa_sigma(args) -> int:
    from repro.highsigma.sigma import array_yield

    plan_cache = _setup_plan_cache(args)
    spec = args.spec_mv * 1e-3
    # The latch keeps its own grid density (--n-steps targets the 6T
    # engine's much longer window), so n_steps is deliberately not
    # forwarded.  The bisection-matched MPFP tolerances ride along as
    # the workload's registered estimator options.
    knobs = {"vdd": args.vdd, "kernel": args.kernel}
    result, runner = _run_request(args, "sa-offset", spec, knobs)
    if args.json:
        return _emit_json(result)
    lo, hi = result.ci()
    print(f"offset spec       : {args.spec_mv:.1f} mV")
    print(f"p_fail            : {result.p_fail:.4e}  (CI95 [{lo:.3e}, {hi:.3e}])")
    print(f"sigma             : {result.sigma_level:.3f}")
    print(f"simulations       : {result.n_evals} "
          f"(search {result.diagnostics.get('search_evals', '?')}, "
          f"sampling {result.diagnostics.get('n_sampling', '?')})")
    print(f"converged         : {result.converged}")
    if 0 < result.p_fail < 1:
        y = array_yield(result.p_fail, 1 << 20)
        print(f"1 Mb zero-repair  : {100*y:.2f} % yield")
    _report_faults(runner)
    _report_plan_cache(plan_cache)
    return 0


def _run_column_sigma(args) -> int:
    plan_cache = _setup_plan_cache(args)
    spec = args.spec_ps * 1e-12
    knobs = {"n_leakers": args.leakers, "leaker_data": args.leaker_data,
             "vdd": args.vdd, "n_steps": args.n_steps, "kernel": args.kernel,
             "assembly": args.assembly}
    result, runner = _run_request(args, "column-read", spec, knobs)
    if args.json:
        return _emit_json(result)
    _report(result, spec, f"  (column, {args.leakers} leakers, "
                          f"dim {result.dim})")
    _report_faults(runner)
    _report_plan_cache(plan_cache)
    return 0


def _run_array_sigma(args) -> int:
    plan_cache = _setup_plan_cache(args)
    spec = args.spec_ps * 1e-12
    knobs = {"n_cols": args.cols, "n_leakers": args.leakers,
             "leaker_data": args.leaker_data, "vdd": args.vdd,
             "n_steps": args.n_steps, "kernel": args.kernel,
             "assembly": args.assembly, "solver": args.solver}
    result, runner = _run_request(args, "array-read", spec, knobs)
    if args.json:
        return _emit_json(result)
    _report(result, spec, f"  (array, {args.cols} cols x "
                          f"{args.leakers + 1} cells, dim {result.dim})")
    _report_faults(runner)
    _report_plan_cache(plan_cache)
    return 0


def _run_serve(args) -> int:
    from repro.service import ServiceApp
    from repro.service.http import serve

    _setup_plan_cache(args)
    app = ServiceApp(
        workers_total=args.service_workers,
        queue_limit=args.queue_limit,
        spool_dir=args.spool_dir,
    )

    def ready(server):
        host, port = server.server_address[:2]
        print(f"serving on http://{host}:{port}  "
              f"(workers {args.service_workers}, "
              f"queue limit {args.queue_limit}, "
              f"spool {app.store.spool_dir})")

    serve(app, host=args.host, port=args.port, ready=ready)
    return 0


def _run_snm(args) -> int:
    from repro.sram.statics import butterfly_snm

    hold = butterfly_snm(vdd=args.vdd, mode="hold")
    read = butterfly_snm(vdd=args.vdd, mode="read")
    print(f"VDD      : {args.vdd:.2f} V")
    print(f"hold SNM : {hold*1e3:.1f} mV")
    print(f"read SNM : {read*1e3:.1f} mV")
    return 0


def _run_netlist_lint(args) -> int:
    from repro.spice.audit import audit_plan
    from repro.spice.diagnostics import lint_circuit
    from repro.sram.benches import (
        BENCH_NAMES,
        bench_compiled,
        bench_solver_choices,
    )

    names = (
        list(BENCH_NAMES) + ["read"] if args.circuit == "all"
        else [args.circuit]
    )
    bad = {"error", "warning"} if args.strict_warnings else {"error"}
    n_failed = 0
    for name in names:
        if name == "read":
            from repro.sram.testbench import ReadTestbench

            circuit, probes, cts = ReadTestbench().circuit, (), []
        else:
            ct = bench_compiled(name)
            circuit = ct.circuit
            probes = (*ct._cross_probes, *ct._peak_probes, *ct._value_probes)
            cts = [ct]
            if args.audit:
                cts = [
                    bench_compiled(name, assembly=assembly, solver=solver)
                    for assembly in ("dense", "sparse")
                    for solver in bench_solver_choices(name)
                ]
        diags = list(lint_circuit(circuit, probes=probes))
        audited = 0
        for audit_ct in cts if args.audit else []:
            diags += audit_plan(audit_ct)
            audited += 1
        failing = [d for d in diags if d.severity in bad]
        n_failed += bool(failing)
        status = "FAIL" if failing else "ok"
        suffix = f", {audited} plan audits" if args.audit else ""
        print(f"{name:7s}: {status}  ({len(diags)} findings{suffix})")
        for d in diags:
            print(f"  {d}")
    return 1 if n_failed else 0


def _run_compare(args) -> int:
    from repro.experiments.runners import default_methods, run_comparison
    from repro.experiments.tables import render_table
    from repro.experiments.workloads import (
        Workload,
        calibrate_read_spec,
        make_read_limitstate,
    )

    print(f"calibrating read spec for {args.target_sigma:g} sigma ...")
    spec = calibrate_read_spec(
        args.target_sigma, n_steps=args.n_steps, vdd=args.vdd, kernel=args.kernel
    )
    wl = Workload(
        name=f"read-{args.target_sigma:g}s",
        make=lambda: make_read_limitstate(
            spec, vdd=args.vdd, n_steps=args.n_steps, kernel=args.kernel
        ),
        exact_pfail=None,
        dim=6,
    )
    methods = default_methods(
        n_max=args.budget, target_rel_err=args.rel_err, mc_budget=args.mc_budget,
        workers=args.workers, n_shards=args.shards,
    )
    rows = run_comparison(wl, methods, seeds=(args.seed,))
    print(render_table(
        rows,
        ["method", "p_fail", "sigma", "rel_err", "n_evals", "speedup_vs_mc",
         "converged", "error"],
        title=f"read @ {spec*1e12:.1f} ps, VDD {args.vdd:g} V",
    ))
    return 0


def main(argv: Optional[list] = None) -> int:
    """Entry point (also exposed as ``python -m repro.cli``)."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "read-sigma":
            return _run_sigma(args, "read")
        if args.command == "write-sigma":
            return _run_sigma(args, "write")
        if args.command == "sa-sigma":
            return _run_sa_sigma(args)
        if args.command == "column-sigma":
            return _run_column_sigma(args)
        if args.command == "array-sigma":
            return _run_array_sigma(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "snm":
            return _run_snm(args)
        if args.command == "netlist-lint":
            return _run_netlist_lint(args)
        if args.command == "compare":
            return _run_compare(args)
    except ConfigError as exc:
        # Semantic flag conflicts (e.g. --resume without --journal) exit
        # like argparse rejections: one readable line, status 2.
        print(f"error: {exc}")
        return 2
    except JournalError as exc:
        # A refused resume (D005–D007: the journal was recorded under a
        # different plan) is a usage error, not a crash: the diagnostic
        # already names the mismatch and the fix.
        print(f"error: {exc}")
        return 2
    raise ConfigError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
