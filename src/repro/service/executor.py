"""The job executor: bounded worker budget + single-flight compilation.

Two concerns live here, both about *how much* runs at once — never
about *what* a job computes (that is pinned by the request's seed and
shard plan before the executor ever sees it):

* **Worker budget.**  The service owns ``workers_total`` workers.  A
  job asking for ``workers=k`` is granted ``min(k, workers_total)``
  worker tokens, acquired all-or-nothing from a counted budget, so
  concurrent jobs share the machine instead of oversubscribing it.
  Granting fewer workers than requested cannot change an estimate —
  ``n_shards`` was resolved from the *request* at prepare time and the
  shard plan, not the worker count, is what the estimate depends on.

* **Single-flight compilation.**  :func:`repro.api.prepare` (which
  warms the limit state through the plan cache) runs under one lock.
  N concurrent submissions of the same circuit shape therefore incur
  exactly one plan-cache miss: the first compiles and stores, the rest
  hit the memory tier.  The sampling phase runs outside the lock, so
  only the cheap compile step is serialized.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro import api
from repro.errors import ReproError, RequestError
from repro.service.jobs import Job, JobStore

__all__ = ["JobExecutor", "WorkerBudget"]


class WorkerBudget:
    """A counted budget with all-or-nothing acquisition.

    Unlike a semaphore acquired token by token, :meth:`acquire` blocks
    until *all* ``n`` tokens are free and takes them atomically — two
    jobs can never deadlock holding partial grants of each other's
    workers.
    """

    def __init__(self, total: int):
        if int(total) < 1:
            raise RequestError(f"worker budget must be >= 1, got {total!r}", code="A003")
        self.total = int(total)
        self._available = int(total)
        self._cond = threading.Condition()

    @property
    def available(self) -> int:
        with self._cond:
            return self._available

    def acquire(self, n: int) -> None:
        with self._cond:
            while self._available < n:
                self._cond.wait()
            self._available -= n

    def release(self, n: int) -> None:
        with self._cond:
            self._available += n
            self._cond.notify_all()


class JobExecutor:
    """Run jobs from a :class:`~repro.service.jobs.JobStore` on a
    bounded pool.

    Parameters
    ----------
    store:
        The job store submissions land in.
    workers_total:
        The service's worker budget; also the size of the job thread
        pool (a running job holds at least one worker token, so more
        job threads than tokens could never all make progress).
    queue_limit:
        Maximum number of unsettled jobs (queued + running) accepted at
        once; submissions beyond it are refused with ``A007`` so
        clients see backpressure instead of an unbounded queue.
    """

    def __init__(
        self,
        store: JobStore,
        workers_total: int = 2,
        queue_limit: int = 64,
    ):
        if int(queue_limit) < 1:
            raise RequestError(
                f"queue_limit must be >= 1, got {queue_limit!r}", code="A003"
            )
        self.store = store
        self.budget = WorkerBudget(workers_total)
        self.queue_limit = int(queue_limit)
        self._compile_lock = threading.Lock()
        self._submit_lock = threading.Lock()
        self._accepting = True
        self._pool = ThreadPoolExecutor(
            max_workers=self.budget.total, thread_name_prefix="repro-job"
        )

    # -- submission ----------------------------------------------------

    def submit(self, request: api.EstimateRequest) -> Job:
        """Validate eagerly, register and enqueue one request.

        Raises :class:`~repro.errors.RequestError`: ``A00x`` validation
        codes from the request itself, or ``A007`` when the service is
        shutting down or the queue is full.
        """
        request.validate()
        with self._submit_lock:
            if not self._accepting:
                raise RequestError(
                    "service is shutting down and refuses new jobs", code="A007"
                )
            counts = self.store.counts()
            if counts["queued"] + counts["running"] >= self.queue_limit:
                raise RequestError(
                    f"job queue is full ({self.queue_limit} unsettled jobs)",
                    code="A007",
                )
            job = self.store.create(request)
        self._pool.submit(self._run_job, job)
        return job

    # -- the job body --------------------------------------------------

    def _run_job(self, job: Job) -> None:
        granted = min(job.request.workers, self.budget.total)
        self.budget.acquire(granted)
        try:
            if not self.store.mark_running(job, granted):
                return  # cancelled while queued
            try:
                with self._compile_lock:
                    t0 = time.perf_counter()
                    prepared = api.prepare(job.request)
                    job.prepare_s = round(time.perf_counter() - t0, 6)
                result = prepared.run(workers=granted)
            except ReproError as exc:
                self.store.mark_failed(job, _error_payload(exc))
                return
            self.store.mark_done(job, result)
        finally:
            self.budget.release(granted)

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` payload: budget, queue, cache, faults."""
        from repro.spice.plan import default_plan_cache

        counts = self.store.counts()
        fault_stats: Dict[str, int] = {}
        for job in self.store.jobs():
            if job.result is not None:
                for key, value in job.result.fault_stats.items():
                    fault_stats[key] = fault_stats.get(key, 0) + int(value)
        return {
            "accepting": self._accepting,
            "workers_total": self.budget.total,
            "workers_available": self.budget.available,
            "queue_limit": self.queue_limit,
            "queue_depth": counts["queued"],
            "running": counts["running"],
            "jobs": counts,
            "plan_cache": dict(default_plan_cache().stats),
            "fault_stats": fault_stats,
        }

    # -- shutdown ------------------------------------------------------

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting and settle every job.

        ``drain=True`` lets queued jobs run to completion;
        ``drain=False`` cancels everything still queued (running jobs
        always finish — killing a half-done estimation buys nothing and
        costs the shards already computed).  Idempotent.
        """
        with self._submit_lock:
            self._accepting = False
        if not drain:
            for job in self.store.jobs():
                self.store.mark_cancelled(job, "service shut down before the job ran")
        self._pool.shutdown(wait=True)


def _error_payload(exc: ReproError) -> Dict[str, Any]:
    """A failed job's structured error record."""
    payload: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    code = getattr(exc, "code", None)
    if code is not None:
        payload["code"] = code
    return payload
