"""Transport adapters: stdlib sockets (and optionally ASGI) over the app.

The service core is transport-free (:class:`~repro.service.app.ServiceApp`
is a function from ``(method, path, body)`` to ``(status, payload)``),
so this module only has to move bytes: a ``ThreadingHTTPServer``
handler for ``repro.cli serve`` — zero dependencies beyond the standard
library, per the project rule that tier-1 functionality never grows
hard third-party requirements — and a minimal ASGI callable for anyone
who prefers to mount the app under an external ASGI server (uvicorn
etc.); the ASGI adapter is plain-function, so no ASGI package is
imported here either.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional, Tuple

from repro.service.app import ServiceApp
from repro.service.schemas import error_body

__all__ = ["make_server", "serve", "asgi_app"]

_MAX_BODY_BYTES = 1 << 20  # a request envelope is small; refuse abuse early


def _dispatch_raw(app: ServiceApp, method: str, path: str, raw: bytes) -> Tuple[int, bytes]:
    """Decode → handle → encode; byte-level mirror of ``handle_json``."""
    if raw:
        try:
            body: Any = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            status, payload = 400, error_body("A005", f"request body is not JSON: {exc}")
            return status, json.dumps(payload).encode("utf-8")
    else:
        body = None
    status, payload = app.handle_json(method, path, body)
    return status, json.dumps(payload).encode("utf-8")


def make_server(app: ServiceApp, host: str = "127.0.0.1", port: int = 8626) -> ThreadingHTTPServer:
    """A bound (not yet serving) threaded HTTP server over ``app``.

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()`` + ``server_close()`` to stop, then ``app.close()``
    to drain the executor.  Returned unstarted so tests can bind port 0
    and read the real port back before serving.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # The service speaks JSON only; default request logging to the
        # server's stderr stream is noise under load, so keep it quiet.

        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            pass

        def _respond(self) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            if length > _MAX_BODY_BYTES:
                status, body = 400, json.dumps(
                    error_body("A005", f"request body exceeds {_MAX_BODY_BYTES} bytes")
                ).encode("utf-8")
            else:
                raw = self.rfile.read(length) if length else b""
                status, body = _dispatch_raw(app, self.command, self.path, raw)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        do_GET = _respond
        do_POST = _respond
        do_DELETE = _respond

    return ThreadingHTTPServer((host, port), Handler)


def serve(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8626,
    ready: Optional[Callable[[ThreadingHTTPServer], None]] = None,
) -> None:
    """Run the blocking serve loop (the ``repro.cli serve`` body).

    ``ready`` is called with the bound server before serving starts —
    the hook tests and the CLI use to report the listening address.
    Ctrl-C shuts down gracefully: stop accepting, drain, exit.
    """
    server = make_server(app, host=host, port=port)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        app.close(drain=True)


def asgi_app(app: ServiceApp) -> Callable[..., Any]:
    """Wrap the service as an ASGI 3 callable (optional integration).

    Lets ``uvicorn`` (or any ASGI server the *user* installs — nothing
    here imports one) mount the same routes:
    ``uvicorn.run(asgi_app(ServiceApp()))``.
    """

    async def application(scope: dict, receive: Callable[..., Any], send: Callable[..., Any]) -> None:
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    app.close(drain=True)
                    await send({"type": "lifespan.shutdown.complete"})
                    return
        if scope["type"] != "http":
            return
        raw = b""
        while True:
            message = await receive()
            raw += message.get("body", b"")
            if not message.get("more_body"):
                break
        status, body = _dispatch_raw(app, scope["method"], scope["path"], raw)
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (b"content-type", b"application/json"),
                    (b"content-length", str(len(body)).encode("ascii")),
                ],
            }
        )
        await send({"type": "http.response.body", "body": body})

    return application
