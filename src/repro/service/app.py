"""The transport-free service core and its in-process client.

:class:`ServiceApp` is the whole HTTP surface expressed as one pure-ish
function, ``handle_json(method, path, body) -> (status, payload)`` —
no sockets, no framework, no event loop.  The stdlib socket adapter in
:mod:`repro.service.http` and the in-process :class:`ServiceClient`
(tests, bench, load tool) both call it, so everything observable about
the service is exercised without binding a port.

Routes::

    GET    /v1/healthz      liveness + accepting flag
    GET    /v1/stats        worker budget, queue, plan-cache, faults
    GET    /v1/workloads    registered workload specs (the A001 hint)
    POST   /v1/jobs         submit an EstimateRequest envelope  (202)
    GET    /v1/jobs         list jobs
    GET    /v1/jobs/{id}    poll one job
    DELETE /v1/jobs/{id}    cancel while queued (idempotent)

Error contract: every non-2xx body is ``{"error": {"code", "message",
"hint"}}`` with a stable ``A0xx`` code — validation failures are 400,
unknown ids/routes 404, refused submissions (shutdown, queue full) 503.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

from repro import api
from repro.errors import EstimationError, RequestError
from repro.service.executor import JobExecutor
from repro.service.jobs import JobStore
from repro.service.schemas import error_body, error_from, job_envelope

__all__ = ["ServiceApp", "ServiceClient"]

Response = Tuple[int, Dict[str, Any]]


class ServiceApp:
    """The job service: routing over a store and an executor.

    Parameters mirror the ``repro.cli serve`` flags: ``workers_total``
    is the machine budget shared by all jobs, ``queue_limit`` the
    backpressure bound, ``spool_dir`` the (cwd-independent) directory
    settled jobs are journaled to.
    """

    def __init__(
        self,
        workers_total: int = 2,
        queue_limit: int = 64,
        spool_dir: Optional[object] = None,
        store: Optional[JobStore] = None,
        executor: Optional[JobExecutor] = None,
    ):
        self.store = store if store is not None else JobStore(spool_dir=spool_dir)
        self.executor = (
            executor
            if executor is not None
            else JobExecutor(self.store, workers_total=workers_total, queue_limit=queue_limit)
        )

    # -- the single entry point ----------------------------------------

    def handle_json(self, method: str, path: str, body: Any = None) -> Response:
        """Dispatch one request; returns ``(http_status, json_payload)``.

        Never raises for request-shaped problems — those become the
        structured 4xx/503 bodies the wire contract promises.  Only
        genuine programming errors escape.
        """
        method = method.upper()
        path = path.rstrip("/") or "/"
        if path == "/v1/healthz" and method == "GET":
            return 200, {"status": "ok", "accepting": self.executor.stats()["accepting"]}
        if path == "/v1/stats" and method == "GET":
            return 200, self.executor.stats()
        if path == "/v1/workloads" and method == "GET":
            return 200, {"workloads": [w.to_json() for w in api.list_workloads()]}
        if path == "/v1/jobs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return 200, {"jobs": [job_envelope(j) for j in self.store.jobs()]}
            return 405, error_body("A006", f"method {method} not allowed on {path}")
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            if "/" not in job_id and job_id:
                return self._job_route(method, job_id)
        return 404, error_body("A006", f"no route {method} {path}")

    # -- route bodies --------------------------------------------------

    def _submit(self, body: Any) -> Response:
        try:
            request = api.EstimateRequest.from_json(body)
            job = self.executor.submit(request)
        except RequestError as exc:
            status = 503 if exc.code == "A007" else 400
            return status, error_from(exc)
        return 202, job_envelope(job)

    def _job_route(self, method: str, job_id: str) -> Response:
        job = self.store.get(job_id)
        if job is None:
            return 404, error_body("A006", f"unknown job id {job_id!r}")
        if method == "GET":
            return 200, job_envelope(job)
        if method == "DELETE":
            # Cancel-if-queued, report-current-state otherwise: DELETE
            # is idempotent and never errors on a job that already ran.
            self.store.mark_cancelled(job, "cancelled by client")
            return 200, job_envelope(job)
        return 405, error_body("A006", f"method {method} not allowed on job {job_id!r}")

    # -- lifecycle -----------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Shut down: stop accepting, drain (or cancel) queued jobs,
        settle everything, remove an owned spool directory."""
        self.executor.shutdown(drain=drain)
        self.store.close()


class ServiceClient:
    """In-process client: the service's test/bench/loadtest interface.

    Speaks the exact wire contract (same envelopes, same status codes)
    without sockets, so anything measured through it — validation
    behaviour, submit latency, QPS — transfers to the HTTP adapter
    modulo transport cost.
    """

    def __init__(self, app: ServiceApp):
        self.app = app

    def get(self, path: str) -> Response:
        return self.app.handle_json("GET", path)

    def post(self, path: str, body: Any = None) -> Response:
        return self.app.handle_json("POST", path, body)

    def delete(self, path: str) -> Response:
        return self.app.handle_json("DELETE", path)

    # -- conveniences over the raw verbs -------------------------------

    def submit(self, request: "api.EstimateRequest | Dict[str, Any]") -> Dict[str, Any]:
        """Submit; returns the job envelope or raises the typed error
        the service refused with (code preserved)."""
        body = request.to_json() if isinstance(request, api.EstimateRequest) else request
        status, payload = self.post("/v1/jobs", body)
        if status != 202:
            error = payload.get("error", {})
            raise RequestError(
                error.get("message", f"submission refused with HTTP {status}"),
                code=error.get("code"),
            )
        return payload

    def wait(self, job_id: str, timeout: float = 120.0, poll_s: float = 0.01) -> Dict[str, Any]:
        """Poll until the job settles; returns its final envelope."""
        deadline = time.monotonic() + timeout
        while True:
            status, payload = self.get(f"/v1/jobs/{job_id}")
            if status != 200:
                error = payload.get("error", {})
                raise RequestError(
                    error.get("message", f"poll failed with HTTP {status}"),
                    code=error.get("code"),
                )
            if payload["status"] in ("done", "failed", "cancelled"):
                return payload
            if time.monotonic() >= deadline:
                raise EstimationError(
                    f"job {job_id} did not settle within {timeout:.1f}s "
                    f"(status {payload['status']!r})"
                )
            time.sleep(poll_s)

    def estimate(self, request: api.EstimateRequest, timeout: float = 120.0) -> api.EstimateResult:
        """Submit + wait + parse: the blocking one-call path.

        Raises :class:`~repro.errors.EstimationError` when the job
        failed server-side (the error payload is in the message).
        """
        envelope = self.submit(request)
        final = self.wait(envelope["job_id"], timeout=timeout)
        if final["status"] != "done":
            raise EstimationError(
                f"job {final['job_id']} settled as {final['status']!r}: "
                f"{final.get('error')}"
            )
        return api.EstimateResult.from_json(final["result"])
