"""Job records and the thread-safe job store.

A :class:`Job` is one submitted estimation request plus its lifecycle
state; the :class:`JobStore` keeps every job in memory (behind one lock
— handler threads and executor threads both touch it) and spools
settled jobs to disk as JSON, one ``<job_id>.json`` per job.

The spool directory is **cwd-independent** by construction: when no
directory is configured the store creates a private one under the
system temp root and removes it on :meth:`JobStore.close`.  A
configured directory is probed for writability up front and refused
with a typed :class:`~repro.errors.ConfigError` — the same pattern the
plan cache uses — so a service pointed at a read-only volume fails at
startup, not at the first settled job.
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.api import EstimateRequest, EstimateResult
from repro.errors import ConfigError

__all__ = ["Job", "JobStore", "JOB_STATUSES"]

#: Lifecycle states a job moves through.  ``queued -> running`` and
#: then exactly one of ``done`` / ``failed``; ``cancelled`` is reachable
#: only from ``queued`` (a running estimation is never killed mid-flight
#: — its shards would be wasted work either way).
JOB_STATUSES: Tuple[str, ...] = ("queued", "running", "done", "failed", "cancelled")

_TERMINAL = frozenset({"done", "failed", "cancelled"})


@dataclass
class Job:
    """One submitted request and everything that happened to it."""

    job_id: str
    request: EstimateRequest
    status: str = "queued"
    submitted_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    granted_workers: Optional[int] = None
    #: Wall time of the prepare phase (validation + limit-state build +
    #: warmup through the plan cache), measured inside the executor's
    #: compile lock but excluding the wait for it — so a warm job shows
    #: the cache hit, not the queueing behind the cold job's compile.
    prepare_s: Optional[float] = None
    result: Optional[EstimateResult] = None
    error: Optional[Dict[str, Any]] = None

    @property
    def settled(self) -> bool:
        return self.status in _TERMINAL

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "job_id": self.job_id,
            "status": self.status,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "granted_workers": self.granted_workers,
            "prepare_s": self.prepare_s,
            "request": self.request.to_json(),
        }
        if self.result is not None:
            doc["result"] = self.result.to_json()
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobStore:
    """Thread-safe registry of jobs with an on-disk spool.

    Parameters
    ----------
    spool_dir:
        Directory settled-job JSON is written to.  ``None`` (the
        default) creates a private directory under the system temp root
        — owned by the store and removed by :meth:`close` — so the
        service never depends on, or litters, the caller's cwd.
    """

    def __init__(self, spool_dir: Optional[object] = None):
        self._lock = threading.Lock()
        self._jobs: "Dict[str, Job]" = {}
        self._order: List[str] = []
        self._counter = itertools.count(1)
        self._owns_spool = spool_dir is None
        if spool_dir is None:
            self.spool_dir = Path(tempfile.mkdtemp(prefix="repro-service-"))
        else:
            path = Path(spool_dir)
            try:
                path.mkdir(parents=True, exist_ok=True)
                probe = path / ".write-probe"
                probe.write_bytes(b"")
                probe.unlink()
            except OSError as exc:
                raise ConfigError(
                    f"job store: spool dir {str(path)!r} is not writable: {exc}"
                ) from exc
            self.spool_dir = path

    # -- creation and lookup -------------------------------------------

    def create(self, request: EstimateRequest) -> Job:
        """Register a new queued job for ``request``."""
        with self._lock:
            job = Job(job_id=f"job-{next(self._counter):06d}", request=request)
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All jobs in submission order (a snapshot)."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> Dict[str, int]:
        """Job counts by status (every status present, zeros included)."""
        counts = {status: 0 for status in JOB_STATUSES}
        with self._lock:
            for job in self._jobs.values():
                counts[job.status] += 1
        return counts

    # -- lifecycle transitions -----------------------------------------

    def mark_running(self, job: Job, granted_workers: int) -> bool:
        """``queued -> running``; False when the job was cancelled first."""
        with self._lock:
            if job.status != "queued":
                return False
            job.status = "running"
            job.started_s = time.time()
            job.granted_workers = int(granted_workers)
            return True

    def mark_done(self, job: Job, result: EstimateResult) -> None:
        with self._lock:
            job.status = "done"
            job.finished_s = time.time()
            job.result = result
        self._spool(job)

    def mark_failed(self, job: Job, error: Dict[str, Any]) -> None:
        with self._lock:
            job.status = "failed"
            job.finished_s = time.time()
            job.error = dict(error)
        self._spool(job)

    def mark_cancelled(self, job: Job, reason: str) -> bool:
        """``queued -> cancelled``; False when already running/settled."""
        with self._lock:
            if job.status != "queued":
                return False
            job.status = "cancelled"
            job.finished_s = time.time()
            job.error = {"code": "A007", "message": reason}
        self._spool(job)
        return True

    # -- spool ----------------------------------------------------------

    def _spool(self, job: Job) -> None:
        path = self.spool_dir / f"{job.job_id}.json"
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            tmp.write_text(json.dumps(job.to_json(), sort_keys=True) + "\n")
            os.replace(tmp, path)
        except OSError as exc:
            # The spool is an audit trail, not the source of truth (the
            # in-memory record is).  Losing one write after the startup
            # probe passed means the volume changed under us — surface
            # it as the same typed error a bad configuration gets.
            raise ConfigError(
                f"job store: cannot spool {str(path)!r}: {exc}"
            ) from exc

    def close(self) -> None:
        """Remove the spool directory if this store created it."""
        if self._owns_spool:
            shutil.rmtree(self.spool_dir, ignore_errors=True)
