"""Response envelopes the service serves.

The request/result schemas themselves live in :mod:`repro.api` (they
are the facade's, not the service's — the whole point is one schema
across CLI, library and HTTP).  What belongs here is the thin envelope
layer unique to the wire: the structured error body 4xx/5xx responses
carry, and the job envelope ``/v1/jobs`` wraps around them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import DiagnosticError, ReproError
from repro.service.jobs import Job
from repro.spice.diagnostics import DIAGNOSTIC_CODES

__all__ = ["error_body", "error_from", "job_envelope"]


def error_body(code: str, message: str, hint: Optional[str] = None) -> Dict[str, Any]:
    """The structured error payload: stable code, message, fix hint.

    ``hint`` defaults to the registered fix-hint for ``code`` so every
    4xx body tells the caller what to change, not just what was wrong.
    """
    if hint is None:
        registered = DIAGNOSTIC_CODES.get(code)
        hint = registered[1] if registered else None
    body: Dict[str, Any] = {"error": {"code": code, "message": message}}
    if hint:
        body["error"]["hint"] = hint
    return body


def error_from(exc: ReproError, fallback_code: str = "A005") -> Dict[str, Any]:
    """An error body from a typed exception (code-carrying or not)."""
    code = getattr(exc, "code", None) if isinstance(exc, DiagnosticError) else None
    return error_body(code or fallback_code, str(exc))


def job_envelope(job: Job) -> Dict[str, Any]:
    """The ``/v1/jobs`` representation of one job."""
    return job.to_json()
