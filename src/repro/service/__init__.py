"""The yield-estimation job service.

A small, dependency-free HTTP job server over :mod:`repro.api`: clients
``POST`` an :class:`~repro.api.EstimateRequest` envelope to ``/v1/jobs``,
poll ``GET /v1/jobs/{id}`` until the job settles, and read the same
``schema_version``-stamped :class:`~repro.api.EstimateResult` JSON the
CLI ``--json`` flag prints.  The layering:

* :mod:`repro.service.jobs` — :class:`JobStore`: thread-safe job records
  plus an on-disk spool (cwd-independent; configurable with the
  write-probe → :class:`~repro.errors.ConfigError` pattern).
* :mod:`repro.service.executor` — :class:`JobExecutor`: the bounded
  worker budget (a counted budget over total workers, per-job
  ``n_shards`` preserved so results stay bit-identical to the CLI) and
  the single-flight compile lock (N identical concurrent submissions →
  exactly one plan-cache miss).
* :mod:`repro.service.app` — :class:`ServiceApp`: transport-free
  request routing (``handle_json(method, path, body)``) plus the
  in-process :class:`ServiceClient` used by tests, the bench section
  and ``tools/loadtest.py``.
* :mod:`repro.service.http` — the stdlib socket adapter
  (``ThreadingHTTPServer``) behind ``repro.cli serve``, and a minimal
  ASGI adapter for anyone who wants to mount the app under an external
  ASGI server.
"""

from repro.service.app import ServiceApp, ServiceClient
from repro.service.executor import JobExecutor
from repro.service.http import asgi_app, serve
from repro.service.jobs import Job, JobStore

__all__ = [
    "Job",
    "JobStore",
    "JobExecutor",
    "ServiceApp",
    "ServiceClient",
    "asgi_app",
    "serve",
]
