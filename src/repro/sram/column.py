"""Bitline column: one accessed cell plus unaccessed leakers.

A real read happens on a column where dozens of half-selected cells leak
onto the same bitlines.  The worst case for read margin is the classic
"all zeros" data pattern: every unaccessed cell holds the datum that
leaks against the accessed cell's bitline differential.  This module
builds that column on the reference MNA engine:

* the accessed cell (suffix ``_a``) drives ``bl``/``blb`` through its
  pass gates with the wordline pulsed;
* ``n_leakers`` unaccessed cells sit on the same bitlines with their
  wordline tied low, contributing subthreshold leakage through their
  (off) pass gates;
* bitline capacitance can either be supplied explicitly or estimated
  per attached cell plus wire.

It deliberately lives on the general engine (not the batched one): the
column is where topology *changes* with configuration, which is exactly
what the general engine is for.  The batched engine's ``cbl`` lump is
calibrated from this model in ``tests/sram/test_column.py``.

Since the compiler grew its sparse assembly pass and structured solves,
the column is also a first-class *sampled* workload:
:meth:`ReadColumn.access_times_batch` bulk-evaluates read access times
over per-cell threshold shifts — the accessed cell *and* every leaker —
so importance sampling can explore the full ``6 * (n_leakers + 1)``
dimensional variation space of the column (see
``make_column_read_limitstate`` in :mod:`repro.experiments.workloads`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.spice.compile import (
    CompiledTransient,
    CrossProbe,
    ValueProbe,
    transient_grid,
)
from repro.spice.elements import Capacitor, VoltageSource
from repro.spice.plan import compile_cached
from repro.spice.netlist import Circuit
from repro.spice.sources import dc, pulse
from repro.spice.transient import TransientOptions, TransientResult, run_transient
from repro.sram import metrics as sram_metrics
from repro.sram.cell import CellDesign, build_cell, cell_device_names
from repro.sram.testbench import OperationTiming

__all__ = ["ColumnConfig", "ReadColumn"]

#: Per-cell bitline junction loading (drain cap of one pass gate) plus a
#: share of wire, used when no explicit cbl is given.  Farads per cell.
CBL_PER_CELL = 0.12e-15
#: Fixed wire/periphery loading per bitline.  Farads.
CBL_WIRE = 2.0e-15


def _batch_n(delta_vth) -> int:
    """Sample count implied by a dict or matrix variation spec."""
    if isinstance(delta_vth, dict):
        return max(np.atleast_1d(np.asarray(v)).size for v in delta_vth.values())
    return np.atleast_2d(np.asarray(delta_vth, dtype=float)).shape[0]


def _vth_dict(delta_vth, n: int, names: List[str], what: str):
    """Accept a dict of device names or an ``(n, len(names))`` matrix."""
    if delta_vth is None or isinstance(delta_vth, dict):
        return delta_vth
    arr = np.atleast_2d(np.asarray(delta_vth, dtype=float))
    if arr.shape != (n, len(names)):
        raise ConfigError(
            f"delta_vth matrix shape {arr.shape} != ({n}, {len(names)}) "
            f"over {what}"
        )
    return {name: arr[:, j] for j, name in enumerate(names)}


def _access_metric(res, pos: str, neg: str, timing, dv_spec: float,
                   penalty_per_volt: float) -> np.ndarray:
    """Access-time metric from a compiled run's ``access`` cross probe.

    Shared by the column (``blb - bl``) and the array slice
    (``dlb - dl``): time from the wordline half-swing to the crossing;
    samples that never develop the differential get the continuous
    shortfall penalty
    ``(t_stop - t_wl) + (dv_spec - diff_final) * penalty_per_volt`` so
    search methods keep a gradient to climb — the one place the
    convention is written down for the compiled bulk benches.
    """
    t_wl_mid = timing.wl_delay + 0.5 * timing.wl_rise
    found = ~np.isnan(res.cross["access"])
    metric = np.empty(found.size)
    metric[found] = res.cross["access"][found] - t_wl_mid
    diff_final = res.final[pos][~found] - res.final[neg][~found]
    shortfall = dv_spec - diff_final
    metric[~found] = (timing.t_stop - t_wl_mid) + shortfall * penalty_per_volt
    return metric


@dataclass(frozen=True)
class ColumnConfig:
    """Column composition.

    ``leaker_data`` chooses the stored value of the unaccessed cells:
    ``"adversarial"`` stores the pattern that leaks against the read
    differential (worst case); ``"friendly"`` stores the opposite.
    """

    n_leakers: int = 15
    leaker_data: str = "adversarial"
    cbl: Optional[float] = None
    vdd: float = 1.0

    def bitline_cap(self) -> float:
        """Effective bitline capacitance for this configuration."""
        if self.cbl is not None:
            return self.cbl
        return CBL_WIRE + (self.n_leakers + 1) * CBL_PER_CELL


class ReadColumn:
    """A read testbench over a full column.

    The accessed cell stores 0 on the ``q`` side (BL discharges).  In the
    adversarial data pattern, every leaker stores the *opposite* datum,
    so its off pass gate leaks BLB charge downward — eroding exactly the
    differential the sense amp needs.
    """

    def __init__(
        self,
        design: Optional[CellDesign] = None,
        config: Optional[ColumnConfig] = None,
        dv_spec: float = 0.12,
        timing: Optional[OperationTiming] = None,
        tran_options: Optional[TransientOptions] = None,
    ):
        if config is not None and config.leaker_data not in ("adversarial", "friendly"):
            raise ConfigError(f"unknown leaker_data {config.leaker_data!r}")
        self.design = design or CellDesign()
        self.config = config or ColumnConfig()
        self.dv_spec = float(dv_spec)
        self.timing = timing or OperationTiming()
        self.tran_options = tran_options or TransientOptions()
        self.circuit = self._build()
        self.n_simulations = 0
        self._compiled: Dict[tuple, CompiledTransient] = {}

    # ------------------------------------------------------------------

    def _build(self) -> Circuit:
        cfg = self.config
        t = self.timing
        circuit = Circuit(f"sram_column_{cfg.n_leakers}leakers")
        circuit.add(VoltageSource("v_vdd", "vdd", "0", dc(cfg.vdd)))
        circuit.add(
            VoltageSource(
                "v_wl", "wl", "0",
                pulse(0.0, cfg.vdd, delay=t.wl_delay, rise=t.wl_rise,
                      fall=t.wl_fall, width=t.wl_width),
            )
        )
        circuit.add(VoltageSource("v_wl_off", "wl_off", "0", dc(0.0)))
        # Accessed cell.
        build_cell(self.design, circuit, q="q_a", qb="qb_a", suffix="_a")
        # Leakers share bl/blb, hang off the grounded wordline, and keep
        # their own internal nodes.
        for k in range(cfg.n_leakers):
            build_cell(
                self.design, circuit,
                q=f"q_l{k}", qb=f"qb_l{k}", wl="wl_off", suffix=f"_l{k}",
            )
        cap = cfg.bitline_cap()
        circuit.add(Capacitor("c_bl", "bl", "0", cap))
        circuit.add(Capacitor("c_blb", "blb", "0", cap))
        return circuit

    def _initial_conditions(self) -> Dict[str, float]:
        cfg = self.config
        ic = {"q_a": 0.0, "qb_a": cfg.vdd, "bl": cfg.vdd, "blb": cfg.vdd}
        for k in range(cfg.n_leakers):
            if cfg.leaker_data == "adversarial":
                # Leaker stores 1 on its q (the bl side): its BLB-side
                # pass gate sees a 0 internal node and pulls BLB down.
                ic[f"q_l{k}"] = cfg.vdd
                ic[f"qb_l{k}"] = 0.0
            else:
                ic[f"q_l{k}"] = 0.0
                ic[f"qb_l{k}"] = cfg.vdd
        return ic

    # ------------------------------------------------------------------

    def accessed_device_names(self) -> List[str]:
        """MOSFET names of the accessed cell (for variation targeting)."""
        return cell_device_names("_a")

    def all_device_names(self) -> List[str]:
        """Every cell MOSFET on the column, accessed cell first, then the
        leakers in build order — each in canonical per-cell order.  This
        is the column order of the bulk variation matrices."""
        names = cell_device_names("_a")
        for k in range(self.config.n_leakers):
            names.extend(cell_device_names(f"_l{k}"))
        return names

    def simulate(self, delta_vth: Optional[Dict[str, float]] = None) -> TransientResult:
        """One transient; ``delta_vth`` maps device names to shifts in volts."""
        applied = []
        if delta_vth:
            for name, shift in delta_vth.items():
                mos = self.circuit[name]
                applied.append((mos, mos.delta_vth))
                mos.delta_vth = float(shift)
        try:
            result = run_transient(
                self.circuit, self.timing.t_stop,
                ic=self._initial_conditions(), options=self.tran_options,
            )
        finally:
            for mos, original in applied:
                mos.delta_vth = original
        self.n_simulations += 1
        return result

    def access_sample(
        self, delta_vth: Optional[Dict[str, float]] = None
    ) -> sram_metrics.MetricSample:
        """Read access time with the column loading and leakage included."""
        res = self.simulate(delta_vth)
        return sram_metrics.read_access_time(
            res.waveform("bl"), res.waveform("blb"), res.waveform("wl"),
            dv_spec=self.dv_spec, vdd=self.config.vdd,
        )

    # ------------------------------------------------------------------
    # Compiled batched path
    # ------------------------------------------------------------------

    def _t_wl_fall(self) -> float:
        t = self.timing
        return t.wl_delay + t.wl_rise + t.wl_width + t.wl_fall

    def compiled(
        self, n_steps: int = 400, kernel: str = "fast", assembly: str = "auto"
    ) -> CompiledTransient:
        """The whole column compiled into one batched kernel (cached).

        Every cell — accessed and leakers — integrates as unknowns
        (``4 + 2 * n_leakers`` nodes), so the compiled path sees exactly
        the leakage topology the scalar column simulates.  Above the
        compiler's node-count threshold the Jacobian assembles through
        the sparse scatter-stamp pass (bit-equal to the dense matmuls,
        which stay selectable via ``assembly="dense"``), and the solves
        run through the batched Schur complement the compiler derives
        from the column's bordered-block structure — this is what makes
        the column a bulk-sampling workload rather than a per-sample
        curiosity.
        """
        key = (int(n_steps), kernel, assembly)
        ct = self._compiled.get(key)
        if ct is None:
            t_fall = self._t_wl_fall()
            ct = compile_cached(
                self.circuit,
                grid=transient_grid(
                    self.timing.t_stop,
                    breakpoints=self.circuit["v_wl"].shape.breakpoints(),
                    n_steps=n_steps,
                ),
                probes=(
                    CrossProbe("access", {"blb": 1.0, "bl": -1.0},
                               offset=-self.dv_spec),
                    ValueProbe("diff_at_wl_fall", {"blb": 1.0, "bl": -1.0},
                               t=t_fall),
                ),
                kernel=kernel,
                assembly=assembly,
            )
            self._compiled[key] = ct
        return ct

    def access_times_batch(
        self,
        delta_vth,
        n_steps: int = 400,
        kernel: str = "fast",
        assembly: str = "auto",
        penalty_per_volt: float = 20e-9,
    ) -> np.ndarray:
        """Bulk read access times over per-cell threshold shifts.

        ``delta_vth`` is a dict of device names to per-sample arrays or
        an ``(n, 6 * (n_leakers + 1))`` matrix over
        :meth:`all_device_names` — the accessed cell *and* every leaker
        carry variation, which is what makes the column the
        dimension-scaling workload.  The metric matches the batched 6T
        engine's convention: time from the wordline half-swing to the
        bitline differential reaching ``dv_spec``; samples that never
        develop the differential get the continuous shortfall penalty
        ``(t_stop - t_wl) + (dv_spec - diff_final) * penalty_per_volt``
        so search methods keep a gradient to climb.
        """
        n = _batch_n(delta_vth)
        ct = self.compiled(n_steps=n_steps, kernel=kernel, assembly=assembly)
        res = ct.run(
            ic=self._initial_conditions(),
            n=n,
            delta_vth=_vth_dict(
                delta_vth, n, self.all_device_names(),
                "the accessed cell plus leakers (all_device_names order)",
            ),
        )
        self.n_simulations += n
        return _access_metric(res, "blb", "bl", self.timing, self.dv_spec,
                              penalty_per_volt)

    def differential_at_wl_fall_batch(
        self,
        delta_vth,
        n_steps: int = 400,
        kernel: str = "fast",
    ) -> np.ndarray:
        """Batched :meth:`differential_at_wl_fall` on the compiled column.

        ``delta_vth`` is a dict of device names to per-sample arrays or
        an ``(n, 6)`` matrix over :meth:`accessed_device_names`.
        """
        n = _batch_n(delta_vth)
        ct = self.compiled(n_steps=n_steps, kernel=kernel)
        res = ct.run(
            ic=self._initial_conditions(),
            n=n,
            delta_vth=_vth_dict(
                delta_vth, n, self.accessed_device_names(),
                "the accessed cell (canonical order)",
            ),
        )
        self.n_simulations += n
        return res.value["diff_at_wl_fall"]

    def differential_at_wl_fall(self, delta_vth=None) -> float:
        """BLB-BL differential at the moment the wordline closes (volts).

        The quantity leakage erodes: with enough adversarial leakers it
        can saturate below ``dv_spec`` — a read failure no amount of
        extra time fixes.
        """
        res = self.simulate(delta_vth)
        t = self.timing
        t_fall = t.wl_delay + t.wl_rise + t.wl_width + t.wl_fall
        diff = res.waveform("blb") - res.waveform("bl")
        return diff.at(t_fall)
