"""Vectorised fixed-topology 6T transient engine.

Golden Monte Carlo at high sigma needs 10^5–10^6 transient simulations;
running the general MNA engine that many times is days of CPU.  This
module exploits the fact that every sample simulates the *same* circuit —
only the per-device ``delta_vth`` / ``beta_mult`` differ — to integrate
all samples simultaneously:

* unknowns per sample: the four dynamic nodes ``[q, qb, bl, blb]``;
  ``vdd``, ``wl`` and ground are driven;
* device currents come from the *same*
  :meth:`repro.spice.mosfet.MosfetModel.ids` implementation the scalar
  engine uses, evaluated on ``(n_samples,)`` arrays;
* each backward-Euler step solves one batched 4x4 Newton system;
* metrics (bitline-differential crossing, write trip, disturb peak) are
  accumulated on the fly with the same penalty-extension formulas as
  :mod:`repro.sram.metrics`, so the two engines are directly
  cross-validatable.

Backward Euler on a dense fixed grid (default ~800 points with edge
refinement around the wordline corners) trades a few percent of waveform
accuracy for unconditional robustness — the right trade for an engine
whose job is statistics, and the cross-validation test in
``tests/test_cross_validation.py`` pins the disagreement budget.

Two interchangeable integrator kernels implement the scheme:

* ``kernel="fast"`` (default) — the fused kernel in
  :mod:`repro.sram.kernel`: one stacked device evaluation over ``(6, n)``
  arrays per Newton iteration, closed-form batched 4x4 solves, hoisted
  step constants, and read-mode sample retirement (samples whose
  threshold crossing is recorded and whose disturb accumulators are
  settled drop out of the active set; disable with ``retire=False`` when
  bit-faithful aux tails matter).
* ``kernel="reference"`` — the original per-device loop over
  :meth:`MosfetModel.ids` calls with ``np.linalg.solve``; slower but
  maximally transparent.  ``tests/sram/test_kernel.py`` pins the
  agreement between the two across read/write modes and sigma-scaled
  corners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.spice.mosfet import MosfetModel
from repro.spice.sources import PulseShape, pulse
from repro.sram.cell import CELL_DEVICE_ORDER, CellDesign
from repro.sram.testbench import OperationTiming

__all__ = ["Batched6T", "BatchedRunResult"]

# Unknown-node indices.
_Q, _QB, _BL, _BLB = 0, 1, 2, 3
_NODES = ("q", "qb", "bl", "blb")

# Device wiring: name -> (drain, gate, source, bulk) as node tokens.
# Tokens: unknown-node index (int) or one of the driven rails.
_WIRING = {
    "m_pu_l": (_Q, _QB, "vdd", "vdd"),
    "m_pd_l": (_Q, _QB, "gnd", "gnd"),
    "m_pg_l": (_BL, "wl", _Q, "gnd"),
    "m_pu_r": (_QB, _Q, "vdd", "vdd"),
    "m_pd_r": (_QB, _Q, "gnd", "gnd"),
    "m_pg_r": (_BLB, "wl", _QB, "gnd"),
}


@dataclass
class BatchedRunResult:
    """Per-sample outcome of one batched operation.

    ``metric`` follows the same convention as the scalar testbenches
    (penalty-extended continuous value); ``event_found`` says whether the
    measured event actually occurred; ``aux`` carries vectorised
    diagnostics (peaks, final values); ``converged`` flags samples whose
    every Newton solve converged — non-converged samples keep their
    metric but should be treated with suspicion (the engine also raises
    if more than 0.1 % of a batch fails, which indicates a setup bug
    rather than statistical bad luck).
    """

    metric: np.ndarray
    event_found: np.ndarray
    aux: Dict[str, np.ndarray]
    converged: np.ndarray


class Batched6T:
    """Vectorised 6T read/write engine for one cell design.

    Parameters mirror :class:`~repro.sram.testbench.ReadTestbench` /
    :class:`~repro.sram.testbench.WriteTestbench`; ``n_steps`` controls
    the base integration grid density.  ``kernel`` selects the integrator
    implementation (``"fast"`` — the fused kernel in
    :mod:`repro.sram.kernel` — or ``"reference"``); ``retire`` enables
    read-mode sample retirement on the fast kernel (ignored by the
    reference kernel).
    """

    def __init__(
        self,
        design: Optional[CellDesign] = None,
        vdd: float = 1.0,
        cbl: float = 10e-15,
        dv_spec: float = 0.12,
        rdrv: float = 200.0,
        timing: Optional[OperationTiming] = None,
        n_steps: int = 800,
        penalty_per_volt: float = 20e-9,
        newton_max_iter: int = 40,
        chunk_size: int = 8192,
        max_fail_fraction: float = 0.01,
        kernel: str = "fast",
        retire: bool = True,
    ):
        self.design = design or CellDesign()
        self.vdd = float(vdd)
        self.cbl = float(cbl)
        self.dv_spec = float(dv_spec)
        self.rdrv = float(rdrv)
        self.timing = timing or OperationTiming()
        self.n_steps = int(n_steps)
        self.penalty_per_volt = float(penalty_per_volt)
        self.newton_max_iter = int(newton_max_iter)
        self.chunk_size = int(chunk_size)
        self.max_fail_fraction = float(max_fail_fraction)
        if kernel not in ("fast", "reference"):
            raise SimulationError(
                f"kernel must be 'fast' or 'reference', got {kernel!r}"
            )
        self.kernel = kernel
        self.retire = bool(retire)
        self.n_simulations = 0  # total per-sample transients run
        self.n_sample_steps = 0  # total (sample x grid-step) integrations

        self._geometry = self._device_geometry()
        self._cmat, self._wl_coupling = self._capacitance_structure()
        self._grid = self._time_grid()
        self._wl_shape = self._wordline()
        if kernel == "fast":
            from repro.sram.kernel import FusedTransientKernel

            self._fast_kernel = FusedTransientKernel(self)
        else:
            self._fast_kernel = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _device_geometry(self) -> Dict[str, Tuple[MosfetModel, float, float]]:
        d = self.design
        return {
            "m_pu_l": (d.pmos, d.w_pu, d.l),
            "m_pd_l": (d.nmos, d.w_pd, d.l),
            "m_pg_l": (d.nmos, d.w_pg, d.l),
            "m_pu_r": (d.pmos, d.w_pu, d.l),
            "m_pd_r": (d.nmos, d.w_pd, d.l),
            "m_pg_r": (d.nmos, d.w_pg, d.l),
        }

    def _capacitance_structure(self) -> Tuple[np.ndarray, np.ndarray]:
        """Constant 4x4 node capacitance matrix plus WL coupling vector.

        Couplings to constant rails (vdd, gnd) only add to the diagonal;
        couplings to the moving wordline additionally inject
        ``C * dV_wl/dt`` into the node, captured by ``wl_coupling``.
        """
        cmat = np.zeros((4, 4))
        wl_coupling = np.zeros(4)

        def add(na, nb, c):
            a_unknown = isinstance(na, int)
            b_unknown = isinstance(nb, int)
            if a_unknown and b_unknown:
                cmat[na, na] += c
                cmat[nb, nb] += c
                cmat[na, nb] -= c
                cmat[nb, na] -= c
            elif a_unknown:
                cmat[na, na] += c
                if nb == "wl":
                    wl_coupling[na] += c
            elif b_unknown:
                cmat[nb, nb] += c
                if na == "wl":
                    wl_coupling[nb] += c

        for name, (model, w, l) in self._geometry.items():
            nd, ng, ns, nb = _WIRING[name]
            cgs, cgd, cgb, cdb, csb = model.capacitances(w, l)
            add(ng, ns, cgs)
            add(ng, nd, cgd)
            add(ng, nb, cgb)
            add(nd, nb, cdb)
            add(ns, nb, csb)
        cmat[_BL, _BL] += self.cbl
        cmat[_BLB, _BLB] += self.cbl
        return cmat, wl_coupling

    def _wordline(self) -> PulseShape:
        t = self.timing
        return pulse(
            0.0, self.vdd, delay=t.wl_delay, rise=t.wl_rise, fall=t.wl_fall, width=t.wl_width
        )

    def _time_grid(self) -> np.ndarray:
        """Fixed grid with refinement around the wordline edges."""
        t = self.timing
        edges = [
            0.0,
            t.wl_delay,
            t.wl_delay + t.wl_rise,
            t.wl_delay + t.wl_rise + t.wl_width,
            t.wl_delay + t.wl_rise + t.wl_width + t.wl_fall,
            t.t_stop,
        ]
        # Distribute points: sharp corners get extra density.
        weights = [0.06, 0.10, 0.58, 0.10, 0.16]
        pieces = []
        for (a, b), wgt in zip(zip(edges, edges[1:]), weights):
            if b <= a:
                continue
            n = max(8, int(round(self.n_steps * wgt)))
            pieces.append(np.linspace(a, b, n, endpoint=False))
        grid = np.concatenate(pieces + [np.array([t.t_stop])])
        return np.unique(grid)

    # ------------------------------------------------------------------
    # Core integrator
    # ------------------------------------------------------------------

    def _device_assemble(
        self,
        y: np.ndarray,
        vwl: float,
        dvth: np.ndarray,
        bmult: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Residual and Jacobian contribution of the six transistors.

        ``y`` is ``(n, 4)``; ``dvth``/``bmult`` are ``(n, 6)`` in
        :data:`~repro.sram.cell.CELL_DEVICE_ORDER`.  Returns
        ``(F_dev (n,4), J_dev (n,4,4))``.
        """
        n = y.shape[0]
        f = np.zeros((n, 4))
        jac = np.zeros((n, 4, 4))
        rails = {"vdd": self.vdd, "gnd": 0.0, "wl": vwl}

        def volt(token):
            if isinstance(token, int):
                return y[:, token]
            # Scalar rails broadcast through the device model for free.
            return rails[token]

        for k, name in enumerate(CELL_DEVICE_ORDER):
            model, w, l = self._geometry[name]
            nd, ng, ns, nb = _WIRING[name]
            ids, gm, gds, gms, gmb = model.ids(
                volt(ng), volt(nd), volt(ns), volt(nb),
                delta_vth=dvth[:, k], beta_mult=bmult[:, k], w=w, l=l,
            )
            if isinstance(nd, int):
                f[:, nd] += ids
            if isinstance(ns, int):
                f[:, ns] -= ids
            for token, g in ((ng, gm), (nd, gds), (ns, gms), (nb, gmb)):
                if not isinstance(token, int):
                    continue
                if isinstance(nd, int):
                    jac[:, nd, token] += g
                if isinstance(ns, int):
                    jac[:, ns, token] -= g
        return f, jac

    def _run_chunk(
        self,
        dvth: np.ndarray,
        bmult: np.ndarray,
        mode: str,
        dv_spec: Optional[np.ndarray] = None,
    ) -> Dict[str, np.ndarray]:
        """Integrate one chunk of samples; returns raw event accumulators.

        ``dv_spec`` optionally overrides the read threshold per sample
        (used by the system-level workload where the sense-amp offset
        varies sample to sample).
        """
        n = dvth.shape[0]
        dv_req = np.full(n, self.dv_spec) if dv_spec is None else dv_spec
        grid = self._grid
        wl_of = self._wl_shape.value

        # Driver conductances (write mode only).
        g_drv = np.zeros(4)
        v_drv = np.zeros(4)
        if mode == "write":
            g_drv[_BL] = 1.0 / self.rdrv
            g_drv[_BLB] = 1.0 / self.rdrv
            v_drv[_BL] = 0.0
            v_drv[_BLB] = self.vdd

        # Initial state.
        y = np.zeros((n, 4))
        if mode == "read":
            y[:, _Q] = 0.0
            y[:, _QB] = self.vdd
            y[:, _BL] = self.vdd
            y[:, _BLB] = self.vdd
        else:
            y[:, _Q] = self.vdd
            y[:, _QB] = 0.0
            y[:, _BL] = 0.0
            y[:, _BLB] = self.vdd

        t_wl_mid = self.timing.wl_delay + 0.5 * self.timing.wl_rise
        converged = np.ones(n, dtype=bool)

        # Event accumulators.
        cross_time = np.full(n, np.nan)  # first threshold crossing
        prev_signal = np.zeros(n)
        q_peak = np.zeros(n)
        qb_peak = np.zeros(n)
        diff_final = np.zeros(n)

        if mode == "read":
            prev_signal[:] = y[:, _BLB] - y[:, _BL] - dv_req
        else:
            prev_signal[:] = y[:, _QB] - 0.5 * self.vdd

        t_prev = grid[0]
        wl_prev = wl_of(t_prev)
        y_prev2: Optional[np.ndarray] = None
        h_prev: Optional[float] = None
        for t_now in grid[1:]:
            self.n_sample_steps += n
            h = t_now - t_prev
            vwl = wl_of(t_now)
            dwl_dt = (vwl - wl_prev) / h
            y_prev = y
            # Linear extrapolation from the two previous solutions warms
            # the Newton start and typically saves an iteration.
            if y_prev2 is not None and h_prev is not None and h_prev > 0:
                y_new = y_prev + (y_prev - y_prev2) * (h / h_prev)
                np.clip(y_new, -0.5, self.vdd + 0.5, out=y_new)
            else:
                y_new = y_prev.copy()
            # Active-set Newton: most samples converge in 2–3 iterations;
            # only the stragglers (cells mid-flip) keep iterating, on
            # progressively smaller index subsets.
            idx = np.arange(n)
            cmat_h = self._cmat / h
            for _ in range(self.newton_max_iter):
                y_sub = y_new[idx]
                f_dev, j_dev = self._device_assemble(y_sub, vwl, dvth[idx], bmult[idx])
                f = (
                    f_dev
                    + (y_sub - y_prev[idx]) @ cmat_h.T
                    - self._wl_coupling * dwl_dt
                    + g_drv * (y_sub - v_drv)
                )
                jac = j_dev + cmat_h + np.diag(g_drv)
                delta = np.linalg.solve(jac, -f[..., None])[..., 0]
                # Damp large voltage excursions.
                step_max = np.max(np.abs(delta), axis=1, keepdims=True)
                scale = np.minimum(1.0, 0.4 / np.maximum(step_max, 1e-30))
                # Clamp to the physically reachable band: at sigma-scaled
                # corners (SSS at s=4 pushes |dVth| past 0.5 V) undamped
                # Newton can briefly leave it and oscillate.
                y_new[idx] = np.clip(y_sub + delta * scale, -0.4, self.vdd + 0.4)
                still = np.max(np.abs(delta), axis=1) > 5e-8
                idx = idx[still]
                if idx.size == 0:
                    break
            if idx.size:
                converged[idx] = False
            y_prev2 = y_prev
            h_prev = h

            # Event tracking with linear interpolation inside the step.
            if mode == "read":
                signal = y_new[:, _BLB] - y_new[:, _BL] - dv_req
            else:
                signal = y_new[:, _QB] - 0.5 * self.vdd
            crossing = (prev_signal < 0.0) & (signal >= 0.0) & np.isnan(cross_time)
            if crossing.any():
                frac = prev_signal[crossing] / (prev_signal[crossing] - signal[crossing])
                cross_time[crossing] = t_prev + frac * h
            prev_signal = signal

            if t_now >= t_wl_mid:
                q_peak = np.maximum(q_peak, y_new[:, _Q])
                qb_peak = np.maximum(qb_peak, y_new[:, _QB])
            y = y_new
            t_prev = t_now
            wl_prev = vwl

        diff_final = (
            (y[:, _BLB] - y[:, _BL]) if mode == "read" else qb_peak.copy()
        )
        self.n_simulations += n
        return {
            "dv_req": dv_req,
            "cross_time": cross_time,
            "q_peak": q_peak,
            "qb_peak": qb_peak,
            "diff_final": diff_final,
            "q_final": y[:, _Q],
            "qb_final": y[:, _QB],
            "converged": converged,
            "t_wl_mid": np.full(n, t_wl_mid),
        }

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def _run(
        self,
        dvth: np.ndarray,
        bmult: Optional[np.ndarray],
        mode: str,
        dv_spec=None,
    ) -> BatchedRunResult:
        dvth = np.atleast_2d(np.asarray(dvth, dtype=float))
        if dvth.shape[1] != 6:
            raise SimulationError(
                f"delta-vth matrix must have 6 columns (one per device), got {dvth.shape}"
            )
        if bmult is None:
            bmult = np.ones_like(dvth)
        else:
            bmult = np.atleast_2d(np.asarray(bmult, dtype=float))
            if bmult.shape != dvth.shape:
                raise SimulationError(
                    f"beta matrix shape {bmult.shape} != vth matrix shape {dvth.shape}"
                )

        n = dvth.shape[0]
        if dv_spec is None:
            dv_vec = None
        else:
            dv_vec = np.broadcast_to(np.asarray(dv_spec, dtype=float), (n,)).copy()

        run_chunk = (
            self._fast_kernel.run_chunk if self._fast_kernel is not None
            else self._run_chunk
        )
        outs = []
        for start in range(0, n, self.chunk_size):
            sl = slice(start, min(start + self.chunk_size, n))
            outs.append(run_chunk(
                dvth[sl], bmult[sl], mode,
                dv_spec=None if dv_vec is None else dv_vec[sl],
            ))
        raw = {k: np.concatenate([o[k] for o in outs]) for k in outs[0]}

        bad = ~raw["converged"]
        if bad.mean() > self.max_fail_fraction:
            raise SimulationError(
                f"batched {mode}: {bad.sum()} of {n} samples failed Newton "
                "convergence; this indicates a setup problem, not noise"
            )

        t_wl = raw["t_wl_mid"]
        t_stop = self.timing.t_stop
        found = ~np.isnan(raw["cross_time"])
        metric = np.empty(n)
        metric[found] = raw["cross_time"][found] - t_wl[found]
        if mode == "read":
            shortfall = raw["dv_req"][~found] - raw["diff_final"][~found]
        else:
            shortfall = 0.5 * self.vdd - raw["qb_peak"][~found]
        metric[~found] = (t_stop - t_wl[~found]) + shortfall * self.penalty_per_volt

        aux = {
            "q_peak": raw["q_peak"],
            "qb_peak": raw["qb_peak"],
            "q_final": raw["q_final"],
            "qb_final": raw["qb_final"],
            "diff_final": raw["diff_final"],
        }
        return BatchedRunResult(
            metric=metric, event_found=found, aux=aux, converged=raw["converged"]
        )

    def read(
        self,
        dvth: np.ndarray,
        bmult: Optional[np.ndarray] = None,
        dv_spec=None,
    ) -> BatchedRunResult:
        """Batched read operation → access-time metric per sample.

        ``dv_spec`` optionally overrides the bitline-differential
        threshold, scalar or per-sample array (system-level workloads
        pass the sense amplifier's per-sample offset requirement here).
        """
        return self._run(dvth, bmult, "read", dv_spec=dv_spec)

    def write(self, dvth: np.ndarray, bmult: Optional[np.ndarray] = None) -> BatchedRunResult:
        """Batched write operation → trip-time metric per sample."""
        return self._run(dvth, bmult, "write")

    def read_access_times(self, dvth, bmult=None) -> np.ndarray:
        """Convenience: just the access-time vector."""
        return self.read(dvth, bmult).metric

    def write_trip_times(self, dvth, bmult=None) -> np.ndarray:
        """Convenience: just the trip-time vector."""
        return self.write(dvth, bmult).metric

    def read_disturb_peaks(self, dvth, bmult=None) -> np.ndarray:
        """Convenience: peak low-node disturbance during a read."""
        return self.read(dvth, bmult).aux["q_peak"]
