"""Parametric 6T SRAM bitcell netlist builder.

The cell uses the canonical device naming scheme every other module in
this package relies on (variation axes, batched engine, MPFP reports):

======== ==========================================
name     role
======== ==========================================
m_pu_l   left pull-up PMOS   (drain=q,  gate=qb)
m_pd_l   left pull-down NMOS (drain=q,  gate=qb)
m_pg_l   left access NMOS    (bl ↔ q,   gate=wl)
m_pu_r   right pull-up PMOS  (drain=qb, gate=q)
m_pd_r   right pull-down NMOS(drain=qb, gate=q)
m_pg_r   right access NMOS   (blb ↔ qb, gate=wl)
======== ==========================================

Default geometries give the classic read-stability/writability compromise:
cell ratio (pull-down / access) of 1.4 and pull-up ratio (access /
pull-up) of 1.25.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.spice.elements import Mosfet
from repro.spice.mosfet import MosfetModel, nmos_45nm, pmos_45nm
from repro.spice.netlist import Circuit

__all__ = ["CellDesign", "build_cell", "CELL_DEVICE_ORDER"]

#: Canonical device ordering used by u-space vectors and the batched engine.
CELL_DEVICE_ORDER = ("m_pu_l", "m_pd_l", "m_pg_l", "m_pu_r", "m_pd_r", "m_pg_r")


@dataclass(frozen=True)
class CellDesign:
    """Geometry and model cards of a 6T bitcell.

    Lengths and widths are in metres.  ``nmos``/``pmos`` default to the
    PTM-45nm-flavoured cards from :mod:`repro.spice.mosfet`.
    """

    w_pd: float = 140e-9
    w_pg: float = 100e-9
    w_pu: float = 80e-9
    l: float = 50e-9
    nmos: MosfetModel = field(default_factory=nmos_45nm)
    pmos: MosfetModel = field(default_factory=pmos_45nm)

    @property
    def cell_ratio(self) -> float:
        """Pull-down to access-transistor strength ratio (read stability)."""
        return self.w_pd / self.w_pg

    @property
    def pullup_ratio(self) -> float:
        """Access to pull-up strength ratio (writability)."""
        return self.w_pg / self.w_pu

    def scaled(self, factor: float) -> "CellDesign":
        """Uniformly scale all widths (keeps ratios; changes mismatch sigma)."""
        return replace(
            self,
            w_pd=self.w_pd * factor,
            w_pg=self.w_pg * factor,
            w_pu=self.w_pu * factor,
        )


def build_cell(
    design: Optional[CellDesign] = None,
    circuit: Optional[Circuit] = None,
    q: str = "q",
    qb: str = "qb",
    bl: str = "bl",
    blb: str = "blb",
    wl: str = "wl",
    vdd: str = "vdd",
    suffix: str = "",
) -> Circuit:
    """Instantiate a 6T cell into ``circuit`` (a new one if omitted).

    ``suffix`` is appended to device names so multiple cells (a column)
    can share one netlist without name collisions.
    """
    design = design or CellDesign()
    circuit = circuit if circuit is not None else Circuit("sram_6t_cell")
    nm, pm = design.nmos, design.pmos
    lch = design.l
    devices = [
        Mosfet(f"m_pu_l{suffix}", q, qb, vdd, vdd, pm, w=design.w_pu, l=lch),
        Mosfet(f"m_pd_l{suffix}", q, qb, "0", "0", nm, w=design.w_pd, l=lch),
        Mosfet(f"m_pg_l{suffix}", bl, wl, q, "0", nm, w=design.w_pg, l=lch),
        Mosfet(f"m_pu_r{suffix}", qb, q, vdd, vdd, pm, w=design.w_pu, l=lch),
        Mosfet(f"m_pd_r{suffix}", qb, q, "0", "0", nm, w=design.w_pd, l=lch),
        Mosfet(f"m_pg_r{suffix}", blb, wl, qb, "0", nm, w=design.w_pg, l=lch),
    ]
    for dev in devices:
        circuit.add(dev)
    return circuit


def cell_device_names(suffix: str = "") -> List[str]:
    """Device names of one cell instance, in canonical order."""
    return [f"{name}{suffix}" for name in CELL_DEVICE_ORDER]
