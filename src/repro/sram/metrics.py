"""Dynamic-characteristic metric extraction with smooth penalty extension.

High-sigma samplers need two things from a metric:

1. a scalar that is **continuous** across the failure boundary — the
   gradient-driven MPFP search climbs this surface, so "the bitline never
   developed" must not return NaN or a cliff;
2. an unambiguous failure classification for the indicator function.

Each extractor therefore returns a :class:`MetricSample` carrying both the
(possibly penalty-extended) continuous value and the raw event data.  The
penalty extension works as follows: when the measured event (bitline
differential crossing, cell flip) does not occur inside the observation
window, the metric continues past the window end proportionally to the
remaining voltage shortfall.  The extension is exactly continuous at the
boundary: an event at the last instant of the window and a shortfall of
zero yield the same value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import MeasurementError
from repro.spice.waveform import Waveform

__all__ = [
    "MetricSample",
    "read_access_time",
    "write_trip_time",
    "read_disturb_peak",
]


@dataclass(frozen=True)
class MetricSample:
    """One metric evaluation.

    Attributes
    ----------
    value:
        The continuous metric (seconds for delays, volts for margins),
        penalty-extended when the underlying event did not occur.
    event_found:
        Whether the measured event actually happened in-window.
    aux:
        Extra diagnostics (peak voltages, crossing times, ...).
    """

    value: float
    event_found: bool
    aux: Dict[str, float] = field(default_factory=dict)


def read_access_time(
    bl: Waveform,
    blb: Waveform,
    wl: Waveform,
    dv_spec: float,
    vdd: float,
    penalty_per_volt: float = 20e-9,
) -> MetricSample:
    """Read access time: WL half-swing to bitline differential development.

    The cell is assumed to store ``q = 0`` so BL discharges and the
    differential ``blb - bl`` grows positive.  ``dv_spec`` is the
    differential the (implicit) sense amplifier needs, typically 0.1–0.2 V.

    When the differential never reaches ``dv_spec``, the returned value is
    ``(window_end - t_wl) + (dv_spec - dv_final) * penalty_per_volt`` —
    continuous with the measured branch at the window edge.
    """
    t_wl = wl.cross(vdd / 2.0, direction="rise")
    diff = blb - bl
    window = diff.window(t_wl, diff.t_stop)
    try:
        t_dev = window.cross(dv_spec, direction="rise")
        return MetricSample(
            value=t_dev - t_wl,
            event_found=True,
            aux={"dv_final": window.final(), "t_wl": t_wl, "t_dev": t_dev},
        )
    except MeasurementError:
        shortfall = dv_spec - window.final()
        value = (window.t_stop - t_wl) + shortfall * penalty_per_volt
        return MetricSample(
            value=value,
            event_found=False,
            aux={"dv_final": window.final(), "t_wl": t_wl},
        )


def write_trip_time(
    q: Waveform,
    qb: Waveform,
    wl: Waveform,
    vdd: float,
    penalty_per_volt: float = 20e-9,
) -> MetricSample:
    """Write trip time: WL half-swing to the rising internal node's half-swing.

    The testbench writes a 0 into a cell storing ``q = 1``: QB must rise.
    The trip instant is QB crossing ``vdd/2`` rising — past that point the
    cross-coupled positive feedback completes the flip on its own.

    A cell that never trips gets the penalty-extended value
    ``(window_end - t_wl) + (vdd/2 - max(qb)) * penalty_per_volt``.
    """
    t_wl = wl.cross(vdd / 2.0, direction="rise")
    window = qb.window(t_wl, qb.t_stop)
    try:
        t_trip = window.cross(vdd / 2.0, direction="rise")
        return MetricSample(
            value=t_trip - t_wl,
            event_found=True,
            aux={"qb_peak": window.vmax(), "t_wl": t_wl, "t_trip": t_trip,
                 "q_final": q.final(), "qb_final": qb.final()},
        )
    except MeasurementError:
        shortfall = vdd / 2.0 - window.vmax()
        value = (window.t_stop - t_wl) + shortfall * penalty_per_volt
        return MetricSample(
            value=value,
            event_found=False,
            aux={"qb_peak": window.vmax(), "t_wl": t_wl,
                 "q_final": q.final(), "qb_final": qb.final()},
        )


def read_disturb_peak(
    q: Waveform,
    wl: Waveform,
    vdd: float,
) -> MetricSample:
    """Peak disturbance of the low internal node during a read.

    The cell stores ``q = 0``; the read voltage divider lifts Q.  The
    metric is the peak Q voltage over the WL-high window — a naturally
    continuous quantity whose failure threshold (the cell's trip point,
    conventionally ``vdd/2``) defines dynamic read instability.  A cell
    that actually flips shows a peak near ``vdd``, far past the threshold,
    so no penalty extension is needed.
    """
    t_wl = wl.cross(vdd / 2.0, direction="rise")
    window = q.window(t_wl, q.t_stop)
    peak = window.vmax()
    flipped = q.final() > vdd / 2.0
    return MetricSample(
        value=peak,
        event_found=True,
        aux={"flipped": float(flipped), "q_final": q.final(), "t_wl": t_wl},
    )
