"""Read and write testbenches on the general MNA engine.

A testbench owns a built circuit (cell + bitline loading + sources), the
operation timing, and the initial state; its ``metric(u)`` method is the
black-box ``R^d -> float`` function the high-sigma samplers consume.  The
circuit is built once and retargeted per sample by mutating the MOSFET
variation attributes through a :class:`~repro.variation.VariationSpace` —
no re-netlisting in the sampling loop.

These benches are the *reference* path (arbitrary topology, adaptive
integration).  The vectorised :class:`~repro.sram.batched.Batched6T`
engine reproduces the same read/write operations for large sample counts
and is cross-validated against these benches in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.spice.compile import (
    CompiledTransient,
    CrossProbe,
    PeakProbe,
    transient_grid,
)
from repro.spice.elements import Capacitor, Resistor, VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.plan import compile_cached
from repro.spice.sources import dc, pulse
from repro.spice.transient import TransientOptions, TransientResult, run_transient
from repro.sram.cell import CellDesign, build_cell, cell_device_names
from repro.sram import metrics as sram_metrics
from repro.variation.space import DeviceAxis, VariationSpace

__all__ = ["OperationTiming", "ReadTestbench", "WriteTestbench"]


@dataclass(frozen=True)
class OperationTiming:
    """Wordline pulse timing for one SRAM operation."""

    wl_delay: float = 0.2e-9
    wl_rise: float = 20e-12
    wl_fall: float = 20e-12
    wl_width: float = 2.0e-9
    t_hold: float = 0.5e-9  # observation time after the WL falls

    @property
    def t_stop(self) -> float:
        """Total simulated window."""
        return self.wl_delay + self.wl_rise + self.wl_width + self.wl_fall + self.t_hold


class _CellBench:
    """Shared plumbing: circuit construction, u-space, per-sample runs."""

    def __init__(
        self,
        design: Optional[CellDesign],
        vdd: float,
        timing: OperationTiming,
        include_beta: bool,
        tran_options: Optional[TransientOptions],
    ):
        self.design = design or CellDesign()
        self.vdd = float(vdd)
        self.timing = timing
        self.circuit = self._build()
        axes = []
        for mos in (self.circuit[n] for n in cell_device_names()):
            from repro.variation.pelgrom import beta_mismatch_sigma, vth_mismatch_sigma

            axes.append(DeviceAxis(mos.name, "vth", vth_mismatch_sigma(mos.model, mos.w, mos.l)))
            if include_beta:
                axes.append(
                    DeviceAxis(mos.name, "beta", beta_mismatch_sigma(mos.model, mos.w, mos.l))
                )
        self.space = VariationSpace(axes)
        self.tran_options = tran_options or TransientOptions()
        self.n_simulations = 0

    # subclasses override -------------------------------------------------

    def _build(self) -> Circuit:
        raise NotImplementedError

    def _initial_conditions(self) -> Dict[str, float]:
        raise NotImplementedError

    # ---------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """u-space dimensionality of this bench."""
        return self.space.dim

    def simulate(self, u: Optional[np.ndarray] = None) -> TransientResult:
        """Run one transient at variation vector ``u`` (nominal if None)."""
        if u is not None:
            self.space.apply(self.circuit, np.asarray(u, dtype=float))
        try:
            result = run_transient(
                self.circuit,
                self.timing.t_stop,
                ic=self._initial_conditions(),
                options=self.tran_options,
            )
        finally:
            if u is not None:
                self.space.reset(self.circuit)
        self.n_simulations += 1
        return result


class ReadTestbench(_CellBench):
    """Read-access testbench: precharged bitlines, one WL pulse, cell reads 0.

    Parameters
    ----------
    design:
        Cell geometry (default :class:`~repro.sram.cell.CellDesign`).
    vdd:
        Supply voltage in volts.
    cbl:
        Bitline capacitance in farads (lumped column loading; 10 fF is a
        64-cell column with wire parasitics at this node).
    dv_spec:
        Bitline differential required by the sense amplifier, in volts.
    timing:
        Wordline pulse timing.
    include_beta:
        Add per-device beta axes to the u-space (doubles the dimension).
    """

    def __init__(
        self,
        design: Optional[CellDesign] = None,
        vdd: float = 1.0,
        cbl: float = 10e-15,
        dv_spec: float = 0.12,
        timing: Optional[OperationTiming] = None,
        include_beta: bool = False,
        tran_options: Optional[TransientOptions] = None,
    ):
        self.cbl = float(cbl)
        self.dv_spec = float(dv_spec)
        super().__init__(design, vdd, timing or OperationTiming(), include_beta, tran_options)

    def _build(self) -> Circuit:
        t = self.timing
        circuit = Circuit("sram_read_bench")
        circuit.add(VoltageSource("v_vdd", "vdd", "0", dc(self.vdd)))
        circuit.add(
            VoltageSource(
                "v_wl",
                "wl",
                "0",
                pulse(0.0, self.vdd, delay=t.wl_delay, rise=t.wl_rise, fall=t.wl_fall, width=t.wl_width),
            )
        )
        build_cell(self.design, circuit)
        circuit.add(Capacitor("c_bl", "bl", "0", self.cbl))
        circuit.add(Capacitor("c_blb", "blb", "0", self.cbl))
        return circuit

    def _initial_conditions(self) -> Dict[str, float]:
        return {"q": 0.0, "qb": self.vdd, "bl": self.vdd, "blb": self.vdd}

    def access_sample(self, u: Optional[np.ndarray] = None) -> sram_metrics.MetricSample:
        """Read access time sample (penalty-extended; see metrics module)."""
        res = self.simulate(u)
        return sram_metrics.read_access_time(
            res.waveform("bl"),
            res.waveform("blb"),
            res.waveform("wl"),
            dv_spec=self.dv_spec,
            vdd=self.vdd,
        )

    def metric(self, u: Optional[np.ndarray] = None) -> float:
        """Read access time in seconds (the sampler-facing scalar)."""
        return self.access_sample(u).value

    def disturb_metric(self, u: Optional[np.ndarray] = None) -> float:
        """Peak read disturbance of the low node, in volts."""
        res = self.simulate(u)
        return sram_metrics.read_disturb_peak(
            res.waveform("q"), res.waveform("wl"), vdd=self.vdd
        ).value


class WriteTestbench(_CellBench):
    """Write testbench: drivers pull BL low / BLB high into a cell storing 1.

    ``rdrv`` models the write-driver on-resistance.  The metric is the
    write trip time; a dynamic write failure is a trip time exceeding the
    wordline pulse width.
    """

    def __init__(
        self,
        design: Optional[CellDesign] = None,
        vdd: float = 1.0,
        rdrv: float = 200.0,
        cbl: float = 10e-15,
        timing: Optional[OperationTiming] = None,
        include_beta: bool = False,
        tran_options: Optional[TransientOptions] = None,
    ):
        self.rdrv = float(rdrv)
        self.cbl = float(cbl)
        super().__init__(design, vdd, timing or OperationTiming(), include_beta, tran_options)

    def _build(self) -> Circuit:
        t = self.timing
        circuit = Circuit("sram_write_bench")
        circuit.add(VoltageSource("v_vdd", "vdd", "0", dc(self.vdd)))
        circuit.add(
            VoltageSource(
                "v_wl",
                "wl",
                "0",
                pulse(0.0, self.vdd, delay=t.wl_delay, rise=t.wl_rise, fall=t.wl_fall, width=t.wl_width),
            )
        )
        build_cell(self.design, circuit)
        # Write drivers: BL to ground, BLB to VDD, through the driver
        # on-resistance; the bitline capacitance still loads the nodes.
        circuit.add(VoltageSource("v_bl_drv", "bl_drv", "0", dc(0.0)))
        circuit.add(Resistor("r_bl_drv", "bl_drv", "bl", self.rdrv))
        circuit.add(VoltageSource("v_blb_drv", "blb_drv", "0", dc(self.vdd)))
        circuit.add(Resistor("r_blb_drv", "blb_drv", "blb", self.rdrv))
        circuit.add(Capacitor("c_bl", "bl", "0", self.cbl))
        circuit.add(Capacitor("c_blb", "blb", "0", self.cbl))
        return circuit

    def _initial_conditions(self) -> Dict[str, float]:
        return {"q": self.vdd, "qb": 0.0, "bl": 0.0, "blb": self.vdd}

    def trip_sample(self, u: Optional[np.ndarray] = None) -> sram_metrics.MetricSample:
        """Write trip time sample (penalty-extended)."""
        res = self.simulate(u)
        return sram_metrics.write_trip_time(
            res.waveform("q"), res.waveform("qb"), res.waveform("wl"), vdd=self.vdd
        )

    def metric(self, u: Optional[np.ndarray] = None) -> float:
        """Write trip time in seconds (the sampler-facing scalar)."""
        return self.trip_sample(u).value

    # ------------------------------------------------------------------
    # Compiled batched path
    # ------------------------------------------------------------------

    def compiled(self, n_steps: int = 400, kernel: str = "fast") -> CompiledTransient:
        """This bench's circuit compiled into a batched kernel (cached).

        The same netlist the scalar path integrates adaptively — write
        drivers included — on the compiler's fixed backward-Euler grid,
        with the trip crossing and the QB peak compiled in as probes.
        """
        key = (int(n_steps), kernel)
        cache = getattr(self, "_compiled", None)
        if cache is None:
            cache = self._compiled = {}
        ct = cache.get(key)
        if ct is None:
            t = self.timing
            t_wl_mid = t.wl_delay + 0.5 * t.wl_rise
            ct = compile_cached(
                self.circuit,
                grid=transient_grid(
                    t.t_stop,
                    breakpoints=self.circuit["v_wl"].shape.breakpoints(),
                    n_steps=n_steps,
                ),
                probes=(
                    CrossProbe("trip", {"qb": 1.0}, offset=-0.5 * self.vdd),
                    PeakProbe("qb_peak", "qb", t_from=t_wl_mid),
                ),
                kernel=kernel,
            )
            cache[key] = ct
        return ct

    def trip_times_batch(
        self,
        u_batch: np.ndarray,
        n_steps: int = 400,
        kernel: str = "fast",
        penalty_per_volt: float = 20e-9,
    ) -> np.ndarray:
        """Batched :meth:`metric` over u-space rows on the compiled bench.

        Applies the same penalty extension as the scalar
        :func:`repro.sram.metrics.write_trip_time`: a cell that never
        trips reports ``(window_end - t_wl) + (vdd/2 - max(qb)) *
        penalty_per_volt``, continuous with the measured branch.
        """
        u_batch = np.atleast_2d(np.asarray(u_batch, dtype=float))
        n = u_batch.shape[0]
        names = cell_device_names()
        dvth = self.space.vth_matrix(u_batch, names)
        bmult = self.space.beta_matrix(u_batch, names)
        ct = self.compiled(n_steps=n_steps, kernel=kernel)
        res = ct.run(
            ic=self._initial_conditions(),
            n=n,
            delta_vth={nm: dvth[:, j] for j, nm in enumerate(names)},
            beta_mult={nm: bmult[:, j] for j, nm in enumerate(names)},
        )
        self.n_simulations += n

        t = self.timing
        t_wl = t.wl_delay + 0.5 * t.wl_rise
        trip = res.cross["trip"]
        found = ~np.isnan(trip)
        metric = np.empty(n)
        metric[found] = trip[found] - t_wl
        shortfall = 0.5 * self.vdd - res.peak["qb_peak"][~found]
        metric[~found] = (t.t_stop - t_wl) + shortfall * penalty_per_volt
        return metric
