"""Fused fast kernel for the batched 6T transient engine.

This module is the performance core behind :class:`repro.sram.batched.Batched6T`
when it is constructed with ``kernel="fast"`` (the default).  Since PR 3 it
is a *thin instantiation* of the batched circuit compiler in
:mod:`repro.spice.compile`: the 6T read and write testbenches are built as
ordinary netlists (cell + wordline/supply sources + bitline caps + write
drivers) and handed to :class:`~repro.spice.compile.CompiledTransient`,
which emits the fused integrator — one stacked EKV evaluation over
``(6, n)`` arrays per Newton iteration through precomputed gather maps,
incidence-matmul assembly, closed-form batched 4x4 solves
(:func:`~repro.spice.compile.solve4`, re-exported here), hoisted per-step
constants, and read-mode sample retirement via a
:class:`~repro.spice.compile.RetirePolicy`.

The hand-written fused kernel this replaces was pinned against the
reference ``Batched6T._run_chunk`` path at ~1e-9 relative in
``tests/sram/test_kernel.py``; those same tests are the compiler's
regression anchor — the compiled 6T must meet the identical budget:

* the integration grid is the engine's own (passed to the compiler
  verbatim), so the discretisation is bit-identical;
* the compiled capacitance matrix is assembled from the same
  ``MosfetModel.capacitances`` values in the same element order as
  ``Batched6T._capacitance_structure``;
* Newton controls (damping, clamp band, tolerance, iteration cap) are
  forwarded unchanged;
* retirement semantics are unchanged: a read sample retires only after
  the wordline has fully fallen and its crossing is recorded, keeping
  the aux values it had at retirement (``retire=False`` for bit-faithful
  aux tails).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.spice.compile import (
    CompiledTransient,
    CrossProbe,
    PeakProbe,
    RetirePolicy,
    solve4,
    solveN,
)
from repro.spice.elements import Capacitor, Resistor, VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.plan import compile_cached
from repro.spice.sources import dc
from repro.sram.cell import CELL_DEVICE_ORDER, build_cell

__all__ = ["FusedTransientKernel", "solve4", "solveN"]


class FusedTransientKernel:
    """Compiled fused integrator for one :class:`Batched6T` configuration.

    Construction is lazy per operation mode: the read and write circuits
    are netlisted and compiled on first use and cached.  Mutating the
    owning engine's configuration after construction is not supported
    (build a new engine instead) — the same restriction the reference
    path has in practice, since its capacitance matrix and grid are also
    precomputed.
    """

    def __init__(self, engine):
        self.engine = engine
        self._compiled: Dict[str, CompiledTransient] = {}
        t = engine.timing
        self._t_wl_mid = t.wl_delay + 0.5 * t.wl_rise

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _build_circuit(self, mode: str) -> Circuit:
        """The engine's operation as a netlist (mirrors the testbenches)."""
        eng = self.engine
        c = Circuit(f"batched6t_{mode}")
        c.add(VoltageSource("v_vdd", "vdd", "0", dc(eng.vdd)))
        c.add(VoltageSource("v_wl", "wl", "0", eng._wl_shape))
        build_cell(eng.design, c)
        c.add(Capacitor("c_bl", "bl", "0", eng.cbl))
        c.add(Capacitor("c_blb", "blb", "0", eng.cbl))
        if mode == "write":
            c.add(VoltageSource("v_bl_drv", "bl_drv", "0", dc(0.0)))
            c.add(Resistor("r_bl_drv", "bl_drv", "bl", eng.rdrv))
            c.add(VoltageSource("v_blb_drv", "blb_drv", "0", dc(eng.vdd)))
            c.add(Resistor("r_blb_drv", "blb_drv", "blb", eng.rdrv))
        return c

    def _compiled_for(self, mode: str) -> CompiledTransient:
        ct = self._compiled.get(mode)
        if ct is not None:
            return ct
        eng = self.engine
        if mode == "read":
            cross = CrossProbe(
                "cross", {"blb": 1.0, "bl": -1.0}, offset=-eng.dv_spec
            )
        else:
            cross = CrossProbe("cross", {"qb": 1.0}, offset=-0.5 * eng.vdd)
        probes = (
            cross,
            PeakProbe("q_peak", "q", t_from=self._t_wl_mid),
            PeakProbe("qb_peak", "qb", t_from=self._t_wl_mid),
        )
        ct = compile_cached(
            self._build_circuit(mode),
            grid=eng._grid,
            probes=probes,
            kernel="fast",
            newton_max_iter=eng.newton_max_iter,
            clip=(-0.4, eng.vdd + 0.4),
        )
        # The variation matrices arrive in canonical cell-device order;
        # the compiled order must match or every sample would be wired to
        # the wrong transistor.
        if tuple(ct.device_names) != CELL_DEVICE_ORDER:
            raise SimulationError(
                f"compiled 6T device order {ct.device_names} does not match "
                f"the canonical cell order {CELL_DEVICE_ORDER}"
            )
        self._compiled[mode] = ct
        return ct

    # ------------------------------------------------------------------
    # Chunk integration
    # ------------------------------------------------------------------

    def run_chunk(
        self,
        dvth: np.ndarray,
        bmult: np.ndarray,
        mode: str,
        dv_spec: Optional[np.ndarray] = None,
    ) -> Dict[str, np.ndarray]:
        """Integrate one chunk; returns the same raw accumulators as the
        reference ``Batched6T._run_chunk``."""
        eng = self.engine
        ct = self._compiled_for(mode)
        t = eng.timing
        n = dvth.shape[0]
        dv_req_full = np.full(n, eng.dv_spec) if dv_spec is None else dv_spec
        vdd = eng.vdd

        if mode == "read":
            ic = {"q": 0.0, "qb": vdd, "bl": vdd, "blb": vdd}
            probe_offsets = {"cross": -dv_req_full}
            retire = None
            if eng.retire:
                t_wl_off = t.wl_delay + t.wl_rise + t.wl_width + t.wl_fall
                retire = RetirePolicy("cross", after=t_wl_off)
        else:
            ic = {"q": vdd, "qb": 0.0, "bl": 0.0, "blb": vdd}
            probe_offsets = None
            retire = None

        res = ct.run(
            ic=ic,
            n=n,
            delta_vth=dvth,
            beta_mult=bmult,
            probe_offsets=probe_offsets,
            retire=retire,
        )
        eng.n_sample_steps += res.n_sample_steps
        eng.n_simulations += n

        if mode == "read":
            diff_final = res.final["blb"] - res.final["bl"]
        else:
            diff_final = res.peak["qb_peak"].copy()
        return {
            "dv_req": dv_req_full,
            "cross_time": res.cross["cross"],
            "q_peak": res.peak["q_peak"],
            "qb_peak": res.peak["qb_peak"],
            "diff_final": diff_final,
            "q_final": res.final["q"],
            "qb_final": res.final["qb"],
            "converged": res.converged,
            "t_wl_mid": np.full(n, self._t_wl_mid),
        }
