"""Fused fast kernel for the batched 6T transient engine.

This module is the performance core behind :class:`repro.sram.batched.Batched6T`
when it is constructed with ``kernel="fast"`` (the default).  It integrates
the same backward-Euler / damped-Newton scheme as the reference
``_run_chunk`` path, but restructures the inner loop so that almost no
per-device or per-step Python executes:

* **Fused device evaluation.**  The reference path calls
  :meth:`repro.spice.mosfet.MosfetModel.ids` once per transistor per Newton
  iteration — six small-array calls whose numpy dispatch overhead dominates
  at typical chunk widths.  Here the six devices are evaluated in *one*
  stacked pass over ``(6, n)`` arrays: terminal voltages are gathered from
  an extended state matrix (four unknown nodes + the three rails) through
  precomputed wiring index maps, and the EKV current/conductance formulas
  run once with per-device parameter columns.  The math is a faithful
  transcription of ``MosfetModel.ids`` (same smooth clamps, same epsilons),
  so the two paths agree to float round-off; the cross-validation tests in
  ``tests/sram/test_kernel.py`` pin the budget.

* **Closed-form batched 4x4 solves.**  :func:`solve4` replaces
  ``np.linalg.solve`` on ``(n, 4, 4)`` stacks with unrolled Gaussian
  elimination over ``(4, 4, n)`` stacks.  Elimination runs in natural pivot
  order — the 6T Newton Jacobian ``C/h + G`` has a dominant positive
  diagonal, and instrumented runs show partial pivoting never selects an
  off-diagonal row — with a per-pivot magnitude guard: any sample whose
  pivot falls below ``min_pivot`` is re-solved through the fully pivoted
  ``np.linalg.solve``, so robustness matches LAPACK while the common path
  costs a fixed set of elementwise operations.

* **Hoisted step constants and reused buffers.**  The integration grid is
  fixed per engine, so everything that depends only on the step — ``h``,
  the wordline voltage and its slope, ``C/h``, ``C/h + diag(g_drv)``, the
  warm-start extrapolation ratio — is precomputed once per (mode, grid)
  plan instead of being rebuilt inside the time loop.

* **Sample retirement.**  In read mode, a sample whose threshold crossing
  has been recorded contributes nothing more to its metric, and once the
  wordline has fully fallen its disturb accumulators are settled too (the
  low node only decays after the access transistors shut off).  Such
  samples are *retired*: their outputs are scattered to the result arrays
  and the working set is compacted, so the per-step cost of the tail of
  the transient scales with the samples still undecided, not with the
  chunk size.  Retired samples keep the aux values (``q_final``,
  ``qb_final``, ``diff_final``, ``qb_peak``) they had at retirement — the
  metric and ``q_peak`` are provably settled by then, the remaining aux
  drift in the hold tail is diagnostic only.  ``Batched6T(retire=False)``
  disables retirement for bit-faithful aux comparisons.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, Optional

import numpy as np

from repro.spice.mosfet import THERMAL_VOLTAGE

__all__ = ["FusedTransientKernel", "solve4"]

# Unknown-node indices (must match repro.sram.batched).
_Q, _QB, _BL, _BLB = 0, 1, 2, 3
# Extended-state rows appended below the four unknown nodes.
_ROW_VDD, _ROW_GND, _ROW_WL = 4, 5, 6
_N_EXT = 7

# Smoothing epsilons — must match MosfetModel.ids exactly.
_EPS_RELU = 1e-3
_EPS_ABS = 5e-3


def solve4(a: np.ndarray, b: np.ndarray, min_pivot: float = 1e-18) -> np.ndarray:
    """Solve ``a[:, :, i] @ x[:, i] = b[:, i]`` for a stack of 4x4 systems.

    ``a`` has shape ``(4, 4, n)`` and ``b`` shape ``(4, n)``; returns ``x``
    of shape ``(4, n)``.  Inputs are not modified.

    The elimination is fully unrolled (closed-form) and runs in natural
    pivot order, which for the diagonally dominant 6T Newton Jacobians is
    exactly what partial pivoting would choose.  Samples whose pivot
    magnitude drops below ``min_pivot`` (cancellation-level for
    conductance-scale entries) are re-solved through the row-pivoted
    ``np.linalg.solve``, so pathological matrices lose speed, never
    accuracy.
    """
    a00, a01, a02, a03 = a[0]
    a10, a11, a12, a13 = a[1]
    a20, a21, a22, a23 = a[2]
    a30, a31, a32, a33 = a[3]
    b0, b1, b2, b3 = b

    bad = np.abs(a00) < min_pivot
    if bad.any():
        # Keep the guarded samples finite through the closed-form pass
        # (they are re-solved below); avoids divide-by-zero noise.
        a00 = np.where(bad, 1.0, a00)
    p0 = 1.0 / a00
    f1 = a10 * p0
    f2 = a20 * p0
    f3 = a30 * p0
    a11 = a11 - f1 * a01
    a12 = a12 - f1 * a02
    a13 = a13 - f1 * a03
    b1 = b1 - f1 * b0
    a21 = a21 - f2 * a01
    a22 = a22 - f2 * a02
    a23 = a23 - f2 * a03
    b2 = b2 - f2 * b0
    a31 = a31 - f3 * a01
    a32 = a32 - f3 * a02
    a33 = a33 - f3 * a03
    b3 = b3 - f3 * b0

    bad1 = np.abs(a11) < min_pivot
    if bad1.any():
        a11 = np.where(bad1, 1.0, a11)
        bad |= bad1
    p1 = 1.0 / a11
    f2 = a21 * p1
    f3 = a31 * p1
    a22 = a22 - f2 * a12
    a23 = a23 - f2 * a13
    b2 = b2 - f2 * b1
    a32 = a32 - f3 * a12
    a33 = a33 - f3 * a13
    b3 = b3 - f3 * b1

    bad2 = np.abs(a22) < min_pivot
    if bad2.any():
        a22 = np.where(bad2, 1.0, a22)
        bad |= bad2
    p2 = 1.0 / a22
    f3 = a32 * p2
    a33 = a33 - f3 * a23
    b3 = b3 - f3 * b2
    bad3 = np.abs(a33) < min_pivot
    if bad3.any():
        a33 = np.where(bad3, 1.0, a33)
        bad |= bad3

    x3 = b3 / a33
    x2 = (b2 - a23 * x3) * p2
    x1 = (b1 - a12 * x2 - a13 * x3) * p1
    x0 = (b0 - a01 * x1 - a02 * x2 - a03 * x3) * p0
    x = np.stack([x0, x1, x2, x3])

    if bad.any():
        idx = np.flatnonzero(bad)
        sub_a = np.ascontiguousarray(a[:, :, idx].transpose(2, 0, 1))
        sub_b = np.ascontiguousarray(b[:, idx].T)[..., None]
        x[:, idx] = np.linalg.solve(sub_a, sub_b)[..., 0].T
    return x


class FusedTransientKernel:
    """Preplanned fused integrator for one :class:`Batched6T` configuration.

    Construction snapshots the engine's geometry, capacitance structure,
    grid and timing into flat arrays; per-``(mode)`` step plans are built
    lazily and cached.  Mutating the owning engine's configuration after
    construction is not supported (build a new engine instead) — the same
    restriction the reference path has in practice, since its capacitance
    matrix and grid are also precomputed.
    """

    def __init__(self, engine):
        self.engine = engine
        self._plans: Dict[str, SimpleNamespace] = {}
        self._build_device_tables()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_device_tables(self) -> None:
        """Per-device parameter columns and wiring index/incidence maps."""
        from repro.sram.batched import _WIRING
        from repro.sram.cell import CELL_DEVICE_ORDER

        eng = self.engine
        n_dev = len(CELL_DEVICE_ORDER)

        def col(values):
            return np.asarray(values, dtype=float)[:, None]  # (6, 1)

        models = []
        polarity, vto, gamma, phi, n_slope, lam, beta0 = [], [], [], [], [], [], []
        for name in CELL_DEVICE_ORDER:
            model, w, l = eng._geometry[name]
            models.append(model)
            polarity.append(float(model.polarity))
            vto.append(model.vto)
            gamma.append(model.gamma)
            phi.append(model.phi)
            n_slope.append(model.n_slope)
            lam.append(model.lambda_clm)
            beta0.append(model.kp * (w / l))
        self._p = col(polarity)
        self._vto = col(vto)
        self._gamma = col(gamma)
        self._n_slope = col(n_slope)
        self._lam = col(lam)
        self._beta0 = col(beta0)
        k_half = np.sqrt(np.asarray(phi)) + 0.5 * np.asarray(gamma)
        self._k_half = col(k_half)
        self._k_half_sq = self._k_half * self._k_half
        ut = THERMAL_VOLTAGE
        self._inv_2nut = 1.0 / (2.0 * self._n_slope * ut)
        self._inv_nut = 1.0 / (self._n_slope * ut)
        self._ispec_coeff = 2.0 * self._n_slope * ut * ut  # times beta -> i_spec

        # Terminal gather maps into the (7, n) extended state.
        rail_row = {"vdd": _ROW_VDD, "gnd": _ROW_GND, "wl": _ROW_WL}

        def row_of(token):
            return token if isinstance(token, int) else rail_row[token]

        d_idx, g_idx, s_idx, b_idx = [], [], [], []
        for name in CELL_DEVICE_ORDER:
            nd, ng, ns, nb = _WIRING[name]
            d_idx.append(row_of(nd))
            g_idx.append(row_of(ng))
            s_idx.append(row_of(ns))
            b_idx.append(row_of(nb))
        self._d_idx = np.asarray(d_idx)
        self._g_idx = np.asarray(g_idx)
        self._s_idx = np.asarray(s_idx)
        self._b_idx = np.asarray(b_idx)

        # Current incidence: F_dev = S @ ids, S[node, dev] in {+1, -1, 0}.
        s_mat = np.zeros((4, n_dev))
        # Jacobian assembly: J_dev.reshape(16, n) = M @ G_stack.reshape(24, n)
        # where G_stack rows are [gm(6), gds(6), gms(6), gmb(6)].
        m_mat = np.zeros((16, 4 * n_dev))
        for k, name in enumerate(CELL_DEVICE_ORDER):
            nd, ng, ns, nb = _WIRING[name]
            if isinstance(nd, int):
                s_mat[nd, k] += 1.0
            if isinstance(ns, int):
                s_mat[ns, k] -= 1.0
            for g_kind, token in enumerate((ng, nd, ns, nb)):  # gm, gds, gms, gmb
                if not isinstance(token, int):
                    continue
                if isinstance(nd, int):
                    m_mat[nd * 4 + token, g_kind * n_dev + k] += 1.0
                if isinstance(ns, int):
                    m_mat[ns * 4 + token, g_kind * n_dev + k] -= 1.0
        self._s_mat = s_mat
        self._m_mat = m_mat

    def _plan(self, mode: str) -> SimpleNamespace:
        """Step-constant tables for one operation mode (cached)."""
        plan = self._plans.get(mode)
        if plan is not None:
            return plan
        eng = self.engine
        grid = eng._grid
        t = eng.timing
        wl_of = eng._wl_shape.value

        hs = np.diff(grid)
        vwl = np.array([wl_of(float(tt)) for tt in grid])
        dwl_dt = np.diff(vwl) / hs
        # Extrapolation ratio h_k / h_{k-1} for the Newton warm start
        # (0 for the first step, where no history exists).
        extrap = np.zeros_like(hs)
        extrap[1:] = hs[1:] / hs[:-1]

        g_drv = np.zeros(4)
        v_drv = np.zeros(4)
        if mode == "write":
            g_drv[_BL] = 1.0 / eng.rdrv
            g_drv[_BLB] = 1.0 / eng.rdrv
            v_drv[_BL] = 0.0
            v_drv[_BLB] = eng.vdd

        # (n_steps, 4, 4) hoisted matrices: C/h and C/h + diag(g_drv).
        cmat_h = eng._cmat[None, :, :] / hs[:, None, None]
        base_jac = cmat_h + np.diag(g_drv)[None, :, :]
        # Wordline-coupling injection C_wl * dV_wl/dt, per step, (n_steps, 4).
        dwl_vec = eng._wl_coupling[None, :] * dwl_dt[:, None]

        t_wl_mid = t.wl_delay + 0.5 * t.wl_rise
        t_wl_off = t.wl_delay + t.wl_rise + t.wl_width + t.wl_fall
        t_now = grid[1:]
        track_peak = t_now >= t_wl_mid
        # First step index at which read-mode retirement may trigger.
        past_off = np.flatnonzero(t_now >= t_wl_off)
        retire_from = int(past_off[0]) if past_off.size else len(t_now)

        plan = SimpleNamespace(
            hs=hs,
            t_prev=grid[:-1],
            vwl=vwl[1:],
            extrap=extrap,
            cmat_h=cmat_h,
            base_jac=base_jac,
            dwl_vec=dwl_vec,
            g_drv=g_drv if mode == "write" else None,
            v_drv=v_drv,
            track_peak=track_peak,
            t_wl_mid=t_wl_mid,
            retire_from=retire_from,
            n_steps=len(hs),
        )
        self._plans[mode] = plan
        return plan

    # ------------------------------------------------------------------
    # Fused device evaluation
    # ------------------------------------------------------------------

    def _device_eval(self, y_ext: np.ndarray, vto_eff: np.ndarray, i_spec: np.ndarray):
        """Currents and conductances of all six devices in one pass.

        ``y_ext`` is the ``(7, m)`` extended state; ``vto_eff`` and
        ``i_spec`` are per-chunk ``(6, m)`` precomputations.  Returns
        ``(ids (6, m), g_stack (24, m))`` with ``g_stack`` rows ordered
        ``[gm, gds, gms, gmb]`` blockwise, ready for the assembly matmul.
        The formulas transcribe :meth:`MosfetModel.ids` with the scalar
        card parameters broadcast as ``(6, 1)`` columns.
        """
        p = self._p
        vg = np.take(y_ext, self._g_idx, axis=0)
        vd = np.take(y_ext, self._d_idx, axis=0)
        vs = np.take(y_ext, self._s_idx, axis=0)
        vb = np.take(y_ext, self._b_idx, axis=0)
        vgb = p * (vg - vb)
        vdb = p * (vd - vb)
        vsb = p * (vs - vb)

        # Pinch-off voltage with the smoothly clamped body-effect term.
        vgb_t = vgb - vto_eff
        arg = vgb_t + self._k_half_sq
        root = np.sqrt(arg * arg + _EPS_RELU * _EPS_RELU)
        q = 0.5 * (arg + root)            # smooth_relu(arg)
        dq = 0.5 + 0.5 * (arg / root)     # smooth_relu_grad(arg)
        sqrt_q = np.sqrt(q)
        vp = vgb_t - self._gamma * (sqrt_q - self._k_half)
        dvp_dvgb = 1.0 - self._gamma * dq / (2.0 * sqrt_q)

        # Forward / reverse normalised currents (squared softplus).
        xf = (vp - vsb) * self._inv_2nut
        xr = (vp - vdb) * self._inv_2nut
        sf = np.maximum(xf, 0.0) + np.log1p(np.exp(-np.abs(xf)))
        sr = np.maximum(xr, 0.0) + np.log1p(np.exp(-np.abs(xr)))
        i_f = sf * sf
        i_r = sr * sr
        # sigmoid(x) via tanh — overflow-safe without boolean masking.
        dif = sf * (0.5 + 0.5 * np.tanh(0.5 * xf)) * self._inv_nut
        dir_ = sr * (0.5 + 0.5 * np.tanh(0.5 * xr)) * self._inv_nut

        vds = vdb - vsb
        root_ds = np.sqrt(vds * vds + _EPS_ABS * _EPS_ABS)
        clm = 1.0 + self._lam * (root_ds - _EPS_ABS)
        dclm_dvds = self._lam * (vds / root_ds)

        core = i_spec * (i_f - i_r)
        ids = p * (core * clm)

        m = y_ext.shape[1]
        g_stack = np.empty((24, m))
        core_dclm = core * dclm_dvds
        gm = g_stack[0:6]
        gds = g_stack[6:12]
        gms = g_stack[12:18]
        np.multiply(i_spec * (dif - dir_) * dvp_dvgb, clm, out=gm)
        np.add(i_spec * dir_ * clm, core_dclm, out=gds)
        np.negative(i_spec * dif * clm + core_dclm, out=gms)
        np.negative(gm + gds + gms, out=g_stack[18:24])
        return ids, g_stack

    # ------------------------------------------------------------------
    # Chunk integration
    # ------------------------------------------------------------------

    def run_chunk(
        self,
        dvth: np.ndarray,
        bmult: np.ndarray,
        mode: str,
        dv_spec: Optional[np.ndarray] = None,
    ) -> Dict[str, np.ndarray]:
        """Integrate one chunk; returns the same raw accumulators as the
        reference ``Batched6T._run_chunk``."""
        eng = self.engine
        plan = self._plan(mode)
        n = dvth.shape[0]
        dv_req_full = np.full(n, eng.dv_spec) if dv_spec is None else dv_spec
        retire = bool(eng.retire) and mode == "read"
        vdd = eng.vdd

        # Per-chunk device precomputations, (6, n).
        vto_eff = self._vto + dvth.T
        i_spec = self._ispec_coeff * (self._beta0 * bmult.T)

        # Working state, (4, n) node-major.
        y = np.empty((4, n))
        if mode == "read":
            y[_Q] = 0.0
            y[_QB] = vdd
            y[_BL] = vdd
            y[_BLB] = vdd
        else:
            y[_Q] = vdd
            y[_QB] = 0.0
            y[_BL] = 0.0
            y[_BLB] = vdd

        dv_req = dv_req_full
        if mode == "read":
            prev_signal = y[_BLB] - y[_BL] - dv_req
        else:
            prev_signal = y[_QB] - 0.5 * vdd

        cross_time = np.full(n, np.nan)
        q_peak = np.zeros(n)
        qb_peak = np.zeros(n)
        converged = np.ones(n, dtype=bool)
        orig = np.arange(n)

        # Full-width outputs, scattered to as samples retire.
        cross_out = np.full(n, np.nan)
        q_peak_out = np.zeros(n)
        qb_peak_out = np.zeros(n)
        diff_out = np.zeros(n)
        q_final_out = np.zeros(n)
        qb_final_out = np.zeros(n)
        conv_out = np.ones(n, dtype=bool)

        y_prev2: Optional[np.ndarray] = None
        y_ext = np.empty((_N_EXT, n))
        y_ext[_ROW_VDD] = vdd
        y_ext[_ROW_GND] = 0.0

        max_iter = eng.newton_max_iter
        newton_tol = 5e-8
        has_drv = plan.g_drv is not None
        if has_drv:
            g_drv_col = plan.g_drv[:, None]
            v_drv_col = plan.v_drv[:, None]

        for step in range(plan.n_steps):
            m = y.shape[1]
            eng.n_sample_steps += m
            h = plan.hs[step]
            vwl = plan.vwl[step]
            cmat_h = plan.cmat_h[step]
            base_jac = plan.base_jac[step][:, :, None]
            dwl_col = plan.dwl_vec[step][:, None]

            y_prev = y
            if y_prev2 is not None:
                y_new = y_prev + (y_prev - y_prev2) * plan.extrap[step]
                np.clip(y_new, -0.5, vdd + 0.5, out=y_new)
            else:
                y_new = y_prev.copy()

            y_ext[_ROW_WL, :m] = vwl
            idx: Optional[np.ndarray] = None  # None == all samples active
            for _ in range(max_iter):
                if idx is None:
                    y_sub = y_new
                    y_prev_sub = y_prev
                    vto_sub = vto_eff
                    ispec_sub = i_spec
                    ext = y_ext[:, :m]
                else:
                    y_sub = y_new[:, idx]
                    y_prev_sub = y_prev[:, idx]
                    vto_sub = vto_eff[:, idx]
                    ispec_sub = i_spec[:, idx]
                    ext = y_ext[:, : idx.size]
                ext[:4] = y_sub
                ids, g_stack = self._device_eval(ext, vto_sub, ispec_sub)
                f = self._s_mat @ ids
                f += cmat_h @ (y_sub - y_prev_sub)
                f -= dwl_col
                if has_drv:
                    f += g_drv_col * (y_sub - v_drv_col)
                jac = (self._m_mat @ g_stack).reshape(4, 4, -1)
                jac += base_jac
                delta = solve4(jac, -f)
                step_max = np.abs(delta).max(axis=0)
                scale = np.minimum(1.0, 0.4 / np.maximum(step_max, 1e-30))
                y_upd = np.clip(y_sub + delta * scale, -0.4, vdd + 0.4)
                if idx is None:
                    y_new = y_upd
                else:
                    y_new[:, idx] = y_upd
                still = step_max > newton_tol
                if not still.any():
                    idx = None if idx is None else idx[:0]
                    break
                idx = np.flatnonzero(still) if idx is None else idx[still]
            if idx is not None and idx.size:
                converged[idx] = False
            y_prev2 = y_prev
            y = y_new

            # Event tracking (linear interpolation inside the step).
            if mode == "read":
                signal = y[_BLB] - y[_BL] - dv_req
            else:
                signal = y[_QB] - 0.5 * vdd
            crossing = (prev_signal < 0.0) & (signal >= 0.0) & np.isnan(cross_time)
            if crossing.any():
                frac = prev_signal[crossing] / (prev_signal[crossing] - signal[crossing])
                cross_time[crossing] = plan.t_prev[step] + frac * h
            prev_signal = signal
            if plan.track_peak[step]:
                np.maximum(q_peak, y[_Q], out=q_peak)
                np.maximum(qb_peak, y[_QB], out=qb_peak)

            # Retirement: after the wordline has fully fallen, samples with
            # a recorded crossing are settled — scatter and compact.
            if retire and step >= plan.retire_from and step + 1 < plan.n_steps:
                done = ~np.isnan(cross_time)
                n_done = int(np.count_nonzero(done))
                if n_done and n_done >= max(16, m // 8):
                    o = orig[done]
                    cross_out[o] = cross_time[done]
                    q_peak_out[o] = q_peak[done]
                    qb_peak_out[o] = qb_peak[done]
                    diff_out[o] = y[_BLB, done] - y[_BL, done]
                    q_final_out[o] = y[_Q, done]
                    qb_final_out[o] = y[_QB, done]
                    conv_out[o] = converged[done]
                    keep = ~done
                    y = y[:, keep]
                    y_prev2 = y_prev2[:, keep]
                    vto_eff = vto_eff[:, keep]
                    i_spec = i_spec[:, keep]
                    dv_req = dv_req[keep]
                    prev_signal = prev_signal[keep]
                    cross_time = cross_time[keep]
                    q_peak = q_peak[keep]
                    qb_peak = qb_peak[keep]
                    converged = converged[keep]
                    orig = orig[keep]
                    if orig.size == 0:
                        break

        # Scatter the still-active remainder.
        cross_out[orig] = cross_time
        q_peak_out[orig] = q_peak
        qb_peak_out[orig] = qb_peak
        q_final_out[orig] = y[_Q]
        qb_final_out[orig] = y[_QB]
        conv_out[orig] = converged
        if mode == "read":
            diff_out[orig] = y[_BLB] - y[_BL]
        else:
            diff_out = qb_peak_out.copy()

        eng.n_simulations += n
        return {
            "dv_req": dv_req_full,
            "cross_time": cross_out,
            "q_peak": q_peak_out,
            "qb_peak": qb_peak_out,
            "diff_final": diff_out,
            "q_final": q_final_out,
            "qb_final": qb_final_out,
            "converged": conv_out,
            "t_wl_mid": np.full(n, plan.t_wl_mid),
        }
