"""SRAM bitcell circuits, dynamic-characteristic testbenches and metrics.

* :mod:`repro.sram.cell` — parametric 6T bitcell netlist builder.
* :mod:`repro.sram.testbench` — read / write / hold testbenches on the
  general MNA engine, exposing scalar dynamic metrics as functions of a
  u-space variation vector.
* :mod:`repro.sram.metrics` — measurement + smooth-penalty extension
  logic shared by the testbenches.
* :mod:`repro.sram.statics` — static (DC) margins: hold/read SNM via
  butterfly curves.
* :mod:`repro.sram.batched` — vectorised fixed-topology 6T transient
  engine used for golden Monte Carlo and large sampling budgets.
* :mod:`repro.sram.kernel` — the fused fast integrator kernel behind
  ``Batched6T(kernel="fast")``: stacked device evaluation, closed-form
  batched 4x4 solves, sample retirement.
* :mod:`repro.sram.array` — multi-column array slice (shared-bitline
  mux + one sense amp) compiled through the batched circuit compiler
  with the per-column Schur peel.
"""

from repro.sram.array import ArrayConfig, ArraySlice
from repro.sram.cell import CellDesign, build_cell
from repro.sram.column import ColumnConfig, ReadColumn
from repro.sram.senseamp import SenseAmp, SenseAmpDesign
from repro.sram.testbench import ReadTestbench, WriteTestbench
from repro.sram.batched import Batched6T
from repro.sram.statics import butterfly_snm

__all__ = [
    "ArrayConfig",
    "ArraySlice",
    "CellDesign",
    "build_cell",
    "ColumnConfig",
    "ReadColumn",
    "SenseAmp",
    "SenseAmpDesign",
    "ReadTestbench",
    "WriteTestbench",
    "Batched6T",
    "butterfly_snm",
]
