"""Static (DC) SRAM margins: butterfly-curve static noise margin.

Dynamic metrics are this library's focus, but static margins are the
classic sanity anchor: a cell whose hold SNM collapses under a given
variation vector must also look bad dynamically.  The butterfly SNM is
computed the textbook way:

1. break the cross-coupled loop and sweep each inverter's voltage
   transfer characteristic with the access transistor biased for the
   chosen condition (WL low = hold, WL high with bitlines at VDD = read);
2. mirror one VTC across the diagonal;
3. the SNM is the side of the largest square that fits inside each lobe
   of the butterfly, minimised over the two lobes — evaluated in
   45°-rotated coordinates where the square side becomes a vertical
   distance divided by sqrt(2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.spice.elements import Mosfet, VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.sources import dc
from repro.spice.dcop import solve_dc
from repro.sram.cell import CellDesign

__all__ = ["half_cell_vtc", "butterfly_snm"]


def _build_half_cell(
    design: CellDesign,
    vdd: float,
    wl_voltage: float,
    bl_voltage: float,
    side: str,
) -> Circuit:
    """One inverter of the cell plus its access transistor, loop broken.

    ``side`` selects the left (``q``) or right (``qb``) inverter so that
    per-device variation applied to a full-cell variation vector can be
    forwarded to the matching half.
    """
    suffix = "_l" if side == "left" else "_r"
    circuit = Circuit(f"half_cell{suffix}")
    circuit.add(VoltageSource("v_vdd", "vdd", "0", dc(vdd)))
    circuit.add(VoltageSource("v_in", "in", "0", dc(0.0)))
    circuit.add(VoltageSource("v_wl", "wl", "0", dc(wl_voltage)))
    circuit.add(VoltageSource("v_bl", "bl", "0", dc(bl_voltage)))
    circuit.add(
        Mosfet(f"m_pu{suffix}", "out", "in", "vdd", "vdd", design.pmos, w=design.w_pu, l=design.l)
    )
    circuit.add(
        Mosfet(f"m_pd{suffix}", "out", "in", "0", "0", design.nmos, w=design.w_pd, l=design.l)
    )
    circuit.add(
        Mosfet(f"m_pg{suffix}", "bl", "wl", "out", "0", design.nmos, w=design.w_pg, l=design.l)
    )
    return circuit


def half_cell_vtc(
    design: Optional[CellDesign] = None,
    vdd: float = 1.0,
    wl_voltage: float = 0.0,
    bl_voltage: Optional[float] = None,
    side: str = "left",
    n_points: int = 61,
    delta_vth: Optional[dict] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Voltage transfer characteristic of one half-cell.

    ``delta_vth`` optionally maps the half-cell device roles
    (``"pu"``, ``"pd"``, ``"pg"``) to threshold shifts in volts.

    Returns ``(vin, vout)`` arrays of length ``n_points``.
    """
    design = design or CellDesign()
    bl_v = vdd if bl_voltage is None else bl_voltage
    circuit = _build_half_cell(design, vdd, wl_voltage, bl_v, side)
    suffix = "_l" if side == "left" else "_r"
    if delta_vth:
        for role, shift in delta_vth.items():
            circuit[f"m_{role}{suffix}"].delta_vth = float(shift)
    vin = np.linspace(0.0, vdd, n_points)
    vout = np.empty_like(vin)
    x_prev = None
    for i, v in enumerate(vin):
        circuit["v_in"].shape = dc(float(v))
        op = solve_dc(circuit, x0=x_prev)
        vout[i] = op.v("out")
        x_prev = op.x
    return vin, vout


def butterfly_snm(
    design: Optional[CellDesign] = None,
    vdd: float = 1.0,
    mode: str = "hold",
    n_points: int = 61,
    delta_vth_left: Optional[dict] = None,
    delta_vth_right: Optional[dict] = None,
) -> float:
    """Static noise margin from butterfly curves, in volts.

    ``mode`` is ``"hold"`` (access transistors off) or ``"read"``
    (wordline high, bitlines precharged to VDD — the read-stress SNM).
    Per-side threshold shifts allow evaluating the SNM of a *varied* cell.
    """
    if mode not in ("hold", "read"):
        raise MeasurementError(f"unknown SNM mode {mode!r}")
    wl_v = 0.0 if mode == "hold" else vdd
    vin1, vout1 = half_cell_vtc(
        design, vdd, wl_v, side="left", n_points=n_points, delta_vth=delta_vth_left
    )
    vin2, vout2 = half_cell_vtc(
        design, vdd, wl_v, side="right", n_points=n_points, delta_vth=delta_vth_right
    )

    # Both curves as single-valued functions of the same abscissa:
    # f1(x) = VTC1, and the mirrored second curve m2(x) = VTC2^{-1}(x)
    # (VTCs are monotone decreasing, so the inverse exists).
    grid = np.linspace(0.0, vdd, 8 * n_points)
    f1 = np.interp(grid, vin1, vout1)
    # Invert curve 2: pairs (vout2, vin2) sorted by vout2 ascending.
    order = np.argsort(vout2)
    m2 = np.interp(grid, vout2[order], vin2[order])

    def lobe_side(upper: np.ndarray, lower: np.ndarray) -> float:
        """Largest axis-aligned square fitting between upper and lower curves.

        Both curves are monotone decreasing, so over a square footprint
        ``[x, x+s]`` the upper curve is lowest at the right edge and the
        lower curve highest at the left edge.  A square of side ``s``
        therefore fits iff there is an ``x`` with
        ``upper(x + s) - lower(x) >= s``; the side is found by bisection.
        """

        def feasible(s: float) -> bool:
            shifted_upper = np.interp(grid + s, grid, upper, right=upper[-1])
            return bool(np.any(shifted_upper - lower >= s))

        if not feasible(0.0):
            return 0.0
        lo_s, hi_s = 0.0, vdd
        for _ in range(50):
            mid = 0.5 * (lo_s + hi_s)
            if feasible(mid):
                lo_s = mid
            else:
                hi_s = mid
        return lo_s

    side1 = lobe_side(f1, m2)   # lobe where VTC1 lies above the mirror
    side2 = lobe_side(m2, f1)   # the opposite lobe
    if side1 <= 0.0 or side2 <= 0.0:
        # One lobe has collapsed: the cell is not bistable any more.
        return 0.0
    return min(side1, side2)
