"""The five compiled benchmark circuits as a registry.

The netlist linter, the plan auditor, the CI ``static-analysis`` job and
the audit tests all need the same thing: "every compiled bench, by
name".  This module is that single source of truth, so adding a sixth
bench automatically widens the lint/audit surface.

Registry names (matching the smoke-benchmark sections):

* ``6t``     — the fused 6T read kernel (4 unknowns);
* ``latch``  — the sense-amp latch (3 unknowns);
* ``column`` — a read column with leakers (``4 + 2 * n_leakers``
  unknowns, sparse assembly above the threshold);
* ``write``  — the write-trip testbench (4 unknowns);
* ``array``  — a multi-column array slice
  (``n_cols * (2 * n_leakers + 4) + 2`` unknowns, Schur-peeled).

:func:`recompile` rebuilds a compiled bench under a different
assembly/solver choice while keeping circuit, grid and probes — the
audit matrix uses it to prove every legal combination clean.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigError
from repro.spice.compile import CompiledTransient
from repro.spice.plan import compile_cached

__all__ = ["BENCH_NAMES", "bench_compiled", "bench_solver_choices", "recompile"]

BENCH_NAMES: Tuple[str, ...] = ("6t", "latch", "column", "write", "array")


def bench_compiled(
    name: str,
    n_cols: int = 2,
    n_leakers: int = 3,
    n_steps: int = 240,
    kernel: str = "fast",
    assembly: str = "auto",
    solver: str = "auto",
) -> CompiledTransient:
    """Build the named bench's :class:`CompiledTransient`.

    The defaults are audit-sized (small leak/column counts keep the test
    matrix fast) — the smoke benchmark builds its own full-size
    versions.  ``assembly``/``solver`` apply only to the benches whose
    ``compiled()`` exposes them (column: assembly; array: both).
    """
    # Imports are local: the registry must not drag every testbench into
    # ``import repro.sram``.
    if name == "6t":
        from repro.sram.batched import Batched6T
        from repro.sram.kernel import FusedTransientKernel

        ct = FusedTransientKernel(Batched6T(kernel=kernel))._compiled_for("read")
    elif name == "latch":
        from repro.sram.senseamp import SenseAmp

        ct = SenseAmp().compiled(n_steps=n_steps, kernel=kernel)
    elif name == "column":
        from repro.sram.column import ColumnConfig, ReadColumn

        ct = ReadColumn(config=ColumnConfig(n_leakers=n_leakers)).compiled(
            n_steps=n_steps, kernel=kernel, assembly=assembly
        )
    elif name == "write":
        from repro.sram.testbench import WriteTestbench

        ct = WriteTestbench().compiled(n_steps=n_steps, kernel=kernel)
    elif name == "array":
        from repro.sram.array import ArrayConfig, ArraySlice

        ct = ArraySlice(
            config=ArrayConfig(n_cols=n_cols, n_leakers=n_leakers)
        ).compiled(
            n_steps=n_steps, kernel=kernel, assembly=assembly, solver=solver
        )
    else:
        raise ConfigError(
            f"unknown bench {name!r}; expected one of {BENCH_NAMES}"
        )
    # Benches whose ``compiled()`` does not expose assembly/solver (6t,
    # latch, write; column lacks solver) get the requested combination
    # through a recompile, so the audit matrix is uniform across the
    # registry.
    if (assembly != "auto" and ct.assembly != assembly) or (
        solver != "auto" and ct._solver_choice != solver
    ):
        ct = recompile(ct, assembly=assembly, solver=solver)
    return ct


def bench_solver_choices(name: str) -> Tuple[str, ...]:
    """Solver modes legal for the named bench at the audit sizes.

    The Schur peel needs more than four unknowns (below that the fused
    path's unrolled solves already cover the whole system), so it is
    only a valid choice for the column and array benches.
    """
    if name not in BENCH_NAMES:
        raise ConfigError(
            f"unknown bench {name!r}; expected one of {BENCH_NAMES}"
        )
    if name in ("column", "array"):
        return ("auto", "schur", "blocked")
    return ("auto", "blocked")


def recompile(ct: CompiledTransient, **overrides) -> CompiledTransient:
    """Recompile ``ct`` with keyword overrides (assembly/solver/kernel...).

    Rebuilds from the original circuit, grid and probe list, so the
    result is the same plan re-derived under the new compile options —
    the cross-check the auditors run combination-by-combination.  Routes
    through the content-addressed plan cache: re-deriving a combination
    that was already compiled (anywhere in the process, or in the
    configured cache dir) restores instead of recompiling.
    """
    probes = (*ct._cross_probes, *ct._peak_probes, *ct._value_probes)
    kwargs = {
        "kernel": ct.kernel,
        "assembly": ct.assembly,
        "solver": ct._solver_choice,
        "newton_max_iter": ct.newton_max_iter,
        "newton_tol": ct.newton_tol,
        "max_step": ct.max_step,
        "min_pivot": ct.min_pivot,
        "clip": ct.clip,
    }
    kwargs.update(overrides)
    return compile_cached(ct.circuit, ct.grid, probes=probes, **kwargs)
