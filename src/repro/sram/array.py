"""Multi-column array slice: read columns behind a shared bitline mux.

A real SRAM macro does not sense every column: a wordline activates one
cell per column across the whole row, a **column mux** selects one
bitline pair onto shared data lines, and a single sense amplifier
resolves the muxed differential.  The failure statistics of that slice
couple every cell on every column — the selected column's leakage erodes
the differential directly, while the unselected columns load the shared
wordline edge and their muxes leak onto the data lines — and the
variation space grows as ``6 * n_cols * (n_leakers + 1)`` axes.

This module builds that slice:

* ``n_cols`` read columns, each a copy of the
  :class:`~repro.sram.column.ReadColumn` topology — one accessed cell
  driven by the shared wordline plus ``n_leakers`` unaccessed cells on
  the same bitline pair;
* a PMOS column mux (gates on select rails: the selected column's gate
  tied low, the others at VDD) connecting each pair to the shared data
  lines ``dl``/``dlb``;
* one shared sense amplifier (:class:`~repro.sram.senseamp.SenseAmp`)
  that resolves the muxed differential in :meth:`ArraySlice.resolve_batch`.

The whole slice compiles through :class:`~repro.spice.compile
.CompiledTransient`: sparse scatter-stamp assembly (bit-equal to the
dense matmuls) and the generalized per-column Schur peel — every cell
pair is an interior block, the border is the set of all bitlines, and
the mux data lines fall out as their own interior singletons once the
bitlines are peeled.  ``solver="blocked"`` keeps the generic guarded
elimination selectable as the cross-check, and ``kernel="reference"``
the per-device one, exactly as on the single column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.spice.compile import (
    CompiledTransient,
    CrossProbe,
    ValueProbe,
    transient_grid,
)
from repro.spice.elements import Capacitor, Mosfet, VoltageSource
from repro.spice.plan import compile_cached
from repro.spice.netlist import Circuit
from repro.spice.sources import dc, pulse
from repro.spice.transient import TransientOptions, TransientResult, run_transient
from repro.sram import metrics as sram_metrics
from repro.sram.cell import CellDesign, build_cell, cell_device_names
from repro.sram.column import (
    CBL_PER_CELL,
    CBL_WIRE,
    _access_metric,
    _batch_n,
    _vth_dict,
)
from repro.sram.senseamp import SenseAmp, SenseAmpDesign
from repro.sram.testbench import OperationTiming

__all__ = ["ArrayConfig", "ArraySlice"]

#: Data-line loading per attached mux leg (junction share), farads.
CDL_PER_COLUMN = 0.25e-15
#: Fixed wire/periphery loading per data line (sense-amp input), farads.
CDL_WIRE = 1.5e-15


@dataclass(frozen=True)
class ArrayConfig:
    """Array-slice composition.

    ``n_cols`` columns share the wordline and the mux; ``sel_col`` picks
    which column the mux routes to the sense amplifier.  ``leaker_data``
    chooses the stored value of the unaccessed cells exactly as on the
    single column (``"adversarial"`` leaks against the read
    differential).  ``cbl``/``cdl`` override the estimated bitline /
    data-line capacitances.
    """

    n_cols: int = 4
    n_leakers: int = 15
    leaker_data: str = "adversarial"
    cbl: Optional[float] = None
    cdl: Optional[float] = None
    vdd: float = 1.0
    sel_col: int = 0
    w_mux: float = 200e-9

    def bitline_cap(self) -> float:
        """Effective per-bitline capacitance (same law as the column)."""
        if self.cbl is not None:
            return self.cbl
        return CBL_WIRE + (self.n_leakers + 1) * CBL_PER_CELL

    def dataline_cap(self) -> float:
        """Effective per-data-line capacitance behind the mux."""
        if self.cdl is not None:
            return self.cdl
        return CDL_WIRE + self.n_cols * CDL_PER_COLUMN


class ArraySlice:
    """A read testbench over ``n_cols`` columns, a mux and one sense amp.

    Every accessed cell stores 0 on its ``q`` (BL) side, so each
    column's BL discharges when the shared wordline rises; the mux
    routes the selected column's pair onto ``dl``/``dlb`` where the
    access metric is measured — the slice-level analogue of the
    column's bitline differential, now including the mux's resistance
    and the data-line loading.
    """

    def __init__(
        self,
        design: Optional[CellDesign] = None,
        config: Optional[ArrayConfig] = None,
        sa_design: Optional[SenseAmpDesign] = None,
        dv_spec: float = 0.12,
        timing: Optional[OperationTiming] = None,
        tran_options: Optional[TransientOptions] = None,
    ):
        config = config or ArrayConfig()
        if config.leaker_data not in ("adversarial", "friendly"):
            raise ConfigError(f"unknown leaker_data {config.leaker_data!r}")
        if config.n_cols < 1:
            raise ConfigError(f"n_cols must be >= 1, got {config.n_cols}")
        if not 0 <= config.sel_col < config.n_cols:
            raise ConfigError(
                f"sel_col {config.sel_col} outside [0, {config.n_cols})"
            )
        self.design = design or CellDesign()
        self.config = config
        self.dv_spec = float(dv_spec)
        self.timing = timing or OperationTiming()
        self.tran_options = tran_options or TransientOptions()
        self.sense = SenseAmp(sa_design, vdd=config.vdd)
        self.circuit = self._build()
        self.n_simulations = 0
        self._compiled: Dict[tuple, CompiledTransient] = {}

    # ------------------------------------------------------------------

    @staticmethod
    def _col_suffixes(col: int, n_leakers: int) -> List[str]:
        """Cell suffixes of one column: accessed cell first, then leakers."""
        return [f"_c{col}a"] + [f"_c{col}l{k}" for k in range(n_leakers)]

    def _build(self) -> Circuit:
        cfg = self.config
        t = self.timing
        circuit = Circuit(
            f"sram_array_{cfg.n_cols}cols_{cfg.n_leakers}leakers"
        )
        circuit.add(VoltageSource("v_vdd", "vdd", "0", dc(cfg.vdd)))
        circuit.add(
            VoltageSource(
                "v_wl", "wl", "0",
                pulse(0.0, cfg.vdd, delay=t.wl_delay, rise=t.wl_rise,
                      fall=t.wl_fall, width=t.wl_width),
            )
        )
        circuit.add(VoltageSource("v_wl_off", "wl_off", "0", dc(0.0)))
        # Mux select rails: PMOS pass gates, so the *selected* column's
        # gate sits at 0 V and the unselected gates at VDD (off, leaking
        # only subthreshold onto the data lines — which is part of the
        # physics the slice exists to capture).
        circuit.add(VoltageSource("v_sel_on", "sel_on", "0", dc(0.0)))
        circuit.add(VoltageSource("v_sel_off", "sel_off", "0", dc(cfg.vdd)))

        cap_bl = cfg.bitline_cap()
        for c in range(cfg.n_cols):
            bl, blb = f"bl_c{c}", f"blb_c{c}"
            for j, suffix in enumerate(self._col_suffixes(c, cfg.n_leakers)):
                build_cell(
                    self.design, circuit,
                    q=f"q{suffix}", qb=f"qb{suffix}",
                    bl=bl, blb=blb,
                    wl="wl" if j == 0 else "wl_off",
                    suffix=suffix,
                )
            circuit.add(Capacitor(f"c_{bl}", bl, "0", cap_bl))
            circuit.add(Capacitor(f"c_{blb}", blb, "0", cap_bl))
            sel = "sel_on" if c == cfg.sel_col else "sel_off"
            circuit.add(
                Mosfet(f"m_mux_bl_c{c}", "dl", sel, bl, "vdd",
                       self.design.pmos, w=cfg.w_mux, l=self.design.l)
            )
            circuit.add(
                Mosfet(f"m_mux_blb_c{c}", "dlb", sel, blb, "vdd",
                       self.design.pmos, w=cfg.w_mux, l=self.design.l)
            )
        cap_dl = cfg.dataline_cap()
        circuit.add(Capacitor("c_dl", "dl", "0", cap_dl))
        circuit.add(Capacitor("c_dlb", "dlb", "0", cap_dl))
        return circuit

    def _initial_conditions(self) -> Dict[str, float]:
        cfg = self.config
        ic: Dict[str, float] = {"dl": cfg.vdd, "dlb": cfg.vdd}
        for c in range(cfg.n_cols):
            ic[f"bl_c{c}"] = cfg.vdd
            ic[f"blb_c{c}"] = cfg.vdd
            ic[f"q_c{c}a"] = 0.0
            ic[f"qb_c{c}a"] = cfg.vdd
            for k in range(cfg.n_leakers):
                if cfg.leaker_data == "adversarial":
                    ic[f"q_c{c}l{k}"] = cfg.vdd
                    ic[f"qb_c{c}l{k}"] = 0.0
                else:
                    ic[f"q_c{c}l{k}"] = 0.0
                    ic[f"qb_c{c}l{k}"] = cfg.vdd
        return ic

    # ------------------------------------------------------------------

    def accessed_device_names(self) -> List[str]:
        """MOSFETs of the *selected* column's accessed cell."""
        return cell_device_names(f"_c{self.config.sel_col}a")

    def all_device_names(self) -> List[str]:
        """Every cell MOSFET on the slice, column by column — within a
        column the accessed cell first, then the leakers in build order,
        each in canonical per-cell order.  This is the column order of
        the bulk variation matrices (``6 * n_cols * (n_leakers + 1)``
        names; the mux devices carry no variation axis)."""
        names: List[str] = []
        for c in range(self.config.n_cols):
            for suffix in self._col_suffixes(c, self.config.n_leakers):
                names.extend(cell_device_names(suffix))
        return names

    @property
    def n_variation_devices(self) -> int:
        """Cell-device count: ``6 * n_cols * (n_leakers + 1)``."""
        return 6 * self.config.n_cols * (self.config.n_leakers + 1)

    # ------------------------------------------------------------------
    # Scalar reference path (general MNA engine)
    # ------------------------------------------------------------------

    def simulate(self, delta_vth: Optional[Dict[str, float]] = None) -> TransientResult:
        """One adaptive-grid transient of the whole slice."""
        applied = []
        if delta_vth:
            for name, shift in delta_vth.items():
                mos = self.circuit[name]
                applied.append((mos, mos.delta_vth))
                mos.delta_vth = float(shift)
        try:
            result = run_transient(
                self.circuit, self.timing.t_stop,
                ic=self._initial_conditions(), options=self.tran_options,
            )
        finally:
            for mos, original in applied:
                mos.delta_vth = original
        self.n_simulations += 1
        return result

    def access_sample(
        self, delta_vth: Optional[Dict[str, float]] = None
    ) -> sram_metrics.MetricSample:
        """Read access time measured on the muxed data lines."""
        res = self.simulate(delta_vth)
        return sram_metrics.read_access_time(
            res.waveform("dl"), res.waveform("dlb"), res.waveform("wl"),
            dv_spec=self.dv_spec, vdd=self.config.vdd,
        )

    # ------------------------------------------------------------------
    # Compiled batched path
    # ------------------------------------------------------------------

    def _t_wl_fall(self) -> float:
        t = self.timing
        return t.wl_delay + t.wl_rise + t.wl_width + t.wl_fall

    def compiled(
        self,
        n_steps: int = 400,
        kernel: str = "fast",
        assembly: str = "auto",
        solver: str = "auto",
    ) -> CompiledTransient:
        """The whole slice compiled into one batched kernel (cached).

        Every cell node, every bitline and both data lines integrate as
        unknowns (``n_cols * (2 * n_leakers + 4) + 2`` of them), so the
        compiled path sees exactly the leakage and mux topology the
        scalar slice simulates.  The Jacobian assembles through the
        sparse scatter-stamp pass (bit-equal to ``assembly="dense"``)
        and solves through the per-column Schur peel: cell pairs as
        interior blocks, all bitlines as the border, the data lines as
        interior singletons.  ``solver="blocked"`` forces the generic
        guarded elimination — the cross-check the smoke benchmark gates
        the peel against.
        """
        key = (int(n_steps), kernel, assembly, solver)
        ct = self._compiled.get(key)
        if ct is None:
            t_fall = self._t_wl_fall()
            ct = compile_cached(
                self.circuit,
                grid=transient_grid(
                    self.timing.t_stop,
                    breakpoints=self.circuit["v_wl"].shape.breakpoints(),
                    n_steps=n_steps,
                ),
                probes=(
                    CrossProbe("access", {"dlb": 1.0, "dl": -1.0},
                               offset=-self.dv_spec),
                    ValueProbe("diff_at_wl_fall", {"dlb": 1.0, "dl": -1.0},
                               t=t_fall),
                ),
                kernel=kernel,
                assembly=assembly,
                solver=solver,
            )
            self._compiled[key] = ct
        return ct

    def _vth_dict(self, delta_vth, n: int):
        """Accept a device-name dict or an ``(n, 6 * n_cols * (L + 1))``
        matrix over :meth:`all_device_names` (shared column plumbing)."""
        return _vth_dict(
            delta_vth, n, self.all_device_names(),
            "every cell of every column (all_device_names order)",
        )

    def access_times_batch(
        self,
        delta_vth,
        n_steps: int = 400,
        kernel: str = "fast",
        assembly: str = "auto",
        solver: str = "auto",
        penalty_per_volt: float = 20e-9,
    ) -> np.ndarray:
        """Bulk read access times on the muxed data lines.

        ``delta_vth`` is a dict of device names to per-sample arrays or
        an ``(n, 6 * n_cols * (n_leakers + 1))`` matrix over
        :meth:`all_device_names` — every transistor of every cell on the
        slice carries variation.  The metric matches the column
        convention: time from the wordline half-swing to the data-line
        differential reaching ``dv_spec``; samples that never develop
        the differential get the continuous shortfall penalty
        ``(t_stop - t_wl) + (dv_spec - diff_final) * penalty_per_volt``
        so search methods keep a gradient to climb.
        """
        n = _batch_n(delta_vth)
        ct = self.compiled(
            n_steps=n_steps, kernel=kernel, assembly=assembly, solver=solver
        )
        res = ct.run(
            ic=self._initial_conditions(),
            n=n,
            delta_vth=self._vth_dict(delta_vth, n),
        )
        self.n_simulations += n
        return _access_metric(res, "dlb", "dl", self.timing, self.dv_spec,
                              penalty_per_volt)

    def differential_at_wl_fall_batch(
        self,
        delta_vth,
        n_steps: int = 400,
        kernel: str = "fast",
        assembly: str = "auto",
        solver: str = "auto",
    ) -> np.ndarray:
        """Batched data-line differential at the moment the wordline
        closes — the quantity the shared sense amplifier has to resolve.
        Accepts the same variation specs as :meth:`access_times_batch`.
        """
        n = _batch_n(delta_vth)
        ct = self.compiled(
            n_steps=n_steps, kernel=kernel, assembly=assembly, solver=solver
        )
        res = ct.run(
            ic=self._initial_conditions(),
            n=n,
            delta_vth=self._vth_dict(delta_vth, n),
        )
        self.n_simulations += n
        return res.value["diff_at_wl_fall"]

    def differential_at_wl_fall(self, delta_vth=None) -> float:
        """Scalar data-line differential at wordline fall (volts)."""
        res = self.simulate(delta_vth)
        diff = res.waveform("dlb") - res.waveform("dl")
        return diff.at(self._t_wl_fall())

    def resolve_batch(
        self,
        delta_vth,
        sa_delta_vth=None,
        n_steps: int = 400,
        kernel: str = "fast",
        assembly: str = "auto",
        solver: str = "auto",
        sa_n_steps: int = 260,
        sa_clip_frac: float = 0.25,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """End-to-end slice read through the shared sense amplifier.

        The compiled slice produces each sample's muxed differential at
        wordline fall; the shared latch then resolves that differential
        with its own mismatch (``sa_delta_vth``: a dict or ``(n, 4)``
        matrix in :data:`~repro.sram.senseamp.SA_DEVICE_ORDER`).
        Returns ``(correct, t_res)`` exactly as
        :meth:`~repro.sram.senseamp.SenseAmp.resolve_batch` — a sample
        whose differential came out backwards (deep leakage) starts the
        latch on the wrong side and fails unless the latch mismatch
        happens to rescue it.

        The latch preset is only meaningful for ``|dv| < vdd / 2`` (a
        latch preset past its decision threshold has already decided);
        a fully developed read differential can exceed that, so the
        differential is clipped to ``sa_clip_frac * vdd`` before it is
        handed to the latch.  The default band is narrower than the
        hard limit because the latch's tail node equilibrates through
        the NMOS pair before SAE fires, drooping the low output by up
        to ~0.1 V — a preset too close to the threshold would "resolve"
        on that droop rather than on the regeneration.  Clipped samples
        keep the correct decision and report the (slightly optimistic)
        resolution time of the band edge.
        """
        diff = self.differential_at_wl_fall_batch(
            delta_vth, n_steps=n_steps, kernel=kernel,
            assembly=assembly, solver=solver,
        )
        band = sa_clip_frac * self.config.vdd
        return self.sense.resolve_batch(
            np.clip(diff, -band, band), sa_delta_vth,
            n_steps=sa_n_steps, kernel=kernel,
        )
