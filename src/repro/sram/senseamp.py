"""Latch-type voltage sense amplifier and its input-referred offset.

The read path does not end at the bitlines: a sense amplifier latch must
resolve the differential, and *its* transistor mismatch adds an offset
the bitline swing has to overcome.  System-level read yield therefore
couples ten variation axes: six in the cell, four in the latch.

The model is the classic cross-coupled latch:

* two back-to-back inverters (``m_sn_l/m_sp_l`` and ``m_sn_r/m_sp_r``)
  on nodes ``sout``/``soutb``;
* a tail NMOS (``m_tail``) gated by the sense-enable ``sae`` pulse;
* sensing starts from the latch nodes precharged to the bitline
  voltages: ``sout = vdd - dv/2`` (the discharging side),
  ``soutb = vdd + dv/2 - dv`` … i.e. a differential of ``dv`` favouring
  the correct decision.

Two offset extractors are provided:

* :meth:`SenseAmp.offset` — transient bisection on ``dv`` until the
  decision flips (the reference measurement; tens of transients);
* :meth:`SenseAmp.offset_linear` — the first-order input-referred model
  ``offset ≈ (dVth_nl - dVth_nr) + r * (dVth_pr - dVth_pl)`` with ``r``
  the PMOS/NMOS transconductance ratio at the latch trip point — the
  fast model the batched system-level workload uses, validated against
  the bisection in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.spice.compile import CompiledTransient, CrossProbe, transient_grid
from repro.spice.elements import Capacitor, Mosfet, VoltageSource
from repro.spice.mosfet import MosfetModel, nmos_45nm, pmos_45nm
from repro.spice.netlist import Circuit
from repro.spice.plan import compile_cached
from repro.spice.sources import dc, pulse
from repro.spice.transient import TransientOptions, run_transient
from repro.variation.pelgrom import vth_mismatch_sigma

__all__ = ["SenseAmpDesign", "SenseAmp", "SA_DEVICE_ORDER"]

#: Variation-relevant latch devices, in canonical order.
SA_DEVICE_ORDER = ("m_sn_l", "m_sp_l", "m_sn_r", "m_sp_r")


@dataclass(frozen=True)
class SenseAmpDesign:
    """Latch geometry.  Larger devices mean less offset but more area."""

    w_sn: float = 200e-9
    w_sp: float = 120e-9
    w_tail: float = 300e-9
    l: float = 50e-9
    nmos: MosfetModel = field(default_factory=nmos_45nm)
    pmos: MosfetModel = field(default_factory=pmos_45nm)

    def vth_sigmas(self) -> np.ndarray:
        """Pelgrom sigmas of the four latch devices in canonical order."""
        sn = vth_mismatch_sigma(self.nmos, self.w_sn, self.l)
        sp = vth_mismatch_sigma(self.pmos, self.w_sp, self.l)
        return np.array([sn, sp, sn, sp])


class SenseAmp:
    """Sense-amplifier latch testbench on the reference MNA engine."""

    def __init__(
        self,
        design: Optional[SenseAmpDesign] = None,
        vdd: float = 1.0,
        cload: float = 2e-15,
        sae_delay: float = 0.1e-9,
        t_resolve: float = 1.5e-9,
        tran_options: Optional[TransientOptions] = None,
    ):
        self.design = design or SenseAmpDesign()
        self.vdd = float(vdd)
        self.cload = float(cload)
        self.sae_delay = float(sae_delay)
        self.t_resolve = float(t_resolve)
        self.tran_options = tran_options or TransientOptions()
        self.circuit = self._build()
        self.n_simulations = 0
        self._compiled: Dict[Tuple[int, str], CompiledTransient] = {}

    def _build(self) -> Circuit:
        d = self.design
        c = Circuit("sense_amp_latch")
        c.add(VoltageSource("v_vdd", "vdd", "0", dc(self.vdd)))
        c.add(
            VoltageSource(
                "v_sae", "sae", "0",
                pulse(0.0, self.vdd, delay=self.sae_delay, rise=20e-12,
                      width=self.t_resolve),
            )
        )
        # Cross-coupled latch; NMOS sources meet at the tail node.
        c.add(Mosfet("m_sp_l", "sout", "soutb", "vdd", "vdd", d.pmos, w=d.w_sp, l=d.l))
        c.add(Mosfet("m_sn_l", "sout", "soutb", "tail", "0", d.nmos, w=d.w_sn, l=d.l))
        c.add(Mosfet("m_sp_r", "soutb", "sout", "vdd", "vdd", d.pmos, w=d.w_sp, l=d.l))
        c.add(Mosfet("m_sn_r", "soutb", "sout", "tail", "0", d.nmos, w=d.w_sn, l=d.l))
        c.add(Mosfet("m_tail", "tail", "sae", "0", "0", d.nmos, w=d.w_tail, l=d.l))
        c.add(Capacitor("c_out", "sout", "0", self.cload))
        c.add(Capacitor("c_outb", "soutb", "0", self.cload))
        # Keep the tail node defined before SAE rises.
        c.add(Capacitor("c_tail", "tail", "0", 0.5e-15))
        return c

    # ------------------------------------------------------------------

    def resolve(
        self,
        dv: float,
        delta_vth: Optional[Dict[str, float]] = None,
    ) -> Tuple[bool, float]:
        """One sensing event.

        The latch starts with ``sout`` lower than ``soutb`` by ``dv``
        (the correct pre-set for a cell reading 0 on the BL side).
        Returns ``(correct, resolution_time)`` where ``correct`` means
        ``sout`` regenerated to 0 and ``soutb`` to VDD, and the time is
        from SAE half-swing to the outputs separating past ``vdd/2``.
        """
        applied = []
        if delta_vth:
            for name, shift in delta_vth.items():
                mos = self.circuit[name]
                applied.append((mos, mos.delta_vth))
                mos.delta_vth = float(shift)
        try:
            ic = {
                "sout": self.vdd - max(dv, 0.0) if dv >= 0 else self.vdd,
                "soutb": self.vdd if dv >= 0 else self.vdd + min(dv, 0.0),
                "tail": 0.0,
            }
            # For negative dv the *other* side starts lower.
            if dv < 0:
                ic = {"sout": self.vdd, "soutb": self.vdd + dv, "tail": 0.0}
            result = run_transient(
                self.circuit,
                self.sae_delay + self.t_resolve,
                ic=ic,
                options=self.tran_options,
            )
        finally:
            for mos, original in applied:
                mos.delta_vth = original
        self.n_simulations += 1

        sout = result.waveform("sout")
        soutb = result.waveform("soutb")
        sae = result.waveform("sae")
        correct = sout.final() < self.vdd / 2.0 < soutb.final()
        t_sae = sae.cross(self.vdd / 2.0, direction="rise")
        try:
            winner = soutb if correct else sout
            loser = sout if correct else soutb
            t_dec = (loser - winner).window(t_sae, sout.t_stop).cross(
                -self.vdd / 2.0, direction="fall"
            )
            t_res = t_dec - t_sae
        except MeasurementError:
            t_res = float("inf")
        return correct, t_res

    # ------------------------------------------------------------------
    # Compiled batched path
    # ------------------------------------------------------------------

    def compiled(self, n_steps: int = 260, kernel: str = "fast") -> CompiledTransient:
        """The latch compiled into a batched fixed-grid kernel (cached).

        The latch has three unknowns (``sout``, ``soutb``, ``tail``), so
        the fused path runs on unrolled 3x3 solves.  Two crossing probes
        record the regeneration instant for each possible winner:
        ``win_correct`` fires when ``soutb - sout`` passes ``vdd/2``
        (the pre-set side wins), ``win_wrong`` for the opposite
        decision; :meth:`resolve_batch` picks per sample.
        """
        key = (int(n_steps), kernel)
        ct = self._compiled.get(key)
        if ct is None:
            half = 0.5 * self.vdd
            ct = compile_cached(
                self.circuit,
                grid=transient_grid(
                    self.sae_delay + self.t_resolve,
                    breakpoints=self.circuit["v_sae"].shape.breakpoints(),
                    n_steps=n_steps,
                ),
                probes=(
                    CrossProbe("win_correct", {"soutb": 1.0, "sout": -1.0},
                               offset=-half),
                    CrossProbe("win_wrong", {"sout": 1.0, "soutb": -1.0},
                               offset=-half),
                ),
                kernel=kernel,
            )
            self._compiled[key] = ct
        return ct

    def _sa_vth_dict(self, delta_vth, n: int) -> Optional[Dict[str, np.ndarray]]:
        """Normalise latch threshold shifts into a device-name dict.

        Accepts ``None``, a dict of device names to scalars/arrays, or an
        ``(n, 4)`` matrix with columns in :data:`SA_DEVICE_ORDER` (the
        tail transistor carries no variation axis).
        """
        if delta_vth is None:
            return None
        if isinstance(delta_vth, dict):
            return delta_vth
        arr = np.atleast_2d(np.asarray(delta_vth, dtype=float))
        if arr.shape != (n, len(SA_DEVICE_ORDER)):
            raise MeasurementError(
                f"sense-amp delta_vth matrix shape {arr.shape} != "
                f"({n}, {len(SA_DEVICE_ORDER)}) in SA_DEVICE_ORDER"
            )
        return {name: arr[:, j] for j, name in enumerate(SA_DEVICE_ORDER)}

    def resolve_batch(
        self,
        dv: np.ndarray,
        delta_vth=None,
        n_steps: int = 260,
        kernel: str = "fast",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`resolve`: one compiled transient for all samples.

        ``dv`` is the per-sample pre-set differential (``|dv|`` must stay
        below ``vdd/2`` — beyond that the latch starts past the decision
        threshold and "resolution" is meaningless); ``delta_vth`` is a
        dict or an ``(n, 4)`` matrix in :data:`SA_DEVICE_ORDER`.  Returns
        ``(correct, t_res)`` with ``t_res = inf`` where the outputs never
        separated past ``vdd/2`` in-window.
        """
        dv = np.atleast_1d(np.asarray(dv, dtype=float))
        n = dv.size
        ct = self.compiled(n_steps=n_steps, kernel=kernel)
        ic = {
            "sout": self.vdd - np.maximum(dv, 0.0),
            "soutb": self.vdd + np.minimum(dv, 0.0),
            "tail": 0.0,
        }
        res = ct.run(ic=ic, n=n, delta_vth=self._sa_vth_dict(delta_vth, n))
        self.n_simulations += n

        half = 0.5 * self.vdd
        correct = (res.final["sout"] < half) & (half < res.final["soutb"])
        # SAE half-swing: the pulse is linear in its rise, so the scalar
        # waveform measurement and this closed form agree exactly.
        sae = self.circuit["v_sae"].shape
        t_sae = sae.delay + 0.5 * sae.rise
        t_dec = np.where(correct, res.cross["win_correct"], res.cross["win_wrong"])
        t_res = np.where(np.isnan(t_dec), np.inf, t_dec - t_sae)
        return correct, t_res

    def offset_batch(
        self,
        delta_vth,
        dv_max: float = 0.3,
        n_bisect: int = 10,
        n_steps: int = 260,
        kernel: str = "fast",
        on_unresolvable: str = "raise",
    ) -> np.ndarray:
        """Batched :meth:`offset`: all samples bisect simultaneously.

        Runs ``n_bisect + 2`` compiled transients total (versus that many
        scalar transients *per sample* on the reference path).  Mirrors
        the scalar bisection: samples that resolve ``-dv_max`` report the
        bracket edge; samples that cannot resolve even ``dv_max`` follow
        ``on_unresolvable`` — ``"raise"`` (the scalar behaviour: such a
        latch is outside the measurement range, treat it as a setup
        error) or ``"saturate"`` (report ``offset = +inf`` for those
        samples and keep bisecting the rest: a deep-tail sample then
        counts as an unconditional failure downstream instead of killing
        the whole bulk batch — the behaviour high-sigma sampling needs).
        """
        if on_unresolvable not in ("raise", "saturate"):
            raise MeasurementError(
                "on_unresolvable must be 'raise' or 'saturate', got "
                f"{on_unresolvable!r}"
            )
        delta_vth = self._sa_vth_dict(
            delta_vth, np.atleast_2d(np.asarray(delta_vth)).shape[0]
        ) if not isinstance(delta_vth, dict) else delta_vth
        n = None
        array_sizes = {}
        for name, v in (delta_vth or {}).items():
            size = np.atleast_1d(np.asarray(v)).size
            if size > 1:
                array_sizes[name] = size
            n = size if n is None else max(n, size)
        if n is None:
            raise MeasurementError("offset_batch needs per-sample threshold shifts")
        if len(set(array_sizes.values())) > 1:
            # Silent max-size broadcasting would wire shorter arrays to
            # the wrong samples; a shape disagreement is always a bug.
            raise MeasurementError(
                "offset_batch: per-device threshold arrays disagree on the "
                f"sample count: { {k: v for k, v in sorted(array_sizes.items())} }"
            )

        hi = np.full(n, float(dv_max))
        lo = -hi.copy()
        correct_hi, _ = self.resolve_batch(hi, delta_vth, n_steps, kernel)
        unresolvable = ~correct_hi
        if unresolvable.any() and on_unresolvable == "raise":
            bad = int(unresolvable.sum())
            raise MeasurementError(
                f"{bad} of {n} samples cannot resolve even dv={dv_max} V; "
                "offset beyond range"
            )
        correct_lo, _ = self.resolve_batch(lo, delta_vth, n_steps, kernel)
        at_edge = correct_lo
        for _ in range(n_bisect):
            mid = 0.5 * (lo + hi)
            correct, _ = self.resolve_batch(mid, delta_vth, n_steps, kernel)
            hi = np.where(correct, mid, hi)
            lo = np.where(correct, lo, mid)
        out = 0.5 * (lo + hi)
        out[at_edge] = -float(dv_max)
        out[unresolvable] = np.inf
        return out

    def offset(
        self,
        delta_vth: Optional[Dict[str, float]] = None,
        dv_max: float = 0.3,
        n_bisect: int = 10,
    ) -> float:
        """Input-referred offset by transient bisection.

        The offset is the smallest pre-set differential that still
        resolves correctly; for a mismatch pattern favouring the correct
        decision it is negative (the latch would even flip a small
        reversed input).
        """
        lo, hi = -dv_max, dv_max
        correct_hi, _ = self.resolve(hi, delta_vth)
        if not correct_hi:
            raise MeasurementError(
                f"latch cannot resolve even dv={dv_max} V; offset beyond range"
            )
        correct_lo, _ = self.resolve(lo, delta_vth)
        if correct_lo:
            return float(lo)
        for _ in range(n_bisect):
            mid = 0.5 * (lo + hi)
            correct, _ = self.resolve(mid, delta_vth)
            if correct:
                hi = mid
            else:
                lo = mid
        return float(0.5 * (lo + hi))

    # ------------------------------------------------------------------

    def gm_ratio(self) -> float:
        """PMOS/NMOS transconductance ratio at the decision point.

        For a precharge-high latch the decision is made in the first
        instants of regeneration, when both outputs still sit near VDD:
        the NMOS pair races with its gates strongly on, while the PMOS
        gates are at ~VDD and the devices are essentially off.  The
        ratio is therefore tiny — PMOS mismatch barely matters for this
        SA topology, and the transient bisection confirms it.  (A latch
        precharged to VDD/2 would weight both pairs; the anchor point is
        the design decision this method encodes.)
        """
        d = self.design
        v_pre = self.vdd
        # NMOS: gate at the precharged output (~vdd), source near ground.
        _i, gm_n, *_ = d.nmos.ids(v_pre, v_pre, 0.05, 0.0, w=d.w_sn, l=d.l)
        # PMOS: gate at the other precharged output (~vdd): off.
        _i, gm_p, *_ = d.pmos.ids(v_pre, v_pre, self.vdd, self.vdd, w=d.w_sp, l=d.l)
        return float(abs(gm_p) / max(abs(gm_n), 1e-30))

    def offset_linear(self, u_sa: np.ndarray) -> np.ndarray:
        """First-order offset from latch threshold shifts, vectorised.

        ``u_sa`` has columns in :data:`SA_DEVICE_ORDER` units of sigma;
        the return is the offset in volts that the bitline differential
        must additionally overcome (positive = hurts the read).

        Sign reasoning for the correct decision (``sout`` must fall):
        a *weaker* left NMOS (``+dVth`` on ``m_sn_l``) slows the side
        that must win — positive offset; a weaker right NMOS helps;
        PMOS roles mirror with the gm ratio as the weight.
        """
        u_sa = np.atleast_2d(np.asarray(u_sa, dtype=float))
        if u_sa.shape[1] != 4:
            raise MeasurementError(
                f"sense-amp u-block must have 4 columns, got {u_sa.shape}"
            )
        sig = self.design.vth_sigmas()
        dvt = u_sa * sig  # volts, canonical order sn_l, sp_l, sn_r, sp_r
        r = self.gm_ratio()
        return dvt[:, 0] - dvt[:, 2] + r * (dvt[:, 3] - dvt[:, 1])
