"""repro — gradient importance sampling for high-sigma SRAM yield.

A from-scratch reproduction of "Gradient importance sampling: An
efficient statistical extraction methodology of high-sigma SRAM dynamic
characteristics" (DATE 2018), including the transistor-level circuit
simulator, the 6T bitcell testbenches, the process-variation model, the
paper's method and its comparison baselines.

Start with :mod:`repro.experiments` for ready-made workloads and
:mod:`repro.highsigma` for the estimators; ``examples/quickstart.py``
walks the whole flow.
"""

__version__ = "1.0.0"
