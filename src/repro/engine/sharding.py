"""Deterministic budget sharding over worker processes.

The contract, in one sentence: a *shard plan* (how the sampling budget
splits and which RNG stream each shard gets) fully determines the
statistics, and ``workers`` only decides how many OS processes execute
the plan — so the same plan run with ``workers=1`` and ``workers=8`` is
bit-identical.

Mechanics:

* per-shard RNG streams come from ``np.random.SeedSequence.spawn`` (via
  :func:`spawn_generators`), so they are reproducible, independent, and
  do not depend on the worker count;
* the budget splits with :func:`split_budget` (largest shards first, a
  fixed deterministic rule);
* :class:`ShardedRunner` executes shard tasks in-process (``workers=1``),
  on a fork-based process pool, or — on platforms without ``fork`` — on a
  ``spawn`` pool.  Fork matters: limit states built around closures over
  vectorised simulators are not picklable, but a forked child inherits
  them — only the *results* (plain dataclasses of floats) cross process
  boundaries.  The spawn path instead *ships the task itself* through the
  pickle pipe (one copy per shard job), so it requires a picklable task
  payload — the analytic limit states qualify, closure-built simulator
  stacks do not; an unpicklable task on a spawn-only platform falls back
  to in-process execution with an explicit ``RuntimeWarning`` instead of
  silently (``last_mode`` records what actually ran).  With
  ``persistent=True`` the runner keeps the fork pool alive across
  ``run_shards`` calls that execute an *equivalent* task (same shard
  function, same limit state), amortising the fork cost over many small
  runs; a different task transparently respawns the pool, because forked
  children can only ever run the task snapshot they inherited (a
  persistent spawn pool is reused unconditionally — its tasks travel with
  every job);
* each task reports the limit-state evaluations its shard consumed, and
  the runner credits them back to the parent's
  :attr:`~repro.highsigma.limitstate.LimitState.n_evals` after a pooled
  run, so eval accounting reconciles exactly across processes (the
  in-process path already counted them on the parent object).
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import threading
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import EstimationError

__all__ = [
    "ShardResult",
    "ShardedRunner",
    "fork_available",
    "resolve_shards",
    "run_sharded",
    "scale_shard_target",
    "spawn_available",
    "spawn_generators",
    "split_budget",
]


def resolve_shards(n_shards: Optional[int], workers: int) -> int:
    """The shard plan an estimator runs: explicit ``n_shards``, else one
    shard per worker (so the default single-worker run keeps the classic
    single-stream RNG consumption)."""
    return n_shards if n_shards is not None else workers


def scale_shard_target(target_rel_err: Optional[float], n_shards: int) -> Optional[float]:
    """Shard-local relative-error stop for a global target.

    Each shard holds 1/N of the samples, so a shard-level relative error
    of ``t * sqrt(N)`` merges to ≈``t`` overall; without the scaling no
    shard could meet the global target on its fraction of the budget and
    sharding would silently disable early stopping.

    The shard-local stop is a heuristic: shards stop independently, so a
    run can come back ``converged=False`` with some shard budget unspent
    when the merged error misses the global target by a hair.  The
    convergence flag stays honest (it is recomputed from the merged
    moments); rerun with a larger budget or fewer shards if that case
    matters.
    """
    if target_rel_err is None:
        return None
    return float(target_rel_err) * float(np.sqrt(n_shards))


def split_budget(total: int, n_shards: int) -> List[int]:
    """Split ``total`` into ``n_shards`` near-equal deterministic parts.

    The remainder goes to the lowest-index shards, so the split depends
    only on ``(total, n_shards)``.
    """
    total = int(total)
    n_shards = int(n_shards)
    if n_shards < 1:
        raise EstimationError(f"n_shards must be >= 1, got {n_shards}")
    if total < 0:
        raise EstimationError(f"budget must be >= 0, got {total}")
    base, rem = divmod(total, n_shards)
    return [base + (1 if i < rem else 0) for i in range(n_shards)]


def spawn_generators(
    rng: np.random.Generator, n: int
) -> List[np.random.Generator]:
    """``n`` independent child generators via SeedSequence spawning.

    Children depend only on the parent's seed material and the spawn
    count — not on how much of the parent stream was consumed after
    seeding, and not on how many workers will run them.
    """
    return list(rng.spawn(int(n)))


@dataclass
class ShardResult:
    """What one shard task hands back to the parent.

    ``n_evals`` is the number of limit-state evaluations the shard
    consumed (measured inside the shard against its own copy of the
    limit state); ``payload`` is estimator-specific (an accumulator,
    per-scale counts, ...).
    """

    index: int
    n_evals: int
    payload: Any
    diagnostics: dict = field(default_factory=dict)


# Fork-pool plumbing: the task closure (typically capturing a limit
# state full of unpicklable simulator closures) is published into a
# keyed module-level registry *before* the pool forks, so children
# inherit it by memory copy and nothing but plain shard arguments and
# ShardResults ever crosses a pipe.  The registry (rather than a single
# slot) matters for robustness: if the Pool's maintenance thread has to
# fork a replacement worker later — e.g. after a worker is killed — the
# replacement inherits the registry *as it is then*, and a persistent
# pool's entry is still registered (it is only removed at close), so the
# replacement can still resolve its task by key.  The lock serialises
# registry mutation + fork so a concurrent thread cannot fork children
# mid-update.
_POOL_TASKS: Dict[int, Callable[..., ShardResult]] = {}
_POOL_LOCK = threading.Lock()
_POOL_KEYS = itertools.count()
# Set (via the Pool initializer) in every worker, including replacements
# forked mid-lifetime: the flag a shard task uses to detect that it is
# already inside a pool worker and must run nested plans in-process.
_IN_POOL_WORKER = False


def _mark_pool_worker() -> None:
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def _invoke_shard(args) -> ShardResult:
    key, index, rng, budget = args
    return _POOL_TASKS[key](index, rng, budget)


def _invoke_spawned_shard(args) -> ShardResult:
    # Spawn-path worker entry: the task itself arrived through the pickle
    # pipe as part of the job, so there is no registry to consult.
    task, index, rng, budget = args
    return task(index, rng, budget)


def fork_available() -> bool:
    """Whether fork-based pooling is supported on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def spawn_available() -> bool:
    """Whether spawn-based pooling is supported on this platform."""
    return "spawn" in multiprocessing.get_all_start_methods()


class _MeasuredShardTask:
    """Stable, comparable wrapper: run a shard function, bill its evals.

    Two wrappers are *equivalent* (``==``) when they hold the same shard
    function (bound-method equality: same object, same function) and the
    very same limit-state object — the condition under which a persistent
    pool's forked snapshot computes the same thing as the fresh wrapper,
    so the pool may be reused without a respawn.
    """

    __slots__ = ("shard_fn", "limit_state")

    def __init__(self, shard_fn: Callable[[np.random.Generator, int], Any], limit_state):
        self.shard_fn = shard_fn
        self.limit_state = limit_state

    def __call__(self, i: int, rng: np.random.Generator, budget: int) -> ShardResult:
        before = 0 if self.limit_state is None else self.limit_state.n_evals
        payload = self.shard_fn(rng, budget)
        after = 0 if self.limit_state is None else self.limit_state.n_evals
        return ShardResult(index=i, n_evals=after - before, payload=payload)

    def __eq__(self, other):
        return (
            type(other) is _MeasuredShardTask
            and self.shard_fn == other.shard_fn
            and self.limit_state is other.limit_state
        )

    __hash__ = None  # identity/equality only; never used as a dict key


class ShardedRunner:
    """Execute shard tasks serially or on a process pool, results in order.

    Parameters
    ----------
    workers:
        Process count.  ``1`` runs every shard in the calling process —
        same computation, same results, no pool overhead.
    persistent:
        Keep the pool alive across ``run_shards`` calls.  A fork pool is
        (re)forked whenever the submitted task is not equivalent to the
        one the live pool inherited — fork children can only run their
        inherited snapshot; a spawn pool is reused unconditionally (its
        task travels with every job).  Persistence is a pure speed knob:
        results are identical either way.  Callers own the lifecycle:
        use the runner as a context manager or call :meth:`close`.
        Mutating the task's captured state (estimator configuration,
        limit-state ``fn``) between runs of an equivalent task is not
        supported while a fork pool is live — ``close()`` first.
    start_method:
        ``None`` (default) picks ``fork`` when available, else ``spawn``;
        or force ``"fork"`` / ``"spawn"`` explicitly (forcing an
        unavailable method raises).  The spawn path ships the task
        through the pickle pipe, so it needs a picklable task; an
        unpicklable task falls back to in-process execution with a
        ``RuntimeWarning`` — loud, never silent.

    After every :meth:`run_shards` call, :attr:`last_mode` records which
    execution path actually ran: ``"in-process"``, ``"fork"`` or
    ``"spawn"``.
    """

    def __init__(
        self,
        workers: int = 1,
        persistent: bool = False,
        start_method: Optional[str] = None,
    ):
        if start_method not in (None, "fork", "spawn"):
            raise EstimationError(
                f"start_method must be None, 'fork' or 'spawn', got {start_method!r}"
            )
        self.workers = max(1, int(workers))
        self.persistent = bool(persistent)
        self.start_method = start_method
        self.last_mode: Optional[str] = None
        self._pool = None
        self._pool_method: Optional[str] = None
        self._pool_task: Optional[_MeasuredShardTask] = None
        self._pool_key: Optional[int] = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Terminate the persistent pool (no-op when none is live)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_method = None
            self._pool_task = None
            with _POOL_LOCK:
                _POOL_TASKS.pop(self._pool_key, None)
            self._pool_key = None

    def __enter__(self) -> "ShardedRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- execution -----------------------------------------------------

    def _fork_pool(self, task, n_jobs: int):
        """Register ``task`` and fork a pool that inherits the registry.

        Returns ``(pool, key)``; the caller owns deregistration (at the
        end of the run for one-shot pools, at :meth:`close` for
        persistent ones — keeping the entry alive is what lets the Pool
        fork working replacement workers mid-lifetime).
        """
        key = next(_POOL_KEYS)
        with _POOL_LOCK:
            _POOL_TASKS[key] = task
            try:
                ctx = multiprocessing.get_context("fork")
                pool = ctx.Pool(
                    processes=min(self.workers, n_jobs),
                    initializer=_mark_pool_worker,
                )
            except BaseException:
                _POOL_TASKS.pop(key, None)
                raise
        return pool, key

    def run_shards(
        self,
        task: Callable[[int, np.random.Generator, int], ShardResult],
        rngs: Sequence[np.random.Generator],
        budgets: Sequence[int],
        limit_state=None,
    ) -> List[ShardResult]:
        """Run ``task(i, rngs[i], budgets[i])`` for every shard.

        Results come back ordered by shard index regardless of execution
        order.  When the shards ran in worker processes and
        ``limit_state`` is given, the per-shard evaluation counts are
        added to ``limit_state.n_evals`` (the in-process path increments
        it directly while running).
        """
        if len(rngs) != len(budgets):
            raise EstimationError("one RNG stream per shard budget is required")
        method = self._resolve_method(len(rngs), task)
        if method is None:
            self.last_mode = "in-process"
            return [task(i, rng, int(b)) for i, (rng, b) in enumerate(zip(rngs, budgets))]

        if method == "spawn":
            results = self._run_spawn(task, rngs, budgets)
        else:
            results = self._run_fork(task, rngs, budgets)
        self.last_mode = method
        results.sort(key=lambda r: r.index)
        if limit_state is not None:
            limit_state.n_evals += sum(r.n_evals for r in results)
        return results

    def _resolve_method(self, n_jobs: int, task) -> Optional[str]:
        """Pick the execution path for this call (None = in-process)."""
        if self.workers == 1 or n_jobs == 1 or _IN_POOL_WORKER:
            # Nested sharding (a shard trying to shard again) would fork
            # from inside a pool worker; run inner plans in-process.
            return None
        method = self.start_method
        if method is None:
            if fork_available():
                method = "fork"
            elif spawn_available():
                method = "spawn"
            else:
                return None
        elif method == "fork" and not fork_available():
            raise EstimationError("start_method='fork' is unavailable on this platform")
        elif method == "spawn" and not spawn_available():
            raise EstimationError("start_method='spawn' is unavailable on this platform")
        if method == "spawn":
            try:
                pickle.dumps(task)
            except Exception as exc:
                warnings.warn(
                    "ShardedRunner: task is not picklable "
                    f"({type(exc).__name__}: {exc}); running "
                    f"{n_jobs} shards in-process instead of on a spawn pool",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return None
        return method

    def _run_fork(self, task, rngs, budgets) -> List[ShardResult]:
        if self.persistent:
            if (
                self._pool is None
                or self._pool_method != "fork"
                or not (task is self._pool_task or task == self._pool_task)
            ):
                self.close()
                self._pool, self._pool_key = self._fork_pool(task, len(rngs))
                self._pool_method = "fork"
                self._pool_task = task
            jobs = [
                (self._pool_key, i, rng, int(b))
                for i, (rng, b) in enumerate(zip(rngs, budgets))
            ]
            return self._pool.map(_invoke_shard, jobs)
        pool, key = self._fork_pool(task, len(rngs))
        jobs = [
            (key, i, rng, int(b))
            for i, (rng, b) in enumerate(zip(rngs, budgets))
        ]
        try:
            return pool.map(_invoke_shard, jobs)
        finally:
            pool.terminate()
            pool.join()
            with _POOL_LOCK:
                _POOL_TASKS.pop(key, None)

    def _run_spawn(self, task, rngs, budgets) -> List[ShardResult]:
        jobs = [
            (task, i, rng, int(b))
            for i, (rng, b) in enumerate(zip(rngs, budgets))
        ]
        ctx = multiprocessing.get_context("spawn")
        if self.persistent:
            if self._pool is None or self._pool_method != "spawn":
                self.close()
                self._pool = ctx.Pool(
                    processes=min(self.workers, len(rngs)),
                    initializer=_mark_pool_worker,
                )
                self._pool_method = "spawn"
            return self._pool.map(_invoke_spawned_shard, jobs)
        pool = ctx.Pool(
            processes=min(self.workers, len(rngs)),
            initializer=_mark_pool_worker,
        )
        try:
            return pool.map(_invoke_spawned_shard, jobs)
        finally:
            pool.terminate()
            pool.join()


def run_sharded(
    shard_fn: Callable[[np.random.Generator, int], Any],
    rng: np.random.Generator,
    n_shards: int,
    budget: int,
    workers: int,
    limit_state,
    runner: Optional[ShardedRunner] = None,
) -> List[Any]:
    """Run ``shard_fn(shard_rng, shard_budget) -> payload`` over a plan.

    The one dispatch pattern every estimator shares: spawn per-shard RNG
    streams, split the budget, measure each shard's limit-state evals
    against its own process copy, execute via :class:`ShardedRunner`,
    and hand back the payloads in shard order (eval counts already
    reconciled into ``limit_state``).

    ``runner`` lets the caller supply a long-lived (possibly persistent)
    :class:`ShardedRunner`; pass a *stable* ``shard_fn`` (a bound method,
    not a fresh lambda) so the persistent pool recognises repeat runs of
    the same task and skips the respawn.
    """
    rngs = spawn_generators(rng, n_shards)
    budgets = split_budget(budget, n_shards)
    task = _MeasuredShardTask(shard_fn, limit_state)
    if runner is None:
        runner = ShardedRunner(workers)
    results = runner.run_shards(task, rngs, budgets, limit_state=limit_state)
    return [r.payload for r in results]
