"""Deterministic budget sharding over worker processes.

The contract, in one sentence: a *shard plan* (how the sampling budget
splits and which RNG stream each shard gets) fully determines the
statistics, and ``workers`` only decides how many OS processes execute
the plan — so the same plan run with ``workers=1`` and ``workers=8`` is
bit-identical.

Mechanics:

* per-shard RNG streams come from ``np.random.SeedSequence.spawn`` (via
  :func:`spawn_generators`), so they are reproducible, independent, and
  do not depend on the worker count;
* the budget splits with :func:`split_budget` (largest shards first, a
  fixed deterministic rule);
* :class:`ShardedRunner` executes shard tasks in-process (``workers=1``),
  on a fork-based process pool, or — on platforms without ``fork`` — on a
  ``spawn`` pool.  Fork matters: limit states built around closures over
  vectorised simulators are not picklable, but a forked child inherits
  them — only the *results* (plain dataclasses of floats) cross process
  boundaries.  The spawn path instead *ships the task itself* through the
  pickle pipe (one copy per shard job), so it requires a picklable task
  payload — the analytic limit states qualify, closure-built simulator
  stacks do not; an unpicklable task on a spawn-only platform falls back
  to in-process execution with an explicit ``RuntimeWarning`` instead of
  silently (``last_mode`` records what actually ran).  With
  ``persistent=True`` the runner keeps the fork pool alive across
  ``run_shards`` calls that execute an *equivalent* task (same shard
  function, same limit state), amortising the fork cost over many small
  runs; a different task transparently respawns the pool, because forked
  children can only ever run the task snapshot they inherited (a
  persistent spawn pool is reused unconditionally — its tasks travel with
  every job);
* each task reports the limit-state evaluations its shard consumed, and
  the runner credits them back to the parent's
  :attr:`~repro.highsigma.limitstate.LimitState.n_evals` after a pooled
  run, so eval accounting reconciles exactly across processes (the
  in-process path already counted them on the parent object).

Fault tolerance rides on the same contract.  Shard jobs are dispatched
*individually* (``apply_async`` per shard, not one blocking ``map``), so
the runner can watch each in-flight attempt: a raised exception, a dead
worker, or a timed-out attempt triggers a re-dispatch of the identical
``(index, stream, budget)`` job under a :class:`RetryPolicy` — and
because shard execution is a pure function of that triple, a retried run
merges **bit-identical** to a fault-free one (``tests/engine/test_chaos.py``
pins this with injected faults).  Worker death is detected by pid
snapshots (``multiprocessing.Pool`` replaces dead workers but silently
loses their in-flight jobs); hung workers cannot be cancelled through
the Pool API, so a timeout recycles the whole pool.  Completed shards
can be journaled incrementally (:class:`repro.engine.journal.RunJournal`)
and replayed on resume after an audit.  Failures surface as typed
:class:`~repro.errors.ShardExecutionError`, and every run leaves a
diagnostics dict (:attr:`ShardedRunner.last_diagnostics`) recording
retries, timeouts, worker replacements and per-attempt wall clock.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import pickle
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.errors import EstimationError, ShardExecutionError

__all__ = [
    "RetryPolicy",
    "ShardResult",
    "ShardedRunner",
    "current_attempt",
    "fork_available",
    "in_pool_worker",
    "resolve_shards",
    "run_sharded",
    "scale_shard_target",
    "spawn_available",
    "spawn_generators",
    "split_budget",
]


def resolve_shards(n_shards: Optional[int], workers: int) -> int:
    """The shard plan an estimator runs: explicit ``n_shards``, else one
    shard per worker (so the default single-worker run keeps the classic
    single-stream RNG consumption)."""
    return n_shards if n_shards is not None else workers


def scale_shard_target(target_rel_err: Optional[float], n_shards: int) -> Optional[float]:
    """Shard-local relative-error stop for a global target.

    Each shard holds 1/N of the samples, so a shard-level relative error
    of ``t * sqrt(N)`` merges to ≈``t`` overall; without the scaling no
    shard could meet the global target on its fraction of the budget and
    sharding would silently disable early stopping.

    The shard-local stop is a heuristic: shards stop independently, so a
    run can come back ``converged=False`` with some shard budget unspent
    when the merged error misses the global target by a hair.  The
    convergence flag stays honest (it is recomputed from the merged
    moments); rerun with a larger budget or fewer shards if that case
    matters.
    """
    if target_rel_err is None:
        return None
    return float(target_rel_err) * float(np.sqrt(n_shards))


def split_budget(total: int, n_shards: int) -> List[int]:
    """Split ``total`` into ``n_shards`` near-equal deterministic parts.

    The remainder goes to the lowest-index shards, so the split depends
    only on ``(total, n_shards)``.
    """
    total = int(total)
    n_shards = int(n_shards)
    if n_shards < 1:
        raise EstimationError(f"n_shards must be >= 1, got {n_shards}")
    if total < 0:
        raise EstimationError(f"budget must be >= 0, got {total}")
    base, rem = divmod(total, n_shards)
    return [base + (1 if i < rem else 0) for i in range(n_shards)]


def spawn_generators(
    rng: np.random.Generator, n: int
) -> List[np.random.Generator]:
    """``n`` independent child generators via SeedSequence spawning.

    Children depend only on the parent's seed material and the spawn
    count — not on how much of the parent stream was consumed after
    seeding, and not on how many workers will run them.
    """
    return list(rng.spawn(int(n)))


@dataclass
class ShardResult:
    """What one shard task hands back to the parent.

    ``n_evals`` is the number of limit-state evaluations the shard
    consumed (measured inside the shard against its own copy of the
    limit state); ``payload`` is estimator-specific (an accumulator,
    per-scale counts, ...).
    """

    index: int
    n_evals: int
    payload: Any
    diagnostics: dict = field(default_factory=dict)


@dataclass(frozen=True)
class RetryPolicy:
    """How :class:`ShardedRunner` reacts when a shard attempt fails.

    ``max_attempts`` bounds the total executions of one shard (``1``
    disables retries).  ``timeout`` (seconds, pooled execution only)
    declares an in-flight attempt lost and recycles the pool — a hung
    worker cannot be cancelled through the Pool API, so the whole pool is
    torn down and respawned.  ``backoff`` sleeps
    ``backoff * 2**(failures-1)`` seconds before a re-dispatch.
    ``validate`` inspects a completed :class:`ShardResult` and returns a
    rejection reason (or ``None`` to accept); a rejected payload counts
    as a failed attempt — the hook that turns silently-corrupt results
    (NaN payloads) into retries.

    Retries preserve determinism by construction: a re-dispatched shard
    re-runs the identical ``(index, stream, budget)`` job, so a run with
    retries merges bit-identical to a fault-free run of the same plan.
    """

    max_attempts: int = 1
    timeout: Optional[float] = None
    backoff: float = 0.0
    validate: Optional[Callable[[ShardResult], Optional[str]]] = None

    def __post_init__(self) -> None:
        if int(self.max_attempts) < 1:
            raise EstimationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout is not None and not float(self.timeout) > 0:
            raise EstimationError(f"timeout must be positive, got {self.timeout}")
        if float(self.backoff) < 0:
            raise EstimationError(f"backoff must be >= 0, got {self.backoff}")

    def delay(self, failures: int) -> float:
        """Seconds to wait before the dispatch following ``failures``."""
        if self.backoff <= 0 or failures < 1:
            return 0.0
        return float(self.backoff) * (2.0 ** (failures - 1))


# Fork-pool plumbing: the task closure (typically capturing a limit
# state full of unpicklable simulator closures) is published into a
# keyed module-level registry *before* the pool forks, so children
# inherit it by memory copy and nothing but plain shard arguments and
# ShardResults ever crosses a pipe.  The registry (rather than a single
# slot) matters for robustness: if the Pool's maintenance thread has to
# fork a replacement worker later — e.g. after a worker is killed — the
# replacement inherits the registry *as it is then*, and a persistent
# pool's entry is still registered (it is only removed at close), so the
# replacement can still resolve its task by key.  The lock serialises
# registry mutation + fork so a concurrent thread cannot fork children
# mid-update.
_POOL_TASKS: Dict[int, Callable[..., ShardResult]] = {}
_POOL_LOCK = threading.Lock()
_POOL_KEYS = itertools.count()
# Set (via the Pool initializer) in every worker, including replacements
# forked mid-lifetime: the flag a shard task uses to detect that it is
# already inside a pool worker and must run nested plans in-process.
_IN_POOL_WORKER = False
# Which execution attempt (0-based) of its shard the currently-running
# task belongs to — set around every task invocation (worker or
# in-process) so deterministic fault injection can key on it.
_CURRENT_ATTEMPT = 0


def _mark_pool_worker() -> None:
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def in_pool_worker() -> bool:
    """Whether this process is a ShardedRunner pool worker."""
    return _IN_POOL_WORKER


def current_attempt() -> int:
    """The 0-based attempt number of the shard task currently running."""
    return _CURRENT_ATTEMPT


def _run_attempt(task, index: int, rng, budget: int, attempt: int) -> ShardResult:
    global _CURRENT_ATTEMPT
    _CURRENT_ATTEMPT = int(attempt)
    try:
        return task(index, rng, int(budget))
    finally:
        _CURRENT_ATTEMPT = 0


def _invoke_shard(args) -> ShardResult:
    # Older journals/jobs carry 4-tuples; the attempt number is optional.
    key, index, rng, budget, *rest = args
    return _run_attempt(_POOL_TASKS[key], index, rng, budget, rest[0] if rest else 0)


# Per-worker memo of the last unpickled spawn task, keyed on the job
# blob's content digest.  Task deserialization is no longer free: a task
# carrying compiled transient plans pays the plan admission audit
# (``assert_plan_clean`` inside ``CompiledTransient.__setstate__``) on
# every load.  The fork path already reuses one task object per worker
# for the pool's lifetime, and ``_MeasuredShardTask`` bills evals as a
# per-call delta, so reusing the first unpickle of a bit-identical blob
# keeps the two pool flavours semantically aligned while paying the
# audit once per worker instead of once per shard job.  Only the most
# recent blob is kept: a pool serving a new run ships a new digest.
_SPAWN_TASK_MEMO: Dict[str, Any] = {}


def _invoke_spawned_shard(args) -> ShardResult:
    # Spawn-path worker entry: the task itself arrived through the pickle
    # pipe as part of the job (pre-serialized by the parent *before* it
    # created the pool — a task reaching back to its runner must never
    # see a live pool object mid-pickle), so there is no registry to
    # consult.
    task, index, rng, budget, *rest = args
    if isinstance(task, bytes):
        digest = hashlib.sha256(task).hexdigest()
        memo = _SPAWN_TASK_MEMO.get(digest)
        if memo is None:
            memo = pickle.loads(task)
            _SPAWN_TASK_MEMO.clear()
            _SPAWN_TASK_MEMO[digest] = memo
        task = memo
    return _run_attempt(task, index, rng, budget, rest[0] if rest else 0)


def _clone_generator(rng):
    """A state-identical copy of ``rng`` for one execution attempt.

    Pool dispatch gets this for free (the parent-side generator is
    pickled into every job, so a failed attempt dies with its worker's
    copy); the in-process path must clone explicitly, or a failed
    attempt would advance the plan's stream and the retry would draw
    different samples than the fault-free run.
    """
    try:
        return pickle.loads(pickle.dumps(rng))
    except Exception:
        return rng


def fork_available() -> bool:
    """Whether fork-based pooling is supported on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def spawn_available() -> bool:
    """Whether spawn-based pooling is supported on this platform."""
    return "spawn" in multiprocessing.get_all_start_methods()


class _MeasuredShardTask:
    """Stable, comparable wrapper: run a shard function, bill its evals.

    Two wrappers are *equivalent* (``==``) when they hold the same shard
    function (bound-method equality: same object, same function) and the
    very same limit-state object — the condition under which a persistent
    pool's forked snapshot computes the same thing as the fresh wrapper,
    so the pool may be reused without a respawn.
    """

    __slots__ = ("shard_fn", "limit_state")

    def __init__(self, shard_fn: Callable[[np.random.Generator, int], Any], limit_state):
        self.shard_fn = shard_fn
        self.limit_state = limit_state

    def __call__(self, i: int, rng: np.random.Generator, budget: int) -> ShardResult:
        before = 0 if self.limit_state is None else self.limit_state.n_evals
        payload = self.shard_fn(rng, budget)
        after = 0 if self.limit_state is None else self.limit_state.n_evals
        return ShardResult(index=i, n_evals=after - before, payload=payload)

    def __eq__(self, other):
        return (
            type(other) is _MeasuredShardTask
            and self.shard_fn == other.shard_fn
            and self.limit_state is other.limit_state
        )

    __hash__ = None  # identity/equality only; never used as a dict key


# Counters rolled up from per-run diagnostics into the runner-lifetime
# ``fault_stats`` total.
_FAULT_COUNTERS = (
    "retries",
    "timeouts",
    "worker_deaths",
    "worker_replacements",
    "pool_recycles",
    "replayed",
    "skipped_empty",
)


class ShardedRunner:
    """Execute shard tasks serially or on a process pool, results in order.

    Parameters
    ----------
    workers:
        Process count.  ``1`` runs every shard in the calling process —
        same computation, same results, no pool overhead.
    persistent:
        Keep the pool alive across ``run_shards`` calls.  A fork pool is
        (re)forked whenever the submitted task is not equivalent to the
        one the live pool inherited — fork children can only run their
        inherited snapshot; a spawn pool is reused unconditionally (its
        task travels with every job).  Persistence is a pure speed knob:
        results are identical either way.  Callers own the lifecycle:
        use the runner as a context manager or call :meth:`close`.
        Mutating the task's captured state (estimator configuration,
        limit-state ``fn``) between runs of an equivalent task is not
        supported while a fork pool is live — ``close()`` first.
        A run that fails always closes the pool (dead or hung workers
        must never be reused); the next call respawns transparently.
    start_method:
        ``None`` (default) picks ``fork`` when available, else ``spawn``;
        or force ``"fork"`` / ``"spawn"`` explicitly (forcing an
        unavailable method raises).  The spawn path ships the task
        through the pickle pipe, so it needs a picklable task; an
        unpicklable task falls back to in-process execution with a
        ``RuntimeWarning`` — loud, never silent.
    retry:
        A :class:`RetryPolicy`; ``None`` means one attempt, no timeout.
    journal:
        A :class:`repro.engine.journal.RunJournal`.  Completed shards
        are recorded incrementally; on a resume journal, already-recorded
        shards of the identical plan are replayed instead of re-executed
        (the plan passes ``assert_shard_plan_clean`` plus the journal's
        own D005–D007 audit before any replay).
    chaos:
        A sequence of :class:`repro.engine.chaos.FaultSpec` — the
        deterministic fault-injection harness.  Faults are keyed by
        ``(shard, attempt)``, so a faulted run with retries must merge
        bit-identical to a fault-free run.  Test/benchmark machinery;
        never set in production paths.

    After every :meth:`run_shards` call, :attr:`last_mode` records which
    execution path actually ran (``"in-process"``, ``"fork"`` or
    ``"spawn"``) and :attr:`last_diagnostics` the run's fault-tolerance
    diagnostics (retries, timeouts, worker deaths/replacements, pool
    recycles, journal replays, per-shard attempt wall clock).
    :attr:`fault_stats` accumulates the counters over the runner's
    lifetime.
    """

    def __init__(
        self,
        workers: int = 1,
        persistent: bool = False,
        start_method: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        journal=None,
        chaos: Sequence[Any] = (),
    ):
        if start_method not in (None, "fork", "spawn"):
            raise EstimationError(
                f"start_method must be None, 'fork' or 'spawn', got {start_method!r}"
            )
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise EstimationError(
                f"retry must be a RetryPolicy, got {type(retry).__name__}"
            )
        self.workers = max(1, int(workers))
        self.persistent = bool(persistent)
        self.start_method = start_method
        self.retry = retry
        self.journal = journal
        self.chaos = tuple(chaos)
        self.last_mode: Optional[str] = None
        self.last_diagnostics: Dict[str, Any] = {}
        self.fault_stats: Dict[str, int] = {k: 0 for k in _FAULT_COUNTERS}
        self._poll_s = 0.02
        self._warned_local_timeout = False
        self._pool = None
        self._pool_method: Optional[str] = None
        self._pool_task = None
        self._pool_key: Optional[int] = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Terminate the live pool (no-op when none is live)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_method = None
            self._pool_task = None
            with _POOL_LOCK:
                _POOL_TASKS.pop(self._pool_key, None)
            self._pool_key = None

    def __enter__(self) -> "ShardedRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- pool plumbing -------------------------------------------------

    def _fork_pool(self, task, n_jobs: int):
        """Register ``task`` and fork a pool that inherits the registry.

        Returns ``(pool, key)``; the caller owns deregistration (at
        :meth:`close` — keeping the entry alive is what lets the Pool
        fork working replacement workers mid-lifetime).
        """
        key = next(_POOL_KEYS)
        with _POOL_LOCK:
            _POOL_TASKS[key] = task
            try:
                ctx = multiprocessing.get_context("fork")
                pool = ctx.Pool(
                    processes=min(self.workers, n_jobs),
                    initializer=_mark_pool_worker,
                )
            except BaseException:
                _POOL_TASKS.pop(key, None)
                raise
        return pool, key

    def _ensure_pool(self, method: str, task, n_jobs: int) -> None:
        """A live pool of ``method`` able to run ``task`` (reuse or spawn)."""
        if self._pool is not None:
            same_task = task is self._pool_task or task == self._pool_task
            if self._pool_method == method and (method == "spawn" or same_task):
                return
            self.close()
        if method == "fork":
            self._pool, self._pool_key = self._fork_pool(task, n_jobs)
        else:
            ctx = multiprocessing.get_context("spawn")
            self._pool = ctx.Pool(
                processes=min(self.workers, n_jobs),
                initializer=_mark_pool_worker,
            )
        self._pool_method = method
        self._pool_task = task

    def _respawn_pool(self, method: str, task, n_jobs: int) -> None:
        self.close()
        self._ensure_pool(method, task, n_jobs)

    def _worker_pids(self) -> Set[int]:
        pool = self._pool
        if pool is None:
            return set()
        return {p.pid for p in list(getattr(pool, "_pool", [])) if p.is_alive()}

    def _wait_tick(self, inflight: Dict[int, list]) -> None:
        """One scheduler pause: block briefly on some in-flight result.

        Isolated as a seam so tests can inject ``KeyboardInterrupt``
        mid-run and pin the cleanup behavior.
        """
        if inflight:
            next(iter(inflight.values()))[0].wait(self._poll_s)
        else:
            time.sleep(self._poll_s)

    # -- execution -----------------------------------------------------

    def run_shards(
        self,
        task: Callable[[int, np.random.Generator, int], ShardResult],
        rngs: Sequence[np.random.Generator],
        budgets: Sequence[int],
        limit_state=None,
        total: Optional[int] = None,
        parent: Optional[np.random.Generator] = None,
        skip_empty: bool = True,
    ) -> List[ShardResult]:
        """Run ``task(i, rngs[i], budgets[i])`` for every shard.

        Results come back ordered by shard index regardless of execution
        order, retries, journal replay or worker churn.  When shards ran
        outside the calling process (pool workers, or replayed from a
        journal) and ``limit_state`` is given, their evaluation counts
        are added to ``limit_state.n_evals``; shards executed in-process
        bill it directly while running — either way the final count
        reconciles exactly with a fault-free ``workers=1`` run.

        ``total``/``parent`` feed the D002/D004 checks of the plan audit
        that gates journal use.  ``skip_empty=True`` (default) runs
        zero-budget shards in the calling process instead of shipping
        empty jobs to the pool; pass ``False`` for tasks whose budget
        argument is not a sample count (e.g. search stages).
        """
        if len(rngs) != len(budgets):
            raise EstimationError("one RNG stream per shard budget is required")
        budgets = [int(b) for b in budgets]
        n = len(rngs)
        retry = self.retry if self.retry is not None else RetryPolicy()
        if self.chaos:
            # Imported lazily: the chaos module imports this one.
            from repro.engine.chaos import ChaosTask

            task = ChaosTask(task, self.chaos)

        stats: Dict[str, Any] = {
            "shards": n,
            "mode": None,
            "attempt_wall": {},
            "failures": {},
        }
        for key in _FAULT_COUNTERS:
            stats[key] = 0
        self.last_diagnostics = stats

        results: Dict[int, ShardResult] = {}
        if self.journal is not None:
            # Admission gate: a journaled plan is an out-of-process plan.
            # Imported lazily: the audit module imports this one.
            from repro.engine.audit import assert_shard_plan_clean

            assert_shard_plan_clean(rngs, budgets, total=total, parent=parent)
            replayed = self.journal.begin_round(rngs, budgets)
            if retry.validate is not None:
                replayed = {
                    i: r for i, r in replayed.items() if retry.validate(r) is None
                }
            results.update(replayed)
            stats["replayed"] = len(replayed)

        pending = [i for i in range(n) if i not in results]
        if skip_empty:
            local = [i for i in pending if budgets[i] == 0]
            pooled_idx = [i for i in pending if budgets[i] > 0]
        else:
            local, pooled_idx = [], list(pending)

        method = self._resolve_method(len(pooled_idx), task) if pooled_idx else None
        if method is None:
            local, pooled_idx = pending, []
        else:
            stats["skipped_empty"] = len(local)
        stats["mode"] = self.last_mode = method if method is not None else "in-process"

        if (
            method is None
            and retry.timeout is not None
            and pending
            and not self._warned_local_timeout
        ):
            warnings.warn(
                "ShardedRunner: shard timeouts are only enforced for pooled "
                "execution; running in-process without timeout enforcement",
                RuntimeWarning,
                stacklevel=2,
            )
            self._warned_local_timeout = True

        executed_locally: Set[int] = set()
        try:
            for i in local:
                results[i] = self._run_local(
                    task, i, rngs[i], budgets[i], retry, limit_state, stats
                )
                executed_locally.add(i)
            if pooled_idx:
                jobs = {i: (rngs[i], budgets[i]) for i in pooled_idx}
                results.update(self._run_pooled(method, task, jobs, retry, stats))
        except BaseException:
            # A failed run can leave dead or hung workers (and their
            # registry entry) behind; never hand the next call a broken
            # pool — close now, respawn on demand.
            self.close()
            raise
        finally:
            for key in _FAULT_COUNTERS:
                self.fault_stats[key] += stats[key]
        if not self.persistent:
            self.close()

        ordered = [results[i] for i in range(n)]
        if limit_state is not None:
            # Locally-executed shards billed the parent's limit state
            # while running; pooled and journal-replayed shards consumed
            # their evals elsewhere (a worker process, the interrupted
            # run) and are credited here.
            limit_state.n_evals += sum(
                r.n_evals for i, r in results.items() if i not in executed_locally
            )
        return ordered

    def _resolve_method(self, n_jobs: int, task) -> Optional[str]:
        """Pick the execution path for this call (None = in-process)."""
        if self.workers == 1 or n_jobs <= 1 or _IN_POOL_WORKER:
            # Nested sharding (a shard trying to shard again) would fork
            # from inside a pool worker; run inner plans in-process.
            return None
        method = self.start_method
        if method is None:
            if fork_available():
                method = "fork"
            elif spawn_available():
                method = "spawn"
            else:
                return None
        elif method == "fork" and not fork_available():
            raise EstimationError("start_method='fork' is unavailable on this platform")
        elif method == "spawn" and not spawn_available():
            raise EstimationError("start_method='spawn' is unavailable on this platform")
        if method == "spawn":
            try:
                pickle.dumps(task)
            except Exception as exc:
                warnings.warn(
                    "ShardedRunner: task is not picklable "
                    f"({type(exc).__name__}: {exc}); running "
                    f"{n_jobs} shards in-process instead of on a spawn pool",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return None
        return method

    def _journal_record(self, result: ShardResult) -> None:
        if self.journal is not None:
            self.journal.record(result)

    def _run_local(
        self, task, index: int, rng, budget: int, retry: RetryPolicy, limit_state, stats
    ) -> ShardResult:
        """Execute one shard in the calling process under the retry policy.

        A failed attempt must leave no trace: the RNG is cloned per
        attempt (the stream must not advance), and the parent limit
        state's eval count and scalar cache are snapshot-restored, so
        the eventual successful attempt reproduces the fault-free run
        bit for bit — including its accounting.
        """
        walls = stats["attempt_wall"].setdefault(index, [])
        failures = 0
        while True:
            snap_evals = None if limit_state is None else limit_state.n_evals
            cache = getattr(limit_state, "_cache", None)
            snap_cache = (
                dict(cache)
                if retry.max_attempts > 1 and isinstance(cache, dict)
                else None
            )
            start = time.perf_counter()
            try:
                result = _run_attempt(task, index, _clone_generator(rng), budget, failures)
                reason = None if retry.validate is None else retry.validate(result)
                if reason is not None:
                    raise EstimationError(f"shard {index} payload rejected: {reason}")
            except Exception as exc:
                walls.append(time.perf_counter() - start)
                failures += 1
                stats["failures"][index] = failures
                if snap_evals is not None:
                    limit_state.n_evals = snap_evals
                if snap_cache is not None:
                    cache.clear()
                    cache.update(snap_cache)
                if failures >= retry.max_attempts:
                    raise ShardExecutionError(
                        f"shard {index} failed after {failures} attempt(s): "
                        f"{type(exc).__name__}: {exc}",
                        shard_index=index,
                        attempts=failures,
                        cause=exc,
                    ) from exc
                stats["retries"] += 1
                if retry.delay(failures) > 0:
                    time.sleep(retry.delay(failures))
                continue
            walls.append(time.perf_counter() - start)
            self._journal_record(result)
            return result

    def _dispatch(
        self,
        method: str,
        index: int,
        job,
        attempt: int,
        retry: RetryPolicy,
        task_blob: Optional[bytes],
    ) -> list:
        rng, budget = job
        if method == "fork":
            payload = (self._pool_key, index, rng, int(budget), int(attempt))
            ar = self._pool.apply_async(_invoke_shard, (payload,))
        else:
            payload = (task_blob, index, rng, int(budget), int(attempt))
            ar = self._pool.apply_async(_invoke_spawned_shard, (payload,))
        started = time.monotonic()
        deadline = None if retry.timeout is None else started + float(retry.timeout)
        return [ar, deadline, started]

    def _shard_failed(
        self,
        index: int,
        exc: BaseException,
        failures: Dict[int, int],
        ready_at: Dict[int, float],
        retry: RetryPolicy,
        stats: Dict[str, Any],
    ) -> None:
        """Count one failed attempt; raise typed when the budget is spent."""
        failures[index] += 1
        stats["failures"][index] = failures[index]
        if failures[index] >= retry.max_attempts:
            raise ShardExecutionError(
                f"shard {index} failed after {failures[index]} attempt(s): "
                f"{type(exc).__name__}: {exc}",
                shard_index=index,
                attempts=failures[index],
                cause=exc,
            ) from exc
        stats["retries"] += 1
        ready_at[index] = time.monotonic() + retry.delay(failures[index])

    def _run_pooled(
        self, method: str, task, jobs: Dict[int, tuple], retry: RetryPolicy, stats
    ) -> Dict[int, ShardResult]:
        """Per-shard async dispatch with retries, timeouts and death watch.

        Every shard is its own ``apply_async`` job carrying its attempt
        number.  The loop collects completions, re-dispatches failures
        (after backoff), declares attempts past their deadline lost
        (recycling the pool — hung workers cannot be cancelled), and
        watches worker pids: ``multiprocessing.Pool`` replaces a dead
        worker but silently loses its in-flight job, so every incomplete
        in-flight shard is conservatively re-dispatched on a death.
        First result wins; duplicate executions of a deterministic shard
        are bit-identical, so re-dispatching possibly-lost work is safe.
        """
        # Spawn jobs carry the task as a pre-serialized blob: it must be
        # pickled *before* the pool exists, because a task holding a
        # reference back to this runner would otherwise reach the live
        # (unpicklable) pool object.
        task_blob = pickle.dumps(task) if method == "spawn" else None
        self._ensure_pool(method, task, len(jobs))
        done: Dict[int, ShardResult] = {}
        inflight: Dict[int, list] = {}
        failures: Dict[int, int] = {i: 0 for i in jobs}
        ready_at: Dict[int, float] = {i: 0.0 for i in jobs}
        pids = self._worker_pids()
        while len(done) < len(jobs):
            now = time.monotonic()
            for i in sorted(jobs):
                if i in done or i in inflight or now < ready_at[i]:
                    continue
                inflight[i] = self._dispatch(
                    method, i, jobs[i], failures[i], retry, task_blob
                )
            self._wait_tick(inflight)
            now = time.monotonic()
            recycle = False
            for i in list(inflight):
                ar, deadline, started = inflight[i]
                if ar.ready():
                    del inflight[i]
                    stats["attempt_wall"].setdefault(i, []).append(now - started)
                    try:
                        result = ar.get()
                        reason = None if retry.validate is None else retry.validate(result)
                        if reason is not None:
                            raise EstimationError(
                                f"shard {i} payload rejected: {reason}"
                            )
                    except Exception as exc:
                        self._shard_failed(i, exc, failures, ready_at, retry, stats)
                        continue
                    if i not in done:
                        done[i] = result
                        self._journal_record(result)
                elif deadline is not None and now >= deadline:
                    del inflight[i]
                    stats["attempt_wall"].setdefault(i, []).append(now - started)
                    stats["timeouts"] += 1
                    recycle = True
                    self._shard_failed(
                        i,
                        EstimationError(
                            f"shard {i} attempt timed out after {retry.timeout:.3g}s"
                        ),
                        failures,
                        ready_at,
                        retry,
                        stats,
                    )
            live = self._worker_pids()
            dead = pids - live
            if dead:
                stats["worker_deaths"] += len(dead)
                stats["worker_replacements"] += len(dead)
                for i in list(inflight):
                    ar, deadline, started = inflight[i]
                    if ar.ready():
                        continue
                    del inflight[i]
                    stats["attempt_wall"].setdefault(i, []).append(
                        time.monotonic() - started
                    )
                    self._shard_failed(
                        i,
                        EstimationError(
                            f"worker process died (pids {sorted(dead)}) with "
                            f"shard {i} in flight"
                        ),
                        failures,
                        ready_at,
                        retry,
                        stats,
                    )
            if recycle:
                stats["pool_recycles"] += 1
                stats["worker_replacements"] += max(len(live), 1)
                # Jobs still in flight on the doomed pool die with it;
                # they return to pending at their current attempt count.
                inflight.clear()
                self._respawn_pool(method, task, len(jobs))
            pids = self._worker_pids()
        return done


def run_sharded(
    shard_fn: Callable[[np.random.Generator, int], Any],
    rng: np.random.Generator,
    n_shards: int,
    budget: int,
    workers: int,
    limit_state,
    runner: Optional[ShardedRunner] = None,
) -> List[Any]:
    """Run ``shard_fn(shard_rng, shard_budget) -> payload`` over a plan.

    The one dispatch pattern every estimator shares: spawn per-shard RNG
    streams, split the budget, measure each shard's limit-state evals
    against its own process copy, execute via :class:`ShardedRunner`,
    and hand back the payloads in shard order (eval counts already
    reconciled into ``limit_state``).

    ``runner`` lets the caller supply a long-lived (possibly persistent)
    :class:`ShardedRunner` — also the hook for fault tolerance: a runner
    carrying a :class:`RetryPolicy` and/or a journal applies them to
    every estimator round dispatched through it.  Pass a *stable*
    ``shard_fn`` (a bound method, not a fresh lambda) so the persistent
    pool recognises repeat runs of the same task and skips the respawn.
    """
    rngs = spawn_generators(rng, n_shards)
    budgets = split_budget(budget, n_shards)
    task = _MeasuredShardTask(shard_fn, limit_state)
    if runner is None:
        runner = ShardedRunner(workers)
    results = runner.run_shards(
        task,
        rngs,
        budgets,
        limit_state=limit_state,
        total=int(budget),
        parent=rng,
    )
    return [r.payload for r in results]
