"""Deterministic budget sharding over worker processes.

The contract, in one sentence: a *shard plan* (how the sampling budget
splits and which RNG stream each shard gets) fully determines the
statistics, and ``workers`` only decides how many OS processes execute
the plan — so the same plan run with ``workers=1`` and ``workers=8`` is
bit-identical.

Mechanics:

* per-shard RNG streams come from ``np.random.SeedSequence.spawn`` (via
  :func:`spawn_generators`), so they are reproducible, independent, and
  do not depend on the worker count;
* the budget splits with :func:`split_budget` (largest shards first, a
  fixed deterministic rule);
* :class:`ShardedRunner` executes shard tasks either in-process
  (``workers=1`` or when ``fork`` is unavailable) or on a fork-based
  process pool.  Fork matters: limit states built around closures over
  vectorised simulators are not picklable, but a forked child inherits
  them — only the *results* (plain dataclasses of floats) cross process
  boundaries;
* each task reports the limit-state evaluations its shard consumed, and
  the runner credits them back to the parent's
  :attr:`~repro.highsigma.limitstate.LimitState.n_evals` after a pooled
  run, so eval accounting reconciles exactly across processes (the
  in-process path already counted them on the parent object).
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.errors import EstimationError

__all__ = [
    "ShardResult",
    "ShardedRunner",
    "resolve_shards",
    "run_sharded",
    "scale_shard_target",
    "spawn_generators",
    "split_budget",
]


def resolve_shards(n_shards: Optional[int], workers: int) -> int:
    """The shard plan an estimator runs: explicit ``n_shards``, else one
    shard per worker (so the default single-worker run keeps the classic
    single-stream RNG consumption)."""
    return n_shards if n_shards is not None else workers


def scale_shard_target(target_rel_err: Optional[float], n_shards: int) -> Optional[float]:
    """Shard-local relative-error stop for a global target.

    Each shard holds 1/N of the samples, so a shard-level relative error
    of ``t * sqrt(N)`` merges to ≈``t`` overall; without the scaling no
    shard could meet the global target on its fraction of the budget and
    sharding would silently disable early stopping.

    The shard-local stop is a heuristic: shards stop independently, so a
    run can come back ``converged=False`` with some shard budget unspent
    when the merged error misses the global target by a hair.  The
    convergence flag stays honest (it is recomputed from the merged
    moments); rerun with a larger budget or fewer shards if that case
    matters.
    """
    if target_rel_err is None:
        return None
    return float(target_rel_err) * float(np.sqrt(n_shards))


def split_budget(total: int, n_shards: int) -> List[int]:
    """Split ``total`` into ``n_shards`` near-equal deterministic parts.

    The remainder goes to the lowest-index shards, so the split depends
    only on ``(total, n_shards)``.
    """
    total = int(total)
    n_shards = int(n_shards)
    if n_shards < 1:
        raise EstimationError(f"n_shards must be >= 1, got {n_shards}")
    if total < 0:
        raise EstimationError(f"budget must be >= 0, got {total}")
    base, rem = divmod(total, n_shards)
    return [base + (1 if i < rem else 0) for i in range(n_shards)]


def spawn_generators(
    rng: np.random.Generator, n: int
) -> List[np.random.Generator]:
    """``n`` independent child generators via SeedSequence spawning.

    Children depend only on the parent's seed material and the spawn
    count — not on how much of the parent stream was consumed after
    seeding, and not on how many workers will run them.
    """
    return list(rng.spawn(int(n)))


@dataclass
class ShardResult:
    """What one shard task hands back to the parent.

    ``n_evals`` is the number of limit-state evaluations the shard
    consumed (measured inside the shard against its own copy of the
    limit state); ``payload`` is estimator-specific (an accumulator,
    per-scale counts, ...).
    """

    index: int
    n_evals: int
    payload: Any
    diagnostics: dict = field(default_factory=dict)


# Fork-pool plumbing: the task closure (typically capturing a limit
# state full of unpicklable simulator closures) is published through a
# module global *before* the pool forks, so children inherit it by
# memory copy and nothing but plain shard arguments and ShardResults
# ever crosses a pipe.  The lock serialises concurrent pooled runs —
# without it, two threads racing through set/fork could fork children
# holding the other thread's task.
_ACTIVE_TASK: Optional[Callable[..., ShardResult]] = None
_ACTIVE_TASK_LOCK = threading.Lock()


def _invoke_shard(args) -> ShardResult:
    index, rng, budget = args
    return _ACTIVE_TASK(index, rng, budget)


def fork_available() -> bool:
    """Whether fork-based pooling is supported on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class ShardedRunner:
    """Execute shard tasks serially or on a fork pool, results in order.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (or an unavailable ``fork`` start method)
        runs every shard in the calling process — same computation, same
        results, no pool overhead.
    """

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))

    def run_shards(
        self,
        task: Callable[[int, np.random.Generator, int], ShardResult],
        rngs: Sequence[np.random.Generator],
        budgets: Sequence[int],
        limit_state=None,
    ) -> List[ShardResult]:
        """Run ``task(i, rngs[i], budgets[i])`` for every shard.

        Results come back ordered by shard index regardless of execution
        order.  When the shards ran in worker processes and
        ``limit_state`` is given, the per-shard evaluation counts are
        added to ``limit_state.n_evals`` (the in-process path increments
        it directly while running).
        """
        if len(rngs) != len(budgets):
            raise EstimationError("one RNG stream per shard budget is required")
        jobs = [(i, rng, int(b)) for i, (rng, b) in enumerate(zip(rngs, budgets))]
        if self.workers == 1 or len(jobs) == 1 or not fork_available():
            return [task(*job) for job in jobs]

        global _ACTIVE_TASK
        if _ACTIVE_TASK is not None:
            # Nested sharding (a shard trying to shard again) would fork
            # from inside a pool worker; run inner plans in-process.
            return [task(*job) for job in jobs]
        with _ACTIVE_TASK_LOCK:
            _ACTIVE_TASK = task
            try:
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(processes=min(self.workers, len(jobs))) as pool:
                    results = pool.map(_invoke_shard, jobs)
            finally:
                _ACTIVE_TASK = None
        results.sort(key=lambda r: r.index)
        if limit_state is not None:
            limit_state.n_evals += sum(r.n_evals for r in results)
        return results


def run_sharded(
    shard_fn: Callable[[np.random.Generator, int], Any],
    rng: np.random.Generator,
    n_shards: int,
    budget: int,
    workers: int,
    limit_state,
) -> List[Any]:
    """Run ``shard_fn(shard_rng, shard_budget) -> payload`` over a plan.

    The one dispatch pattern every estimator shares: spawn per-shard RNG
    streams, split the budget, measure each shard's limit-state evals
    against its own process copy, execute via :class:`ShardedRunner`,
    and hand back the payloads in shard order (eval counts already
    reconciled into ``limit_state``).
    """
    rngs = spawn_generators(rng, n_shards)
    budgets = split_budget(budget, n_shards)

    def task(i: int, shard_rng: np.random.Generator, b: int) -> ShardResult:
        before = limit_state.n_evals
        payload = shard_fn(shard_rng, b)
        return ShardResult(index=i, n_evals=limit_state.n_evals - before, payload=payload)

    results = ShardedRunner(workers).run_shards(task, rngs, budgets, limit_state=limit_state)
    return [r.payload for r in results]
