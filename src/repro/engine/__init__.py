"""Sharded parallel estimation engine.

Two orthogonal pieces every sampler in :mod:`repro.highsigma` builds on:

* :class:`~repro.engine.accumulator.StreamingAccumulator` — constant-size
  running moments of an importance-sampling run (log-sum-exp of the
  failure weights and their squares, sample and failure counts), so a
  batched sampling loop does O(batch) work per batch instead of
  re-concatenating and re-reducing its whole history each time.
* :class:`~repro.engine.sharding.ShardedRunner` — splits a sampling
  budget into deterministic shards (per-shard RNG streams spawned from
  one ``np.random.SeedSequence``), optionally fans the shards out over
  worker processes, and merges the shard accumulators **exactly** in
  shard order.  The merge is pure arithmetic on the accumulator moments,
  so a run with ``workers=4`` is bit-identical to the same shard plan
  executed serially — parallelism is a speed layer, never a statistics
  change.

Shard-count vs worker-count: the *shard plan* (``n_shards``) determines
the random streams and therefore the estimate; ``workers`` only decides
how many OS processes execute the plan.  Pin ``n_shards`` when comparing
runs across machines with different core counts.

The static side of the determinism contract lives in
:mod:`repro.engine.audit`: :func:`~repro.engine.audit.audit_shard_plan`
proves a shard plan's streams disjoint and its budgets the canonical
split (the ``D0xx`` codes) before anything runs.

Fault tolerance layers on top without touching the contract:
:class:`~repro.engine.sharding.RetryPolicy` re-dispatches failed, lost
or timed-out shard jobs (bit-identical by construction — same index,
same stream, same budget), :class:`~repro.engine.journal.RunJournal`
checkpoints completed shards to disk and replays them on an audited
resume (codes ``D005``–``D007``), and :mod:`repro.engine.chaos` is the
deterministic fault-injection harness that proves recovery exact.
"""

from repro.engine.accumulator import StreamingAccumulator
from repro.engine.audit import (
    assert_shard_plan_clean,
    audit_runner_merge,
    audit_shard_plan,
)
from repro.engine.chaos import ChaosTask, FaultInjected, FaultSpec, reject_non_finite
from repro.engine.journal import RunJournal, plan_fingerprint
from repro.engine.sharding import (
    RetryPolicy,
    ShardedRunner,
    ShardResult,
    current_attempt,
    in_pool_worker,
    spawn_generators,
    split_budget,
)

__all__ = [
    "StreamingAccumulator",
    "ShardedRunner",
    "ShardResult",
    "RetryPolicy",
    "RunJournal",
    "ChaosTask",
    "FaultSpec",
    "FaultInjected",
    "reject_non_finite",
    "plan_fingerprint",
    "current_attempt",
    "in_pool_worker",
    "spawn_generators",
    "split_budget",
    "audit_shard_plan",
    "audit_runner_merge",
    "assert_shard_plan_clean",
]
