"""Deterministic fault injection for the sharded execution engine.

The harness that *proves* the fault-tolerance layer correct: a
:class:`FaultSpec` injects one failure mode into one specific
``(shard, attempt)`` execution, and because retries re-run the identical
``(index, stream, budget)`` job, a faulted run under a
:class:`~repro.engine.sharding.RetryPolicy` must merge **bit-identical**
to a fault-free run of the same plan.  ``tests/engine/test_chaos.py``
pins exactly that, per fault kind and with all kinds at once.

Fault kinds:

* ``"raise"`` — raise :class:`FaultInjected` (a transient exception);
* ``"delay"`` — sleep ``seconds``, then return normally (slow shard);
* ``"hang"`` — sleep ``seconds`` (pick it beyond the retry timeout to
  emulate a stuck Newton solve; the runner recycles the pool);
* ``"kill"`` — ``SIGKILL`` the worker process (OOM-killer emulation;
  downgraded to ``"raise"`` when not inside a pool worker, so an
  in-process run never kills the caller);
* ``"nan"`` — replace the result payload with ``NaN`` (silent data
  corruption; pair with the :func:`reject_non_finite` validator).

Faults fire *after* the wrapped task completes: losing a finished
attempt — evals consumed, RNG stream advanced, result discarded — is
the adversarial case the retry determinism has to absorb.

Wiring: pass ``chaos=[FaultSpec(...)]`` to
:class:`~repro.engine.sharding.ShardedRunner`; it wraps whatever task it
executes in a :class:`ChaosTask`, so estimators need no changes.  This
is test/benchmark machinery — never enable it in production paths.
"""

from __future__ import annotations

import math
import os
import signal
import time
from dataclasses import dataclass, replace
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.engine.sharding import (
    ShardResult,
    current_attempt,
    in_pool_worker,
)
from repro.errors import EstimationError

__all__ = ["ChaosTask", "FaultInjected", "FaultSpec", "reject_non_finite"]

_KINDS = ("raise", "delay", "hang", "kill", "nan")


class FaultInjected(EstimationError):
    """The exception a ``"raise"`` (or downgraded ``"kill"``) fault throws."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, keyed to a specific shard execution attempt.

    ``attempt`` is 0-based: the default ``attempt=0`` faults the first
    execution, so a policy with ``max_attempts >= 2`` recovers on the
    retry.  ``seconds`` is the sleep for ``"delay"``/``"hang"``.
    """

    kind: str
    shard: int
    attempt: int = 0
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise EstimationError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if int(self.shard) < 0:
            raise EstimationError(f"fault shard must be >= 0, got {self.shard}")
        if int(self.attempt) < 0:
            raise EstimationError(f"fault attempt must be >= 0, got {self.attempt}")
        if not float(self.seconds) >= 0:
            raise EstimationError(f"fault seconds must be >= 0, got {self.seconds}")

    def matches(self, shard: int, attempt: int) -> bool:
        return int(self.shard) == int(shard) and int(self.attempt) == int(attempt)


class ChaosTask:
    """Comparable, picklable task wrapper applying a fault schedule.

    Equality follows the inner task's (plus an identical schedule), so a
    persistent fork pool still recognises repeat submissions and skips
    the respawn.
    """

    __slots__ = ("inner", "faults")

    def __init__(self, inner, faults: Sequence[FaultSpec]):
        self.inner = inner
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)

    def __call__(self, index: int, rng, budget: int) -> ShardResult:
        attempt = current_attempt()
        active = [f for f in self.faults if f.matches(index, attempt)]
        result = self.inner(index, rng, budget)
        for fault in active:
            result = self._apply(fault, index, attempt, result)
        return result

    def _apply(
        self, fault: FaultSpec, index: int, attempt: int, result: ShardResult
    ) -> ShardResult:
        if fault.kind in ("delay", "hang"):
            time.sleep(fault.seconds)
            return result
        if fault.kind == "nan":
            return replace(result, payload=float("nan"))
        if fault.kind == "kill":
            if in_pool_worker():
                os.kill(os.getpid(), signal.SIGKILL)
            raise FaultInjected(
                f"kill fault on shard {index} attempt {attempt} downgraded "
                "to an exception (not inside a pool worker)"
            )
        raise FaultInjected(f"injected failure on shard {index} attempt {attempt}")

    # Pickle support: __slots__ classes have no __dict__ state.
    def __getstate__(self):
        return (self.inner, self.faults)

    def __setstate__(self, state):
        inner, faults = state
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "faults", faults)

    def __eq__(self, other):
        return (
            type(other) is ChaosTask
            and self.faults == other.faults
            and (self.inner is other.inner or self.inner == other.inner)
        )

    __hash__ = None  # identity/equality only; never used as a dict key


def reject_non_finite(result: ShardResult) -> Optional[str]:
    """:class:`~repro.engine.sharding.RetryPolicy` validator: refuse
    payloads carrying NaN or ``+inf``.

    ``-inf`` is legal — it is the log-space zero the streaming
    accumulator uses for "no failures yet" — but NaN and ``+inf`` can
    only mean corruption.  Returns a rejection reason or ``None``.
    """
    return _scan_non_finite(result.payload, "payload")


def _scan_non_finite(obj: Any, path: str, depth: int = 0) -> Optional[str]:
    if depth > 6 or obj is None or isinstance(obj, (bool, str, bytes)):
        return None
    if isinstance(obj, (int, np.integer)):
        return None
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        if math.isnan(value) or value == math.inf:
            return f"{path} is {value!r}"
        return None
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind in "fc":
            arr = np.asarray(obj)
            if np.isnan(arr).any() or (arr == np.inf).any():
                return f"{path} has NaN/+inf entries"
        return None
    if isinstance(obj, (tuple, list)):
        for k, item in enumerate(obj):
            bad = _scan_non_finite(item, f"{path}[{k}]", depth + 1)
            if bad is not None:
                return bad
        return None
    if isinstance(obj, dict):
        for key in obj:
            bad = _scan_non_finite(obj[key], f"{path}[{key!r}]", depth + 1)
            if bad is not None:
                return bad
        return None
    getstate = getattr(obj, "__getstate__", None)
    if callable(getstate):
        try:
            state = getstate()
        except Exception:
            return None
        return _scan_non_finite(state, f"{path}.<state>", depth + 1)
    return None
