"""Incremental shard-result journaling with audited resume.

A :class:`RunJournal` persists every completed
:class:`~repro.engine.sharding.ShardResult` to disk the moment it
arrives (flushed and fsynced per record), so an interrupted long
estimation loses only its in-flight shards.  Resuming re-runs the same
estimator with ``resume=True``: rounds whose shard plan matches a
journaled round replay the recorded results and execute only the
missing shards — and because shard execution is a pure function of
``(index, stream, budget)``, the resumed run merges **bit-identical**
to an uninterrupted one.

A journal is an out-of-process artifact, so it goes through an
admission gate before any replay — the same pattern
``assert_plan_clean`` applies to cached compiled plans.  The runner
first audits the live plan itself (``assert_shard_plan_clean``:
D001–D004), then :meth:`RunJournal.begin_round` audits the journal
against it:

* ``D005`` — the journal's recorded plan fingerprint does not match the
  current round's plan (different seed, shard count or budget split);
* ``D006`` — duplicate records for one shard index within a round;
* ``D007`` — a journaled shard index outside its recorded plan.

All three raise :class:`~repro.errors.JournalError` (a
:class:`~repro.errors.DiagnosticError` carrying the code and findings).

On-disk format: a stream of pickled tuples — ``("plan", fingerprint,
n_shards)`` headers followed by ``("shard", fingerprint, ShardResult)``
records.  Appends are atomic per record (each record is serialized
before any byte is written), and loading tolerates a truncated tail (a
crash mid-write costs exactly the record being written).  Multi-round
estimations (main round + top-up) produce distinct fingerprints because
SeedSequence spawn keys advance, so rounds never collide in one file.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.engine.audit import _seed_identity
from repro.engine.sharding import ShardResult
from repro.errors import JournalError
from repro.spice.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    format_diagnostics,
)

__all__ = ["RunJournal", "plan_fingerprint"]


def _diag(code: str, subject: str, message: str) -> Diagnostic:
    return Diagnostic(code, "error", subject, message, DIAGNOSTIC_CODES[code][1])


def plan_fingerprint(
    rngs: Sequence[np.random.Generator], budgets: Sequence[int]
) -> str:
    """A stable fingerprint of one round's shard plan.

    Derived from each stream's seed identity (entropy + spawn key — the
    same identity the D001/D004 audits inspect) and the budget split, so
    two rounds fingerprint equal exactly when they would execute the
    identical jobs.
    """
    identities = [_seed_identity(rng) for rng in rngs]
    blob = repr((identities, [int(b) for b in budgets])).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class RunJournal:
    """Append-only journal of completed shard results for one run.

    Parameters
    ----------
    path:
        The journal file.  Without ``resume`` the file is truncated and
        records a fresh run; with ``resume=True`` existing records are
        loaded (and audited) and new records append.
    resume:
        Replay journaled shards whose round matches the current plan.

    The journal is handed to :class:`~repro.engine.sharding.ShardedRunner`
    (``journal=`` argument), which calls :meth:`begin_round` once per
    ``run_shards`` round and :meth:`record` per newly-executed shard.
    Close it (context manager or :meth:`close`) when the run ends.
    """

    def __init__(self, path, resume: bool = False):
        self.path = str(path)
        self.resume = bool(resume)
        # Distinct round fingerprints in file order, and per-fingerprint
        # recorded results; rebuilt from disk on resume.
        self._round_fps: List[str] = []
        self._records: Dict[str, Dict[int, ShardResult]] = {}
        self._plan_sizes: Dict[str, int] = {}
        self._rounds_begun = 0
        self._current_fp: Optional[str] = None
        self._current_n = 0
        self._written_headers: List[str] = []
        if self.resume and os.path.exists(self.path):
            self._load()
        self._fh = open(self.path, "ab" if self.resume else "wb")

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- loading -------------------------------------------------------

    def _load(self) -> None:
        """Replay the on-disk record stream, tolerating a truncated tail."""
        diags: List[Diagnostic] = []
        with open(self.path, "rb") as fh:
            while True:
                try:
                    rec = pickle.load(fh)
                except EOFError:
                    break
                except Exception:
                    # A crash mid-append leaves a partial record at the
                    # tail; everything before it is intact and usable.
                    break
                kind = rec[0]
                if kind == "plan":
                    _, fp, n_shards = rec
                    if fp not in self._plan_sizes:
                        self._round_fps.append(fp)
                        self._plan_sizes[fp] = int(n_shards)
                        self._written_headers.append(fp)
                elif kind == "shard":
                    _, fp, result = rec
                    if fp not in self._plan_sizes:
                        raise JournalError(
                            f"journal {self.path}: shard record for unknown "
                            f"plan fingerprint {fp[:12]}… (corrupt or "
                            "hand-edited journal)",
                            code="D005",
                            diagnostics=[
                                _diag(
                                    "D005",
                                    self.path,
                                    "shard record precedes its plan header",
                                )
                            ],
                        )
                    bucket = self._records.setdefault(fp, {})
                    if result.index in bucket:
                        diags.append(
                            _diag(
                                "D006",
                                self.path,
                                f"shard {result.index} recorded twice in "
                                f"round {fp[:12]}…",
                            )
                        )
                    elif not 0 <= result.index < self._plan_sizes[fp]:
                        diags.append(
                            _diag(
                                "D007",
                                self.path,
                                f"shard index {result.index} outside the "
                                f"{self._plan_sizes[fp]}-shard recorded plan",
                            )
                        )
                    else:
                        bucket[result.index] = result
        if diags:
            raise JournalError(
                f"journal {self.path} failed its resume audit:\n"
                + format_diagnostics(diags),
                code=diags[0].code,
                diagnostics=diags,
            )

    # -- runner interface ----------------------------------------------

    def begin_round(
        self,
        rngs: Sequence[np.random.Generator],
        budgets: Sequence[int],
    ) -> Dict[int, ShardResult]:
        """Audit the journal against this round's plan; return replays.

        Rounds are matched positionally against the journaled round
        order: round *k* of the resumed run must fingerprint equal to
        journaled round *k* (``D005`` otherwise) — a resumed estimator
        replays its rounds in the same order by determinism.  Rounds
        beyond the journaled history are new work and replay nothing.
        """
        fp = plan_fingerprint(rngs, budgets)
        k = self._rounds_begun
        self._rounds_begun += 1
        self._current_fp = fp
        self._current_n = len(budgets)
        if k < len(self._round_fps) and self._round_fps[k] != fp:
            d = _diag(
                "D005",
                self.path,
                f"round {k}: journal recorded plan "
                f"{self._round_fps[k][:12]}…, current plan is {fp[:12]}… "
                "(seed, n_shards or budget split differ)",
            )
            raise JournalError(
                f"journal {self.path} does not match the current shard "
                f"plan:\n" + format_diagnostics([d]),
                code="D005",
                diagnostics=[d],
            )
        replay = dict(self._records.get(fp, {}))
        bad = [i for i in sorted(replay) if not 0 <= i < len(budgets)]
        if bad:
            diags = [
                _diag(
                    "D007",
                    self.path,
                    f"journaled shard index {i} outside the current "
                    f"{len(budgets)}-shard plan",
                )
                for i in bad
            ]
            raise JournalError(
                f"journal {self.path} failed its resume audit:\n"
                + format_diagnostics(diags),
                code="D007",
                diagnostics=diags,
            )
        return replay

    def record(self, result: ShardResult) -> None:
        """Persist one newly-completed shard result (flush + fsync)."""
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        fp = self._current_fp
        if fp is None:
            raise JournalError("record() before begin_round()")
        if result.index in self._records.get(fp, {}):
            # Already on disk for this round (e.g. a journaled-but-
            # rejected result that was re-executed): appending again
            # would trip the D006 duplicate audit on the next resume.
            return
        try:
            # Serialize before writing a single byte: a pickling failure
            # must not leave a partial record on disk.
            blob = pickle.dumps(("shard", fp, result))
        except Exception as exc:
            raise JournalError(
                f"shard {result.index} result cannot be journaled "
                f"({type(exc).__name__}: {exc}); payloads must be picklable",
            ) from exc
        if fp not in self._written_headers:
            self._fh.write(pickle.dumps(("plan", fp, self._current_n)))
            self._written_headers.append(fp)
            if fp not in self._plan_sizes:
                self._round_fps.append(fp)
                self._plan_sizes[fp] = self._current_n
        self._fh.write(blob)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._records.setdefault(fp, {})[result.index] = result

    # -- introspection -------------------------------------------------

    @property
    def rounds(self) -> int:
        """How many distinct rounds the journal holds records for."""
        return len(self._round_fps)

    def recorded(self, fp: Optional[str] = None) -> Dict[int, Any]:
        """The recorded results of one round (default: current round)."""
        fp = fp if fp is not None else self._current_fp
        return dict(self._records.get(fp, {})) if fp is not None else {}
