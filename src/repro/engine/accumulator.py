"""Streaming importance-sampling accumulator.

The estimator only ever needs four reductions of the sample history:

* ``n``       — total samples drawn;
* ``n_fail``  — failing samples;
* ``S1 = sum_i w_i I_i``   (kept as ``log S1``);
* ``S2 = sum_i w_i^2 I_i`` (kept as ``log S2``),

because ``p = S1/n``, the ddof-1 sample variance of the contributions is
``(S2 - S1^2/n) / (n-1)`` (all non-failing contributions are exactly
zero), and the Kish effective sample size of the failing weights is
``S1^2 / S2``.  Keeping the two weight sums in log space preserves the
package-wide invariant that importance weights at 6 sigma — spanning
hundreds of orders of magnitude — are never exponentiated until the
final reduction.

Invariants the engine relies on:

* :meth:`update` does O(batch) work and leaves O(1) state — per-batch
  cost is independent of how many batches came before;
* :meth:`merge` is exact: merging per-shard accumulators in a fixed
  order yields bit-identical moments no matter which process computed
  each shard, which is what makes ``workers=N`` a pure speed knob;
* the statistics match :func:`repro.highsigma.estimators.is_estimate` /
  :func:`~repro.highsigma.estimators.effective_sample_size` applied to
  the concatenated history (up to floating-point reduction order).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.special import logsumexp

from repro.errors import EstimationError

__all__ = ["StreamingAccumulator"]


class StreamingAccumulator:
    """Constant-size running moments of a (log-weight, indicator) stream."""

    __slots__ = ("n", "n_fail", "_log_s1", "_log_s2")

    def __init__(self) -> None:
        self.n = 0
        self.n_fail = 0
        self._log_s1 = float("-inf")
        self._log_s2 = float("-inf")

    # -- pickling (``__slots__`` removes ``__dict__``) -------------------

    def __getstate__(self):
        return (self.n, self.n_fail, self._log_s1, self._log_s2)

    def __setstate__(self, state):
        self.n, self.n_fail, self._log_s1, self._log_s2 = state

    # --------------------------------------------------------------------

    def update(self, log_w: np.ndarray, fails: np.ndarray) -> None:
        """Fold one batch of log-weights / failure indicators in."""
        log_w = np.asarray(log_w, dtype=float)
        fails = np.asarray(fails, dtype=bool)
        if log_w.shape != fails.shape:
            raise EstimationError("log-weights and indicators must have equal shapes")
        k = int(np.count_nonzero(fails))
        if k:
            lw = log_w[fails]
            # Loud, not poisoned: one NaN or +inf log-weight entering the
            # moments would silently corrupt every later estimate and
            # every merge downstream.  -inf is legal (a zero weight);
            # NaN and +inf can only be upstream corruption.
            if np.isnan(lw).any() or (lw == np.inf).any():
                raise EstimationError(
                    "non-finite failing log-weight entering the accumulator "
                    f"(NaN: {int(np.isnan(lw).sum())}, "
                    f"+inf: {int((lw == np.inf).sum())} of {k} failing); "
                    "log-weights may be -inf but never NaN or +inf"
                )
            self.n += log_w.size
            self.n_fail += k
            self._log_s1 = float(np.logaddexp(self._log_s1, logsumexp(lw)))
            self._log_s2 = float(np.logaddexp(self._log_s2, logsumexp(2.0 * lw)))
        else:
            self.n += log_w.size

    def merge(self, other: "StreamingAccumulator") -> None:
        """Fold another accumulator in (exact, order-sensitive only in ulps).

        Merging shard accumulators in a fixed shard order is the engine's
        determinism contract: the result depends on the shard plan, not
        on which worker process produced each shard.
        """
        for log_s in (other._log_s1, other._log_s2):
            if np.isnan(log_s) or log_s == float("inf"):
                raise EstimationError(
                    f"refusing to merge an accumulator with non-finite "
                    f"moments: {other!r}"
                )
        self.n += other.n
        self.n_fail += other.n_fail
        self._log_s1 = float(np.logaddexp(self._log_s1, other._log_s1))
        self._log_s2 = float(np.logaddexp(self._log_s2, other._log_s2))

    # --------------------------------------------------------------------

    def estimate(self) -> Tuple[float, float]:
        """``(p_fail, std_err)`` of the stream so far.

        Mirrors :func:`repro.highsigma.estimators.is_estimate`: zero
        samples raise, one sample has infinite standard error, zero
        failures give ``(0.0, 0.0)``.
        """
        if self.n == 0:
            raise EstimationError("cannot estimate from zero samples")
        s1 = float(np.exp(self._log_s1))
        p = s1 / self.n
        if self.n <= 1:
            return p, float("inf")
        s2 = float(np.exp(self._log_s2))
        # ddof=1 variance of the n contributions, most of which are 0.
        var = max(s2 - s1 * s1 / self.n, 0.0) / (self.n - 1)
        return p, float(np.sqrt(var / self.n))

    def ess(self) -> float:
        """Kish effective sample size of the failing weights."""
        if self.n_fail == 0 or self._log_s1 == float("-inf"):
            return 0.0
        return float(np.exp(2.0 * self._log_s1 - self._log_s2))

    def __repr__(self) -> str:
        return (
            f"StreamingAccumulator(n={self.n}, n_fail={self.n_fail}, "
            f"log_s1={self._log_s1:.6g}, log_s2={self._log_s2:.6g})"
        )
