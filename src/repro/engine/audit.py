"""Determinism audit for shard plans: streams disjoint, merge in order.

The engine's contract (see :mod:`repro.engine.sharding`) is that a shard
plan — per-shard RNG streams plus per-shard budgets — fully determines
the statistics, with ``workers`` a pure speed knob.  This module is the
static side of that contract: given a plan, *prove* it deterministic
before anything runs.

* **D001** — every shard generator carries a distinct
  ``np.random.SeedSequence`` identity (entropy + spawn key).  Two shards
  sharing a stream would sample correlated points and silently bias the
  merged estimate.
* **D002** — the budgets are the deterministic
  :func:`~repro.engine.sharding.split_budget` plan (largest shards
  first) and account for the full total.
* **D003** — a merged result list is in ascending contiguous shard-index
  order, the order the accumulator merge is defined over.
* **D004** — every shard stream was spawned from the declared parent
  (same entropy, parent's spawn key extended by one element), so the
  plan depends only on the parent seed and the shard count.

Codes are registered in
:data:`repro.spice.diagnostics.DIAGNOSTIC_CODES`; error findings can be
escalated with :func:`assert_shard_plan_clean`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.sharding import ShardResult, split_budget
from repro.errors import PlanAuditError
from repro.spice.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    format_diagnostics,
    lint_errors,
)

__all__ = [
    "audit_shard_plan",
    "audit_runner_merge",
    "assert_shard_plan_clean",
]


def _diag(code: str, severity: str, subject: str, message: str) -> Diagnostic:
    return Diagnostic(code, severity, subject, message, DIAGNOSTIC_CODES[code][1])


def _seed_identity(rng: np.random.Generator) -> Optional[Tuple]:
    """The (entropy, spawn_key) identity of a generator's seed sequence."""
    bg = rng.bit_generator
    ss = getattr(bg, "seed_seq", None)
    if ss is None:
        ss = getattr(bg, "_seed_seq", None)
    if ss is None or not hasattr(ss, "entropy"):
        return None
    return (ss.entropy, tuple(ss.spawn_key))


def audit_shard_plan(
    rngs: Sequence[np.random.Generator],
    budgets: Sequence[int],
    total: Optional[int] = None,
    parent: Optional[np.random.Generator] = None,
) -> List[Diagnostic]:
    """Audit a shard plan (streams + budgets) without running it.

    ``total`` enables the D002 check that ``budgets`` is exactly
    ``split_budget(total, n_shards)``; ``parent`` enables the D004 check
    that every stream was spawned from it.  Returns all findings (empty
    when the plan is provably deterministic).
    """
    diags: List[Diagnostic] = []
    rngs = list(rngs)
    budgets = [int(b) for b in budgets]

    if len(rngs) != len(budgets):
        diags.append(
            _diag(
                "D002", "error", "plan",
                f"{len(rngs)} RNG streams for {len(budgets)} shard budgets",
            )
        )

    # -- D001: stream disjointness -------------------------------------
    identities = []
    for i, rng in enumerate(rngs):
        for j in range(i):
            if rng is rngs[j]:
                diags.append(
                    _diag(
                        "D001", "error", f"shards ({j}, {i})",
                        "the same Generator object runs two shards",
                    )
                )
        identities.append(_seed_identity(rng))
    seen = {}
    for i, ident in enumerate(identities):
        if ident is None:
            if rngs[i] is not None and not any(
                rngs[i] is rngs[j] for j in range(i)
            ):
                diags.append(
                    _diag(
                        "D001", "warning", f"shard {i}",
                        "stream has no SeedSequence identity; disjointness "
                        "cannot be proven statically",
                    )
                )
            continue
        if ident in seen:
            diags.append(
                _diag(
                    "D001", "error", f"shards ({seen[ident]}, {i})",
                    "two shard streams share one SeedSequence "
                    f"(entropy={ident[0]!r}, spawn_key={ident[1]!r})",
                )
            )
        else:
            seen[ident] = i

    # -- D002: deterministic budget split -------------------------------
    if any(b < 0 for b in budgets):
        diags.append(
            _diag("D002", "error", "budgets", f"negative shard budget in {budgets}")
        )
    elif total is not None and budgets:
        want = split_budget(int(total), len(budgets))
        if budgets != want:
            diags.append(
                _diag(
                    "D002", "error", "budgets",
                    f"budgets {budgets} are not split_budget({int(total)}, "
                    f"{len(budgets)}) = {want}",
                )
            )

    # -- D004: spawned from the declared parent -------------------------
    if parent is not None:
        parent_ident = _seed_identity(parent)
        if parent_ident is None:
            diags.append(
                _diag(
                    "D004", "warning", "parent",
                    "parent stream has no SeedSequence identity; lineage "
                    "cannot be proven statically",
                )
            )
        else:
            p_entropy, p_key = parent_ident
            for i, ident in enumerate(identities):
                if ident is None:
                    continue
                entropy, key = ident
                if (
                    entropy != p_entropy
                    or len(key) != len(p_key) + 1
                    or key[:-1] != p_key
                ):
                    diags.append(
                        _diag(
                            "D004", "error", f"shard {i}",
                            f"stream (entropy={entropy!r}, spawn_key={key!r}) "
                            "was not spawned from the parent "
                            f"(spawn_key={p_key!r})",
                        )
                    )

    diags.sort(key=lambda d: (d.code, d.subject))
    return diags


def audit_runner_merge(results: Sequence[ShardResult]) -> List[Diagnostic]:
    """D003: results are in ascending contiguous shard-index order.

    :meth:`~repro.engine.sharding.ShardedRunner.run_shards` guarantees
    this ordering; run the audit over any result list that took another
    path (a remote dispatch, a hand-assembled merge) before merging.
    """
    diags: List[Diagnostic] = []
    indexes = [int(r.index) for r in results]
    if indexes != list(range(len(indexes))):
        diags.append(
            _diag(
                "D003", "error", "results",
                f"shard indexes {indexes} are not 0..{len(indexes) - 1} "
                "in order",
            )
        )
    return diags


def assert_shard_plan_clean(
    rngs: Sequence[np.random.Generator],
    budgets: Sequence[int],
    total: Optional[int] = None,
    parent: Optional[np.random.Generator] = None,
) -> List[Diagnostic]:
    """Raise :class:`~repro.errors.PlanAuditError` on D-code errors."""
    diags = audit_shard_plan(rngs, budgets, total=total, parent=parent)
    errors = lint_errors(diags)
    if errors:
        raise PlanAuditError(
            "shard plan failed its determinism audit:\n"
            + format_diagnostics(errors),
            code=errors[0].code,
            diagnostics=diags,
        )
    return diags
