"""``repro-bench`` — the one entry point for every benchmark driver.

Replaces the four ad-hoc ``main()``s (``smoke.py``, ``bench_kernel.py``,
``bench_sharding.py``, ``bench_chaos.py``; all four remain as thin
back-compat shims over this module)::

    repro-bench --list                       # sections, tags, gates
    repro-bench --tags kernel                # run one tag group
    repro-bench --only plan-cache            # run named sections
    repro-bench --check --tags smoke \\
                --json-out BENCH_smoke.json  # wall gates + trajectory
    repro-bench --update-baseline --tags smoke
    repro-bench --check-trajectory --json-out BENCH_smoke.json

A plain run executes the selected sections and enforces their
*internal* gates (ratio floors/ceilings, bit-identity).  ``--check``
additionally enforces the per-section wall-clock gates against the
committed baseline (with the ``--min-section`` noise floor), appends
this run to the committed trajectory (deduped by ``GITHUB_SHA``) and
gates the run against its same-host trajectory history.
``--check-trajectory`` runs only that last comparison, against an
already-written ``--json-out`` report.  Exit status is non-zero when
any gate fails or any section errors.
"""

from __future__ import annotations

import argparse
import os
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.bench import gates as gates_mod
from repro.bench import report as report_mod
from repro.bench import trajectory as trajectory_mod
from repro.bench.gates import GateOutcome, format_outcome
from repro.bench.registry import REGISTRY, SectionResult, run_sections
from repro.errors import ConfigError

DEFAULT_BASELINE = pathlib.Path("benchmarks/results/smoke_baseline.json")
DEFAULT_TRAJECTORY = pathlib.Path("benchmarks/results/trajectory.json")


def _load_sections() -> None:
    """Registration happens on import; kept lazy so ``--help`` is cheap."""
    import repro.bench.sections  # noqa: F401


def run_suite(
    only: Optional[Sequence[str]] = None,
    tags: Optional[Sequence[str]] = None,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    repeats: Optional[int] = None,
    echo=print,
) -> Dict[str, SectionResult]:
    """Run the selected sections; the shared API under every shim."""
    _load_sections()
    chosen = REGISTRY.select(only=only, tags=tags)
    if not chosen:
        raise ConfigError(
            "selection matched no benchmark sections "
            f"(only={list(only or [])}, tags={list(tags or [])})"
        )
    return run_sections(chosen, overrides=overrides, repeats=repeats, echo=echo)


def evaluate_suite(
    results: Mapping[str, SectionResult],
    baseline: Optional[Mapping[str, Any]] = None,
    factor: Optional[float] = None,
    min_section: float = gates_mod.DEFAULT_MIN_SECTION,
) -> List[GateOutcome]:
    """Evaluate every gate attached to the sections that ran."""
    _load_sections()
    chosen = [REGISTRY.get(name) for name in results]
    outcomes = gates_mod.evaluate_gates(
        REGISTRY.gates_for(chosen), results,
        baseline=baseline, factor=factor, min_section=min_section,
    )
    if baseline is not None:
        total = sum(r.seconds for r in results.values())
        outcomes.append(gates_mod.evaluate_total_gate(
            total, baseline, factor=factor, min_section=min_section,
        ))
    return outcomes


def run_and_report(
    only: Optional[Sequence[str]] = None,
    tags: Optional[Sequence[str]] = None,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    json_out: Optional[pathlib.Path] = None,
    echo=print,
) -> int:
    """Plain run + internal gates + schema'd report: the shim workhorse."""
    results = run_suite(only=only, tags=tags, overrides=overrides, echo=echo)
    outcomes = evaluate_suite(results)
    for outcome in outcomes:
        echo(format_outcome(outcome))
    if json_out is not None:
        report_mod.write_report(json_out, report_mod.build_report(results, outcomes))
        echo(f"report written to {json_out}")
    failed = [o for o in outcomes if o.failed]
    broken = [r.name for r in results.values() if not r.valid]
    if broken:
        echo(f"FAIL: sections errored: {', '.join(broken)}")
    if failed:
        echo(f"FAIL: {len(failed)} gate(s) tripped")
    return 1 if (failed or broken) else 0


def _print_list() -> int:
    _load_sections()
    for sec in REGISTRY.select():
        gate_ids = ", ".join(g.gate_id for g in sec.gates) or "—"
        print(f"{sec.name:24s} tags={','.join(sec.tags):24s} gates: {gate_ids}")
    return 0


def _check_trajectory_only(args: argparse.Namespace) -> int:
    if args.json_out is None:
        raise ConfigError(
            "--check-trajectory needs --json-out pointing at the run "
            "report to compare (write one with --check first)"
        )
    report = report_mod.load_report(args.json_out)
    outcomes = trajectory_mod.check_trajectory(
        args.trajectory, report,
        sha=os.environ.get("GITHUB_SHA"),
        factor=args.trajectory_factor,
        min_section=args.min_section,
    )
    for outcome in outcomes:
        print(format_outcome(outcome))
    failed = [o for o in outcomes if o.failed]
    if failed:
        print(f"FAIL: {len(failed)} trajectory gate(s) tripped")
        return 1
    print("trajectory check ok")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--list", action="store_true",
                        help="list registered sections, tags and gates")
    parser.add_argument("--only", action="append", default=None,
                        metavar="SECTION",
                        help="run only the named section (repeatable)")
    parser.add_argument("--tags", action="append", default=None, metavar="TAG",
                        help="run sections carrying any of these tags "
                             "(repeatable)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="override every section's measured-run count "
                             "(median + CV reported)")
    parser.add_argument("--json-out", type=pathlib.Path, default=None,
                        help="write the schema'd machine-readable report here")
    parser.add_argument("--check", action="store_true",
                        help="enforce wall-clock gates vs the committed "
                             "baseline, append to and check the trajectory")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record this run as the new baseline (with host "
                             "metadata under '_meta' for provenance)")
    parser.add_argument("--check-trajectory", action="store_true",
                        help="only compare an existing --json-out report "
                             "against the same-host trajectory history")
    parser.add_argument("--factor", type=float, default=None,
                        help="wall-clock regression factor (default: each "
                             f"gate's own, {gates_mod.DEFAULT_WALL_FACTOR})")
    parser.add_argument("--min-section", type=float,
                        default=gates_mod.DEFAULT_MIN_SECTION,
                        help="noise floor in seconds for near-instant "
                             "sections' wall gates")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE,
                        help="committed per-section wall-clock baseline")
    parser.add_argument("--trajectory", type=pathlib.Path,
                        default=DEFAULT_TRAJECTORY,
                        help="committed cross-PR trajectory file")
    parser.add_argument("--trajectory-factor", type=float,
                        default=trajectory_mod.DEFAULT_CHECK_FACTOR,
                        help="regression factor vs the same-host trajectory "
                             "median")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.list:
            return _print_list()
        if args.check_trajectory and not args.check:
            return _check_trajectory_only(args)

        baseline: Optional[Dict[str, Any]] = None
        if args.check:
            if not args.baseline.exists():
                print(f"no baseline at {args.baseline}; "
                      "run --update-baseline first")
                return 1
            import json

            baseline = json.loads(args.baseline.read_text())

        results = run_suite(
            only=args.only, tags=args.tags, repeats=args.repeat
        )
        outcomes = evaluate_suite(
            results, baseline=baseline,
            factor=args.factor, min_section=args.min_section,
        )

        if args.update_baseline:
            broken = [r.name for r in results.values() if not r.valid]
            tripped = [o.gate_id for o in outcomes if o.failed
                       and o.spec.kind != "wall_factor"]
            if broken or tripped:
                print("FAIL: refusing to record a baseline from a run with "
                      f"failing sections/gates: {sorted(broken + tripped)}")
                return 1
            from repro.bench.meta import host_metadata

            record: Dict[str, Any] = {
                name: r.seconds for name, r in results.items()
            }
            record["total"] = round(
                sum(r.seconds for r in results.values()), 3
            )
            record["_meta"] = host_metadata()
            args.baseline.parent.mkdir(parents=True, exist_ok=True)
            import json

            args.baseline.write_text(json.dumps(record, indent=2) + "\n")
            print(f"baseline written to {args.baseline}")
            return 0

        report = report_mod.build_report(results, outcomes, baseline=baseline)
        if args.check:
            sha = os.environ.get("GITHUB_SHA")
            # Check against history *before* appending, so a local run
            # (no sha to dedupe on) cannot vouch for itself.
            trajectory_outcomes = trajectory_mod.check_trajectory(
                args.trajectory, report, sha=sha,
                factor=args.trajectory_factor,
                min_section=args.min_section,
            )
            outcomes = outcomes + trajectory_outcomes
            report = report_mod.build_report(
                results, outcomes, baseline=baseline
            )
            trajectory_mod.append_run(args.trajectory, report, sha=sha)
            print(f"trajectory updated at {args.trajectory}")

        for outcome in outcomes:
            print(format_outcome(outcome))
        if args.json_out is not None:
            report_mod.write_report(args.json_out, report)
            print(f"report written to {args.json_out}")

        failed = [o for o in outcomes if o.failed]
        broken = [r.name for r in results.values() if not r.valid]
        if broken:
            print(f"FAIL: sections errored: {', '.join(broken)}")
        if failed:
            print(f"FAIL: {len(failed)} gate(s) tripped")
            return 1
        if broken:
            return 1
        print("repro-bench: all gates within budget")
        return 0
    except ConfigError as exc:
        print(f"repro-bench: {exc}")
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
