"""Host provenance for benchmark records.

Every benchmark report and trajectory entry carries a ``_meta`` block
describing the machine that produced the numbers — which CPU, which
Python, which BLAS-bearing numpy — so a wall-clock comparison across
records can be restricted to like-for-like hosts instead of folklore.

Historically this lived in ``benchmarks/smoke.py`` and the chaos driver
imported it through a ``sys.path`` hack; it is library code now.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Mapping, Tuple


def host_metadata() -> dict:
    """Provenance of a timing: machine, interpreter, BLAS-bearing numpy."""
    import numpy as np

    cpu = platform.processor() or platform.machine()
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    cpu = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu": cpu,
        "cpu_count": os.cpu_count(),
        "recorded_unix": round(time.time(), 1),
    }


def host_key(meta: Mapping[str, object]) -> Tuple[str, str, str]:
    """Comparison key for "same host, same interpreter" timing records.

    Two records are wall-clock comparable when they ran on the same CPU
    model with the same core count under the same ``major.minor``
    Python.  Numpy patch level and the exact platform string are
    deliberately excluded: they churn without moving the hot paths, and
    a real BLAS swap shows up as a CPU/python mismatch in practice or as
    an explicit baseline re-record.
    """
    python = str(meta.get("python", ""))
    return (
        str(meta.get("cpu", "")),
        str(meta.get("cpu_count", "")),
        ".".join(python.split(".")[:2]),
    )
