"""``python -m repro.bench`` — alias for the ``repro-bench`` console entry."""

from repro.bench.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
