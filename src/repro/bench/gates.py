"""Declarative acceptance gates over measured benchmark sections.

Every threshold the four historical drivers asserted imperatively —
per-section wall-clock factors against the committed baseline, internal
ratio floors (batched >= 2x scalar, sparse >= 2x dense, Schur >= 1.5x
blocked, fast >= reference, warm plan-cache hit >= 2x cold compile),
ratio ceilings (spawn pool <= 1.5x fork), and bit-identity contracts
(chaos and journal recovery, sharding across worker counts) — is a
:class:`GateSpec` here: declarative data evaluated uniformly by
:func:`evaluate_gates`.  A failure always reports the gate id, the
measured value and the threshold it broke, so a red CI line is
actionable without re-reading the section body.

Gate kinds:

``ratio_min``
    ``values[key] >= threshold`` — speedup floors.
``ratio_max``
    ``values[key] <= threshold`` — overhead ceilings and relative-error
    tolerances.
``bool_true``
    ``values[key]`` is truthy — bit-identity and sanity contracts.
``wall_factor``
    section wall-clock <= ``factor * max(baseline_seconds,
    min_section)`` — the committed-baseline regression tripwire, with
    the ``min_section`` noise floor protecting near-instant sections
    from timer jitter.  Evaluated only when a baseline is supplied
    (plain runs skip it, ``--check`` enforces it).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, List, Mapping, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # registry imports gates; type-only in the other direction
    from repro.bench.registry import SectionResult

GATE_KINDS = ("ratio_min", "ratio_max", "bool_true", "wall_factor")

#: Default noise floor (seconds) for ``wall_factor`` gates: sections
#: whose baseline is below this are gated against ``factor * floor``.
DEFAULT_MIN_SECTION = 0.5

#: Default wall-clock regression factor against the committed baseline.
DEFAULT_WALL_FACTOR = 2.0


@dataclass(frozen=True)
class GateSpec:
    """One declarative acceptance gate.

    ``gate_id`` is the stable identifier failure messages and reports
    carry; ``section`` names the section whose result is examined;
    ``key`` selects the measured value (ignored for ``wall_factor``,
    which gates the section's own wall-clock).  ``skip_if_missing``
    marks gates over values a section can legitimately decline to
    measure (e.g. fork-pool chaos recovery on a spawn-only platform):
    a missing value skips the gate instead of failing it.
    """

    gate_id: str
    kind: str
    section: str = ""
    key: str = ""
    threshold: float = 0.0
    description: str = ""
    skip_if_missing: bool = False

    def __post_init__(self) -> None:
        if self.kind not in GATE_KINDS:
            raise ConfigError(
                f"unknown gate kind {self.kind!r} for gate {self.gate_id!r}; "
                f"expected one of {GATE_KINDS}"
            )


@dataclass(frozen=True)
class GateOutcome:
    """The result of evaluating one :class:`GateSpec` against a run."""

    spec: GateSpec
    passed: bool
    measured: Optional[float] = None
    threshold: Optional[float] = None
    reason: str = ""
    skipped: bool = False

    @property
    def gate_id(self) -> str:
        return self.spec.gate_id

    @property
    def failed(self) -> bool:
        return not self.passed and not self.skipped

    def to_json(self) -> dict:
        return {
            "gate_id": self.spec.gate_id,
            "section": self.spec.section,
            "kind": self.spec.kind,
            "passed": self.passed,
            "skipped": self.skipped,
            "measured": self.measured,
            "threshold": self.threshold,
            "reason": self.reason,
        }


def format_outcome(outcome: GateOutcome) -> str:
    """One human-readable line per gate; failures carry id, measured
    value and threshold (the acceptance criterion for a red CI line)."""
    spec = outcome.spec
    if outcome.skipped:
        return f"gate {spec.gate_id:40s} SKIP  ({outcome.reason})"
    op = {"ratio_min": ">=", "ratio_max": "<=", "bool_true": "==",
          "wall_factor": "<="}[spec.kind]
    want = "True" if spec.kind == "bool_true" else f"{outcome.threshold}"
    unit = " s" if spec.kind == "wall_factor" else ""
    status = "ok" if outcome.passed else "FAIL"
    line = (
        f"gate {spec.gate_id:40s} {status:4s}  "
        f"measured={outcome.measured}{unit} {op} threshold={want}{unit}"
    )
    if outcome.reason and not outcome.passed:
        line += f"  ({outcome.reason})"
    return line


def _evaluate_wall(
    spec: GateSpec,
    seconds: float,
    baseline: Optional[Mapping[str, float]],
    factor: Optional[float],
    min_section: float,
) -> GateOutcome:
    if baseline is None:
        return GateOutcome(
            spec, passed=True, skipped=True,
            reason="no baseline supplied (plain run)",
        )
    base = baseline.get(spec.section)
    if not isinstance(base, (int, float)):
        return GateOutcome(
            spec, passed=False, measured=seconds,
            reason=(
                f"section {spec.section!r} missing from the committed "
                "baseline; re-record with --update-baseline"
            ),
        )
    eff_factor = spec.threshold if factor is None else factor
    limit = eff_factor * max(float(base), min_section)
    return GateOutcome(
        spec,
        passed=seconds <= limit,
        measured=round(seconds, 3),
        threshold=round(limit, 3),
        reason=(
            f"factor {eff_factor} x max(baseline {float(base):.3f} s, "
            f"noise floor {min_section} s)"
        ),
    )


def evaluate_gates(
    specs: Iterable[GateSpec],
    results: Mapping[str, "SectionResult"],
    baseline: Optional[Mapping[str, float]] = None,
    factor: Optional[float] = None,
    min_section: float = DEFAULT_MIN_SECTION,
) -> List[GateOutcome]:
    """Evaluate every gate against a run's section results.

    ``results`` maps section name to a
    :class:`repro.bench.registry.SectionResult` (anything exposing
    ``seconds``/``values``/``valid``/``reason`` works).  Gates whose
    section was not selected for this run are skipped; gates whose
    section ran but failed internally fail with the section's reason.
    """
    outcomes: List[GateOutcome] = []
    for spec in specs:
        result = results.get(spec.section)
        if result is None:
            outcomes.append(GateOutcome(
                spec, passed=True, skipped=True,
                reason="section not selected for this run",
            ))
            continue
        if not result.valid:
            outcomes.append(GateOutcome(
                spec, passed=False,
                reason=f"section failed: {result.reason}",
            ))
            continue
        if spec.kind == "wall_factor":
            outcomes.append(_evaluate_wall(
                spec, result.seconds, baseline, factor, min_section
            ))
            continue
        value = result.values.get(spec.key)
        if value is None:
            outcomes.append(GateOutcome(
                spec,
                passed=spec.skip_if_missing,
                skipped=spec.skip_if_missing,
                reason=f"value {spec.key!r} not measured"
                + ("" if spec.skip_if_missing else
                   f" by section {spec.section!r}"),
            ))
            continue
        if spec.kind == "bool_true":
            outcomes.append(GateOutcome(
                spec, passed=bool(value), measured=bool(value),
                threshold=True,
            ))
        elif spec.kind == "ratio_min":
            outcomes.append(GateOutcome(
                spec, passed=float(value) >= spec.threshold,
                measured=float(value), threshold=spec.threshold,
            ))
        else:  # ratio_max
            outcomes.append(GateOutcome(
                spec, passed=float(value) <= spec.threshold,
                measured=float(value), threshold=spec.threshold,
            ))
    return outcomes


def evaluate_total_gate(
    total_seconds: float,
    baseline: Optional[Mapping[str, float]],
    factor: Optional[float] = None,
    min_section: float = DEFAULT_MIN_SECTION,
) -> GateOutcome:
    """The suite-total wall gate: total <= factor * baseline['total'].

    Per-section gates stop a regression hiding behind an unrelated
    speedup; the total gate stops death by a thousand sub-floor cuts.
    """
    spec = GateSpec(
        gate_id="wall.total", kind="wall_factor", section="total",
        threshold=DEFAULT_WALL_FACTOR,
        description="suite total vs committed baseline",
    )
    return _evaluate_wall(spec, total_seconds, baseline, factor, min_section)


def bind_section(spec: GateSpec, section: str) -> GateSpec:
    """Return ``spec`` bound to ``section`` (used at registration, so
    gate tables written next to a section never repeat its name)."""
    if spec.section:
        return spec
    return replace(spec, section=section)
