"""Unified benchmark harness: sections, gates, reports, trajectory.

One package owns everything that produces or consumes performance
evidence:

* :mod:`repro.bench.registry` — the ``@section`` registry (tags,
  setup/run split, repeat statistics);
* :mod:`repro.bench.gates` — declarative :class:`GateSpec` acceptance
  gates evaluated uniformly (wall-clock factors, ratio floors and
  ceilings, bit-identity);
* :mod:`repro.bench.report` — the one versioned JSON report schema
  every driver emits;
* :mod:`repro.bench.trajectory` — the committed cross-PR performance
  record, deduped by commit and gated against same-host history;
* :mod:`repro.bench.meta` — host provenance for every record;
* :mod:`repro.bench.sections` — the registered workloads (tags
  ``smoke``/``kernel``/``sharding``/``chaos``/...);
* :mod:`repro.bench.cli` — the ``repro-bench`` entry point the four
  historical driver scripts now shim onto.

Importing :mod:`repro.bench` stays cheap: sections (and numpy-heavy
workload code) load only when a suite actually runs.
"""

from repro.bench.gates import GateOutcome, GateSpec, evaluate_gates, format_outcome
from repro.bench.meta import host_key, host_metadata
from repro.bench.registry import (
    REGISTRY,
    Registry,
    Section,
    SectionResult,
    run_section,
    run_sections,
    section,
)
from repro.bench.report import SCHEMA_VERSION, build_report, load_report, write_report
from repro.bench.trajectory import append_run, check_trajectory, load_trajectory

__all__ = [
    "GateOutcome",
    "GateSpec",
    "evaluate_gates",
    "format_outcome",
    "host_key",
    "host_metadata",
    "REGISTRY",
    "Registry",
    "Section",
    "SectionResult",
    "run_section",
    "run_sections",
    "section",
    "SCHEMA_VERSION",
    "build_report",
    "load_report",
    "write_report",
    "append_run",
    "check_trajectory",
    "load_trajectory",
]
