"""The one JSON report schema shared by every benchmark driver.

Historically the four drivers emitted four shapes: a gated JSON file
(smoke), two plain-text ``tee`` dumps (kernel, sharding) and an ad-hoc
chaos JSON.  Every driver now emits this schema::

    {
      "schema_version": 1,
      "sections": {
        "<name>": {"seconds": ..., "valid": true, "tags": [...],
                   "values": {...},               # measured ratios/bools
                   "seconds_runs": [...], "cv": ...,   # when repeats > 1
                   "baseline_seconds": ..., "vs_baseline": ...}  # --check
      },
      "gates": [{"gate_id": ..., "section": ..., "kind": ...,
                 "passed": ..., "skipped": ..., "measured": ...,
                 "threshold": ..., "reason": ...}],
      "total_seconds": ...,
      "baseline_total_seconds": ...,   # when a baseline was supplied
      "baseline_meta": {...},
      "_meta": {...}                   # host provenance (repro.bench.meta)
    }

``schema_version`` is bumped on any layout change; readers refuse
versions they do not understand instead of misparsing them.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Mapping, Optional, Sequence

from repro.bench.gates import GateOutcome
from repro.bench.meta import host_metadata
from repro.bench.registry import SectionResult
from repro.errors import ConfigError

SCHEMA_VERSION = 1


def build_report(
    results: Mapping[str, SectionResult],
    outcomes: Sequence[GateOutcome] = (),
    baseline: Optional[Mapping[str, object]] = None,
    meta: Optional[Mapping[str, object]] = None,
) -> dict:
    """Assemble the schema'd run record from section results and gates."""
    sections: Dict[str, dict] = {}
    for name, result in results.items():
        entry = result.to_json()
        if baseline is not None:
            base = baseline.get(name)
            if isinstance(base, (int, float)):
                entry["baseline_seconds"] = base
                entry["vs_baseline"] = (
                    round(result.seconds / base, 3) if base else None
                )
            else:
                # The committed baseline predates this section; the
                # wall gate fails readably and this marker tells the
                # artifact reader why (re-record with --update-baseline).
                entry["missing_from_baseline"] = True
        sections[name] = entry
    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "sections": sections,
        "gates": [o.to_json() for o in outcomes],
        "total_seconds": round(sum(r.seconds for r in results.values()), 3),
        "_meta": dict(meta) if meta is not None else host_metadata(),
    }
    if baseline is not None:
        base_total = baseline.get("total")
        if isinstance(base_total, (int, float)):
            report["baseline_total_seconds"] = base_total
        base_meta = baseline.get("_meta")
        if isinstance(base_meta, Mapping):
            report["baseline_meta"] = dict(base_meta)
    return report


def validate_report(doc: object, source: str = "report") -> dict:
    """Check a parsed document against the schema; returns it typed.

    Raises :class:`~repro.errors.ConfigError` on a wrong or missing
    ``schema_version`` and on structurally broken section entries, so a
    half-written or foreign JSON file is refused instead of misread.
    """
    if not isinstance(doc, dict):
        raise ConfigError(f"{source}: expected a JSON object, got {type(doc).__name__}")
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigError(
            f"{source}: unsupported schema_version {version!r} "
            f"(this reader understands {SCHEMA_VERSION})"
        )
    sections = doc.get("sections")
    if not isinstance(sections, dict):
        raise ConfigError(f"{source}: 'sections' must be an object")
    for name, entry in sections.items():
        if not isinstance(entry, dict) or not isinstance(
            entry.get("seconds"), (int, float)
        ):
            raise ConfigError(
                f"{source}: section {name!r} lacks a numeric 'seconds'"
            )
    if not isinstance(doc.get("gates", []), list):
        raise ConfigError(f"{source}: 'gates' must be a list")
    if not isinstance(doc.get("_meta", {}), dict):
        raise ConfigError(f"{source}: '_meta' must be an object")
    return doc


def write_report(path: pathlib.Path, report: dict) -> None:
    validate_report(report, source=str(path))
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: pathlib.Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read report {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigError(f"report {path} is not valid JSON: {exc}") from exc
    return validate_report(doc, source=str(path))
