"""Section registry: the one place benchmark workloads are declared.

A *section* is a named, tagged unit of benchmark work with an optional
untimed ``setup`` phase (construction, compilation, warmup — everything
that must not pollute the measurement) and a timed ``run`` phase that
may additionally report measured values (speedup ratios, bit-identity
booleans, overhead factors) for the declarative gates in
:mod:`repro.bench.gates` to judge.

Sections register through the :func:`section` decorator::

    @section("column-read-batched", tags=("smoke", "workload"),
             gates=(GateSpec("column-read.sparse_vs_dense", "ratio_min",
                             key="speedup_sparse_vs_dense",
                             threshold=2.0),))
    def column_read(ctx):
        ...
        return {"speedup_sparse_vs_dense": 2.4}

The runner times each section (``repeats`` measured runs after one
setup; per SNIPPETS-style derived-metrics discipline it reports the
*median* of the repeats plus the coefficient of variation, so noisy
runners are visible in the record instead of silently averaged away).
A section that raises lands in its result as ``valid=False`` with the
reason — the remaining sections still execute, because a failing run's
numbers are exactly the ones worth archiving.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.gates import GateSpec, bind_section
from repro.errors import ConfigError

SectionFn = Callable[..., Optional[Mapping[str, Any]]]
SetupFn = Callable[..., Any]


@dataclass(frozen=True)
class Section:
    """One registered benchmark section."""

    name: str
    fn: SectionFn
    tags: Tuple[str, ...] = ()
    setup: Optional[SetupFn] = None
    repeats: int = 1
    gates: Tuple[GateSpec, ...] = ()


@dataclass
class SectionResult:
    """Timing and measured values of one executed section."""

    name: str
    tags: Tuple[str, ...] = ()
    seconds: float = 0.0
    seconds_runs: Tuple[float, ...] = ()
    cv: float = 0.0
    values: Dict[str, Any] = field(default_factory=dict)
    valid: bool = True
    reason: Optional[str] = None

    def to_json(self) -> dict:
        entry: Dict[str, Any] = {
            "seconds": round(self.seconds, 3),
            "valid": self.valid,
            "tags": list(self.tags),
            "values": dict(self.values),
        }
        if len(self.seconds_runs) > 1:
            entry["seconds_runs"] = [round(s, 3) for s in self.seconds_runs]
            entry["cv"] = round(self.cv, 4)
        if self.reason is not None:
            entry["reason"] = self.reason
        return entry


class Registry:
    """An ordered collection of sections with tag/name selection."""

    def __init__(self) -> None:
        self._sections: Dict[str, Section] = {}

    def register(self, sec: Section) -> Section:
        if sec.name in self._sections:
            raise ConfigError(f"benchmark section {sec.name!r} registered twice")
        bound = Section(
            name=sec.name, fn=sec.fn, tags=tuple(sec.tags), setup=sec.setup,
            repeats=sec.repeats,
            gates=tuple(bind_section(g, sec.name) for g in sec.gates),
        )
        self._sections[sec.name] = bound
        return bound

    def section(
        self,
        name: str,
        tags: Sequence[str] = (),
        setup: Optional[SetupFn] = None,
        repeats: int = 1,
        gates: Sequence[GateSpec] = (),
    ) -> Callable[[SectionFn], SectionFn]:
        """Decorator form of :meth:`register`."""

        def deco(fn: SectionFn) -> SectionFn:
            self.register(Section(
                name=name, fn=fn, tags=tuple(tags), setup=setup,
                repeats=repeats, gates=tuple(gates),
            ))
            return fn

        return deco

    def names(self) -> List[str]:
        return list(self._sections)

    def get(self, name: str) -> Section:
        try:
            return self._sections[name]
        except KeyError:
            raise ConfigError(
                f"unknown benchmark section {name!r}; known sections: "
                + ", ".join(sorted(self._sections))
            ) from None

    def select(
        self,
        only: Optional[Sequence[str]] = None,
        tags: Optional[Sequence[str]] = None,
    ) -> List[Section]:
        """Sections in registration order, filtered by tags then names.

        ``tags`` keeps sections carrying *any* of the given tags;
        ``only`` keeps the named sections (unknown names are a
        :class:`~repro.errors.ConfigError` listing what exists).
        """
        if only:
            for name in only:
                self.get(name)  # raise readably on unknown names
        chosen = list(self._sections.values())
        if tags:
            wanted = set(tags)
            chosen = [s for s in chosen if wanted.intersection(s.tags)]
        if only:
            keep = set(only)
            chosen = [s for s in chosen if s.name in keep]
        return chosen

    def gates_for(self, sections: Sequence[Section]) -> List[GateSpec]:
        return [g for s in sections for g in s.gates]


def run_section(
    sec: Section,
    params: Optional[Mapping[str, Any]] = None,
    repeats: Optional[int] = None,
    echo: Callable[[str], None] = print,
) -> SectionResult:
    """Execute one section: untimed setup, then ``repeats`` timed runs.

    The reported ``seconds`` is the median of the measured runs; ``cv``
    is the coefficient of variation across them (0.0 for a single run).
    Measured values come from the last run.  Exceptions (a broken
    workload, a failed equality check) invalidate the section instead of
    aborting the suite.
    """
    kwargs = dict(params or {})
    n_runs = max(1, sec.repeats if repeats is None else repeats)
    runs: List[float] = []
    values: Dict[str, Any] = {}
    try:
        ctx = sec.setup(**kwargs) if sec.setup is not None else None
        for _ in range(n_runs):
            t0 = time.perf_counter()
            out = sec.fn(ctx, **kwargs)
            runs.append(time.perf_counter() - t0)
            if out:
                values = dict(out)
    except Exception as exc:  # noqa: BLE001 — archived as the failure reason
        reason = f"{type(exc).__name__}: {exc}"
        echo(f"  [{sec.name}] FAILED: {reason}")
        return SectionResult(
            name=sec.name, tags=sec.tags,
            seconds=sum(runs), seconds_runs=tuple(runs),
            values=values, valid=False, reason=reason,
        )
    med = statistics.median(runs)
    mean = statistics.fmean(runs)
    cv = (statistics.pstdev(runs) / mean) if (len(runs) > 1 and mean > 0) else 0.0
    return SectionResult(
        name=sec.name, tags=sec.tags, seconds=med,
        seconds_runs=tuple(runs), cv=cv, values=values,
    )


def run_sections(
    sections: Sequence[Section],
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    repeats: Optional[int] = None,
    echo: Callable[[str], None] = print,
) -> Dict[str, SectionResult]:
    """Run sections in order; returns ``{name: SectionResult}``.

    ``overrides`` maps section name to keyword parameters for that
    section's setup/run pair (the back-compat shims use this to forward
    their historical CLI flags).
    """
    results: Dict[str, SectionResult] = {}
    overrides = overrides or {}
    for sec in sections:
        result = run_section(
            sec, params=overrides.get(sec.name), repeats=repeats, echo=echo
        )
        results[sec.name] = result
        echo(f"{sec.name:24s}: {result.seconds:7.2f} s"
             + (f"  (cv {result.cv:.3f})" if len(result.seconds_runs) > 1 else "")
             + ("" if result.valid else "  [FAILED]"))
    total = sum(r.seconds for r in results.values())
    echo(f"{'total':24s}: {total:7.2f} s")
    return results


#: The default registry every section module registers into.
REGISTRY = Registry()

#: Module-level decorator bound to :data:`REGISTRY`.
section = REGISTRY.section
