"""The smoke mix: wall-clock-gated sections over every hot path.

Ported from the historical ``benchmarks/smoke.py`` driver.  Each
section's body is the same measured work it always was — the committed
``smoke_baseline.json`` stays valid — but the acceptance thresholds the
bodies used to assert imperatively now live in each section's
:class:`~repro.bench.gates.GateSpec` table: the section *measures*
(speedups, bit-identity, cache behaviour) and the gate layer *judges*.
Every section also carries a ``wall.<name>`` gate against the committed
per-section baseline (factor x, with the min-section noise floor).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.gates import DEFAULT_WALL_FACTOR, GateSpec
from repro.bench.registry import section


def _wall(name: str) -> GateSpec:
    return GateSpec(
        gate_id=f"wall.{name}", kind="wall_factor",
        threshold=DEFAULT_WALL_FACTOR,
        description="section wall-clock vs committed baseline",
    )


@section("streaming-core", tags=("smoke", "engine"),
         gates=(_wall("streaming-core"),))
def streaming_core(ctx):
    """Accumulator hot loop: many cheap batches, estimate every batch."""
    from repro.highsigma.analytic import LinearLimitState
    from repro.highsigma.estimators import MeanShiftISCore

    ls = LinearLimitState(beta=4.0, dim=8)
    core = MeanShiftISCore(
        ls, shifts=[4.0 * ls.a], n_max=64 * 1500, batch_size=64,
        target_rel_err=None,
    )
    core.run(np.random.default_rng(0), method="smoke")


@section("gis-6t-engine", tags=("smoke", "engine"),
         gates=(_wall("gis-6t-engine"),))
def gis_engine(ctx):
    """Gradient IS end-to-end on the real batched 6T read engine."""
    from repro.experiments.workloads import make_read_limitstate
    from repro.highsigma.gis import GradientImportanceSampling

    # Fixed spec (~4 sigma for the default design at n_steps=300): the
    # smoke run must not pay for a calibration sweep every time.
    ls = make_read_limitstate(4.995e-11, n_steps=300)
    gis = GradientImportanceSampling(ls, n_max=2000, target_rel_err=None)
    gis.run(np.random.default_rng(1))


@section("sharded-plan", tags=("smoke", "engine"),
         gates=(_wall("sharded-plan"),))
def sharded_plan(ctx):
    """A pinned 4-shard plan executed in-process (plan overhead path)."""
    from repro.highsigma.analytic import LinearLimitState
    from repro.highsigma.estimators import MeanShiftISCore

    ls = LinearLimitState(beta=4.0, dim=8)
    core = MeanShiftISCore(
        ls, shifts=[4.0 * ls.a], n_max=40000, batch_size=1024,
        target_rel_err=None, workers=1, n_shards=4,
    )
    core.run(np.random.default_rng(2), method="smoke")


@section(
    "system-read-batched", tags=("smoke", "workload"),
    gates=(
        _wall("system-read-batched"),
        GateSpec("system-read.batched_vs_scalar", "ratio_min",
                 key="speedup_batched_vs_scalar", threshold=2.0,
                 description="compiled bulk g_batch vs scalar per-sample loop"),
        GateSpec("system-read.batched_matches_scalar", "bool_true",
                 key="batched_matches_scalar",
                 description="bulk block agrees with the scalar loop (rtol 1e-9)"),
    ),
)
def system_read_batched(ctx):
    """Batched system-level read (ten axes, compiled fast path).

    Measures the point of the batched path: evaluating the block
    through ``g_batch`` against the scalar per-sample loop over the
    same samples (2x floor gated by ``system-read.batched_vs_scalar``).
    """
    from repro.experiments.workloads import make_system_read_limitstate

    ls = make_system_read_limitstate(6e-11, n_steps=300)
    rng = np.random.default_rng(3)
    u = rng.normal(0.0, 1.0, size=(1024, 10))
    t0 = time.perf_counter()
    g_batched = ls.g_batch(u)
    t_batched = time.perf_counter() - t0

    # Scalar per-sample loop on a subset (the full block would dominate
    # the smoke budget — exactly the point being made).
    n_scalar = 32
    t0 = time.perf_counter()
    g_scalar = np.array([ls.g(row) for row in u[:n_scalar]])
    t_scalar_per = (time.perf_counter() - t0) / n_scalar
    matches = bool(np.allclose(g_batched[:n_scalar], g_scalar, rtol=1e-9))

    speedup = t_scalar_per * u.shape[0] / t_batched
    return {
        "speedup_batched_vs_scalar": round(speedup, 2),
        "batched_matches_scalar": matches,
    }


@section(
    "column-read-batched", tags=("smoke", "workload"),
    gates=(
        _wall("column-read-batched"),
        GateSpec("column-read.sparse_vs_dense", "ratio_min",
                 key="speedup_sparse_vs_dense", threshold=2.0,
                 description="sparse scatter-stamp assembly vs dense cross-check"),
        GateSpec("column-read.sparse_bit_equal_dense", "bool_true",
                 key="sparse_bit_equal_dense",
                 description="stamp-determinism invariant for this BLAS build"),
    ),
)
def column_read_batched(ctx):
    """Bulk sampling on the 34-node read column (96 variation axes).

    Times one bulk block through the sparse-assembly compiled column
    and through the dense-assembly cross-check at the same sample count
    (min of two timed runs per path, so timer noise on a loaded runner
    cannot trip the gate spuriously).  The bit-equality leg pins the
    stamp-determinism invariant for *this* BLAS build (the scatter
    rounds replay dgemm's ascending-k reduction; see the
    `_SPARSE_MIN_BATCH` note in repro.spice.compile) — a numpy linked
    against a BLAS with a different reduction order fails the
    ``column-read.sparse_bit_equal_dense`` gate by design, flagging
    that the invariant needs re-validating rather than hiding it.
    """
    from repro.experiments.workloads import make_column_read_limitstate

    n = 128
    rng = np.random.default_rng(4)
    u = rng.normal(0.0, 1.0, size=(n, 96))
    times, vals = {}, {}
    for asm in ("sparse", "dense"):
        ls = make_column_read_limitstate(6e-11, n_steps=300, assembly=asm)
        ls.g_batch(u[:4])  # compile outside the timed region
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            vals[asm] = ls.g_batch(u)
            best = min(best, time.perf_counter() - t0)
        times[asm] = best
    return {
        "speedup_sparse_vs_dense": round(times["dense"] / times["sparse"], 2),
        "sparse_bit_equal_dense": bool(
            np.array_equal(vals["sparse"], vals["dense"])
        ),
    }


@section(
    "array-read-batched", tags=("smoke", "workload"),
    gates=(
        _wall("array-read-batched"),
        GateSpec("array-read.schur_vs_blocked", "ratio_min",
                 key="speedup_schur_vs_blocked", threshold=1.5,
                 description="per-column Schur peel vs guarded blocked elimination"),
        GateSpec("array-read.schur_matches_blocked", "ratio_max",
                 key="schur_vs_blocked_rel_diff", threshold=1e-6,
                 description="solver choice must not move the converged metric"),
        GateSpec("array-read.sparse_bit_equal_dense", "bool_true",
                 key="sparse_bit_equal_dense",
                 description="stamp determinism at array scale"),
    ),
)
def array_read_batched(ctx):
    """Bulk sampling on a 2-column array slice behind the shared mux.

    The slice (2 columns x 8 cells: 38 unknowns) exercises the
    generalized Schur peel — per-column cell pairs against a border of
    all four bitlines, the mux data lines as interior singletons.  It
    measures the peel against the generic guarded blocked elimination
    (``solver="blocked"``, the permanent cross-check; gated at 1.5x —
    the margin on the baseline container is ~3-4x and grows with the
    column count, since the peel is linear in node count where the
    elimination is cubic), the solver agreement (tolerance, not
    bit-equality — that contract belongs to the assembly axis), and
    the sparse-vs-dense bit-equality at array scale.
    """
    from repro.experiments.workloads import make_array_read_limitstate

    n = 48
    n_cols, n_leakers = 2, 7
    rng = np.random.default_rng(5)
    u = rng.normal(0.0, 1.0, size=(n, 6 * n_cols * (n_leakers + 1)))

    times, vals = {}, {}
    for solver in ("schur", "blocked"):
        ls = make_array_read_limitstate(
            6e-11, n_cols=n_cols, n_leakers=n_leakers, n_steps=240,
            solver=solver,
        )
        ls.g_batch(u[:4])  # compile outside the timed region
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            vals[solver] = ls.g_batch(u)
            best = min(best, time.perf_counter() - t0)
        times[solver] = best
    rel_diff = float(np.max(
        np.abs(vals["schur"] - vals["blocked"]) / np.abs(vals["blocked"])
    ))

    ls_dense = make_array_read_limitstate(
        6e-11, n_cols=n_cols, n_leakers=n_leakers, n_steps=240,
        assembly="dense",
    )
    g_dense = ls_dense.g_batch(u)
    return {
        "speedup_schur_vs_blocked": round(times["blocked"] / times["schur"], 2),
        "schur_vs_blocked_rel_diff": rel_diff,
        "sparse_bit_equal_dense": bool(np.array_equal(g_dense, vals["schur"])),
    }


@section(
    "plan-cache", tags=("smoke", "plan-cache"),
    gates=(
        _wall("plan-cache"),
        GateSpec("plan-cache.warm_vs_cold", "ratio_min",
                 key="speedup_cached_vs_cold", threshold=2.0,
                 description="warm content-addressed hit vs cold compile"),
        GateSpec("plan-cache.mem_tier_served", "bool_true",
                 key="mem_tier_served",
                 description="the in-process tier served every warm key"),
        GateSpec("plan-cache.disk_tier_served", "bool_true",
                 key="disk_tier_served",
                 description="a fresh process loads the audited disk entry"),
        GateSpec("plan-cache.spawn_vs_fork", "ratio_max",
                 key="spawn_vs_fork", threshold=1.5,
                 description="spawn pool (plan deserialization) vs fork pool"),
        GateSpec("plan-cache.spawn_bit_identical", "bool_true",
                 key="spawn_bit_identical",
                 description="spawn-pool estimate exactly equals the fork pool's"),
        GateSpec("plan-cache.pools_ran_native", "bool_true",
                 key="pools_ran_native",
                 description="neither pool fell back to in-process execution"),
    ),
)
def plan_cache(ctx):
    """Serialized-plan setup and spawn-pool execution measurements.

    Measures the plan-serialization layer's two contracts: a warm
    content-addressed cache hit rebuilding the 2-column array bench
    against a cold compile (compile-once contract, 2x floor), and an
    array-sigma run sharded over a persistent *spawn* pool — whose
    workers deserialize the shipped plan instead of recompiling —
    against the fork pool end-to-end (1.5x ceiling, bit-identical
    estimate, with the runner confirming the spawn path actually
    executed).  The audited disk-tier restore time is reported as
    information, not gated: a cross-process load pays the full plan
    audit by design (admission control, not a fast path).
    """
    import tempfile

    from repro.sram.benches import bench_compiled
    from repro.spice.compile import CompiledTransient
    from repro.spice.plan import PlanCache, compile_cached

    ct = bench_compiled("array", n_cols=2, n_leakers=7, n_steps=240)
    circuit, grid = ct.circuit, ct.grid
    probes = (*ct._cross_probes, *ct._peak_probes, *ct._value_probes)

    t_cold = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        CompiledTransient(circuit, grid=grid, probes=probes)
        t_cold = min(t_cold, time.perf_counter() - t0)

    cache = PlanCache()
    compile_cached(circuit, grid, probes=probes, cache=cache)  # prime
    t_hit = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        compile_cached(circuit, grid, probes=probes, cache=cache)
        t_hit = min(t_hit, time.perf_counter() - t0)

    with tempfile.TemporaryDirectory() as tmp:
        compile_cached(
            circuit, grid, probes=probes, cache=PlanCache(cache_dir=tmp)
        )
        reader = PlanCache(cache_dir=tmp)
        t0 = time.perf_counter()
        compile_cached(circuit, grid, probes=probes, cache=reader)
        t_disk = time.perf_counter() - t0
        disk_served = reader.stats["disk_hits"] == 1

    from repro.engine.sharding import ShardedRunner
    from repro.experiments.workloads import make_array_read_limitstate
    from repro.highsigma.gis import GradientImportanceSampling

    est, wall = {}, {}
    ran_native = True
    for method in ("fork", "spawn"):
        ls = make_array_read_limitstate(6e-11, n_cols=2, n_leakers=7, n_steps=240)
        runner = ShardedRunner(workers=2, persistent=True, start_method=method)
        t0 = time.perf_counter()
        gis = GradientImportanceSampling(
            ls, n_max=600, target_rel_err=None, workers=2, n_shards=2,
            runner=runner,
        )
        result = gis.run(np.random.default_rng(6))
        runner.close()
        wall[method] = time.perf_counter() - t0
        est[method] = result.p_fail
        ran_native &= runner.last_mode == method
    return {
        "speedup_cached_vs_cold": round(t_cold / t_hit, 2),
        "cold_compile_s": round(t_cold, 4),
        "cache_hit_s": round(t_hit, 5),
        "disk_restore_s": round(t_disk, 4),
        "mem_tier_served": bool(cache.stats["mem_hits"] >= 3),
        "disk_tier_served": bool(disk_served),
        "spawn_vs_fork": round(wall["spawn"] / wall["fork"], 3),
        "spawn_bit_identical": bool(est["spawn"] == est["fork"]),
        "pools_ran_native": bool(ran_native),
    }
