"""Fault-tolerance recovery overhead (the old ``bench_chaos.py``).

One pinned shard plan three ways — fault-free baseline, under an
injected fault schedule (transient exception + worker kill + NaN
corruption, each recovered by the retry policy), and journaled-then-
resumed.  The engine's recovery contract is the gated value: every
variant must merge **bit-identical** to the fault-free run.  The
recovery cost (wall-clock vs baseline) and the fault counters are
reported for the trajectory.

On a platform without the fork start method the chaos leg cannot run;
its values stay unmeasured and the ``chaos.faulted_bit_identical``
gate skips (``skip_if_missing``) instead of failing.  On a 1-CPU
container the pooled runs measure fork and respawn overhead, not
parallel speedup — the core count in the host ``_meta`` keeps the
numbers readable in context.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.bench.gates import GateSpec
from repro.bench.registry import section


def _run_variant(runner, seed):
    from repro.highsigma.analytic import LinearLimitState
    from repro.highsigma.estimators import MeanShiftISCore

    ls = LinearLimitState(beta=4.0, dim=6)
    core = MeanShiftISCore(
        ls, shifts=[4.0 * ls.a], n_max=8192, batch_size=256,
        target_rel_err=None, workers=2, n_shards=4, runner=runner,
    )
    t0 = time.perf_counter()
    res = core.run(np.random.default_rng(seed), method="bench")
    return res, time.perf_counter() - t0


@section(
    "chaos-recovery", tags=("chaos",),
    gates=(
        GateSpec("chaos.faulted_bit_identical", "bool_true",
                 key="chaos_bit_identical", skip_if_missing=True,
                 description="raise+kill+NaN faults recovered bit-identically"),
        GateSpec("chaos.resumed_bit_identical", "bool_true",
                 key="journal_bit_identical",
                 description="journal resume replays bit-identically"),
    ),
)
def chaos_recovery(ctx, seed=17):
    """Baseline vs chaos-schedule vs journal write+resume, one plan."""
    from repro.engine.chaos import FaultSpec, reject_non_finite
    from repro.engine.journal import RunJournal
    from repro.engine.sharding import RetryPolicy, ShardedRunner, fork_available

    values = {"fork_available": bool(fork_available())}

    # Fault-free baseline (workers=1: the reference statistics).
    base, wall_base = _run_variant(None, seed)
    values["baseline_wall_s"] = round(wall_base, 4)

    # Chaos: every recovery path in one run.
    if fork_available():
        runner = ShardedRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=4, validate=reject_non_finite),
            chaos=[
                FaultSpec("raise", shard=0),
                FaultSpec("kill", shard=1),
                FaultSpec("nan", shard=2),
            ],
        )
        chaos, wall_chaos = _run_variant(runner, seed)
        runner.close()
        values.update({
            "chaos_wall_s": round(wall_chaos, 4),
            "chaos_overhead_vs_baseline": round(wall_chaos / wall_base, 3),
            "chaos_bit_identical": bool(
                chaos.p_fail == base.p_fail and chaos.std_err == base.std_err
            ),
            "retries": int(runner.fault_stats["retries"]),
            "worker_deaths": int(runner.fault_stats["worker_deaths"]),
        })

    # Journal write + resume replay.
    fd, journal_path = tempfile.mkstemp(suffix=".journal", prefix="bench_chaos_")
    os.close(fd)
    os.remove(journal_path)  # RunJournal owns creation
    try:
        with RunJournal(journal_path) as journal:
            runner = ShardedRunner(workers=1, journal=journal)
            _, wall_write = _run_variant(runner, seed)
        with RunJournal(journal_path, resume=True) as journal:
            runner = ShardedRunner(workers=1, journal=journal)
            resumed, wall_resume = _run_variant(runner, seed)
        replayed = int(runner.fault_stats["replayed"])
    finally:
        if os.path.exists(journal_path):
            os.remove(journal_path)
    values.update({
        "journal_write_wall_s": round(wall_write, 4),
        "journal_resume_wall_s": round(wall_resume, 4),
        "journal_write_overhead_vs_baseline": round(wall_write / wall_base, 3),
        "replayed_shards": replayed,
        "journal_bit_identical": bool(
            resumed.p_fail == base.p_fail and resumed.std_err == base.std_err
        ),
    })
    return values
