"""Service sections: the job server measured through its own front door.

Everything goes through the in-process
:class:`~repro.service.app.ServiceClient` — the same envelopes and
status codes the socket adapter serves, minus transport cost — so the
gates pin service *behaviour* (single-flight compilation, bit-identity
with the facade, completion under a concurrent burst) rather than
socket throughput, which would gate the container's network stack.

No ``wall_factor`` gates here: the section is new, so it carries
absolute ratio/bool gates instead of a committed-baseline comparison
(the report still records wall time for the trajectory check to watch).
"""

from __future__ import annotations

import time

from repro.bench.gates import GateSpec
from repro.bench.registry import section


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


@section(
    "service-burst", tags=("service",),
    gates=(
        GateSpec("service.all_completed", "bool_true",
                 key="all_completed",
                 description="every job in the burst settled as done"),
        GateSpec("service.qps_floor", "ratio_min",
                 key="qps", threshold=5.0,
                 description="completed analytic jobs per second through the "
                             "full submit/poll lifecycle (conservative floor; "
                             "the in-process path runs hundreds)"),
        GateSpec("service.matches_api", "bool_true",
                 key="service_matches_api",
                 description="served result bit-identical to repro.api.estimate()"),
    ),
)
def service_burst(ctx):
    """A concurrent burst of cheap analytic jobs: lifecycle + QPS.

    32 submissions race onto a 4-worker budget; the section measures
    completed-jobs-per-second (submit through settled poll, p50/p90
    reported) and checks one of the served results bit-identically
    matches the direct facade call for the same request.
    """
    from repro import api
    from repro.service import ServiceApp, ServiceClient

    app = ServiceApp(workers_total=4, queue_limit=128)
    client = ServiceClient(app)
    try:
        n_jobs = 32
        requests = [
            api.EstimateRequest(
                workload="analytic-linear", spec=4.0, budget=2000,
                seed=seed, n_shards=2,
            )
            for seed in range(n_jobs)
        ]
        latencies = []
        t0 = time.perf_counter()
        envelopes = [client.submit(r) for r in requests]
        finals = []
        for envelope in envelopes:
            final = client.wait(envelope["job_id"], timeout=120.0)
            finals.append(final)
            latencies.append(final["finished_s"] - final["submitted_s"])
        wall = time.perf_counter() - t0

        all_done = all(f["status"] == "done" for f in finals)
        direct = api.estimate(requests[0])
        served = api.EstimateResult.from_json(finals[0]["result"])
        latencies.sort()
        return {
            "n_jobs": n_jobs,
            "qps": round(n_jobs / wall, 2),
            "latency_p50_s": round(_percentile(latencies, 0.50), 5),
            "latency_p90_s": round(_percentile(latencies, 0.90), 5),
            "all_completed": bool(all_done),
            "service_matches_api": bool(served.identical_to(direct)),
        }
    finally:
        app.close(drain=True)


@section(
    "service-compile-once", tags=("service", "plan-cache"),
    gates=(
        GateSpec("service.one_plan_cache_miss", "bool_true",
                 key="one_plan_cache_miss",
                 description="N concurrent identical submissions compile once "
                             "(single-flight through the shared plan cache)"),
        GateSpec("service.identical_across_jobs", "bool_true",
                 key="identical_across_jobs",
                 description="all jobs of the burst return the same estimate"),
        GateSpec("service.warm_vs_cold_submit", "ratio_min",
                 key="cold_vs_warm_prepare", threshold=1.08,
                 description="cold (compiling) vs warm prepare-phase latency "
                             "per job — the cache must actually shorten the "
                             "submit-to-sampling path, not just count hits"),
    ),
)
def service_compile_once(ctx):
    """Concurrent SRAM submissions share one compiled plan.

    Four identical array-slice jobs (the heaviest real compile: a 4x16
    array is ~0.4 s to compile against a ~1.7 s warmup transient) land
    at once on a fresh plan cache.  The executor's single-flight
    compile lock must produce exactly one cache miss, every job the
    same bit-identical estimate, and the cold job's measured
    prepare phase (``prepare_s``: compile + warmup, lock wait excluded)
    visibly longer than the warm jobs' (cache hit + warmup).  Monte
    Carlo with a one-batch budget keeps the sampling phase out of the
    measurement — this section gates the compile path, the sampler has
    its own sections.
    """
    from repro import api
    from repro.service import ServiceApp, ServiceClient
    from repro.spice.plan import default_plan_cache, reset_default_plan_cache

    reset_default_plan_cache()
    app = ServiceApp(workers_total=2)
    client = ServiceClient(app)
    try:
        request = api.EstimateRequest(
            workload="array-read", spec=6e-11, method="mc", seed=7,
            budget=16, rel_err=None,
            knobs={"n_cols": 4, "n_leakers": 15, "n_steps": 240},
        )
        t0 = time.perf_counter()
        envelopes = [client.submit(request) for _ in range(4)]
        finals = [client.wait(e["job_id"], timeout=600.0) for e in envelopes]
        wall = time.perf_counter() - t0

        stats = dict(default_plan_cache().stats)
        p_fails = {f["result"]["p_fail"] for f in finals if f["status"] == "done"}
        prepares = sorted(
            f["prepare_s"] for f in finals if f["status"] == "done"
        )
        cold, warm = prepares[-1], prepares[0]
        return {
            "burst_wall_s": round(wall, 3),
            "plan_cache": stats,
            "one_plan_cache_miss": bool(
                stats["misses"] == 1
                and len(finals) == 4
                and all(f["status"] == "done" for f in finals)
            ),
            "identical_across_jobs": bool(len(p_fails) == 1),
            "cold_prepare_s": round(cold, 4),
            "warm_prepare_s": round(warm, 4),
            "cold_vs_warm_prepare": round(cold / warm, 3) if warm > 0 else 0.0,
        }
    finally:
        app.close(drain=True)
        reset_default_plan_cache()
