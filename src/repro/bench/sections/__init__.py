"""Registered benchmark sections.

Importing this package registers every section (and its gates) into
:data:`repro.bench.registry.REGISTRY`:

* :mod:`repro.bench.sections.smoke` — the wall-clock-gated smoke mix
  (tag ``smoke``): accumulator loop, 6T engine, shard-plan overhead,
  the three compiled bulk workloads, the plan cache.
* :mod:`repro.bench.sections.kernel` — fast-vs-reference throughput
  sweeps (tag ``kernel``) over the 6T engine, the compiled latch and
  the compiled array slice.
* :mod:`repro.bench.sections.sharding` — the sharded-engine
  determinism/speedup run (tag ``sharding``).
* :mod:`repro.bench.sections.chaos` — fault-injection and journal
  recovery with the bit-identity gates (tag ``chaos``).
* :mod:`repro.bench.sections.service` — the job service measured
  through its in-process client (tag ``service``): burst QPS/latency,
  facade bit-identity, single-flight compilation.
"""

from repro.bench.sections import chaos, kernel, service, sharding, smoke  # noqa: F401
