"""Sharded-engine determinism and speedup (the old ``bench_sharding.py``).

Runs the F1-style gradient-IS workload (read-access limit state on the
batched 6T engine) three ways with one pinned shard plan:

* serial baseline  — ``workers=1, n_shards=1`` (the classic loop);
* sharded, 1 proc  — ``workers=1, n_shards=W`` (plan overhead only);
* sharded, W procs — ``workers=W, n_shards=W`` (the parallel path).

The gated value is the engine's determinism contract: the two sharded
runs must be bit-identical (estimates depend on the shard plan, never
on ``workers``).  The parallel speedup is *reported*, never gated — on
a 1-CPU container the pooled run measures fork overhead and nothing
else, so the core count travels with the record instead of letting a
1-core number read as a regression.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench.gates import GateSpec
from repro.bench.registry import section


def _run_gis(make_ls, seed, n_max, workers, n_shards):
    from repro.highsigma.gis import GradientImportanceSampling

    ls = make_ls()
    gis = GradientImportanceSampling(
        ls, n_max=n_max, target_rel_err=None, batch_size=256,
        workers=workers, n_shards=n_shards,
    )
    t0 = time.perf_counter()
    res = gis.run(np.random.default_rng(seed))
    return res, time.perf_counter() - t0, ls.n_evals


@section(
    "sharding-determinism", tags=("sharding", "engine"),
    gates=(
        GateSpec("sharding.bit_identical_across_workers", "bool_true",
                 key="bit_identical",
                 description="estimates depend on the shard plan, never workers"),
    ),
)
def sharding_determinism(ctx, workers=4, n_max=4000, n_steps=300, seed=0):
    """Serial vs sharded-1-proc vs sharded-W-procs on one pinned plan."""
    from repro.experiments.workloads import (
        calibrate_read_spec,
        make_read_limitstate,
    )

    cores = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else os.cpu_count()
    )
    # A fixed spec near the 4-sigma point of the default design: accuracy
    # is irrelevant here, only that per-batch work is real engine work.
    spec = calibrate_read_spec(sigma_target=4.0, n_steps=n_steps)

    def make_ls():
        return make_read_limitstate(spec, n_steps=n_steps)

    serial, t_serial, _ = _run_gis(make_ls, seed, n_max, 1, 1)
    plan1, t_plan1, evals1 = _run_gis(make_ls, seed, n_max, 1, workers)
    planw, t_planw, evalsw = _run_gis(make_ls, seed, n_max, workers, workers)

    identical = bool(
        plan1.p_fail == planw.p_fail
        and plan1.std_err == planw.std_err
        and plan1.n_evals == planw.n_evals
        and evals1 == evalsw
    )
    return {
        "cores": int(cores or 0),
        "workers": workers,
        "serial_wall_s": round(t_serial, 3),
        "sharded_1proc_wall_s": round(t_plan1, 3),
        "sharded_pool_wall_s": round(t_planw, 3),
        "p_fail_serial": float(serial.p_fail),
        "p_fail_sharded": float(planw.p_fail),
        "bit_identical": identical,
        "speedup_pool_vs_1proc": round(
            t_plan1 / t_planw if t_planw > 0 else float("nan"), 3
        ),
    }
