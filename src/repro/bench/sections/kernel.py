"""Fast-vs-reference throughput sweeps (the old ``bench_kernel.py``).

Three sections, one per compiled-circuit family, each with the same
contract: the fused fast kernel must be at least as fast as the
per-device reference integrator on identical inputs (``ratio_min``
1.0) and must agree with it on the metrics (``ratio_max`` 1e-6, plus
bit-equal latch decisions).  A compiler regression therefore cannot
hide behind the 6T specialisation — the latch and the multi-column
array slice (sparse assembly + per-column Schur peel on the fused
path) run the same sweep.

Engine construction and inputs live in each section's ``setup`` so the
measured phase times kernels, not compilation.
"""

from __future__ import annotations

import time
from types import SimpleNamespace

import numpy as np

from repro.bench.gates import GateSpec
from repro.bench.registry import section


def _best_of(fn, repeat):
    """(best wall seconds, last result) over ``repeat`` calls."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _setup_6t(n=512, n_steps=300, sigma_vth=0.03, repeat=2):
    from repro.sram.batched import Batched6T

    rng = np.random.default_rng(42)
    return SimpleNamespace(
        dvth=rng.normal(0.0, sigma_vth, size=(n, 6)),
        bmult=1.0 + rng.normal(0.0, 0.05, size=(n, 6)),
        engines={
            "reference": Batched6T(n_steps=n_steps, kernel="reference"),
            "fast": Batched6T(n_steps=n_steps, kernel="fast", retire=False),
            "fast_retire": Batched6T(n_steps=n_steps, kernel="fast", retire=True),
        },
    )


@section(
    "kernel-6t", tags=("kernel",), setup=_setup_6t,
    gates=(
        GateSpec("kernel-6t.read_fast_vs_reference", "ratio_min",
                 key="read_fast_vs_reference", threshold=1.0,
                 description="fused read kernel vs per-device reference"),
        GateSpec("kernel-6t.write_fast_vs_reference", "ratio_min",
                 key="write_fast_vs_reference", threshold=1.0,
                 description="fused write kernel vs per-device reference"),
        GateSpec("kernel-6t.read_fast_metric_agrees", "ratio_max",
                 key="read_fast_rel_metric_diff", threshold=1e-6),
        GateSpec("kernel-6t.read_fast_retire_metric_agrees", "ratio_max",
                 key="read_fast_retire_rel_metric_diff", threshold=1e-6),
        GateSpec("kernel-6t.write_fast_metric_agrees", "ratio_max",
                 key="write_fast_rel_metric_diff", threshold=1e-6),
        GateSpec("kernel-6t.write_fast_retire_metric_agrees", "ratio_max",
                 key="write_fast_retire_rel_metric_diff", threshold=1e-6),
    ),
)
def kernel_6t(ctx, n=512, n_steps=300, sigma_vth=0.03, repeat=2):
    """Read and write batches through the three 6T engine variants."""
    values = {}
    for mode in ("read", "write"):
        results = {}
        for name, eng in ctx.engines.items():
            op = eng.read if mode == "read" else eng.write
            best, results[name] = _best_of(
                lambda op=op: op(ctx.dvth, ctx.bmult), repeat
            )
            values[f"{mode}_{name}_samples_per_s"] = round(n / best, 1)
        ref = results["reference"].metric
        for name in ("fast", "fast_retire"):
            rel = float(np.max(np.abs(results[name].metric - ref) / np.abs(ref)))
            values[f"{mode}_{name}_rel_metric_diff"] = rel
        values[f"{mode}_fast_vs_reference"] = round(
            values[f"{mode}_fast_samples_per_s"]
            / values[f"{mode}_reference_samples_per_s"], 3
        )
    return values


def _setup_latch(n=512, repeat=2):
    from repro.sram.senseamp import SenseAmp

    rng = np.random.default_rng(43)
    return SimpleNamespace(
        sense=SenseAmp(),
        dvt=rng.normal(0.0, 0.02, size=(n, 4)),
        dv=rng.uniform(-0.15, 0.15, size=n),
    )


@section(
    "kernel-latch", tags=("kernel",), setup=_setup_latch,
    gates=(
        GateSpec("kernel-latch.fast_vs_reference", "ratio_min",
                 key="fast_vs_reference", threshold=1.0,
                 description="fused compiled latch vs its reference kernel"),
        GateSpec("kernel-latch.decisions_equal", "bool_true",
                 key="decisions_equal",
                 description="latch decisions bit-equal across kernels"),
        GateSpec("kernel-latch.times_agree", "ratio_max",
                 key="rel_time_diff", threshold=1e-6),
    ),
)
def kernel_latch(ctx, n=512, repeat=2):
    """The compiled non-6T circuit: the sense-amp latch (solve3 path)."""
    results, rates = {}, {}
    for name in ("reference", "fast"):
        best, results[name] = _best_of(
            lambda name=name: ctx.sense.resolve_batch(
                ctx.dv, ctx.dvt, kernel=name
            ), repeat,
        )
        rates[name] = n / best
    c_ref, t_ref = results["reference"]
    c_fast, t_fast = results["fast"]
    decisions_equal = bool(
        (c_fast == c_ref).all()
        and (np.isfinite(t_fast) == np.isfinite(t_ref)).all()
    )
    finite = np.isfinite(t_ref) & np.isfinite(t_fast)
    rel = float(np.max(
        np.abs(t_fast[finite] - t_ref[finite]) / t_ref[finite]
    )) if finite.any() else 0.0
    return {
        "reference_samples_per_s": round(rates["reference"], 1),
        "fast_samples_per_s": round(rates["fast"], 1),
        "fast_vs_reference": round(rates["fast"] / rates["reference"], 3),
        "decisions_equal": decisions_equal,
        "rel_time_diff": rel,
    }


def _setup_array(n=128, n_steps=300, repeat=2):
    from repro.sram.array import ArrayConfig, ArraySlice

    arr = ArraySlice(config=ArrayConfig(n_cols=2, n_leakers=3))
    n_arr = min(n, 128)  # the reference path is per-device Python
    rng = np.random.default_rng(44)
    dvt = rng.normal(0.0, 0.03, size=(n_arr, arr.n_variation_devices))
    for name in ("reference", "fast"):  # compile outside the timed region
        arr.access_times_batch(dvt[:2], n_steps=n_steps, kernel=name)
    return SimpleNamespace(arr=arr, dvt=dvt, n_arr=n_arr)


@section(
    "kernel-array", tags=("kernel",), setup=_setup_array,
    gates=(
        GateSpec("kernel-array.fast_vs_reference", "ratio_min",
                 key="fast_vs_reference", threshold=1.0,
                 description="fused compiled array slice vs reference kernel"),
        GateSpec("kernel-array.metrics_agree", "ratio_max",
                 key="rel_metric_diff", threshold=1e-6),
    ),
)
def kernel_array(ctx, n=128, n_steps=300, repeat=2):
    """2 columns behind the shared mux: sparse assembly + Schur peel."""
    results, rates = {}, {}
    for name in ("reference", "fast"):
        best, results[name] = _best_of(
            lambda name=name: ctx.arr.access_times_batch(
                ctx.dvt, n_steps=n_steps, kernel=name
            ), repeat,
        )
        rates[name] = ctx.n_arr / best
    rel = float(np.max(
        np.abs(results["fast"] - results["reference"])
        / np.abs(results["reference"])
    ))
    return {
        "reference_samples_per_s": round(rates["reference"], 1),
        "fast_samples_per_s": round(rates["fast"], 1),
        "fast_vs_reference": round(rates["fast"] / rates["reference"], 3),
        "rel_metric_diff": rel,
    }
