"""The committed cross-PR performance trajectory — and its gate.

``benchmarks/results/trajectory.json`` accumulates one compact entry
per ``--check`` run (per-section seconds, measured values, failed
gates, host ``_meta``, optional commit sha), so the performance history
survives in the repository instead of evaporating with each CI runner.

Two fixes over the historical append-only behaviour:

* **Dedup by commit.**  Re-running ``--check`` on the same
  ``GITHUB_SHA`` *replaces* that sha's entry instead of double-
  appending it, so CI re-runs cannot inflate the history.
* **Bounded window.**  The committed file keeps the most recent
  :data:`DEFAULT_KEEP` entries — enough history for the trajectory
  gate, small enough to live in the repository forever.

And one new capability: :func:`check_trajectory` turns the file from an
artifact into a gate.  It compares the current run against the median
of a window of *same-host* history (per :func:`repro.bench.meta
.host_key`), so a section that regressed against its own recent history
fails even when the single committed baseline was recorded loose.
Using the window median is what makes the check about *sustained*
regressions: one noisy historical entry cannot fake a failure, and one
lucky fast run cannot hide a real slowdown from the next PR.
"""

from __future__ import annotations

import json
import pathlib
import statistics
from typing import Dict, List, Mapping, Optional

from repro.bench.gates import GateOutcome, GateSpec
from repro.bench.meta import host_key

TRAJECTORY_SCHEMA_VERSION = 1

#: Entries kept in the committed trajectory file.
DEFAULT_KEEP = 50

#: Same-host history entries the regression check compares against.
DEFAULT_CHECK_WINDOW = 8

#: A section must exceed ``factor x`` its same-host median to fail.
DEFAULT_CHECK_FACTOR = 1.5

#: Below this many same-host entries the check reports, not gates.
DEFAULT_MIN_HISTORY = 3

#: Noise floor (seconds) — medians below this are gated as this.
DEFAULT_MIN_SECTION = 0.5


def load_trajectory(path: pathlib.Path) -> dict:
    """Read the trajectory document, tolerating absence and legacy shape.

    A missing or unparseable file yields an empty document (the append
    path recreates it); a pre-schema ``{"runs": [...]}`` document is
    accepted as-is — old entries stay comparable because the per-entry
    shape (``sections``/``total_seconds``/``_meta``) is unchanged.
    """
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        doc = {}
    if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
        doc = {"runs": []}
    doc.setdefault("schema_version", TRAJECTORY_SCHEMA_VERSION)
    return doc


def _entry_from_report(report: Mapping[str, object], sha: Optional[str]) -> dict:
    sections: Dict[str, dict] = {}
    for name, sec in report.get("sections", {}).items():  # type: ignore[union-attr]
        entry = {"seconds": sec.get("seconds")}
        entry.update(sec.get("values", {}))
        if not sec.get("valid", True):
            entry["valid"] = False
        sections[name] = entry
    run: Dict[str, object] = {
        "sections": sections,
        "total_seconds": report.get("total_seconds"),
        "_meta": report.get("_meta", {}),
    }
    failed = [
        g["gate_id"] for g in report.get("gates", [])  # type: ignore[union-attr]
        if not g.get("passed", True) and not g.get("skipped", False)
    ]
    if failed:
        run["gates_failed"] = failed
    if sha:
        run["commit"] = sha
    return run


def append_run(
    path: pathlib.Path,
    report: Mapping[str, object],
    sha: Optional[str] = None,
    keep: int = DEFAULT_KEEP,
) -> dict:
    """Append this run's summary, deduped by commit and window-bounded.

    Returns the appended entry.  When ``sha`` is given and the history
    already holds runs for that commit, they are *replaced* — a
    re-triggered CI job updates its record instead of double-counting.
    """
    doc = load_trajectory(path)
    entry = _entry_from_report(report, sha)
    runs: List[dict] = doc["runs"]
    if sha:
        runs = [r for r in runs if r.get("commit") != sha]
    runs.append(entry)
    doc["runs"] = runs[-keep:] if keep > 0 else runs
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return entry


def check_trajectory(
    path: pathlib.Path,
    report: Mapping[str, object],
    sha: Optional[str] = None,
    window: int = DEFAULT_CHECK_WINDOW,
    factor: float = DEFAULT_CHECK_FACTOR,
    min_section: float = DEFAULT_MIN_SECTION,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> List[GateOutcome]:
    """Gate the current run against its same-host trajectory history.

    For every valid section in ``report``, take the last ``window``
    same-host entries (excluding any entry for ``sha`` itself — the
    run under test must not vouch for itself), and fail the section's
    ``trajectory.<name>`` gate when its current wall-clock exceeds
    ``factor * max(median(history), min_section)``.  Sections with
    fewer than ``min_history`` comparable entries are reported as
    skipped: a young repository (or a new runner fleet) grows history
    before the gate arms.
    """
    doc = load_trajectory(path)
    meta = report.get("_meta", {})
    key = host_key(meta if isinstance(meta, Mapping) else {})
    history = [
        r for r in doc["runs"]
        if isinstance(r.get("_meta"), dict)
        and host_key(r["_meta"]) == key
        and not (sha and r.get("commit") == sha)
    ][-window:]

    outcomes: List[GateOutcome] = []
    sections = report.get("sections", {})
    if not isinstance(sections, Mapping):
        return outcomes
    for name, sec in sections.items():
        if not isinstance(sec, Mapping) or not sec.get("valid", True):
            continue
        seconds = sec.get("seconds")
        if not isinstance(seconds, (int, float)):
            continue
        spec = GateSpec(
            gate_id=f"trajectory.{name}", kind="wall_factor", section=name,
            threshold=factor,
            description="current run vs same-host trajectory median",
        )
        past = [
            r["sections"][name]["seconds"]
            for r in history
            if isinstance(r.get("sections"), dict)
            and isinstance(r["sections"].get(name), dict)
            and isinstance(r["sections"][name].get("seconds"), (int, float))
            and r["sections"][name].get("valid", True)
        ]
        if len(past) < min_history:
            outcomes.append(GateOutcome(
                spec, passed=True, skipped=True,
                reason=(
                    f"insufficient same-host history ({len(past)} of "
                    f"{min_history} runs)"
                ),
            ))
            continue
        med = statistics.median(past)
        limit = factor * max(med, min_section)
        outcomes.append(GateOutcome(
            spec,
            passed=float(seconds) <= limit,
            measured=round(float(seconds), 3),
            threshold=round(limit, 3),
            reason=(
                f"factor {factor} x max(median {med:.3f} s over "
                f"{len(past)} same-host runs, noise floor {min_section} s)"
            ),
        ))
    return outcomes
