"""The typed programmatic facade over the yield estimators.

This module is the supported entry point for driving the high-sigma
estimators from Python — the CLI sigma subcommands and the HTTP job
service (:mod:`repro.service`) are both thin shells over it, so all
three surfaces share one request/response schema and return
*bit-identical* estimates for the same request and seed.

The shape::

    from repro import api

    req = api.EstimateRequest(
        workload="read", spec=4.995e-11, seed=7, budget=2000,
        workers=4, n_shards=4, knobs={"n_steps": 300},
    )
    res = api.estimate(req)
    res.p_fail, res.sigma_level, res.n_evals
    doc = res.to_json()                # schema_version-stamped JSON
    api.EstimateResult.from_json(doc)  # round-trips

* :func:`list_workloads` enumerates the named workloads (the registry
  in :mod:`repro.experiments.workloads`) with their settable knobs.
* :func:`estimate` validates eagerly — every rejection is a typed
  :class:`repro.errors.RequestError` carrying a stable ``A0xx``
  diagnostic code, which the HTTP service maps 1:1 onto structured 4xx
  JSON bodies.
* Determinism contract: the estimate depends on ``(workload, knobs,
  spec, method, budget, rel_err, n_starts, seed, n_shards)`` and never
  on ``workers`` — parallelism is a pure speed knob, exactly as for the
  CLI (``n_shards`` defaults to ``workers``, so pin it explicitly to
  reproduce a run under a different worker count).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import RequestError
from repro.experiments.workloads import WorkloadSpec, get_workload, workload_names
from repro.highsigma.limitstate import LimitState
from repro.highsigma.sigma import pfail_to_sigma

__all__ = [
    "METHODS",
    "SCHEMA_VERSION",
    "EstimateRequest",
    "EstimateResult",
    "PreparedEstimate",
    "estimate",
    "prepare",
    "list_workloads",
]

#: Estimation methods a request may name.
METHODS: Tuple[str, ...] = ("gis", "mc")

#: Version stamp of the request/response JSON envelopes.  Bumped on any
#: layout change; ``from_json`` refuses versions it does not understand
#: (the bench-report pattern), so service responses and CLI ``--json``
#: output can never be silently misparsed by stale readers.
SCHEMA_VERSION = 1

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _json_safe(value: Any) -> Any:
    """Recursively coerce a diagnostics payload into JSON-safe types.

    numpy scalars become Python scalars, arrays become lists, mappings
    and sequences recurse; anything else is rendered through ``repr``
    (diagnostics are a debugging surface — losing an exotic object's
    type there is fine, losing the whole response to a serialization
    error is not).  Non-finite floats become strings for the same
    reason: ``json.dumps`` emits them as bare ``Infinity``/``NaN``,
    which strict parsers refuse.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value if np.isfinite(value) else repr(value)
    if isinstance(value, np.generic):
        return _json_safe(value.item())
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


def _require(condition: bool, message: str, code: str) -> None:
    if not condition:
        raise RequestError(message, code=code)


def _check_int(name: str, value: Any, minimum: int) -> None:
    _require(
        isinstance(value, int) and not isinstance(value, bool) and value >= minimum,
        f"{name} must be an integer >= {minimum}, got {value!r}",
        "A003",
    )


@dataclass(frozen=True)
class EstimateRequest:
    """One estimation request — the unit the facade and service accept.

    ``workload`` names a registry entry (:func:`list_workloads`);
    ``spec`` is the failure specification in the workload's native unit
    (seconds, volts, or sigma for the analytic canaries); ``knobs``
    holds the workload-specific circuit/compile options (only the names
    the workload declares are legal).  ``n_shards`` pins the shard plan
    the estimate depends on (default: follows ``workers``); ``retries``
    and ``shard_timeout`` configure the fault-tolerant runner exactly
    like the CLI flags of the same names.
    """

    workload: str
    spec: float
    method: str = "gis"
    seed: int = 0
    budget: int = 4000
    rel_err: Optional[float] = 0.1
    n_starts: int = 1
    workers: int = 1
    n_shards: Optional[int] = None
    retries: int = 0
    shard_timeout: Optional[float] = None
    knobs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze a private copy so a caller mutating the dict they
        # passed in cannot change an already-validated request.
        object.__setattr__(self, "knobs", dict(self.knobs))

    # -- validation ----------------------------------------------------

    def validate(self) -> WorkloadSpec:
        """Eager validation; returns the resolved workload spec.

        Raises :class:`repro.errors.RequestError` with the stable
        ``A0xx`` codes: A001 unknown workload, A002 unknown knob,
        A003 bad field/knob value, A004 unsupported method.
        """
        _require(
            isinstance(self.workload, str) and bool(self.workload),
            f"workload must be a non-empty string, got {self.workload!r}",
            "A003",
        )
        workload = get_workload(self.workload)
        _require(
            self.method in METHODS,
            f"unsupported method {self.method!r}; expected one of {METHODS}",
            "A004",
        )
        _require(
            isinstance(self.spec, (int, float))
            and not isinstance(self.spec, bool)
            and np.isfinite(self.spec),
            f"spec must be a finite number, got {self.spec!r}",
            "A003",
        )
        _check_int("seed", self.seed, 0)
        _check_int("budget", self.budget, 1)
        _check_int("n_starts", self.n_starts, 1)
        _check_int("workers", self.workers, 1)
        if self.n_shards is not None:
            _check_int("n_shards", self.n_shards, 1)
        _check_int("retries", self.retries, 0)
        if self.rel_err is not None:
            _require(
                isinstance(self.rel_err, (int, float))
                and not isinstance(self.rel_err, bool)
                and np.isfinite(self.rel_err) and self.rel_err > 0,
                f"rel_err must be a positive number or null, got {self.rel_err!r}",
                "A003",
            )
        if self.shard_timeout is not None:
            _require(
                isinstance(self.shard_timeout, (int, float))
                and not isinstance(self.shard_timeout, bool)
                and self.shard_timeout > 0,
                f"shard_timeout must be a positive number or null, "
                f"got {self.shard_timeout!r}",
                "A003",
            )
        _require(
            isinstance(self.knobs, Mapping),
            f"knobs must be an object, got {type(self.knobs).__name__}",
            "A005",
        )
        for key, value in self.knobs.items():
            _require(
                key in workload.knobs,
                f"workload {self.workload!r} has no knob {key!r}; "
                f"settable knobs: {', '.join(workload.knobs)}",
                "A002",
            )
            _require(
                isinstance(value, _SCALAR_TYPES),
                f"knob {key!r} must be a JSON scalar, got "
                f"{type(value).__name__}",
                "A003",
            )
            allowed = workload.choices.get(key)
            if allowed is not None:
                _require(
                    value in allowed,
                    f"knob {key!r} must be one of {allowed}, got {value!r}",
                    "A003",
                )
        return workload

    # -- serialization -------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "workload": self.workload,
            "spec": self.spec,
            "method": self.method,
            "seed": self.seed,
            "budget": self.budget,
            "rel_err": self.rel_err,
            "n_starts": self.n_starts,
            "workers": self.workers,
            "n_shards": self.n_shards,
            "retries": self.retries,
            "shard_timeout": self.shard_timeout,
            "knobs": dict(self.knobs),
        }

    @classmethod
    def from_json(cls, doc: Any) -> "EstimateRequest":
        """Parse a request envelope; malformed shapes are ``A005``.

        ``schema_version`` is optional on input (hand-written submit
        bodies may omit it) but refused when present and unknown.
        """
        _require(
            isinstance(doc, Mapping),
            f"request body must be a JSON object, got {type(doc).__name__}",
            "A005",
        )
        data = dict(doc)
        version = data.pop("schema_version", SCHEMA_VERSION)
        _require(
            version == SCHEMA_VERSION,
            f"unsupported request schema_version {version!r} "
            f"(this reader understands {SCHEMA_VERSION})",
            "A005",
        )
        known = {
            "workload", "spec", "method", "seed", "budget", "rel_err",
            "n_starts", "workers", "n_shards", "retries", "shard_timeout",
            "knobs",
        }
        unknown = sorted(set(data) - known)
        _require(
            not unknown,
            f"unknown request field(s) {unknown}; known fields: "
            + ", ".join(sorted(known)),
            "A005",
        )
        _require(
            "workload" in data and "spec" in data,
            "request needs at least 'workload' and 'spec'",
            "A005",
        )
        knobs = data.get("knobs", {})
        _require(
            isinstance(knobs, Mapping),
            f"'knobs' must be an object, got {type(knobs).__name__}",
            "A005",
        )
        try:
            request = cls(**data)
        except TypeError as exc:
            raise RequestError(f"malformed request envelope: {exc}", code="A005") from exc
        request.validate()
        return request


@dataclass(frozen=True)
class EstimateResult:
    """The facade's response record — one schema across CLI/API/HTTP.

    Wraps the estimator's statistical outcome with the request echo and
    the serving-relevant context (resolved shard plan, wall time, fault
    and plan-cache counters).  ``to_json``/``from_json`` round-trip
    through the ``schema_version``-stamped envelope the service serves
    and the CLI ``--json`` flag prints.
    """

    workload: str
    method: str
    spec: float
    dim: int
    seed: int
    n_shards: int
    p_fail: float
    std_err: float
    n_evals: int
    n_failures: int
    converged: bool
    ess: Optional[float]
    elapsed_s: float
    diagnostics: Mapping[str, Any] = field(default_factory=dict)
    fault_stats: Mapping[str, int] = field(default_factory=dict)
    plan_cache: Mapping[str, int] = field(default_factory=dict)
    request: Optional[EstimateRequest] = None

    @property
    def sigma_level(self) -> float:
        """Equivalent sigma of the estimated failure probability."""
        return float(pfail_to_sigma(self.p_fail))

    @property
    def rel_err(self) -> float:
        """Relative standard error of the estimate."""
        if self.p_fail <= 0:
            return float("inf")
        return self.std_err / self.p_fail

    def ci(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval, clipped to [0, 1]."""
        lo = max(0.0, self.p_fail - z * self.std_err)
        hi = min(1.0, self.p_fail + z * self.std_err)
        return (lo, hi)

    def identical_to(self, other: "EstimateResult") -> bool:
        """Bit-identity of the *statistical* outcome (the serving
        invariant: HTTP service == facade == CLI for one request+seed).
        Wall time and cache/fault counters are execution context, not
        outcome, so they are deliberately excluded."""
        return (
            self.p_fail == other.p_fail
            and self.std_err == other.std_err
            and self.n_evals == other.n_evals
            and self.n_failures == other.n_failures
            and self.converged == other.converged
            and self.ess == other.ess
            and self.n_shards == other.n_shards
        )

    def to_json(self) -> dict:
        doc: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "workload": self.workload,
            "method": self.method,
            "spec": self.spec,
            "dim": self.dim,
            "seed": self.seed,
            "n_shards": self.n_shards,
            "p_fail": self.p_fail,
            "std_err": self.std_err,
            "sigma_level": _json_safe(self.sigma_level),
            "n_evals": self.n_evals,
            "n_failures": self.n_failures,
            "converged": self.converged,
            "ess": self.ess,
            "elapsed_s": self.elapsed_s,
            "diagnostics": _json_safe(self.diagnostics),
            "fault_stats": _json_safe(self.fault_stats),
            "plan_cache": _json_safe(self.plan_cache),
        }
        if self.request is not None:
            doc["request"] = self.request.to_json()
        return doc

    @classmethod
    def from_json(cls, doc: Any) -> "EstimateResult":
        _require(
            isinstance(doc, Mapping),
            f"result document must be a JSON object, got {type(doc).__name__}",
            "A005",
        )
        data = dict(doc)
        version = data.pop("schema_version", None)
        _require(
            version == SCHEMA_VERSION,
            f"unsupported result schema_version {version!r} "
            f"(this reader understands {SCHEMA_VERSION})",
            "A005",
        )
        data.pop("sigma_level", None)  # derived; recomputed on access
        request_doc = data.pop("request", None)
        request = (
            EstimateRequest.from_json(request_doc) if request_doc is not None else None
        )
        try:
            return cls(request=request, **data)
        except TypeError as exc:
            raise RequestError(f"malformed result envelope: {exc}", code="A005") from exc


def list_workloads() -> Tuple[WorkloadSpec, ...]:
    """The registered workloads, in registration order."""
    return tuple(get_workload(name) for name in workload_names())


@dataclass
class PreparedEstimate:
    """A validated request with its limit state built and warmed.

    Splitting :func:`estimate` into prepare + run is what lets the job
    service serialize the *compile* phase (single-flight through the
    plan cache — N concurrent identical submissions incur exactly one
    cache miss) while the sampling phase runs concurrently.
    ``limit_state`` has been :meth:`~repro.highsigma.limitstate.LimitState.warmup`-ed:
    its compiled plans exist, its counters are untouched.
    """

    request: EstimateRequest
    workload: WorkloadSpec
    limit_state: LimitState
    n_shards: int

    def run(self, runner: Any = None, workers: Optional[int] = None) -> EstimateResult:
        """Execute the estimation; ``workers`` overrides the worker
        count only (a service granting fewer workers than requested
        cannot change the estimate — the shard plan is already pinned).
        """
        from repro.engine.sharding import RetryPolicy, ShardedRunner
        from repro.spice.plan import default_plan_cache

        request = self.request
        eff_workers = request.workers if workers is None else max(1, int(workers))
        owned_runner = None
        if runner is None and (request.retries > 0 or request.shard_timeout is not None):
            owned_runner = ShardedRunner(
                workers=eff_workers,
                persistent=True,
                retry=RetryPolicy(
                    max_attempts=request.retries + 1, timeout=request.shard_timeout
                ),
            )
            runner = owned_runner

        t0 = time.perf_counter()
        try:
            estimator = self._build_estimator(eff_workers, runner)
            core = estimator.run(np.random.default_rng(request.seed))
        finally:
            if owned_runner is not None:
                owned_runner.close()
        elapsed = time.perf_counter() - t0

        fault_stats = dict(runner.fault_stats) if runner is not None else {}
        return EstimateResult(
            workload=request.workload,
            method=request.method,
            spec=request.spec,
            dim=self.limit_state.dim,
            seed=request.seed,
            n_shards=self.n_shards,
            p_fail=float(core.p_fail),
            std_err=float(core.std_err),
            n_evals=int(core.n_evals),
            n_failures=int(core.n_failures),
            converged=bool(core.converged),
            ess=None if core.ess is None else float(core.ess),
            elapsed_s=round(elapsed, 6),
            diagnostics=_json_safe(core.diagnostics),
            fault_stats=_json_safe(fault_stats),
            plan_cache=dict(default_plan_cache().stats),
            request=request,
        )

    def _build_estimator(self, eff_workers: int, runner: Any) -> Any:
        request = self.request
        if request.method == "mc":
            from repro.highsigma.mc import MonteCarloEstimator

            return MonteCarloEstimator(
                self.limit_state,
                n_max=request.budget,
                target_rel_err=request.rel_err,
                workers=eff_workers,
                n_shards=self.n_shards,
                runner=runner,
            )
        from repro.highsigma.gis import GradientImportanceSampling

        return GradientImportanceSampling(
            self.limit_state,
            n_max=request.budget,
            target_rel_err=request.rel_err,
            n_starts=request.n_starts,
            workers=eff_workers,
            n_shards=self.n_shards,
            runner=runner,
            **dict(self.workload.estimator_options),
        )


def prepare(request: EstimateRequest) -> PreparedEstimate:
    """Validate, build and warm a request's limit state.

    Every compile the workload needs happens here (routed through
    :func:`repro.spice.plan.compile_cached`, so repeated shapes hit the
    plan cache); the returned object's :meth:`~PreparedEstimate.run`
    only samples.
    """
    workload = request.validate()
    limit_state = workload.factory(request.spec, **dict(request.knobs))
    limit_state.warmup()
    from repro.engine.sharding import resolve_shards

    return PreparedEstimate(
        request=request,
        workload=workload,
        limit_state=limit_state,
        n_shards=resolve_shards(request.n_shards, request.workers),
    )


def estimate(request: EstimateRequest, runner: Any = None) -> EstimateResult:
    """Run one estimation request end to end (the facade entry point).

    Equivalent to ``prepare(request).run(runner=runner)``.  ``runner``
    may be a caller-owned (e.g. journaled) persistent
    :class:`~repro.engine.sharding.ShardedRunner`; when omitted, a
    fault-tolerant runner is created exactly when ``retries`` or
    ``shard_timeout`` ask for one, mirroring the CLI.
    """
    return prepare(request).run(runner=runner)


def request_with(request: EstimateRequest, **changes: Any) -> EstimateRequest:
    """A copy of ``request`` with fields replaced (convenience for
    sweeps and load-test scenario generators)."""
    return replace(request, **changes)
