"""Global + local variation decomposition.

Foundry statistics split threshold variation into a *global* (inter-die)
component shared by every device of a flavour and *local* (intra-die,
Pelgrom) mismatch per device.  For yield analysis the distinction
matters: global shift moves every cell of the die together (a die either
works or not), while local mismatch is what makes one cell in a billion
fail.

:class:`CorrelatedSpace` augments a local :class:`~repro.variation.space.
VariationSpace` with one extra u-axis per device *group* (e.g. all NMOS,
all PMOS).  The physical shift of a device becomes::

    delta_vth = sigma_local * u_local + sigma_global * u_group

The space still presents a plain i.i.d. standard-normal u-vector to the
samplers — the correlation lives entirely in the u → parameter map, so
every estimator in :mod:`repro.highsigma` works unchanged.  The MPFP of
a read failure under this model shows the textbook structure: a shared
NMOS slow-down plus a local pass-gate kick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import NetlistError
from repro.variation.space import VariationSpace

__all__ = ["GlobalAxis", "CorrelatedSpace"]


@dataclass(frozen=True)
class GlobalAxis:
    """One shared variation axis.

    ``members`` lists the device names that receive this component;
    ``sigma`` is the physical standard deviation of the shared shift in
    volts (vth) or as a fraction (beta).
    """

    name: str
    kind: str
    sigma: float
    members: Tuple[str, ...]

    def __post_init__(self):
        if self.kind not in ("vth", "beta"):
            raise NetlistError(f"unknown global axis kind {self.kind!r}")
        if self.sigma <= 0:
            raise NetlistError(f"global axis {self.name!r}: sigma must be positive")
        if not self.members:
            raise NetlistError(f"global axis {self.name!r} has no members")

    @property
    def label(self) -> str:
        return f"global:{self.name}.{self.kind}"


class CorrelatedSpace:
    """Local mismatch space plus shared global axes.

    The u-vector layout is ``[local axes..., global axes...]`` — local
    axes keep the exact ordering of the wrapped
    :class:`~repro.variation.space.VariationSpace`, so code indexing the
    first ``local.dim`` entries keeps working.
    """

    def __init__(self, local: VariationSpace, global_axes: Sequence[GlobalAxis]):
        if not global_axes:
            raise NetlistError("CorrelatedSpace needs at least one global axis")
        labels = [g.label for g in global_axes]
        if len(set(labels)) != len(labels):
            raise NetlistError(f"duplicate global axes: {labels}")
        self.local = local
        self.global_axes: List[GlobalAxis] = list(global_axes)

    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.local.dim + len(self.global_axes)

    @property
    def labels(self) -> List[str]:
        return self.local.labels + [g.label for g in self.global_axes]

    def split(self, u: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split a u-vector into its local and global parts."""
        u = np.asarray(u, dtype=float)
        if u.shape != (self.dim,):
            raise NetlistError(
                f"u-vector shape {u.shape} does not match dim {self.dim}"
            )
        return u[: self.local.dim], u[self.local.dim:]

    def to_physical(self, u: np.ndarray) -> Dict[str, Dict[str, float]]:
        """Per-device perturbations with the global components folded in."""
        u_local, u_global = self.split(u)
        out = self.local.to_physical(u_local)
        for value, axis in zip(u_global, self.global_axes):
            shift = float(value * axis.sigma)
            for device in axis.members:
                entry = out.setdefault(device, {"delta_vth": 0.0, "beta_mult": 1.0})
                if axis.kind == "vth":
                    entry["delta_vth"] += shift
                else:
                    entry["beta_mult"] *= 1.0 + shift
        return out

    def apply(self, circuit, u: np.ndarray) -> None:
        """Write perturbations onto a built circuit in place."""
        for device, params in self.to_physical(u).items():
            mos = circuit[device]
            mos.delta_vth = params["delta_vth"]
            mos.beta_mult = params["beta_mult"]

    def vth_matrix(self, u_batch: np.ndarray, device_order: Sequence[str]) -> np.ndarray:
        """Batched ``delta_vth`` matrix (local + global contributions)."""
        u_batch = np.atleast_2d(np.asarray(u_batch, dtype=float))
        if u_batch.shape[1] != self.dim:
            raise NetlistError(
                f"u-batch has {u_batch.shape[1]} columns; space has dim {self.dim}"
            )
        nloc = self.local.dim
        out = self.local.vth_matrix(u_batch[:, :nloc], device_order)
        col_of = {name: j for j, name in enumerate(device_order)}
        for k, axis in enumerate(self.global_axes):
            if axis.kind != "vth":
                continue
            contribution = u_batch[:, nloc + k] * axis.sigma
            for device in axis.members:
                if device in col_of:
                    out[:, col_of[device]] += contribution
        return out

    def beta_matrix(self, u_batch: np.ndarray, device_order: Sequence[str]) -> np.ndarray:
        """Batched ``beta_mult`` matrix (local x global contributions)."""
        u_batch = np.atleast_2d(np.asarray(u_batch, dtype=float))
        if u_batch.shape[1] != self.dim:
            raise NetlistError(
                f"u-batch has {u_batch.shape[1]} columns; space has dim {self.dim}"
            )
        nloc = self.local.dim
        out = self.local.beta_matrix(u_batch[:, :nloc], device_order)
        col_of = {name: j for j, name in enumerate(device_order)}
        for k, axis in enumerate(self.global_axes):
            if axis.kind != "beta":
                continue
            contribution = 1.0 + u_batch[:, nloc + k] * axis.sigma
            for device in axis.members:
                if device in col_of:
                    out[:, col_of[device]] *= contribution
        return out

    # ------------------------------------------------------------------

    @classmethod
    def nmos_pmos_globals(
        cls,
        local: VariationSpace,
        nmos_devices: Sequence[str],
        pmos_devices: Sequence[str],
        sigma_nmos: float = 0.02,
        sigma_pmos: float = 0.02,
    ) -> "CorrelatedSpace":
        """The standard two-group model: one shared axis per polarity."""
        return cls(
            local,
            [
                GlobalAxis("nmos", "vth", sigma_nmos, tuple(nmos_devices)),
                GlobalAxis("pmos", "vth", sigma_pmos, tuple(pmos_devices)),
            ],
        )

    def __repr__(self) -> str:
        return (
            f"CorrelatedSpace(local_dim={self.local.dim}, "
            f"globals={[g.label for g in self.global_axes]})"
        )
