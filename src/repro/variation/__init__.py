"""Process-variation modelling.

The statistical layer every sampler in :mod:`repro.highsigma` stands on:

* :mod:`repro.variation.pelgrom` — mismatch sigmas from device geometry
  via the Pelgrom area law.
* :mod:`repro.variation.space` — the :class:`VariationSpace` mapping
  between the standard-normal **u-space** the samplers operate in and the
  per-device parameter perturbations the simulator consumes.
* :mod:`repro.variation.correlated` — global (inter-die) + local
  (Pelgrom mismatch) decomposition as extra shared u-axes.
"""

from repro.variation.correlated import CorrelatedSpace, GlobalAxis
from repro.variation.pelgrom import beta_mismatch_sigma, vth_mismatch_sigma
from repro.variation.space import DeviceAxis, VariationSpace

__all__ = [
    "DeviceAxis",
    "VariationSpace",
    "CorrelatedSpace",
    "GlobalAxis",
    "vth_mismatch_sigma",
    "beta_mismatch_sigma",
]
