"""Pelgrom-law mismatch sigmas.

Local (within-die) transistor mismatch follows the Pelgrom area law: the
standard deviation of a matched-pair parameter difference scales as
``A / sqrt(W * L)``.  Threshold-voltage mismatch dominates SRAM bitcell
failure statistics, with current-factor (beta) mismatch a secondary term;
both are exposed here.

The coefficients live on the :class:`~repro.spice.mosfet.MosfetModel`
card (``avt`` in V·m, ``abeta`` dimensionless·m) so different process
corners can carry different mismatch, as real PDKs do.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["vth_mismatch_sigma", "beta_mismatch_sigma"]


def vth_mismatch_sigma(model, w: float, l: float) -> float:
    """Sigma of the threshold-voltage shift of one device, in volts.

    Note this is the *single-device* sigma (Pelgrom's law is stated for
    pair differences; the single-device sigma is the pair value divided by
    sqrt(2), a convention already folded into the ``avt`` numbers used by
    our model cards).
    """
    if w <= 0 or l <= 0:
        raise ConfigError(f"device geometry must be positive, got W={w!r} L={l!r}")
    return model.avt / np.sqrt(w * l)


def beta_mismatch_sigma(model, w: float, l: float) -> float:
    """Relative (fractional) sigma of the current factor of one device."""
    if w <= 0 or l <= 0:
        raise ConfigError(f"device geometry must be positive, got W={w!r} L={l!r}")
    return model.abeta / np.sqrt(w * l)
