"""The u-space ↔ device-parameter mapping.

Every high-sigma sampler in this library works in **u-space**: a vector of
independent standard-normal variables, one per variation axis.  A
:class:`VariationSpace` owns the list of axes (device name, parameter
kind, physical sigma) and converts a u-vector into the per-instance
``delta_vth`` / ``beta_mult`` attributes the simulators consume.

Keeping the map explicit — rather than burying sigmas inside the metric
function — is what lets one compare samplers fairly: they all see exactly
the same standardised space, and sigma levels reported by
:mod:`repro.highsigma.sigma` are directly meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import NetlistError

__all__ = ["DeviceAxis", "VariationSpace"]

#: Parameter kinds an axis may target.
AXIS_KINDS = ("vth", "beta")


@dataclass(frozen=True)
class DeviceAxis:
    """One variation axis: a parameter of one device.

    Attributes
    ----------
    device:
        MOSFET element name in the circuit (e.g. ``"m_pd_l"``).
    kind:
        ``"vth"`` (additive threshold shift, sigma in volts) or
        ``"beta"`` (multiplicative current-factor variation, sigma as a
        fraction).
    sigma:
        Physical standard deviation of the parameter.
    """

    device: str
    kind: str
    sigma: float

    def __post_init__(self):
        if self.kind not in AXIS_KINDS:
            raise NetlistError(f"unknown variation axis kind {self.kind!r}")
        if self.sigma <= 0:
            raise NetlistError(
                f"axis {self.device}/{self.kind}: sigma must be positive, got {self.sigma!r}"
            )

    @property
    def label(self) -> str:
        """Stable human-readable identifier, e.g. ``"m_pd_l.vth"``."""
        return f"{self.device}.{self.kind}"


class VariationSpace:
    """An ordered collection of :class:`DeviceAxis` defining u-space."""

    def __init__(self, axes: Sequence[DeviceAxis]):
        if not axes:
            raise NetlistError("a VariationSpace needs at least one axis")
        labels = [a.label for a in axes]
        if len(set(labels)) != len(labels):
            raise NetlistError(f"duplicate variation axes: {labels}")
        self.axes: List[DeviceAxis] = list(axes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of u-space dimensions."""
        return len(self.axes)

    @property
    def labels(self) -> List[str]:
        """Axis labels in u-vector order."""
        return [a.label for a in self.axes]

    def sigma_vector(self) -> np.ndarray:
        """Physical sigmas in u-vector order."""
        return np.array([a.sigma for a in self.axes])

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def to_physical(self, u: np.ndarray) -> Dict[str, Dict[str, float]]:
        """Convert a u-vector into per-device parameter perturbations.

        Returns ``{device: {"delta_vth": volts, "beta_mult": factor}}``
        with identity defaults for parameters no axis targets.
        """
        u = np.asarray(u, dtype=float)
        if u.shape != (self.dim,):
            raise NetlistError(
                f"u-vector shape {u.shape} does not match space dimension {self.dim}"
            )
        out: Dict[str, Dict[str, float]] = {}
        for value, axis in zip(u, self.axes):
            entry = out.setdefault(axis.device, {"delta_vth": 0.0, "beta_mult": 1.0})
            if axis.kind == "vth":
                entry["delta_vth"] = float(value * axis.sigma)
            else:
                entry["beta_mult"] = float(1.0 + value * axis.sigma)
        return out

    def apply(self, circuit, u: np.ndarray) -> None:
        """Write the perturbations for ``u`` onto a built circuit in place."""
        for device, params in self.to_physical(u).items():
            mos = circuit[device]
            mos.delta_vth = params["delta_vth"]
            mos.beta_mult = params["beta_mult"]

    def reset(self, circuit) -> None:
        """Restore every targeted device to its nominal parameters."""
        for axis in self.axes:
            mos = circuit[axis.device]
            mos.delta_vth = 0.0
            mos.beta_mult = 1.0

    def vth_matrix(self, u_batch: np.ndarray, device_order: Sequence[str]) -> np.ndarray:
        """Batched ``delta_vth`` matrix for the vectorised engine.

        Parameters
        ----------
        u_batch:
            Array of shape ``(n, dim)``.
        device_order:
            Device names defining the output column order.

        Returns
        -------
        Array of shape ``(n, len(device_order))`` with threshold shifts in
        volts; devices without a vth axis get a zero column.
        """
        u_batch = np.atleast_2d(np.asarray(u_batch, dtype=float))
        if u_batch.shape[1] != self.dim:
            raise NetlistError(
                f"u-batch has {u_batch.shape[1]} columns; space has dim {self.dim}"
            )
        out = np.zeros((u_batch.shape[0], len(device_order)))
        col_of = {name: j for j, name in enumerate(device_order)}
        for i, axis in enumerate(self.axes):
            if axis.kind != "vth" or axis.device not in col_of:
                continue
            out[:, col_of[axis.device]] = u_batch[:, i] * axis.sigma
        return out

    def beta_matrix(self, u_batch: np.ndarray, device_order: Sequence[str]) -> np.ndarray:
        """Batched ``beta_mult`` matrix (identity columns where untargeted)."""
        u_batch = np.atleast_2d(np.asarray(u_batch, dtype=float))
        if u_batch.shape[1] != self.dim:
            raise NetlistError(
                f"u-batch has {u_batch.shape[1]} columns; space has dim {self.dim}"
            )
        out = np.ones((u_batch.shape[0], len(device_order)))
        col_of = {name: j for j, name in enumerate(device_order)}
        for i, axis in enumerate(self.axes):
            if axis.kind != "beta" or axis.device not in col_of:
                continue
            out[:, col_of[axis.device]] = 1.0 + u_batch[:, i] * axis.sigma
        return out

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_mosfets(cls, circuit, include_beta: bool = False) -> "VariationSpace":
        """Build a space over every MOSFET in a circuit via Pelgrom sigmas."""
        from repro.variation.pelgrom import beta_mismatch_sigma, vth_mismatch_sigma

        axes: List[DeviceAxis] = []
        for mos in circuit.mosfets():
            axes.append(
                DeviceAxis(mos.name, "vth", vth_mismatch_sigma(mos.model, mos.w, mos.l))
            )
            if include_beta:
                axes.append(
                    DeviceAxis(mos.name, "beta", beta_mismatch_sigma(mos.model, mos.w, mos.l))
                )
        return cls(axes)

    def __repr__(self) -> str:
        return f"VariationSpace(dim={self.dim}, axes={self.labels})"
