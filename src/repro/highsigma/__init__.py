"""High-sigma failure-probability estimation.

The paper's contribution and its comparison set:

* :mod:`repro.highsigma.limitstate` — the ``g(u) <= 0 ⇔ failure``
  abstraction with evaluation counting and caching.
* :mod:`repro.highsigma.analytic` — limit states with closed-form failure
  probabilities, the exactness anchor for every accuracy experiment.
* :mod:`repro.highsigma.estimators` — importance-weight math, effective
  sample size, figure of merit, confidence intervals.
* :mod:`repro.highsigma.mc` — plain Monte Carlo (baseline).
* :mod:`repro.highsigma.mpfp` — gradient-driven most-probable-failure-
  point search (HL-RF with Armijo damping).
* :mod:`repro.highsigma.gis` — **Gradient Importance Sampling**, the
  method under reproduction: gradient MPFP search + mean-shifted
  defensive-mixture Gaussian IS.
* :mod:`repro.highsigma.mnis` — minimum-norm / mixture importance
  sampling (Kanj-style pre-sampling baseline).
* :mod:`repro.highsigma.sss` — scaled-sigma sampling (Sun/Li-style
  extrapolation baseline).
* :mod:`repro.highsigma.spherical` — spherical radius-search IS
  (blind-search baseline and ablation reference).
* :mod:`repro.highsigma.sigma` — P_fail ↔ sigma-level and array-yield
  conversions.
"""

from repro.highsigma.limitstate import LimitState
from repro.highsigma.results import EstimateResult
from repro.highsigma.analytic import (
    HypersphereLimitState,
    LinearLimitState,
    QuadraticLimitState,
    SramSurrogateLimitState,
    UnionLimitState,
)
from repro.highsigma.form import form_estimate, sorm_estimate
from repro.highsigma.mc import MonteCarloEstimator
from repro.highsigma.mpfp import MpfpResult, MpfpSearch
from repro.highsigma.gis import GradientImportanceSampling
from repro.highsigma.ce import CrossEntropyIS
from repro.highsigma.mnis import MinimumNormIS
from repro.highsigma.sss import ScaledSigmaSampling
from repro.highsigma.spherical import SphericalSearchIS
from repro.highsigma.sigma import (
    pfail_to_sigma,
    sigma_to_pfail,
    array_yield,
    cells_per_failure,
)

__all__ = [
    "LimitState",
    "EstimateResult",
    "LinearLimitState",
    "QuadraticLimitState",
    "HypersphereLimitState",
    "UnionLimitState",
    "SramSurrogateLimitState",
    "MonteCarloEstimator",
    "form_estimate",
    "sorm_estimate",
    "MpfpSearch",
    "MpfpResult",
    "GradientImportanceSampling",
    "MinimumNormIS",
    "CrossEntropyIS",
    "ScaledSigmaSampling",
    "SphericalSearchIS",
    "pfail_to_sigma",
    "sigma_to_pfail",
    "array_yield",
    "cells_per_failure",
]
