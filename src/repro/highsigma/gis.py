"""Gradient Importance Sampling — the method under reproduction.

The two-stage structure:

**Stage 1 — gradient search.**  An iHL-RF gradient descent
(:class:`~repro.highsigma.mpfp.MpfpSearch`) walks from the nominal point
to the most probable failure point u*.  Gradients come from finite
differences (or SPSA for high dimensions) on the very same transient
simulations the sampler bills for — typically a few tens of simulations,
versus the *thousands* a blind pre-sampling stage needs to see its first
failure at 5 sigma.

**Stage 2 — mean-shifted defensive IS.**  A Gaussian centred at u*
(optionally stretched along the failure direction and widened) mixed with
a small standard-normal "defensive" component samples the failure region;
the unnormalised IS estimator with exact mixture weights gives the
failure probability with a confidence interval.

Multiple failure regions are handled by multi-start: extra gradient
searches from random directions collect distinct MPFPs, and stage 2 uses
a mixture with one component per MPFP (weighted by their Gaussian mass
``exp(-beta_k^2/2)``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.engine.sharding import ShardedRunner, ShardResult, spawn_generators
from repro.errors import SearchError
from repro.highsigma.estimators import MeanShiftISCore
from repro.highsigma.limitstate import LimitState
from repro.highsigma.mpfp import MpfpOptions, MpfpResult, MpfpSearch
from repro.highsigma.results import EstimateResult

__all__ = ["GradientImportanceSampling"]


class _MpfpStartTask:
    """Shard task wrapper for one multi-start gradient search.

    Comparable so a persistent runner can recognise repeat submissions;
    measures the limit-state evaluations its start consumed so pooled
    searches reconcile into the parent counter exactly like sampling
    shards do.
    """

    __slots__ = ("gis",)

    def __init__(self, gis: "GradientImportanceSampling"):
        self.gis = gis

    def __call__(self, i: int, rng: np.random.Generator, budget: int) -> ShardResult:
        before = self.gis.ls.n_evals
        res = self.gis._run_one_start(i, rng)
        return ShardResult(
            index=i, n_evals=self.gis.ls.n_evals - before, payload=res
        )

    def __eq__(self, other):
        return type(other) is _MpfpStartTask and other.gis is self.gis

    __hash__ = None  # identity/equality only; never used as a dict key


class GradientImportanceSampling:
    """Gradient IS estimator.

    Parameters
    ----------
    limit_state:
        Failure oracle (``g <= 0`` fails).
    n_max:
        Stage-2 sampling budget (search cost comes on top and is included
        in the reported ``n_evals``).
    batch_size:
        Stage-2 samples per block.
    target_rel_err:
        Early-stop threshold on the relative standard error.
    alpha:
        Defensive mixture weight on the standard-normal component.
    cov_widen:
        Isotropic proposal variance multiplier (1.0 = unit variance).
    cov_stretch_radial:
        Additional variance stretch along the MPFP direction; values
        slightly above 1 help when the boundary is curved *toward* the
        origin. 1.0 disables the stretch.
    shift_scale:
        Scales the mean shift (1.0 places the proposal mean exactly at
        the MPFP; >1 pushes it into the failure region).
    n_starts:
        Gradient searches to run (1 = single MPFP; more enables
        multi-region coverage).
    mpfp_options / grad_fn:
        Forwarded to :class:`~repro.highsigma.mpfp.MpfpSearch`.
    dedup_distance:
        Two found MPFPs closer than this are considered the same region.
    beta_window:
        Keep only MPFPs with ``beta <= beta_min + beta_window`` (farther
        regions contribute negligibly).
    workers / n_shards / runner:
        Stage-2 sampling parallelism, forwarded to
        :class:`~repro.highsigma.estimators.MeanShiftISCore`.  With
        ``n_starts > 1`` the stage-1 searches also fan out over
        ``workers`` (one start per shard, deterministic selection in
        start order — see :meth:`search_mpfps`).  ``runner`` may be a
        persistent :class:`~repro.engine.sharding.ShardedRunner` shared
        across runs; it is used for the sampling stage only.
    """

    method_name = "gis"

    def __init__(
        self,
        limit_state: LimitState,
        n_max: int = 4000,
        batch_size: int = 256,
        target_rel_err: Optional[float] = 0.1,
        alpha: float = 0.1,
        cov_widen: float = 1.0,
        cov_stretch_radial: float = 1.0,
        shift_scale: float = 1.0,
        n_starts: int = 1,
        mpfp_options: Optional[MpfpOptions] = None,
        grad_fn=None,
        dedup_distance: float = 0.8,
        beta_window: float = 1.5,
        workers: int = 1,
        n_shards: Optional[int] = None,
        runner=None,
    ):
        self.ls = limit_state
        self.n_max = int(n_max)
        self.batch_size = int(batch_size)
        self.target_rel_err = target_rel_err
        self.alpha = float(alpha)
        self.cov_widen = float(cov_widen)
        self.cov_stretch_radial = float(cov_stretch_radial)
        self.shift_scale = float(shift_scale)
        self.n_starts = int(n_starts)
        self.mpfp_options = mpfp_options or MpfpOptions()
        self.grad_fn = grad_fn
        self.dedup_distance = float(dedup_distance)
        self.beta_window = float(beta_window)
        self.workers = max(1, int(workers))
        self.n_shards = n_shards
        self.runner = runner

    # ------------------------------------------------------------------

    def _run_one_start(self, start: int, rng: np.random.Generator) -> MpfpResult:
        """One gradient search: start 0 from the origin, the rest from a
        random direction at radius 2 drawn from the start's own stream."""
        search = MpfpSearch(self.ls, options=self.mpfp_options, grad_fn=self.grad_fn)
        if start == 0:
            u0 = None
        else:
            direction = rng.standard_normal(self.ls.dim)
            direction /= np.linalg.norm(direction)
            u0 = 2.0 * direction
        return search.run(u0=u0, rng=rng)

    def search_mpfps(self, rng: np.random.Generator) -> List[MpfpResult]:
        """Stage 1: run the gradient searches and dedupe the results.

        Multi-start runs shard one search per start over a
        :class:`~repro.engine.sharding.ShardedRunner` (the ROADMAP's
        "search stages are still serial" item).  Determinism contract:
        each start draws from its own ``SeedSequence``-spawned stream and
        the dedup/beta-window selection runs in fixed start order, so the
        kept MPFPs depend only on ``n_starts`` — never on ``workers``.
        (Evaluation *counts* can differ slightly across worker counts:
        pooled starts cannot share the in-process point cache.)  The
        single-start default keeps the classic single-stream RNG
        consumption.
        """
        if self.n_starts == 1:
            results_all = [self._run_one_start(0, rng)]
        else:
            rngs = spawn_generators(rng, self.n_starts)
            # A transient runner, deliberately not self.runner: the search
            # task differs from the sampling task, and submitting it to a
            # shared persistent pool would evict the (far more reused)
            # sampling snapshot.  The retry policy (if any) carries over so
            # a flaky search start gets the same fault tolerance as the
            # sampling stage; the budget entries are placeholders (searches
            # are not sample-count bounded), so ``skip_empty=False``.
            retry = getattr(self.runner, "retry", None)
            with ShardedRunner(min(self.workers, self.n_starts), retry=retry) as runner:
                shard_results = runner.run_shards(
                    _MpfpStartTask(self),
                    rngs,
                    [0] * self.n_starts,
                    limit_state=self.ls,
                    skip_empty=False,
                )
            results_all = [r.payload for r in shard_results]

        results: List[MpfpResult] = []
        for res in results_all:
            if res.beta <= 1e-9 or not res.near_boundary():
                # Search never left the origin, or never got anywhere near
                # the failure boundary (flat metric, unreachable failure):
                # a shift there would only pollute the mixture.
                continue
            if any(np.linalg.norm(res.u_star - r.u_star) < self.dedup_distance for r in results):
                continue
            results.append(res)
        if not results:
            raise SearchError(
                f"{self.ls.name}: no usable MPFP found in {self.n_starts} starts"
            )
        beta_min = min(r.beta for r in results)
        kept = [r for r in results if r.beta <= beta_min + self.beta_window]
        return kept

    def _covariance(self, u_star: np.ndarray) -> np.ndarray:
        d = u_star.size
        cov = np.eye(d) * self.cov_widen
        s2 = self.cov_stretch_radial**2
        if s2 != 1.0 and np.linalg.norm(u_star) > 0:
            e = u_star / np.linalg.norm(u_star)
            cov += self.cov_widen * (s2 - 1.0) * np.outer(e, e)
        return cov

    def run(self, rng: Optional[np.random.Generator] = None) -> EstimateResult:
        """Full two-stage estimation."""
        rng = rng if rng is not None else np.random.default_rng()
        evals_before = self.ls.n_evals
        mpfps = self.search_mpfps(rng)
        search_evals = self.ls.n_evals - evals_before

        shifts = [self.shift_scale * r.u_star for r in mpfps]
        # Weight components by their Gaussian mass so a dominant region
        # receives proportionally more samples.
        betas = np.array([r.beta for r in mpfps])
        masses = np.exp(-0.5 * (betas**2 - betas.min() ** 2))
        weights = masses / masses.sum()

        # MeanShiftISCore builds one mixture over all components; its cov
        # argument is shared, so use the first MPFP for the stretch
        # direction only when there is a single region.
        cov = self._covariance(mpfps[0].u_star) if len(mpfps) == 1 else self.cov_widen

        core = MeanShiftISCore(
            self.ls,
            shifts=shifts,
            cov=cov,
            alpha=self.alpha,
            batch_size=self.batch_size,
            n_max=self.n_max,
            target_rel_err=self.target_rel_err,
            workers=self.workers,
            n_shards=self.n_shards,
            runner=self.runner,
        )
        core.proposal.weights = weights * (1.0 - self.alpha)

        diagnostics = {
            "mpfp_beta": [float(r.beta) for r in mpfps],
            "mpfp_u": [r.u_star.tolist() for r in mpfps],
            "mpfp_converged": [bool(r.converged) for r in mpfps],
            "search_evals": int(search_evals),
            "search_iterations": [int(r.iterations) for r in mpfps],
        }
        return core.run(
            rng, method=self.method_name, extra_evals=search_evals, diagnostics=diagnostics
        )
