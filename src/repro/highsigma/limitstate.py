"""The limit-state abstraction: ``g(u) <= 0  ⇔  failure``.

All samplers see the world through a :class:`LimitState`: a scalar field
over standard-normal u-space whose non-positive region is the failure
set.  This is the structural-reliability convention; for a performance
metric with an upper spec (read access time must not exceed ``t_spec``)
the margin is ``g(u) = t_spec - t_access(u)``.

The class also owns the two pieces of bookkeeping every honest comparison
needs:

* an **evaluation counter** — simulator calls are the cost unit of every
  table in the paper, and hiding search-phase calls is the classic way
  such comparisons go wrong;
* an optional **cache**, so that re-evaluating the same vector (which
  MPFP line searches do) is not double-billed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import EstimationError

__all__ = ["LimitState"]


class LimitState:
    """Wrap a metric function into a counted, cached margin field.

    Parameters
    ----------
    fn:
        Scalar metric over u-space, ``fn(u) -> float``.  May be ``None``
        when ``batch_fn`` is given: scalar evaluations then route through
        the batched evaluator as one-row batches — the natural shape for
        compiled batched simulators, which have no scalar path of their
        own.
    spec:
        Specification the metric is compared against.
    direction:
        ``"upper"`` — failure when ``metric >= spec`` (delay too large);
        ``"lower"`` — failure when ``metric <= spec`` (margin too small).
    name:
        Label used in reports.
    batch_fn:
        Optional vectorised evaluator ``(n, d) -> (n,)`` metric values;
        when present, samplers call :meth:`g_batch` on whole sample
        blocks (the batched 6T engine plugs in here).
    dim:
        Dimensionality of u-space.
    cache:
        Keep a dict of previously evaluated points (keyed on the rounded
        vector bytes).  Scalar evaluations check and populate it;
        batched evaluations populate it too when the batch is
        stencil-sized (at most ``max(32, 4 * dim)`` rows), so gradient
        stencils seed the cache for later line searches while bulk
        sampling batches skip the bookkeeping entirely.
    cache_decimals:
        Decimals the cache key is rounded to.  MPFP line searches
        re-evaluate points that differ only in the last ulp; rounding
        makes those hits land on one key.
    cache_size:
        Bound on the number of cached points (oldest entries evicted
        first).  ``None`` disables the bound — fine for short runs, a
        leak on long ones.
    """

    def __init__(
        self,
        fn: Optional[Callable[[np.ndarray], float]],
        spec: float,
        dim: int,
        direction: str = "upper",
        name: str = "limit-state",
        batch_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        cache: bool = True,
        cache_decimals: int = 12,
        cache_size: Optional[int] = 1 << 18,
    ):
        if direction not in ("upper", "lower"):
            raise EstimationError(f"direction must be 'upper' or 'lower', got {direction!r}")
        if dim < 1:
            raise EstimationError(f"dim must be >= 1, got {dim!r}")
        if fn is None and batch_fn is None:
            raise EstimationError("a limit state needs fn, batch_fn or both")
        self._fn = fn
        self._batch_fn = batch_fn
        self.spec = float(spec)
        self.dim = int(dim)
        self.direction = direction
        self.name = name
        self.n_evals = 0
        self._cache: Optional[Dict[bytes, float]] = {} if cache else None
        self._cache_decimals = int(cache_decimals)
        if cache_size is not None and int(cache_size) < 1:
            raise EstimationError(f"cache_size must be >= 1 or None, got {cache_size!r}")
        self._cache_size = None if cache_size is None else int(cache_size)

    # ------------------------------------------------------------------

    def _margin(self, metric):
        if self.direction == "upper":
            return self.spec - metric
        return metric - self.spec

    def _cache_key(self, u: np.ndarray) -> bytes:
        # ``+ 0.0`` collapses -0.0 onto 0.0 so a sign-of-zero difference
        # cannot split one point over two keys.
        return (np.round(u, self._cache_decimals) + 0.0).tobytes()

    def _cache_store(self, key: bytes, value: float) -> None:
        if self._cache_size is not None and len(self._cache) >= self._cache_size:
            # FIFO eviction: dicts iterate in insertion order, so the
            # first key is the oldest entry.
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = value

    def metric(self, u: np.ndarray) -> float:
        """Raw (un-margined) metric at ``u``; counted like any evaluation."""
        u = np.asarray(u, dtype=float)
        self._check(u)
        key = None
        if self._cache is not None:
            key = self._cache_key(u)
            if key in self._cache:
                return self._cache[key]
        if self._fn is not None:
            value = float(self._fn(u))
        else:
            value = float(np.asarray(self._batch_fn(u[None, :]), dtype=float)[0])
        self.n_evals += 1
        if self._cache is not None:
            self._cache_store(key, value)
        return value

    def g(self, u: np.ndarray) -> float:
        """Margin at ``u``; ``g <= 0`` is failure."""
        return self._margin(self.metric(u))

    def g_batch(self, u_batch: np.ndarray) -> np.ndarray:
        """Margins for a block of samples (uses ``batch_fn`` when given).

        Stencil-sized batches (at most ``max(32, 4 * dim)`` rows — a
        central-difference stencil is ``2 * dim``) populate the scalar
        cache when caching is on, so an MPFP line search re-evaluating a
        point that already appeared in a gradient stencil hits the cache
        instead of paying for another simulation.  Bulk sampling batches
        skip the population: per-row bookkeeping on 10^5-sample runs
        would cost more than the hits are worth and would churn the
        FIFO-bounded cache through exactly the stencil entries it exists
        to keep.
        """
        u_batch = np.atleast_2d(np.asarray(u_batch, dtype=float))
        if u_batch.shape[1] != self.dim:
            raise EstimationError(
                f"{self.name}: batch has {u_batch.shape[1]} columns, expected {self.dim}"
            )
        if self._batch_fn is not None:
            metrics = np.asarray(self._batch_fn(u_batch), dtype=float)
            if metrics.shape != (u_batch.shape[0],):
                raise EstimationError(
                    f"{self.name}: batch_fn returned shape {metrics.shape}, "
                    f"expected ({u_batch.shape[0]},)"
                )
            self.n_evals += u_batch.shape[0]
            if self._cache is not None and u_batch.shape[0] <= max(32, 4 * self.dim):
                keyed = np.round(u_batch, self._cache_decimals) + 0.0
                for row, value in zip(keyed, metrics):
                    self._cache_store(row.tobytes(), float(value))
            return self._margin(metrics)
        # Fallback: one metric() pass per row (billed and cached there),
        # margined once as a block rather than re-entering g() per row.
        metrics = np.array([self.metric(u) for u in u_batch])
        return self._margin(metrics)

    def fails(self, u: np.ndarray) -> bool:
        """Failure indicator at one point."""
        return self.g(u) <= 0.0

    def fails_batch(self, u_batch: np.ndarray) -> np.ndarray:
        """Failure indicators for a block."""
        return self.g_batch(u_batch) <= 0.0

    def fd_gradient(
        self,
        u: np.ndarray,
        step: float = 0.05,
        scheme: str = "central",
        g0: Optional[float] = None,
    ) -> np.ndarray:
        """Finite-difference gradient of ``g`` using one batched call.

        The whole stencil (2d points for central, d for forward) is
        evaluated through :meth:`g_batch`, so a vectorised engine prices
        a full gradient at roughly the cost of a handful of scalar
        simulations — the key economy behind the gradient MPFP search.
        """
        u = np.asarray(u, dtype=float)
        self._check(u)
        d = self.dim
        if scheme == "central":
            stencil = np.repeat(u[None, :], 2 * d, axis=0)
            for i in range(d):
                stencil[2 * i, i] += step
                stencil[2 * i + 1, i] -= step
            vals = self.g_batch(stencil)
            return (vals[0::2] - vals[1::2]) / (2.0 * step)
        if scheme == "forward":
            if g0 is None:
                g0 = self.g(u)
            stencil = np.repeat(u[None, :], d, axis=0)
            stencil[np.arange(d), np.arange(d)] += step
            vals = self.g_batch(stencil)
            return (vals - g0) / step
        raise EstimationError(f"unknown finite-difference scheme {scheme!r}")

    def spsa_gradient(
        self,
        u: np.ndarray,
        rng: np.random.Generator,
        step: float = 0.1,
        repeats: int = 4,
    ) -> np.ndarray:
        """Simultaneous-perturbation gradient (2×repeats batched evals).

        Cost independent of dimension — the option the paper's scaling
        argument needs once peripheral transistors push d past ~20.
        """
        u = np.asarray(u, dtype=float)
        self._check(u)
        deltas = rng.choice([-1.0, 1.0], size=(repeats, self.dim))
        stencil = np.concatenate([u + step * deltas, u - step * deltas], axis=0)
        vals = self.g_batch(stencil)
        fp, fm = vals[:repeats], vals[repeats:]
        grad = ((fp - fm)[:, None] / (2.0 * step * deltas)).mean(axis=0)
        return grad

    # ------------------------------------------------------------------

    def _check(self, u: np.ndarray) -> None:
        if u.shape != (self.dim,):
            raise EstimationError(
                f"{self.name}: u-vector shape {u.shape} does not match dim {self.dim}"
            )

    def reset_counter(self) -> None:
        """Zero the evaluation counter (cache is cleared too)."""
        self.n_evals = 0
        if self._cache is not None:
            self._cache.clear()

    def warmup(self) -> None:
        """Force lazy setup (circuit compiles) without billing anything.

        Evaluates one origin batch — which makes the compiled engines
        behind ``batch_fn`` build (or fetch from the plan cache) their
        transient plans — then restores the evaluation counter and the
        point cache to their prior snapshots, exactly the way the
        sharded runner's in-process retry path does.  An estimator run
        after ``warmup()`` is bit-identical to one on a cold limit
        state: the only residue is pure setup state (memoized compiled
        plans), never statistics.
        """
        n_evals = self.n_evals
        cache = None if self._cache is None else dict(self._cache)
        try:
            self.g_batch(np.zeros((1, self.dim)))
        finally:
            self.n_evals = n_evals
            if self._cache is not None:
                self._cache = cache

    def __repr__(self) -> str:
        return (
            f"LimitState({self.name!r}, dim={self.dim}, spec={self.spec:.4g}, "
            f"direction={self.direction!r}, evals={self.n_evals})"
        )
