"""Plain Monte Carlo estimation — the baseline every table starts from.

Nothing clever happens here on purpose: samples come from the standard
normal, the estimate is the failure fraction, and the confidence interval
is Wilson's (which, unlike the Wald interval, stays meaningful when the
failure count is 0 or 1 — the usual situation when plain MC meets a
high-sigma problem).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.sharding import (
    ShardedRunner,
    resolve_shards,
    run_sharded,
    scale_shard_target,
)
from repro.errors import EstimationError
from repro.highsigma.limitstate import LimitState
from repro.highsigma.results import EstimateResult

__all__ = ["MonteCarloEstimator", "wilson_interval"]


def wilson_interval(k: int, n: int, z: float = 1.96) -> tuple:
    """Wilson score interval for a binomial proportion."""
    if n <= 0:
        raise EstimationError("Wilson interval needs n > 0")
    if not 0 <= k <= n:
        raise EstimationError(f"failure count {k} outside [0, {n}]")
    p = k / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    half = z * np.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom
    return (max(0.0, centre - half), min(1.0, centre + half))


class MonteCarloEstimator:
    """Standard Monte Carlo with batched evaluation and early stopping.

    Parameters
    ----------
    limit_state:
        The failure oracle.
    n_max:
        Evaluation budget.
    batch_size:
        Samples per evaluation block (big blocks feed the vectorised
        engines efficiently).
    target_rel_err:
        Stop once the relative standard error of the estimate drops below
        this (None disables early stopping).
    workers:
        Worker processes for sharded sampling (1 = in-process).
    n_shards:
        Budget shards; ``None`` means ``workers``.  The estimate depends
        on the shard plan only, never on the worker count — see
        :mod:`repro.engine`.
    runner:
        Optional caller-owned :class:`~repro.engine.sharding.ShardedRunner`
        (e.g. a persistent one); ``None`` forks a fresh pool per round.
    """

    method_name = "mc"

    def __init__(
        self,
        limit_state: LimitState,
        n_max: int = 100000,
        batch_size: int = 4096,
        target_rel_err: Optional[float] = 0.1,
        workers: int = 1,
        n_shards: Optional[int] = None,
        runner: Optional[ShardedRunner] = None,
    ):
        self.ls = limit_state
        self.n_max = int(n_max)
        self.batch_size = int(batch_size)
        self.target_rel_err = target_rel_err
        self.workers = max(1, int(workers))
        self.n_shards = None if n_shards is None else max(1, int(n_shards))
        self.runner = runner

    def _sample_shard(self, rng: np.random.Generator, budget: int,
                      target: Optional[float] = None):
        """One shard's counting loop: ``(n_done, k_fail, converged)``.

        ``target`` is the shard-local relative-error stop; a sharded run
        passes ``target_rel_err * sqrt(n_shards)`` so that shard-level
        stops merge to ≈ the global target (each shard only holds 1/N of
        the failures the global criterion expects).
        """
        n_done = 0
        k_fail = 0
        converged = False
        while n_done < budget:
            m = min(self.batch_size, budget - n_done)
            u = rng.standard_normal((m, self.ls.dim))
            k_fail += int(self.ls.fails_batch(u).sum())
            n_done += m
            if target is not None and k_fail >= 10:
                p = k_fail / n_done
                rel = np.sqrt((1.0 - p) / (k_fail))
                if rel <= target:
                    converged = True
                    break
        return n_done, k_fail, converged

    def _shard_entry(self, shard_rng: np.random.Generator, budget: int):
        """Stable sharded-sampling entry point (one per estimator object,
        so persistent runners recognise repeat rounds of the same task)."""
        shards = resolve_shards(self.n_shards, self.workers)
        return self._sample_shard(
            shard_rng, budget, scale_shard_target(self.target_rel_err, shards)
        )

    def _global_converged(self, n_done: int, k_fail: int) -> bool:
        return bool(
            self.target_rel_err is not None
            and k_fail >= 10
            and np.sqrt((1.0 - k_fail / n_done) / k_fail) <= self.target_rel_err
        )

    def run(self, rng: Optional[np.random.Generator] = None) -> EstimateResult:
        """Sample until the budget or the target relative error is reached.

        Sharded runs stop cooperatively: if the merged counts miss the
        global target while shard budget sits stranded (shards stop at
        the ``sqrt(N)``-scaled local target), one top-up round re-shards
        the stranded budget before giving up.
        """
        rng = rng if rng is not None else np.random.default_rng()
        shards = resolve_shards(self.n_shards, self.workers)
        diagnostics = {}
        if shards <= 1:
            n_done, k_fail, converged = self._sample_shard(
                rng, self.n_max, self.target_rel_err
            )
        else:
            def sample_round(budget: int):
                payloads = run_sharded(
                    self._shard_entry, rng, shards, budget,
                    self.workers, self.ls, runner=self.runner,
                )
                return sum(p[0] for p in payloads), sum(p[1] for p in payloads)

            n_done, k_fail = sample_round(self.n_max)
            topup = 0
            if self.target_rel_err is not None:
                stranded = self.n_max - n_done
                if stranded > 0 and not self._global_converged(n_done, k_fail):
                    topup = stranded
                    nd, kf = sample_round(stranded)
                    n_done += nd
                    k_fail += kf
            converged = self._global_converged(n_done, k_fail)
            diagnostics.update(
                n_shards=shards, workers=self.workers, topup_samples=topup
            )
        p = k_fail / n_done
        std_err = float(np.sqrt(p * (1.0 - p) / n_done)) if n_done > 1 else float("inf")
        lo, hi = wilson_interval(k_fail, n_done)
        diagnostics["wilson_ci"] = (lo, hi)
        return EstimateResult(
            p_fail=p,
            std_err=std_err,
            n_evals=n_done,
            n_failures=k_fail,
            method=self.method_name,
            converged=converged,
            ess=float(n_done),
            diagnostics=diagnostics,
        )

    @staticmethod
    def required_samples(p_fail: float, rel_err: float = 0.1) -> float:
        """Samples plain MC needs for a target relative error.

        The classic infeasibility number: ``(1 - p) / (p * rel_err^2)``,
        e.g. ~1e11 samples for 10 % accuracy at 1e-9.
        """
        if not 0 < p_fail < 1:
            raise EstimationError("p_fail must be in (0, 1)")
        return (1.0 - p_fail) / (p_fail * rel_err**2)
