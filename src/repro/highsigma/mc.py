"""Plain Monte Carlo estimation — the baseline every table starts from.

Nothing clever happens here on purpose: samples come from the standard
normal, the estimate is the failure fraction, and the confidence interval
is Wilson's (which, unlike the Wald interval, stays meaningful when the
failure count is 0 or 1 — the usual situation when plain MC meets a
high-sigma problem).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import EstimationError
from repro.highsigma.limitstate import LimitState
from repro.highsigma.results import EstimateResult

__all__ = ["MonteCarloEstimator", "wilson_interval"]


def wilson_interval(k: int, n: int, z: float = 1.96) -> tuple:
    """Wilson score interval for a binomial proportion."""
    if n <= 0:
        raise EstimationError("Wilson interval needs n > 0")
    if not 0 <= k <= n:
        raise EstimationError(f"failure count {k} outside [0, {n}]")
    p = k / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    half = z * np.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom
    return (max(0.0, centre - half), min(1.0, centre + half))


class MonteCarloEstimator:
    """Standard Monte Carlo with batched evaluation and early stopping.

    Parameters
    ----------
    limit_state:
        The failure oracle.
    n_max:
        Evaluation budget.
    batch_size:
        Samples per evaluation block (big blocks feed the vectorised
        engines efficiently).
    target_rel_err:
        Stop once the relative standard error of the estimate drops below
        this (None disables early stopping).
    """

    method_name = "mc"

    def __init__(
        self,
        limit_state: LimitState,
        n_max: int = 100000,
        batch_size: int = 4096,
        target_rel_err: Optional[float] = 0.1,
    ):
        self.ls = limit_state
        self.n_max = int(n_max)
        self.batch_size = int(batch_size)
        self.target_rel_err = target_rel_err

    def run(self, rng: Optional[np.random.Generator] = None) -> EstimateResult:
        """Sample until the budget or the target relative error is reached."""
        rng = rng if rng is not None else np.random.default_rng()
        n_done = 0
        k_fail = 0
        converged = False
        while n_done < self.n_max:
            m = min(self.batch_size, self.n_max - n_done)
            u = rng.standard_normal((m, self.ls.dim))
            k_fail += int(self.ls.fails_batch(u).sum())
            n_done += m
            if self.target_rel_err is not None and k_fail >= 10:
                p = k_fail / n_done
                rel = np.sqrt((1.0 - p) / (k_fail))
                if rel <= self.target_rel_err:
                    converged = True
                    break
        p = k_fail / n_done
        std_err = float(np.sqrt(p * (1.0 - p) / n_done)) if n_done > 1 else float("inf")
        lo, hi = wilson_interval(k_fail, n_done)
        return EstimateResult(
            p_fail=p,
            std_err=std_err,
            n_evals=n_done,
            n_failures=k_fail,
            method=self.method_name,
            converged=converged,
            ess=float(n_done),
            diagnostics={"wilson_ci": (lo, hi)},
        )

    @staticmethod
    def required_samples(p_fail: float, rel_err: float = 0.1) -> float:
        """Samples plain MC needs for a target relative error.

        The classic infeasibility number: ``(1 - p) / (p * rel_err^2)``,
        e.g. ~1e11 samples for 10 % accuracy at 1e-9.
        """
        if not 0 < p_fail < 1:
            raise EstimationError("p_fail must be in (0, 1)")
        return (1.0 - p_fail) / (p_fail * rel_err**2)
