"""Cross-entropy adaptive importance sampling.

The adaptive-IS family the related-work sections of high-sigma papers
cite: instead of *searching* for a shift and sampling once, iterate —

1. sample from the current Gaussian proposal;
2. keep the *elite* fraction (the samples closest to, or inside, the
   failure region, ranked by the margin ``g``);
3. refit the proposal's mean (and optionally diagonal covariance) to the
   elites, tilting via a smoothing factor;
4. repeat until the elite threshold crosses ``g <= 0``, then run a final
   estimation round with defensive weights.

Strengths: no gradients needed, adapts covariance shape automatically.
Weaknesses the benchmarks expose: each adaptation level costs a full
batch of simulations (the gradient walk gets there in tens), and the
final proposal is only as good as the elite statistics of the last
level.  Included both as an honest baseline and as a useful fallback for
metrics too noisy for finite differences.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SearchError
from repro.highsigma.estimators import MeanShiftISCore
from repro.highsigma.limitstate import LimitState
from repro.highsigma.results import EstimateResult

__all__ = ["CrossEntropyIS"]


class CrossEntropyIS:
    """Cross-entropy method with a Gaussian family and defensive finish.

    Parameters
    ----------
    limit_state:
        Failure oracle (``g <= 0`` fails).
    n_per_level:
        Samples per adaptation level.
    elite_fraction:
        Fraction of each level kept to refit the proposal.
    smoothing:
        Mean/cov update smoothing in (0, 1]; 1 = replace outright.
    max_levels:
        Adaptation budget; exceeded ⇒ ``SearchError`` (never-failing
        metrics must not silently return a garbage proposal).
    adapt_cov:
        Refit a diagonal covariance from the elites as well as the mean.
    n_max / batch_size / target_rel_err / alpha / workers / n_shards:
        Final estimation stage, as in the other samplers (the adaptation
        levels stay serial — each level's refit needs the previous one).
    """

    method_name = "ce"

    def __init__(
        self,
        limit_state: LimitState,
        n_per_level: int = 500,
        elite_fraction: float = 0.1,
        smoothing: float = 0.8,
        max_levels: int = 20,
        adapt_cov: bool = True,
        n_max: int = 4000,
        batch_size: int = 256,
        target_rel_err: Optional[float] = 0.1,
        alpha: float = 0.1,
        workers: int = 1,
        n_shards: Optional[int] = None,
    ):
        if not 0.0 < elite_fraction < 1.0:
            raise SearchError(f"elite_fraction must be in (0,1), got {elite_fraction!r}")
        if not 0.0 < smoothing <= 1.0:
            raise SearchError(f"smoothing must be in (0,1], got {smoothing!r}")
        self.ls = limit_state
        self.n_per_level = int(n_per_level)
        self.elite_fraction = float(elite_fraction)
        self.smoothing = float(smoothing)
        self.max_levels = int(max_levels)
        self.adapt_cov = bool(adapt_cov)
        self.n_max = int(n_max)
        self.batch_size = int(batch_size)
        self.target_rel_err = target_rel_err
        self.alpha = float(alpha)
        self.workers = max(1, int(workers))
        self.n_shards = n_shards

    # ------------------------------------------------------------------

    def adapt(self, rng: np.random.Generator):
        """Run the adaptation levels; returns ``(mean, cov_diag, levels)``.

        The search keeps a *unit* covariance while the mean advances —
        refitting the covariance per level is the textbook way CE
        collapses prematurely (the elite cloud is thin along the advance
        direction, so the proposal shrinks faster than it moves).  The
        covariance is refit once, from the elites of the level that
        reached the failure region, with a floor that preserves
        exploration for the estimation stage.
        """
        d = self.ls.dim
        mean = np.zeros(d)
        cov = np.ones(d)
        n_elite = max(2, int(self.n_per_level * self.elite_fraction))
        for level in range(1, self.max_levels + 1):
            u = mean + rng.standard_normal((self.n_per_level, d))
            g = self.ls.g_batch(u)
            order = np.argsort(g)
            elites = u[order[:n_elite]]
            g_threshold = g[order[n_elite - 1]]
            new_mean = elites.mean(axis=0)
            mean = self.smoothing * new_mean + (1 - self.smoothing) * mean
            if g_threshold <= 0.0:
                if self.adapt_cov and n_elite >= 4:
                    cov = np.clip(elites.var(axis=0, ddof=1), 0.2, 4.0)
                return mean, cov, level
        raise SearchError(
            f"{self.ls.name}: cross-entropy did not reach the failure region "
            f"in {self.max_levels} levels ({self.max_levels * self.n_per_level} sims)"
        )

    def run(self, rng: Optional[np.random.Generator] = None) -> EstimateResult:
        """Adaptation + defensive mean-shift estimation."""
        rng = rng if rng is not None else np.random.default_rng()
        evals_before = self.ls.n_evals
        mean, cov, levels = self.adapt(rng)
        search_evals = self.ls.n_evals - evals_before

        core = MeanShiftISCore(
            self.ls,
            shifts=[mean],
            cov=cov,
            alpha=self.alpha,
            batch_size=self.batch_size,
            n_max=self.n_max,
            target_rel_err=self.target_rel_err,
            workers=self.workers,
            n_shards=self.n_shards,
        )
        diagnostics = {
            "levels": levels,
            "search_evals": int(search_evals),
            "final_mean_norm": float(np.linalg.norm(mean)),
            "final_cov_diag": cov.tolist(),
        }
        return core.run(
            rng, method=self.method_name, extra_evals=search_evals,
            diagnostics=diagnostics,
        )
