"""The uniform result record every estimator returns.

Keeping one result type across Monte Carlo, the importance samplers and
scaled-sigma extrapolation is what makes the benchmark tables honest:
every method reports its probability, confidence interval, simulation
count and convergence diagnostics through exactly the same fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.highsigma.sigma import pfail_to_sigma

__all__ = ["EstimateResult"]


@dataclass
class EstimateResult:
    """Outcome of one failure-probability estimation run.

    Attributes
    ----------
    p_fail:
        Estimated failure probability.
    std_err:
        Standard error of the estimate (same scale as ``p_fail``).
    n_evals:
        Total limit-state (simulation) evaluations consumed, *including*
        any search / pre-sampling phases — the honest cost metric the
        speedup tables are built from.
    n_failures:
        Failing samples observed in the estimation phase.
    method:
        Short method tag (``"mc"``, ``"gis"``, ...).
    converged:
        Whether the run met its stopping criterion (as opposed to
        exhausting its budget).
    ess:
        Effective sample size of the estimation phase, when defined.
    diagnostics:
        Method-specific extras (MPFP vector, mixture weights, regression
        coefficients, ...).
    """

    p_fail: float
    std_err: float
    n_evals: int
    n_failures: int
    method: str
    converged: bool = True
    ess: Optional[float] = None
    diagnostics: Dict = field(default_factory=dict)

    @property
    def sigma_level(self) -> float:
        """Equivalent sigma of the estimated failure probability."""
        return float(pfail_to_sigma(self.p_fail))

    @property
    def rel_err(self) -> float:
        """Relative standard error (the figure of merit rho = sigma/mu)."""
        if self.p_fail <= 0:
            return float("inf")
        return self.std_err / self.p_fail

    def ci(self, z: float = 1.96) -> tuple:
        """Normal-approximation confidence interval, clipped to [0, 1]."""
        lo = max(0.0, self.p_fail - z * self.std_err)
        hi = min(1.0, self.p_fail + z * self.std_err)
        return (lo, hi)

    def log10_p(self) -> float:
        """log10 of the estimate (convenient for convergence plots)."""
        if self.p_fail <= 0:
            return float("-inf")
        return float(np.log10(self.p_fail))

    def summary(self) -> str:
        """One-line human-readable report."""
        lo, hi = self.ci()
        return (
            f"[{self.method}] p_fail={self.p_fail:.3e} "
            f"(sigma={self.sigma_level:.3f}, CI95=[{lo:.3e}, {hi:.3e}]) "
            f"evals={self.n_evals} failures={self.n_failures} "
            f"{'converged' if self.converged else 'budget-limited'}"
        )
