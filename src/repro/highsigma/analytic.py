"""Limit states with closed-form failure probabilities.

Judging an estimator's accuracy requires truth, and "truth" from a finite
golden Monte Carlo run is itself noisy exactly where it matters (at 5–6
sigma even 10^7 samples see nothing).  These limit states provide exact
references:

* :class:`LinearLimitState` — a hyperplane at distance ``beta``;
  ``P = Phi(-beta)``.  The canonical single-failure-region case.
* :class:`HypersphereLimitState` — failure outside radius ``R``;
  ``P = P(chi^2_d > R^2)``.  Radially symmetric: the worst case for any
  single mean-shift method, an honest stress test.
* :class:`UnionLimitState` — union of hyperplanes with *orthonormal*
  normals, exact by inclusion–exclusion over independent events.  The
  multi-failure-region case that breaks single-MPFP samplers.
* :class:`QuadraticLimitState` — curved boundary
  ``g = beta + (kappa/2)*||u_perp||^2 - u_para``; exact probability by
  1-D quadrature over the chi-square radial density.  Curvature is what
  separates FORM (which would report ``Phi(-beta)``) from sampling
  methods, so this is the key accuracy workload.
* :class:`SramSurrogateLimitState` — a quadratic-response surrogate with
  coefficients shaped like the 6T read-access response; same quadrature
  trick for the exact reference.  Used where thousands of repeated runs
  would make the real simulator benches too slow (estimator-stability
  and dimension-scaling experiments).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import integrate, stats

from repro.errors import EstimationError
from repro.highsigma.limitstate import LimitState

__all__ = [
    "LinearLimitState",
    "HypersphereLimitState",
    "UnionLimitState",
    "QuadraticLimitState",
    "SramSurrogateLimitState",
]


def _unit(v: np.ndarray) -> np.ndarray:
    v = np.asarray(v, dtype=float)
    n = float(np.linalg.norm(v))
    if n == 0:
        raise EstimationError("direction vector must be non-zero")
    return v / n


class LinearLimitState(LimitState):
    """Hyperplane failure boundary: ``g(u) = beta - a^T u``.

    Failure is the half-space ``a^T u >= beta`` with ``a`` a unit vector,
    so ``exact_pfail() = Phi(-beta)`` for any dimension.
    """

    def __init__(self, beta: float, dim: int, direction: Optional[np.ndarray] = None):
        if beta <= 0:
            raise EstimationError(f"beta must be positive, got {beta!r}")
        self.beta = float(beta)
        if direction is None:
            a = np.zeros(dim)
            a[0] = 1.0
        else:
            a = _unit(direction)
            if a.size != dim:
                raise EstimationError("direction length does not match dim")
        self.a = a
        # Bound methods (not closures) keep the limit state picklable, so
        # it can cross a spawn pool's pickle pipe.
        super().__init__(
            fn=self._metric,
            batch_fn=self._metric_batch,
            spec=self.beta,
            dim=dim,
            direction="upper",
            name=f"linear(beta={beta:g}, d={dim})",
            cache=False,
        )

    def _metric(self, u):
        return float(self.a @ u)

    def _metric_batch(self, ub):
        return ub @ self.a

    def exact_pfail(self) -> float:
        """Closed-form failure probability."""
        return float(stats.norm.sf(self.beta))

    def gradient(self, u: np.ndarray) -> np.ndarray:
        """Exact gradient of g (constant ``-a``)."""
        return -self.a


class HypersphereLimitState(LimitState):
    """Failure outside the sphere of radius ``R``: ``g(u) = R - ||u||``."""

    def __init__(self, radius: float, dim: int):
        if radius <= 0:
            raise EstimationError(f"radius must be positive, got {radius!r}")
        self.radius = float(radius)
        super().__init__(
            fn=self._metric,
            batch_fn=self._metric_batch,
            spec=self.radius,
            dim=dim,
            direction="upper",
            name=f"sphere(R={radius:g}, d={dim})",
            cache=False,
        )

    def _metric(self, u):
        return float(np.linalg.norm(u))

    def _metric_batch(self, ub):
        return np.linalg.norm(ub, axis=1)

    def exact_pfail(self) -> float:
        """``P(chi^2_d > R^2)`` — exact for any dimension."""
        return float(stats.chi2.sf(self.radius**2, self.dim))


class UnionLimitState(LimitState):
    """Union of hyperplane failure regions with orthonormal normals.

    ``g(u) = min_k (beta_k - a_k^T u)``; because the normals are
    orthonormal, the events ``{a_k^T u >= beta_k}`` are independent and
    ``P = 1 - prod_k (1 - Phi(-beta_k))`` exactly.  With well-separated
    betas this is the canonical multiple-failure-region stress case.
    """

    def __init__(self, betas: Sequence[float], dim: int):
        betas = np.asarray(betas, dtype=float)
        if betas.ndim != 1 or betas.size < 1:
            raise EstimationError("betas must be a non-empty 1-D sequence")
        if betas.size > dim:
            raise EstimationError("cannot have more orthonormal normals than dimensions")
        if np.any(betas <= 0):
            raise EstimationError("all betas must be positive")
        self.betas = betas
        k = betas.size
        # Normals are the first k coordinate axes: orthonormal by construction.
        self.normals = np.eye(dim)[:k]

        super().__init__(
            fn=self._margin_metric,
            batch_fn=self._margin_metric_batch,
            spec=0.0,
            dim=dim,
            direction="lower",
            name=f"union(betas={list(map(float, betas))}, d={dim})",
            cache=False,
        )

    def _margin_metric(self, u):
        return float(np.min(self.betas - self.normals @ u))

    def _margin_metric_batch(self, ub):
        return np.min(self.betas[None, :] - ub @ self.normals.T, axis=1)

    def exact_pfail(self) -> float:
        """Inclusion–exclusion over independent half-spaces."""
        return float(1.0 - np.prod(stats.norm.cdf(self.betas)))

    def mpfp_points(self) -> np.ndarray:
        """All local most-probable failure points (one per hyperplane)."""
        return self.normals * self.betas[:, None]


class QuadraticLimitState(LimitState):
    """Curved failure boundary: ``g(u) = beta + (kappa/2)||u_perp||^2 - u_1``.

    ``u_1`` is the coordinate along the failure direction and ``u_perp``
    the remaining ``d-1`` coordinates.  ``kappa > 0`` curves the boundary
    away from the origin (failure region is convex, smaller than the FORM
    half-space estimate); ``kappa < 0`` curves it toward the origin.

    Conditioning on ``Q = ||u_perp||^2 ~ chi^2_{d-1}``:
    ``P = E[ Phi(-(beta + kappa/2 * Q)) ]`` — evaluated by adaptive
    quadrature to ~1e-12 relative accuracy, which is "exact" for every
    comparison in this repository.
    """

    def __init__(self, beta: float, dim: int, kappa: float = 0.1):
        if beta <= 0:
            raise EstimationError(f"beta must be positive, got {beta!r}")
        if dim < 2:
            raise EstimationError("quadratic limit state needs dim >= 2")
        self.beta = float(beta)
        self.kappa = float(kappa)

        super().__init__(
            fn=self._metric,
            batch_fn=self._metric_batch,
            spec=self.beta,
            dim=dim,
            direction="upper",
            name=f"quadratic(beta={beta:g}, kappa={kappa:g}, d={dim})",
            cache=False,
        )

    def _metric(self, u):
        return float(u[0] - 0.5 * self.kappa * np.sum(u[1:] ** 2))

    def _metric_batch(self, ub):
        return ub[:, 0] - 0.5 * self.kappa * np.sum(ub[:, 1:] ** 2, axis=1)

    def exact_pfail(self) -> float:
        """Quadrature of ``Phi(-(beta + kappa/2 q))`` against chi^2_{d-1}."""
        df = self.dim - 1

        def integrand(q):
            return stats.norm.sf(self.beta + 0.5 * self.kappa * q) * stats.chi2.pdf(q, df)

        upper = stats.chi2.isf(1e-14, df)
        value, _err = integrate.quad(integrand, 0.0, upper, limit=400)
        return float(value)


class SramSurrogateLimitState(LimitState):
    """Quadratic-response surrogate of the 6T read-access metric.

    The modelled metric is::

        T(u) = t0 + a * s + b * s^2 + c * ||u_perp||^2,   s = w^T u

    with ``w`` the dominant sensitivity direction (pass-gate and pull-down
    threshold shifts slow the read; their signs are baked into the default
    ``w``).  This is the shape a second-order response-surface fit of the
    real bench produces, at ~10^6 times the evaluation speed.

    Exact reference: conditioning on ``Q = ||u_perp||^2 ~ chi^2_{d-1}``
    (independent of ``s ~ N(0,1)``), the failure event is a quadratic
    inequality in ``s`` solved in closed form per ``q`` and integrated by
    quadrature.
    """

    #: Default direction, shaped like the read-access sensitivity of the
    #: 6T cell in canonical device order (pg/pd of the low side dominate).
    DEFAULT_W6 = np.array([0.05, 0.45, 0.70, -0.10, -0.25, 0.47])

    def __init__(
        self,
        spec: float,
        dim: int = 6,
        t0: float = 32e-12,
        a: float = 4.2e-12,
        b: float = 0.55e-12,
        c: float = 0.12e-12,
        w: Optional[np.ndarray] = None,
    ):
        if w is None:
            if dim == 6:
                w = self.DEFAULT_W6.copy()
            else:
                w = np.ones(dim)
        self.w = _unit(np.asarray(w, dtype=float))
        if self.w.size != dim:
            raise EstimationError("w length does not match dim")
        self.t0, self.a, self.b, self.c = float(t0), float(a), float(b), float(c)
        if self.b < 0 or self.c < 0:
            raise EstimationError("surrogate curvature coefficients must be >= 0")

        super().__init__(
            fn=self._metric,
            batch_fn=self._metric_batch,
            spec=float(spec),
            dim=dim,
            direction="upper",
            name=f"sram-surrogate(spec={spec:.3e}, d={dim})",
            cache=False,
        )

    def _metric(self, u):
        s = float(self.w @ u)
        perp2 = float(u @ u) - s * s
        return self.t0 + self.a * s + self.b * s * s + self.c * perp2

    def _metric_batch(self, ub):
        s = ub @ self.w
        perp2 = np.sum(ub * ub, axis=1) - s * s
        return self.t0 + self.a * s + self.b * s * s + self.c * perp2

    def exact_pfail(self) -> float:
        """Quadrature over the perpendicular chi-square radius."""
        df = self.dim - 1
        a, b, c, t0 = self.a, self.b, self.c, self.t0
        tau = self.spec

        def p_fail_given_q(q):
            # Solve a*s + b*s^2 >= tau - t0 - c*q for s ~ N(0, 1).
            rhs = tau - t0 - c * q
            if b == 0.0:
                if a == 0.0:
                    return 1.0 if rhs <= 0 else 0.0
                edge = rhs / a
                return stats.norm.sf(edge) if a > 0 else stats.norm.cdf(edge)
            disc = a * a + 4.0 * b * rhs
            if disc <= 0.0:
                # Parabola entirely above rhs: always failing.
                return 1.0
            root = np.sqrt(disc)
            s_lo = (-a - root) / (2.0 * b)
            s_hi = (-a + root) / (2.0 * b)
            # b > 0: failure outside [s_lo, s_hi].
            return stats.norm.cdf(s_lo) + stats.norm.sf(s_hi)

        def integrand(q):
            return p_fail_given_q(q) * stats.chi2.pdf(q, df)

        upper = stats.chi2.isf(1e-14, df)
        value, _err = integrate.quad(integrand, 0.0, upper, limit=400)
        return float(value)

    @classmethod
    def spec_for_sigma(cls, sigma_target: float, dim: int = 6, **kwargs) -> float:
        """Find the spec whose exact failure probability sits at ``sigma_target``.

        Bisection on the monotone spec → P_fail map; used by experiments
        to place workloads at exactly 4, 5 or 6 sigma.
        """
        target = float(stats.norm.sf(sigma_target))
        lo, hi = 20e-12, 200e-12
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            p = cls(spec=mid, dim=dim, **kwargs).exact_pfail()
            if p > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
