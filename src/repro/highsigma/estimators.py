"""Importance-sampling math shared by every sampler in this package.

Contents:

* log-densities of the standard normal, shifted Gaussians and defensive
  mixtures (all in log space — importance weights at 6 sigma span hundreds
  of orders of magnitude);
* the unnormalised IS estimator with its variance, effective sample size
  and figure of merit;
* :class:`MeanShiftISCore`, the estimation stage shared by gradient IS,
  minimum-norm IS and spherical-search IS — the three methods differ only
  in *how they find the shift vector*, so sharing the sampler is both less
  code and a fairer comparison.

The estimation stage streams its batches into a
:class:`repro.engine.accumulator.StreamingAccumulator` (O(1) state per
batch) and can split its budget across worker processes through
:class:`repro.engine.sharding.ShardedRunner`; see :mod:`repro.engine`
for the determinism contract.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats
from scipy.special import logsumexp

from repro.engine.accumulator import StreamingAccumulator
from repro.engine.sharding import (
    ShardedRunner,
    resolve_shards,
    run_sharded,
    scale_shard_target,
)
from repro.errors import EstimationError
from repro.highsigma.limitstate import LimitState
from repro.highsigma.results import EstimateResult

__all__ = [
    "log_std_normal_pdf",
    "GaussianProposal",
    "DefensiveMixture",
    "is_estimate",
    "effective_sample_size",
    "MeanShiftISCore",
]


def log_std_normal_pdf(u: np.ndarray) -> np.ndarray:
    """Log-density of the d-dimensional standard normal, row-wise."""
    u = np.atleast_2d(np.asarray(u, dtype=float))
    d = u.shape[1]
    return -0.5 * d * np.log(2.0 * np.pi) - 0.5 * np.sum(u * u, axis=1)


class GaussianProposal:
    """A multivariate normal proposal ``N(mean, cov)``.

    ``cov`` may be a scalar (isotropic), a 1-D array (diagonal) or a full
    matrix.  Sampling and log-density go through a Cholesky factor
    computed once.
    """

    def __init__(self, mean: np.ndarray, cov=1.0):
        self.mean = np.asarray(mean, dtype=float)
        d = self.mean.size
        cov = np.asarray(cov, dtype=float)
        if cov.ndim == 0:
            cov_mat = np.eye(d) * float(cov)
        elif cov.ndim == 1:
            if cov.size != d:
                raise EstimationError(f"diagonal cov size {cov.size} != dim {d}")
            cov_mat = np.diag(cov)
        else:
            if cov.shape != (d, d):
                raise EstimationError(f"cov shape {cov.shape} != ({d}, {d})")
            cov_mat = cov
        try:
            self._chol = np.linalg.cholesky(cov_mat)
        except np.linalg.LinAlgError:
            raise EstimationError("proposal covariance is not positive definite") from None
        self._log_det = 2.0 * np.sum(np.log(np.diag(self._chol)))
        self.dim = d

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` samples, shape ``(n, d)``."""
        z = rng.standard_normal((n, self.dim))
        return self.mean + z @ self._chol.T

    def logpdf(self, u: np.ndarray) -> np.ndarray:
        """Row-wise log-density."""
        u = np.atleast_2d(np.asarray(u, dtype=float))
        diff = u - self.mean
        # Solve L y = diff^T for the Mahalanobis norm.
        y = np.linalg.solve(self._chol, diff.T)
        maha = np.sum(y * y, axis=0)
        return -0.5 * (self.dim * np.log(2.0 * np.pi) + self._log_det + maha)


class DefensiveMixture:
    """Defensive mixture ``alpha * N(0, I) + sum_k w_k * N(mu_k, cov_k)``.

    The standard-normal component bounds the importance weights by
    ``1/alpha`` (Owen & Zhou's "safe" construction), which keeps the
    estimator variance finite even when the shift misjudges the failure
    region — the practical difference between an IS run that degrades
    gracefully and one that silently reports garbage.
    """

    def __init__(
        self,
        shifted: Sequence[GaussianProposal],
        alpha: float = 0.1,
        weights: Optional[Sequence[float]] = None,
    ):
        if not 0.0 <= alpha < 1.0:
            raise EstimationError(f"defensive weight alpha must be in [0, 1), got {alpha!r}")
        if not shifted:
            raise EstimationError("mixture needs at least one shifted component")
        self.alpha = float(alpha)
        self.components: List[GaussianProposal] = list(shifted)
        dims = {c.dim for c in self.components}
        if len(dims) != 1:
            raise EstimationError("mixture components disagree on dimension")
        self.dim = dims.pop()
        if weights is None:
            w = np.full(len(self.components), (1.0 - alpha) / len(self.components))
        else:
            w = np.asarray(weights, dtype=float)
            if w.size != len(self.components) or np.any(w < 0):
                raise EstimationError("bad mixture weights")
            w = w / w.sum() * (1.0 - alpha)
        self.weights = w

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` samples from the mixture (``n=0`` gives an empty block)."""
        if n <= 0:
            return np.empty((0, self.dim))
        probs = np.concatenate(([self.alpha], self.weights))
        counts = rng.multinomial(n, probs / probs.sum())
        parts = []
        if counts[0] > 0:
            parts.append(rng.standard_normal((counts[0], self.dim)))
        for c, k in zip(self.components, counts[1:]):
            if k > 0:
                parts.append(c.sample(int(k), rng))
        out = np.concatenate(parts, axis=0)
        rng.shuffle(out)
        return out

    def sample_qmc(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Quasi-random mixture samples (scrambled Sobol).

        Components get a *deterministic proportional* share of the points
        (Owen's stratified-mixture allocation) and each share is a
        scrambled Sobol sequence pushed through the component's Gaussian
        transform.  Combined with the exact mixture-density weights this
        stays consistent while cutting the estimator variance on smooth
        integrands — the QMC ablation quantifies by how much.
        """
        if n <= 0:
            return np.empty((0, self.dim))
        probs = np.concatenate(([self.alpha], self.weights))
        probs = probs / probs.sum()
        counts = np.floor(probs * n).astype(int)
        # Distribute the remainder to the largest fractional parts.
        remainder = n - counts.sum()
        if remainder > 0:
            frac = probs * n - counts
            counts[np.argsort(frac)[::-1][:remainder]] += 1
        parts = []
        for idx, k in enumerate(counts):
            if k <= 0:
                continue
            engine = stats.qmc.Sobol(
                d=self.dim, scramble=True, seed=rng.integers(1 << 31)
            )
            # Sobol balance wants powers of two: draw the next one up and
            # truncate (the scramble keeps the truncation unbiased).
            pow2 = 1 << (int(k) - 1).bit_length()
            quantiles = engine.random(pow2)[: int(k)]
            # Guard the open interval for the probit transform.
            quantiles = np.clip(quantiles, 1e-12, 1.0 - 1e-12)
            z = stats.norm.ppf(quantiles)
            if idx == 0:
                parts.append(z)
            else:
                comp = self.components[idx - 1]
                parts.append(comp.mean + z @ comp._chol.T)
        return np.concatenate(parts, axis=0)

    def logpdf(self, u: np.ndarray) -> np.ndarray:
        """Row-wise log-density of the mixture."""
        u = np.atleast_2d(np.asarray(u, dtype=float))
        logs = [np.log(max(self.alpha, 1e-300)) + log_std_normal_pdf(u)]
        for c, w in zip(self.components, self.weights):
            logs.append(np.log(max(w, 1e-300)) + c.logpdf(u))
        return logsumexp(np.stack(logs, axis=0), axis=0)

    def log_weights(self, u: np.ndarray) -> np.ndarray:
        """Log importance weights ``log phi(u) - log q(u)``."""
        return log_std_normal_pdf(u) - self.logpdf(u)


def is_estimate(log_w: np.ndarray, fails: np.ndarray) -> Tuple[float, float]:
    """Unnormalised IS estimate of the failure probability and its std error.

    ``log_w`` are log importance weights, ``fails`` boolean indicators.
    The estimator is ``mean(w * I)``; its variance is the sample variance
    of ``w * I`` over n.  Weights of non-failing samples contribute zeros
    (but still count in n, as they must).
    """
    log_w = np.asarray(log_w, dtype=float)
    fails = np.asarray(fails, dtype=bool)
    if log_w.shape != fails.shape:
        raise EstimationError("log-weights and indicators must have equal shapes")
    n = log_w.size
    if n == 0:
        raise EstimationError("cannot estimate from zero samples")
    contrib = np.zeros(n)
    contrib[fails] = np.exp(log_w[fails])
    p = float(np.mean(contrib))
    if n > 1:
        var = float(np.var(contrib, ddof=1)) / n
    else:
        var = float("inf")
    return p, float(np.sqrt(var))


def effective_sample_size(log_w: np.ndarray, fails: np.ndarray) -> float:
    """Kish effective sample size of the *failing* weights.

    ``(sum w)^2 / sum w^2`` over failure contributions — the usual sanity
    check that the estimate is not carried by a handful of huge weights.
    Returns 0.0 when nothing failed.
    """
    log_w = np.asarray(log_w, dtype=float)[np.asarray(fails, dtype=bool)]
    if log_w.size == 0:
        return 0.0
    num = 2.0 * logsumexp(log_w)
    den = logsumexp(2.0 * log_w)
    return float(np.exp(num - den))


class MeanShiftISCore:
    """Estimation stage shared by the mean-shift importance samplers.

    Given one or more shift vectors (from a gradient MPFP search, a
    minimum-norm pre-search, or a spherical search), build the defensive
    mixture proposal and run batched sampling until the target relative
    error or the evaluation budget is reached.

    The sampling loop streams every batch into a
    :class:`~repro.engine.accumulator.StreamingAccumulator` — O(batch)
    work per batch, no re-reduction of the history — and optionally
    splits the budget into deterministic shards executed by a
    :class:`~repro.engine.sharding.ShardedRunner`.  The estimate depends
    on the shard plan (``n_shards``), never on ``workers``: the same
    plan run serially or on four processes is bit-identical.

    Parameters
    ----------
    workers:
        Worker processes for the sharded path (1 = in-process).
    n_shards:
        Number of budget shards.  ``None`` means ``workers`` (so the
        default single-worker run keeps the classic single-stream RNG
        consumption); pin it explicitly when comparing runs across
        machines with different worker counts.
    runner:
        Optional caller-owned :class:`~repro.engine.sharding.ShardedRunner`
        (e.g. a persistent one) used for the sharded sampling rounds;
        ``None`` forks a fresh pool per round.
    """

    def __init__(
        self,
        limit_state: LimitState,
        shifts: Sequence[np.ndarray],
        cov=1.0,
        alpha: float = 0.1,
        batch_size: int = 256,
        n_max: int = 20000,
        target_rel_err: Optional[float] = 0.1,
        min_batches: int = 2,
        sampler: str = "random",
        workers: int = 1,
        n_shards: Optional[int] = None,
        runner: Optional[ShardedRunner] = None,
    ):
        if sampler not in ("random", "qmc"):
            raise EstimationError(f"unknown sampler {sampler!r}")
        self.ls = limit_state
        comps = [GaussianProposal(np.asarray(s, dtype=float), cov) for s in shifts]
        self.proposal = DefensiveMixture(comps, alpha=alpha)
        self.batch_size = int(batch_size)
        self.n_max = int(n_max)
        self.target_rel_err = target_rel_err
        self.min_batches = int(min_batches)
        self.sampler = sampler
        self.workers = max(1, int(workers))
        self.n_shards = None if n_shards is None else max(1, int(n_shards))
        self.runner = runner

    def _sample_shard(
        self, rng: np.random.Generator, budget: int, target: Optional[float] = None
    ) -> Tuple[StreamingAccumulator, int, bool]:
        """One shard's batched sampling loop: O(1) state per batch.

        ``target`` is the shard-local relative-error stop.  A sharded run
        passes ``target_rel_err * sqrt(n_shards)``: each shard holds 1/N
        of the samples, so a shard-level relative error of ``t*sqrt(N)``
        merges to ≈``t`` overall — without the scaling, no shard could
        ever meet the global target on its fraction of the budget and
        sharding would silently disable early stopping.
        """
        acc = StreamingAccumulator()
        n_drawn = 0
        batches = 0
        converged = False
        while n_drawn < budget:
            k = min(self.batch_size, budget - n_drawn)
            if self.sampler == "qmc":
                u = self.proposal.sample_qmc(k, rng)
            else:
                u = self.proposal.sample(k, rng)
            fails = self.ls.fails_batch(u)
            log_w = self.proposal.log_weights(u)
            acc.update(log_w, fails)
            n_drawn += k
            batches += 1
            if target is not None and batches >= self.min_batches:
                p, se = acc.estimate()
                if p > 0 and se / p <= target:
                    converged = True
                    break
        return acc, n_drawn, converged

    def _shard_entry(self, shard_rng: np.random.Generator, budget: int):
        """Stable sharded-sampling entry point (one per estimator object,
        so persistent runners recognise repeat rounds of the same task)."""
        shards = resolve_shards(self.n_shards, self.workers)
        return self._sample_shard(
            shard_rng, budget, scale_shard_target(self.target_rel_err, shards)
        )

    def run(self, rng: np.random.Generator, method: str, extra_evals: int = 0,
            diagnostics: Optional[dict] = None) -> EstimateResult:
        """Sample until converged or out of budget; return the result.

        ``extra_evals`` is the search-phase cost to fold into ``n_evals``.

        Sharded runs stop cooperatively: shards stop independently at the
        ``sqrt(N)``-scaled shard target, so after the merge the global
        target can be missed while shard budget sits stranded; in that
        case one top-up round re-shards the stranded budget instead of
        returning ``converged=False`` with samples unspent.
        """
        shards = resolve_shards(self.n_shards, self.workers)
        diag = dict(diagnostics or {})
        if shards <= 1:
            acc, n_drawn, converged = self._sample_shard(
                rng, self.n_max, self.target_rel_err
            )
        else:
            acc = StreamingAccumulator()
            n_drawn = 0
            shard_converged = []

            def sample_round(budget: int) -> int:
                drawn = 0
                payloads = run_sharded(
                    self._shard_entry, rng, shards, budget,
                    self.workers, self.ls, runner=self.runner,
                )
                for shard_acc, nd, conv in payloads:
                    acc.merge(shard_acc)
                    drawn += nd
                    shard_converged.append(bool(conv))
                return drawn

            n_drawn += sample_round(self.n_max)
            topup = 0
            if self.target_rel_err is not None:
                stranded = self.n_max - n_drawn
                p, se = acc.estimate()
                if stranded > 0 and not (p > 0 and se / p <= self.target_rel_err):
                    topup = stranded
                    n_drawn += sample_round(stranded)
            converged = False  # decided from the merged moments below
            diag.update(
                n_shards=shards,
                workers=self.workers,
                shard_converged=shard_converged,
                topup_samples=topup,
            )
        p, se = acc.estimate()
        if shards > 1:
            converged = bool(
                self.target_rel_err is not None
                and p > 0
                and se / p <= self.target_rel_err
            )
        diag.update(
            n_sampling=n_drawn,
            alpha=self.proposal.alpha,
            n_components=len(self.proposal.components),
        )
        return EstimateResult(
            p_fail=p,
            std_err=se,
            n_evals=n_drawn + extra_evals,
            n_failures=acc.n_fail,
            method=method,
            converged=converged,
            ess=acc.ess(),
            diagnostics=diag,
        )
