"""FORM and SORM: analytic estimates from the most probable failure point.

The classical structural-reliability estimates the gradient search makes
available for free:

* **FORM** (first-order reliability method): linearise the boundary at
  the MPFP; ``P ≈ Phi(-beta)`` with ``beta = ||u*||``.  Exact for
  hyperplanes, biased wherever the boundary curves — the bias the paper
  contrasts sampling against.
* **SORM** (second-order, Breitung's formula): correct FORM with the
  boundary's principal curvatures at the MPFP,
  ``P ≈ Phi(-beta) * prod_i 1/sqrt(1 + beta * kappa_i)``.
  Curvatures come from a finite-difference Hessian of ``g`` projected on
  the tangent plane — d(d+1)/2 extra simulations, still far below any
  sampling budget.

These are *estimates without error bars*: use them for quick scans and
as the initial shift diagnostics, not as sign-off numbers.  The GIS
estimator remains the measurement instrument.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.errors import EstimationError
from repro.highsigma.limitstate import LimitState
from repro.highsigma.mpfp import MpfpOptions, MpfpResult, MpfpSearch
from repro.highsigma.results import EstimateResult

__all__ = ["form_estimate", "sorm_estimate", "tangent_hessian_curvatures"]


def form_estimate(
    limit_state: LimitState,
    mpfp: Optional[MpfpResult] = None,
    mpfp_options: Optional[MpfpOptions] = None,
) -> EstimateResult:
    """First-order estimate ``Phi(-beta)`` from a gradient MPFP search.

    Pass a precomputed ``mpfp`` to reuse a search; otherwise one is run
    (and billed through the limit state's counter as usual).
    """
    evals_before = limit_state.n_evals
    if mpfp is None:
        mpfp = MpfpSearch(limit_state, options=mpfp_options).run()
    if not mpfp.near_boundary():
        raise EstimationError(
            f"{limit_state.name}: MPFP search did not reach the failure "
            "boundary; FORM estimate would be meaningless"
        )
    p = float(stats.norm.sf(mpfp.beta))
    return EstimateResult(
        p_fail=p,
        std_err=float("nan"),  # FORM carries model error, not sampling error
        n_evals=limit_state.n_evals - evals_before,
        n_failures=0,
        method="form",
        converged=mpfp.converged,
        diagnostics={"beta": mpfp.beta, "u_star": mpfp.u_star.tolist()},
    )


def tangent_hessian_curvatures(
    limit_state: LimitState,
    u_star: np.ndarray,
    fd_step: float = 0.1,
) -> np.ndarray:
    """Principal curvatures of the failure boundary at the MPFP.

    Builds the finite-difference Hessian of ``g`` restricted to the
    tangent plane of the boundary at ``u_star`` (the subspace orthogonal
    to the MPFP direction), normalises by the gradient magnitude along
    the MPFP direction, and returns its eigenvalues — the ``kappa_i`` in
    Breitung's formula.  Cost: ``2*(d-1)^2 + O(d)`` evaluations via the
    batched path.
    """
    u_star = np.asarray(u_star, dtype=float)
    d = u_star.size
    beta = float(np.linalg.norm(u_star))
    if beta <= 0:
        raise EstimationError("MPFP at the origin; curvatures undefined")
    e_n = u_star / beta

    # Orthonormal tangent basis via QR of a projector-completed frame.
    basis = np.eye(d) - np.outer(e_n, e_n)
    q, _r = np.linalg.qr(basis)
    # Drop the column aligned with e_n (smallest projection residual).
    alignment = np.abs(q.T @ e_n)
    tangent = q[:, np.argsort(alignment)[: d - 1]]

    # Gradient magnitude along the normal (for normalisation).
    step_n = fd_step
    g_plus = limit_state.g(u_star + step_n * e_n)
    g_minus = limit_state.g(u_star - step_n * e_n)
    dg_dn = (g_plus - g_minus) / (2.0 * step_n)
    if abs(dg_dn) < 1e-300:
        raise EstimationError("vanishing normal derivative at the MPFP")

    # FD Hessian on the tangent plane, evaluated in one batched block.
    m = d - 1
    points = [u_star]
    for i in range(m):
        points.append(u_star + fd_step * tangent[:, i])
        points.append(u_star - fd_step * tangent[:, i])
    for i in range(m):
        for j in range(i + 1, m):
            ti, tj = tangent[:, i], tangent[:, j]
            points.append(u_star + fd_step * (ti + tj))
            points.append(u_star + fd_step * (ti - tj))
            points.append(u_star - fd_step * (ti - tj))
            points.append(u_star - fd_step * (ti + tj))
    values = limit_state.g_batch(np.array(points))

    g0 = values[0]
    hess = np.empty((m, m))
    k = 1
    for i in range(m):
        gp, gm = values[k], values[k + 1]
        k += 2
        hess[i, i] = (gp - 2.0 * g0 + gm) / fd_step**2
    for i in range(m):
        for j in range(i + 1, m):
            gpp, gpm, gmp, gmm = values[k], values[k + 1], values[k + 2], values[k + 3]
            k += 4
            hess[i, j] = hess[j, i] = (gpp - gpm - gmp + gmm) / (4.0 * fd_step**2)

    # On the boundary, g(beta*e_n + v + dn*e_n) = 0 gives
    # dn = -(v^T H_t v) / (2 dg/dn), i.e. the surface is
    # u_n = beta + v^T K v / 2 with K = -H_t / (dg/dn) — the *signed*
    # normal derivative matters (it is negative when failure lies in the
    # +e_n direction, which is the usual orientation here).
    curv = -hess / dg_dn
    return np.linalg.eigvalsh(curv)


def sorm_estimate(
    limit_state: LimitState,
    mpfp: Optional[MpfpResult] = None,
    fd_step: float = 0.1,
    mpfp_options: Optional[MpfpOptions] = None,
) -> EstimateResult:
    """Breitung's second-order correction of the FORM estimate.

    ``P ≈ Phi(-beta) * prod_i (1 + beta * kappa_i)^{-1/2}``; curvatures
    with ``1 + beta*kappa <= 0`` are clipped just above zero (the formula
    is asymptotic and breaks down there — the diagnostics note it).
    """
    evals_before = limit_state.n_evals
    if mpfp is None:
        mpfp = MpfpSearch(limit_state, options=mpfp_options).run()
    if not mpfp.near_boundary():
        raise EstimationError(
            f"{limit_state.name}: MPFP search did not reach the failure "
            "boundary; SORM estimate would be meaningless"
        )
    beta = mpfp.beta
    kappas = tangent_hessian_curvatures(limit_state, mpfp.u_star, fd_step=fd_step)
    factors = 1.0 + beta * kappas
    clipped = bool(np.any(factors <= 1e-6))
    factors = np.maximum(factors, 1e-6)
    p = float(stats.norm.sf(beta) / np.sqrt(np.prod(factors)))
    return EstimateResult(
        p_fail=min(p, 1.0),
        std_err=float("nan"),
        n_evals=limit_state.n_evals - evals_before,
        n_failures=0,
        method="sorm",
        converged=mpfp.converged and not clipped,
        diagnostics={
            "beta": beta,
            "curvatures": kappas.tolist(),
            "clipped": clipped,
        },
    )
