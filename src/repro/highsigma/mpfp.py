"""Gradient-driven most-probable-failure-point (MPFP) search.

The MPFP (design point, in structural-reliability language) is the
failure-region point closest to the origin in u-space:

    u* = argmin ||u||  subject to  g(u) <= 0.

Because the standard-normal density decays with ``exp(-||u||^2/2)``, the
failure probability mass concentrates around u*, which is why a Gaussian
mean-shifted there is a near-optimal importance distribution.

The search is the improved Hasofer–Lind–Rackwitz–Fiessler (iHL-RF)
iteration: each step linearises ``g`` with a (finite-difference or
user-supplied) gradient, jumps to the closest point of the linearised
boundary, and damps the jump with an Armijo backtracking line search on
the standard merit function ``m(u) = ||u||^2 / 2 + c |g(u)|``.  This is
the *gradient* part of gradient importance sampling: where blind
pre-sampling methods spend thousands of simulations hunting for a first
failure, the gradient walks straight down the margin surface in tens.

All limit-state evaluations (including those inside finite-difference
gradients) are billed through the limit state's counter — search cost is
part of every reported evaluation count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import SearchError
from repro.highsigma.limitstate import LimitState

__all__ = ["MpfpOptions", "MpfpResult", "MpfpSearch"]


@dataclass(frozen=True)
class MpfpOptions:
    """Search controls.

    ``fd_step`` must comfortably exceed the simulator's metric noise
    (adaptive-timestep jitter is ~0.1 % of a delay; a 0.05-sigma
    parameter step moves a 6T read delay by percents, so the default is
    safely above the noise floor).
    """

    max_iterations: int = 60
    fd_step: float = 0.05
    grad_mode: str = "central"  # "central" | "forward" | "spsa"
    spsa_repeats: int = 4
    tol_g: float = 1e-3         # |g|/scale at convergence
    tol_align: float = 5e-3     # 1 - cos(u, -grad) at convergence
    min_grad_norm: float = 1e-12
    armijo_shrink: float = 0.5
    armijo_max_backtracks: int = 8


@dataclass
class MpfpResult:
    """Search outcome.

    ``beta`` is the reliability index ``||u*||`` — the headline number a
    FORM analysis would report as the sigma level.  ``trajectory`` holds
    ``(u, g)`` pairs per accepted iterate for the search-cost figure.
    """

    u_star: np.ndarray
    beta: float
    g_value: float
    iterations: int
    n_evals: int
    converged: bool
    trajectory: List[Tuple[np.ndarray, float]] = field(default_factory=list)
    message: str = ""
    g_start: float = float("nan")

    def near_boundary(self, rel: float = 0.2) -> bool:
        """Whether the returned point actually sits near ``g = 0``.

        ``converged=False`` results can still be serviceable shift points
        — but only if the margin shrank substantially relative to where
        the search started; a flat or failure-free metric never passes.
        """
        if self.converged or self.g_value <= 0.0:
            return True
        scale = abs(self.g_start)
        if not np.isfinite(scale) or scale == 0.0:
            return False
        return abs(self.g_value) < rel * scale


class MpfpSearch:
    """iHL-RF search over a :class:`~repro.highsigma.limitstate.LimitState`.

    Parameters
    ----------
    limit_state:
        The margin field; failure is ``g <= 0``.
    options:
        Iteration controls.
    grad_fn:
        Optional exact gradient ``grad_fn(u) -> array`` (analytic limit
        states); otherwise finite differences per ``options.grad_mode``.
    """

    def __init__(
        self,
        limit_state: LimitState,
        options: Optional[MpfpOptions] = None,
        grad_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        self.ls = limit_state
        self.opts = options or MpfpOptions()
        self._grad_fn = grad_fn

    # ------------------------------------------------------------------

    def _gradient(self, u: np.ndarray, g_u: float, rng: np.random.Generator) -> np.ndarray:
        if self._grad_fn is not None:
            return np.asarray(self._grad_fn(u), dtype=float)
        opts = self.opts
        if opts.grad_mode in ("central", "forward"):
            return self.ls.fd_gradient(u, step=opts.fd_step, scheme=opts.grad_mode, g0=g_u)
        if opts.grad_mode == "spsa":
            return self.ls.spsa_gradient(
                u, rng, step=opts.fd_step, repeats=opts.spsa_repeats
            )
        raise SearchError(f"unknown grad_mode {self.opts.grad_mode!r}")

    def run(
        self,
        u0: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> MpfpResult:
        """Search from ``u0`` (origin by default); returns the design point.

        Raises :class:`~repro.errors.SearchError` only for setup problems;
        a search that merely fails to meet tolerances returns with
        ``converged=False`` so callers can decide (the GIS driver falls
        back to the best iterate, which is usually serviceable).
        """
        rng = rng if rng is not None else np.random.default_rng()
        opts = self.opts
        evals_before = self.ls.n_evals

        u = np.zeros(self.ls.dim) if u0 is None else np.asarray(u0, dtype=float).copy()
        g_u = self.ls.g(u)
        # Normalise g by its magnitude at the start point so tolerances and
        # the merit function are scale-free (metrics are seconds or volts).
        scale = abs(g_u)
        if scale < 1e-300:
            scale = 1.0
        trajectory: List[Tuple[np.ndarray, float]] = [(u.copy(), g_u)]
        converged = False
        message = "max iterations reached"
        best = (float("inf"), u.copy(), g_u)

        for iteration in range(1, opts.max_iterations + 1):
            grad = self._gradient(u, g_u, rng)
            grad_norm = float(np.linalg.norm(grad))
            if grad_norm < opts.min_grad_norm * scale:
                # Flat spot (deep in a penalty plateau or a dead metric):
                # kick in a random direction rather than dividing by ~0.
                u = u + rng.standard_normal(self.ls.dim) * 0.5
                g_u = self.ls.g(u)
                trajectory.append((u.copy(), g_u))
                continue

            gn = g_u / scale
            gradn = grad / scale

            # Convergence check: on the boundary and anti-aligned with grad.
            u_norm = float(np.linalg.norm(u))
            if u_norm > 0:
                cos = float(-(u @ gradn) / (u_norm * np.linalg.norm(gradn)))
                aligned = (1.0 - cos) < opts.tol_align
            else:
                aligned = False
            if abs(gn) < opts.tol_g and aligned:
                converged = True
                message = f"converged in {iteration - 1} iterations"
                break

            # HL-RF step target: closest point on the linearised boundary.
            target = ((gradn @ u - gn) / float(gradn @ gradn)) * gradn
            direction = target - u

            # Armijo backtracking on the merit function
            # m(u) = 0.5 ||u||^2 + c |g(u)| with the standard c rule.
            c_merit = 2.0 * u_norm / np.linalg.norm(gradn) + 10.0
            m_u = 0.5 * u_norm**2 + c_merit * abs(gn)
            lam = 1.0
            accepted = False
            for _ in range(opts.armijo_max_backtracks):
                u_try = u + lam * direction
                g_try = self.ls.g(u_try)
                m_try = 0.5 * float(u_try @ u_try) + c_merit * abs(g_try / scale)
                if m_try < m_u - 1e-4 * lam * float(direction @ direction):
                    u, g_u = u_try, g_try
                    accepted = True
                    break
                lam *= opts.armijo_shrink
            if not accepted:
                # Take the smallest step anyway; stagnation is handled by
                # the iteration cap.
                u = u + lam * direction
                g_u = self.ls.g(u)

            trajectory.append((u.copy(), g_u))
            if abs(g_u / scale) < 10 * opts.tol_g:
                norm_now = float(np.linalg.norm(u))
                if norm_now < best[0]:
                    best = (norm_now, u.copy(), g_u)

        if not converged and best[0] < float("inf"):
            # Fall back to the best near-boundary iterate seen.
            _norm, u, g_u = best
            message += "; returning best near-boundary iterate"

        return MpfpResult(
            u_star=u,
            beta=float(np.linalg.norm(u)),
            g_value=g_u,
            iterations=len(trajectory) - 1,
            n_evals=self.ls.n_evals - evals_before,
            converged=converged,
            trajectory=trajectory,
            message=message,
            g_start=trajectory[0][1],
        )
