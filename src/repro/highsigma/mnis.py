"""Minimum-norm (mixture) importance sampling — the pre-sampling baseline.

The classic SRAM importance-sampling recipe (Kanj, Joshi & Nassif,
DAC'06 and descendants):

**Stage 1 — blind pre-sampling.**  Draw a cloud of samples from a widened
distribution (uniform box or scaled normal), simulate all of them, and
keep the failures.  The failing point of minimum norm approximates the
most probable failure point.

**Stage 2 — mean-shift IS** at that point, identical to gradient IS's
stage 2 (shared :class:`~repro.highsigma.estimators.MeanShiftISCore`), so
the methods differ *only* in the search stage — exactly the comparison
the paper's tables isolate.

The known weakness this baseline exhibits (and the reason gradient search
wins): at 5-plus sigma a pre-sampling cloud wide enough to hit failures
is so wide that its minimum-norm failure point is a noisy estimate of the
true MPFP, and the simulations spent on non-failing pre-samples are pure
overhead.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SearchError
from repro.highsigma.estimators import MeanShiftISCore
from repro.highsigma.limitstate import LimitState
from repro.highsigma.results import EstimateResult

__all__ = ["MinimumNormIS"]


class MinimumNormIS:
    """Pre-sampling + mean-shift importance sampling.

    Parameters
    ----------
    limit_state:
        Failure oracle.
    n_presample:
        Pre-sampling cloud size per attempt.
    presample_scale:
        Standard deviation (``"scaled-normal"`` mode) or half-width in
        sigma units (``"uniform"`` mode) of the cloud.
    presample_mode:
        ``"scaled-normal"`` or ``"uniform"`` (the original Kanj choice).
    max_retries:
        If no pre-sample fails, the scale is multiplied by 1.5 and the
        stage retried, up to this many times (all billed).
    refine:
        Keep the ``refine`` smallest-norm failures and average them for a
        slightly more stable centre (1 = plain minimum-norm).
    ray_refine:
        Bisect along the origin→centre ray to pull the centre back to the
        failure boundary (the standard norm-minimisation touch-up; costs
        ``n_bisect`` extra simulations and removes most of the outward
        bias of a wide pre-sampling cloud).
    """

    method_name = "mnis"

    def __init__(
        self,
        limit_state: LimitState,
        n_presample: int = 1000,
        presample_scale: float = 3.0,
        presample_mode: str = "scaled-normal",
        max_retries: int = 3,
        refine: int = 1,
        ray_refine: bool = True,
        n_bisect: int = 10,
        n_max: int = 4000,
        batch_size: int = 256,
        target_rel_err: Optional[float] = 0.1,
        alpha: float = 0.1,
        cov_widen: float = 1.0,
        workers: int = 1,
        n_shards: Optional[int] = None,
    ):
        if presample_mode not in ("scaled-normal", "uniform"):
            raise SearchError(f"unknown presample mode {presample_mode!r}")
        self.ls = limit_state
        self.n_presample = int(n_presample)
        self.presample_scale = float(presample_scale)
        self.presample_mode = presample_mode
        self.max_retries = int(max_retries)
        self.refine = max(1, int(refine))
        self.ray_refine = bool(ray_refine)
        self.n_bisect = int(n_bisect)
        self.n_max = int(n_max)
        self.batch_size = int(batch_size)
        self.target_rel_err = target_rel_err
        self.alpha = float(alpha)
        self.cov_widen = float(cov_widen)
        self.workers = max(1, int(workers))
        self.n_shards = n_shards

    # ------------------------------------------------------------------

    def presample_centre(self, rng: np.random.Generator) -> np.ndarray:
        """Stage 1: find the minimum-norm failing point of the cloud."""
        scale = self.presample_scale
        d = self.ls.dim
        for _attempt in range(self.max_retries + 1):
            if self.presample_mode == "scaled-normal":
                cloud = rng.standard_normal((self.n_presample, d)) * scale
            else:
                cloud = rng.uniform(-scale, scale, size=(self.n_presample, d))
            fails = self.ls.fails_batch(cloud)
            if fails.any():
                failing = cloud[fails]
                norms = np.linalg.norm(failing, axis=1)
                order = np.argsort(norms)[: self.refine]
                centre = failing[order].mean(axis=0)
                if self.ray_refine and self.ls.fails(centre):
                    # Pull the centre back to the boundary along its ray.
                    lo, hi = 0.0, 1.0
                    for _ in range(self.n_bisect):
                        mid = 0.5 * (lo + hi)
                        if self.ls.fails(centre * mid):
                            hi = mid
                        else:
                            lo = mid
                    centre = centre * hi
                return centre
            scale *= 1.5
        raise SearchError(
            f"{self.ls.name}: no failures in {self.max_retries + 1} pre-sampling "
            f"attempts of {self.n_presample} samples (final scale {scale:.2f})"
        )

    def run(self, rng: Optional[np.random.Generator] = None) -> EstimateResult:
        """Full two-stage estimation."""
        rng = rng if rng is not None else np.random.default_rng()
        evals_before = self.ls.n_evals
        centre = self.presample_centre(rng)
        search_evals = self.ls.n_evals - evals_before

        core = MeanShiftISCore(
            self.ls,
            shifts=[centre],
            cov=self.cov_widen,
            alpha=self.alpha,
            batch_size=self.batch_size,
            n_max=self.n_max,
            target_rel_err=self.target_rel_err,
            workers=self.workers,
            n_shards=self.n_shards,
        )
        diagnostics = {
            "centre": centre.tolist(),
            "centre_norm": float(np.linalg.norm(centre)),
            "search_evals": int(search_evals),
            "presample_mode": self.presample_mode,
        }
        return core.run(
            rng, method=self.method_name, extra_evals=search_evals, diagnostics=diagnostics
        )
