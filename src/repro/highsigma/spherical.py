"""Spherical radius-search importance sampling.

The "geometric" blind-search baseline (in the spirit of hypersphere /
shifted-spherical IS methods): instead of a diffuse pre-sampling cloud,
probe u-space shell by shell —

1. sample ``m`` directions uniformly on the unit sphere;
2. walk the radius ladder outward until some direction fails;
3. bisect along the first failing direction to land on the boundary;
4. mean-shift IS at that boundary point (shared
   :class:`~repro.highsigma.estimators.MeanShiftISCore`).

Compared with gradient search this needs no gradient but wastes
``m × (shells before first failure)`` simulations and lands wherever the
*sampled direction set* first touches the failure region — at high
dimension the chance any of ``m`` random directions aligns with the true
MPFP direction decays rapidly, which is the effect the dimension-scaling
experiment (F5) quantifies.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import SearchError
from repro.highsigma.estimators import MeanShiftISCore
from repro.highsigma.limitstate import LimitState
from repro.highsigma.results import EstimateResult

__all__ = ["SphericalSearchIS"]


class SphericalSearchIS:
    """Shell search + mean-shift importance sampling."""

    method_name = "spherical"

    def __init__(
        self,
        limit_state: LimitState,
        n_directions: int = 32,
        r_start: float = 1.0,
        r_step: float = 0.5,
        r_max: float = 10.0,
        n_bisect: int = 8,
        max_escalations: int = 2,
        n_max: int = 4000,
        batch_size: int = 256,
        target_rel_err: Optional[float] = 0.1,
        alpha: float = 0.1,
        cov_widen: float = 1.0,
        workers: int = 1,
        n_shards: Optional[int] = None,
    ):
        self.ls = limit_state
        self.n_directions = int(n_directions)
        self.r_start = float(r_start)
        self.r_step = float(r_step)
        self.r_max = float(r_max)
        self.n_bisect = int(n_bisect)
        self.max_escalations = int(max_escalations)
        self.n_max = int(n_max)
        self.batch_size = int(batch_size)
        self.target_rel_err = target_rel_err
        self.alpha = float(alpha)
        self.cov_widen = float(cov_widen)
        self.workers = max(1, int(workers))
        self.n_shards = n_shards

    # ------------------------------------------------------------------

    def search_centre(self, rng: np.random.Generator) -> Tuple[np.ndarray, float]:
        """Stage 1: outward shell sweep, then radial bisection.

        Returns ``(centre, radius)``.
        """
        d = self.ls.dim
        n_dirs = self.n_directions
        r_max = self.r_max
        for escalation in range(self.max_escalations + 1):
            directions = rng.standard_normal((n_dirs, d))
            directions /= np.linalg.norm(directions, axis=1, keepdims=True)
            r_prev = 0.0
            r = self.r_start
            while r <= r_max + 1e-12:
                g_vals = self.ls.g_batch(directions * r)
                if (g_vals <= 0.0).any():
                    # Bisect along the failing direction of smallest g —
                    # the deepest probe into the failure region this
                    # shell found (the most-negative margin is failing
                    # whenever anything is; NaN margins from diverged
                    # samples are masked so argmin cannot land on one;
                    # ties break to the first, as before).
                    g_sel = np.where(np.isnan(g_vals), np.inf, g_vals)
                    direction = directions[np.argmin(g_sel)]
                    lo, hi = r_prev, r
                    for _ in range(self.n_bisect):
                        mid = 0.5 * (lo + hi)
                        if self.ls.fails(direction * mid):
                            hi = mid
                        else:
                            lo = mid
                    radius = hi
                    return direction * radius, radius
                r_prev = r
                r += self.r_step
            if escalation == self.max_escalations:
                # Report the direction count and ceiling the failed
                # attempt actually used, not the next escalation's
                # widened values.
                raise SearchError(
                    f"{self.ls.name}: no failing direction within radius "
                    f"{r_max:.1f} using {n_dirs} directions after "
                    f"{self.max_escalations} escalations"
                )
            # No hit: widen the direction set and the radius ceiling —
            # this is exactly how the cost of blind search explodes with
            # dimension (experiment F5 quantifies it).
            n_dirs *= 4
            r_max *= 1.5
        raise SearchError("radius search exited its escalation loop unexpectedly")

    def run(self, rng: Optional[np.random.Generator] = None) -> EstimateResult:
        """Full two-stage estimation."""
        rng = rng if rng is not None else np.random.default_rng()
        evals_before = self.ls.n_evals
        centre, radius = self.search_centre(rng)
        search_evals = self.ls.n_evals - evals_before

        core = MeanShiftISCore(
            self.ls,
            shifts=[centre],
            cov=self.cov_widen,
            alpha=self.alpha,
            batch_size=self.batch_size,
            n_max=self.n_max,
            target_rel_err=self.target_rel_err,
            workers=self.workers,
            n_shards=self.n_shards,
        )
        diagnostics = {
            "centre": centre.tolist(),
            "centre_norm": float(radius),
            "search_evals": int(search_evals),
        }
        return core.run(
            rng, method=self.method_name, extra_evals=search_evals, diagnostics=diagnostics
        )
