"""Scaled-sigma sampling (SSS) — the extrapolation baseline.

Sun & Li's DAC'14 idea: failures that are invisible at the true sigma
become common if every variation source is inflated by a scale ``s > 1``.
Sample at several scales, fit the analytically-motivated model

    log P(s) = alpha + beta * log(s) - gamma / s**2

and extrapolate to ``s = 1``: ``log P(1) = alpha - gamma``.

The model follows from the dominant-term expansion of the failure
integral: the ``exp(-beta_r^2 / (2 s^2))`` factor of the shifted Gaussian
mass gives the ``-gamma/s^2`` term, and the boundary-geometry prefactor
contributes the ``s^beta`` power law.

Strengths: needs no failure-region geometry at all, works when the
failure region is weird.  Weaknesses the benchmarks reproduce: the
extrapolation variance is much larger than a well-shifted IS estimate at
equal budget, and a mis-fit of the power-law term biases P(1) by factors.
Uncertainty is quantified by a parametric bootstrap over the per-scale
binomial counts.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.engine.sharding import ShardedRunner, resolve_shards, run_sharded
from repro.errors import EstimationError
from repro.highsigma.limitstate import LimitState
from repro.highsigma.results import EstimateResult

__all__ = ["ScaledSigmaSampling", "fit_sss_model"]


def fit_sss_model(
    scales: np.ndarray, p_hat: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Weighted least-squares fit of ``log p = a + b log s - c / s^2``.

    Weights are the failure counts — the delta-method variance of
    ``log p_hat`` is ``(1 - p)/(n p) ≈ 1/k``, so ``k`` is the natural
    inverse-variance weight.  Returns ``(a, b, c)``.
    """
    scales = np.asarray(scales, dtype=float)
    p_hat = np.asarray(p_hat, dtype=float)
    counts = np.asarray(counts, dtype=float)
    if scales.size < 3:
        raise EstimationError(
            f"scaled-sigma regression needs >= 3 usable scales, got {scales.size}"
        )
    y = np.log(p_hat)
    x = np.stack([np.ones_like(scales), np.log(scales), -1.0 / scales**2], axis=1)
    w = np.sqrt(counts)
    coef, *_ = np.linalg.lstsq(x * w[:, None], y * w, rcond=None)
    return coef


class ScaledSigmaSampling:
    """SSS estimator.

    Parameters
    ----------
    limit_state:
        Failure oracle.
    scales:
        Sigma-inflation factors; must all be > 1 and should span a factor
        of ~2 for a stable regression.
    n_per_scale:
        Monte Carlo samples at each scale.
    min_failures:
        Scales with fewer failures than this are dropped from the fit
        (their ``log p_hat`` is too noisy to help).
    n_bootstrap:
        Parametric bootstrap replicates for the standard error.
    workers:
        Worker processes for sharded sampling (1 = in-process).
    n_shards:
        Shards the per-scale budget splits into; ``None`` means
        ``workers``.  The counts depend on the shard plan only, never on
        the worker count — see :mod:`repro.engine`.
    runner:
        Optional caller-owned :class:`~repro.engine.sharding.ShardedRunner`
        (e.g. a persistent one); ``None`` forks a fresh pool per run.
    """

    method_name = "sss"

    def __init__(
        self,
        limit_state: LimitState,
        scales: Sequence[float] = (1.6, 2.0, 2.5, 3.2, 4.0),
        n_per_scale: int = 2000,
        min_failures: int = 5,
        n_bootstrap: int = 300,
        workers: int = 1,
        n_shards: Optional[int] = None,
        runner: Optional[ShardedRunner] = None,
    ):
        scales = tuple(float(s) for s in scales)
        if any(s <= 1.0 for s in scales):
            raise EstimationError("all SSS scales must exceed 1.0")
        self.ls = limit_state
        self.scales = scales
        self.n_per_scale = int(n_per_scale)
        self.min_failures = int(min_failures)
        self.n_bootstrap = int(n_bootstrap)
        self.workers = max(1, int(workers))
        self.n_shards = None if n_shards is None else max(1, int(n_shards))
        self.runner = runner

    def _count_shard(self, rng: np.random.Generator, budget: int) -> np.ndarray:
        """Failure counts per scale for one shard of the per-scale budget."""
        d = self.ls.dim
        counts = np.zeros(len(self.scales), dtype=int)
        for i, s in enumerate(self.scales):
            u = rng.standard_normal((budget, d)) * s
            counts[i] = int(self.ls.fails_batch(u).sum())
        return counts

    def _sample_counts(self, rng: np.random.Generator) -> np.ndarray:
        """Per-scale failure counts, serial or sharded across workers."""
        shards = resolve_shards(self.n_shards, self.workers)
        if shards <= 1:
            return self._count_shard(rng, self.n_per_scale)
        payloads = run_sharded(
            self._count_shard, rng, shards, self.n_per_scale, self.workers, self.ls,
            runner=self.runner,
        )
        return np.sum(payloads, axis=0)

    def _bootstrap_log_p(
        self, rng: np.random.Generator, s_use: np.ndarray, p_use: np.ndarray
    ) -> np.ndarray:
        """Parametric bootstrap of ``log P(1)``: resample per-scale counts.

        Replicates refit with the *same* ``min_failures`` threshold the
        main fit applied — letting replicates keep scales with a single
        failure (which the main fit would have dropped as too noisy)
        systematically understates the spread and biases the error bar.
        Returns the finite replicate values.
        """
        boot = np.empty(self.n_bootstrap)
        for b in range(self.n_bootstrap):
            k_b = rng.binomial(self.n_per_scale, p_use)
            ok = k_b >= self.min_failures
            if ok.sum() < 3:
                boot[b] = np.nan
                continue
            coef_b = fit_sss_model(s_use[ok], k_b[ok] / self.n_per_scale, k_b[ok])
            boot[b] = coef_b[0] - coef_b[2]
        return boot[np.isfinite(boot)]

    def run(self, rng: Optional[np.random.Generator] = None) -> EstimateResult:
        """Sample every scale, fit, extrapolate, bootstrap the error bar."""
        rng = rng if rng is not None else np.random.default_rng()
        evals_before = self.ls.n_evals

        counts = self._sample_counts(rng)
        n_evals = self.ls.n_evals - evals_before

        usable = counts >= self.min_failures
        if usable.sum() < 3:
            raise EstimationError(
                f"{self.ls.name}: only {int(usable.sum())} scales produced >= "
                f"{self.min_failures} failures; increase n_per_scale or scales"
            )
        s_use = np.array(self.scales)[usable]
        k_use = counts[usable]
        p_use = k_use / self.n_per_scale

        coef = fit_sss_model(s_use, p_use, k_use)
        log_p1 = coef[0] - coef[2]
        p1 = float(np.exp(log_p1))

        boot = self._bootstrap_log_p(rng, s_use, p_use)
        if boot.size >= 10:
            # Standard error of p via the log-scale bootstrap spread.
            log_se = float(np.std(boot, ddof=1))
            std_err = p1 * (np.exp(log_se) - 1.0) if log_se < 5 else float("inf")
            ci_log = (
                float(np.quantile(boot, 0.025)),
                float(np.quantile(boot, 0.975)),
            )
        else:
            std_err = float("inf")
            ci_log = (float("-inf"), float("inf"))

        return EstimateResult(
            p_fail=p1,
            std_err=float(std_err),
            n_evals=n_evals,
            n_failures=int(counts.sum()),
            method=self.method_name,
            converged=bool(np.isfinite(std_err)),
            ess=None,
            diagnostics={
                "scales": list(self.scales),
                "counts": counts.tolist(),
                "coefficients": coef.tolist(),
                "log_p1_ci95": ci_log,
                "usable_scales": s_use.tolist(),
            },
        )
