"""Failure-probability ↔ sigma-level and array-yield conversions.

SRAM yield is conventionally quoted in "sigma": the equivalent one-sided
standard-normal quantile of the per-cell failure probability,
``sigma = -Phi^{-1}(p_fail)``.  A 1 Mb array with a 0.1 % repairable
budget needs per-cell failure rates around 1e-9, i.e. a "6-sigma" cell —
which is exactly why plain Monte Carlo (≈ 1e10 simulations for 10 %
relative error at 1e-9) is infeasible and this library exists.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ConfigError

__all__ = ["pfail_to_sigma", "sigma_to_pfail", "array_yield", "cells_per_failure"]


def pfail_to_sigma(p_fail) -> np.ndarray:
    """Equivalent sigma level of a failure probability.

    ``p_fail = Phi(-sigma)``, so ``sigma = -Phi^{-1}(p_fail)``.  Uses the
    inverse-survival-function for full precision at tiny probabilities.
    Values outside ``(0, 1)`` map to ``inf`` / ``-inf``.
    """
    p = np.asarray(p_fail, dtype=float)
    with np.errstate(invalid="ignore"):
        out = stats.norm.isf(p)
    return out if out.shape else float(out)


def sigma_to_pfail(sigma) -> np.ndarray:
    """Failure probability at a sigma level: ``Phi(-sigma)``."""
    s = np.asarray(sigma, dtype=float)
    out = stats.norm.sf(s)
    return out if out.shape else float(out)


def array_yield(p_fail: float, n_cells: float, n_repair: int = 0) -> float:
    """Probability that an array of ``n_cells`` has ≤ ``n_repair`` bad cells.

    With independent cell failures the bad-cell count is binomial; for the
    tiny ``p_fail`` regimes of interest the Poisson limit is exact to
    machine precision and numerically robust, so it is used directly.
    """
    if not 0.0 <= p_fail <= 1.0:
        raise ConfigError(f"p_fail must be a probability, got {p_fail!r}")
    if n_cells <= 0:
        raise ConfigError(f"n_cells must be positive, got {n_cells!r}")
    lam = p_fail * n_cells
    return float(stats.poisson.cdf(n_repair, lam))


def cells_per_failure(p_fail: float) -> float:
    """Expected number of cells per failing cell (headline-number helper)."""
    if p_fail <= 0:
        return float("inf")
    return 1.0 / p_fail
