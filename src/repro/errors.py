"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate simulator convergence problems from user
configuration mistakes.

Diagnostic-carrying errors (:class:`DiagnosticError` and its subclasses)
additionally expose a machine-readable ``code`` (one of the registered
``N0xx``/``P0xx``/``D0xx`` codes in
:data:`repro.spice.diagnostics.DIAGNOSTIC_CODES`) and the full list of
:class:`~repro.spice.diagnostics.Diagnostic` findings that triggered the
raise, so tooling can report structured findings instead of parsing
messages.
"""

from __future__ import annotations

from typing import Optional, Sequence


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Raised for malformed circuit descriptions.

    Examples: duplicate element names, references to undeclared model
    cards, or an element wired to a node name that is empty.
    """


class ConvergenceError(ReproError):
    """Raised when a Newton solve (DC or a transient step) fails to converge.

    Carries the iteration count and the final residual norm so calling code
    (for example the high-sigma samplers, which must treat non-convergent
    samples deliberately) can log meaningful diagnostics.
    """

    def __init__(self, message: str, iterations: int = -1, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SimulationError(ReproError):
    """Raised for non-convergence-related simulation failures.

    Examples: a transient analysis asked to run for non-positive time, or a
    timestep underflow after repeated rejections.
    """


class MeasurementError(ReproError):
    """Raised when a waveform measurement cannot be computed.

    The classic case is a delay measurement whose trigger or target
    crossing never happens inside the simulated window; dynamic-stability
    metrics rely on catching this to classify a sample as a functional
    failure rather than a numerical accident.
    """


class EstimationError(ReproError):
    """Raised when a statistical estimator cannot produce a result.

    For example: an importance-sampling run that observed zero failures, or
    a scaled-sigma regression with too few non-degenerate points to fit.
    """


class SearchError(ReproError):
    """Raised when the most-probable-failure-point search fails.

    Typically means no failure direction could be found within the allowed
    simulation budget; samplers surface this to the user rather than
    silently returning a garbage shift vector.
    """


class ConfigError(ReproError, ValueError):
    """Raised for invalid user-supplied configuration.

    Examples: a variation matrix whose shape disagrees with the device
    count, a negative column height, an unknown leakage-data mode.  Also a
    :class:`ValueError` so existing callers that catch the builtin keep
    working.
    """


class DiagnosticError(ReproError):
    """Base for errors that carry structured static-analysis findings.

    ``code`` is the primary diagnostic code (``N0xx`` netlist, ``P0xx``
    plan, ``D0xx`` determinism; see
    :data:`repro.spice.diagnostics.DIAGNOSTIC_CODES`), and ``diagnostics``
    holds every :class:`~repro.spice.diagnostics.Diagnostic` collected
    before the raise (possibly just the one matching ``code``).
    """

    def __init__(
        self,
        message: str,
        code: Optional[str] = None,
        diagnostics: Sequence[object] = (),
    ):
        super().__init__(message)
        self.code = code
        self.diagnostics = tuple(diagnostics)


class LintError(DiagnosticError, NetlistError):
    """Raised when the netlist linter finds error-severity problems.

    Also a :class:`NetlistError`: strict compilation turns structural
    lint findings into the same class of failure a malformed netlist
    produces.
    """


class CompileError(DiagnosticError, SimulationError):
    """Raised when the batched compiler rejects a circuit, with a code.

    Also a :class:`SimulationError` (the class the compiler historically
    raised), so ``except SimulationError`` call sites keep working.
    """


class PlanAuditError(DiagnosticError, SimulationError):
    """Raised when :func:`repro.spice.audit.assert_plan_clean` finds a
    malformed compiled plan — the admission gate for cached or
    remotely-deserialized plans."""


class RequestError(DiagnosticError, ConfigError):
    """Raised when a :mod:`repro.api` request fails eager validation.

    Carries one of the stable ``A0xx`` codes from
    :data:`repro.spice.diagnostics.DIAGNOSTIC_CODES` (unknown workload,
    unknown knob, malformed envelope, ...), so the HTTP service can map
    it onto a structured 4xx JSON body without parsing the message.
    Also a :class:`ConfigError` (hence a :class:`ValueError`): the CLI
    and library callers that already treat configuration mistakes as
    exit-2 usage errors keep working unchanged.
    """


class ShardExecutionError(EstimationError):
    """Raised when a shard exhausts its retry budget.

    Carries the shard index, the number of attempts actually made, and
    the last underlying failure (``cause``), so callers can distinguish
    "one shard kept timing out" from "the estimator itself is broken".
    Also an :class:`EstimationError`: a lost shard means the estimate
    could not be produced.
    """

    def __init__(
        self,
        message: str,
        shard_index: int = -1,
        attempts: int = 0,
        cause: Optional[BaseException] = None,
    ):
        super().__init__(message)
        self.shard_index = shard_index
        self.attempts = attempts
        self.cause = cause


class JournalError(DiagnosticError, EstimationError):
    """Raised when a run journal fails its admission audit.

    A journal that does not match the current shard plan (``D005``), or
    that carries duplicate (``D006``) or out-of-range (``D007``) shard
    records, must be refused before any journaled result is replayed —
    the same admission-gate pattern ``assert_plan_clean`` applies to
    out-of-process compiled plans.  Also an :class:`EstimationError`:
    resuming from a bad journal would corrupt the estimate.
    """
