"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate simulator convergence problems from user
configuration mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Raised for malformed circuit descriptions.

    Examples: duplicate element names, references to undeclared model
    cards, or an element wired to a node name that is empty.
    """


class ConvergenceError(ReproError):
    """Raised when a Newton solve (DC or a transient step) fails to converge.

    Carries the iteration count and the final residual norm so calling code
    (for example the high-sigma samplers, which must treat non-convergent
    samples deliberately) can log meaningful diagnostics.
    """

    def __init__(self, message: str, iterations: int = -1, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SimulationError(ReproError):
    """Raised for non-convergence-related simulation failures.

    Examples: a transient analysis asked to run for non-positive time, or a
    timestep underflow after repeated rejections.
    """


class MeasurementError(ReproError):
    """Raised when a waveform measurement cannot be computed.

    The classic case is a delay measurement whose trigger or target
    crossing never happens inside the simulated window; dynamic-stability
    metrics rely on catching this to classify a sample as a functional
    failure rather than a numerical accident.
    """


class EstimationError(ReproError):
    """Raised when a statistical estimator cannot produce a result.

    For example: an importance-sampling run that observed zero failures, or
    a scaled-sigma regression with too few non-degenerate points to fit.
    """


class SearchError(ReproError):
    """Raised when the most-probable-failure-point search fails.

    Typically means no failure direction could be found within the allowed
    simulation budget; samplers surface this to the user rather than
    silently returning a garbage shift vector.
    """
