"""Plain-text rendering of experiment tables and figure series.

The benchmark harness prints what the paper prints: per-method rows for
the tables, and (x, series...) columns for the figures.  Everything is
monospace-aligned text so `pytest benchmarks/ -s` output is the artefact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "render_series", "fmt"]


def fmt(value, kind: str = "auto") -> str:
    """Format one cell: scientific for tiny floats, compact otherwise."""
    if value is None:
        return "--"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if v != v:  # NaN
        return "--"
    if kind == "sci" or (kind == "auto" and v != 0 and (abs(v) < 1e-3 or abs(v) >= 1e5)):
        return f"{v:.3e}"
    return f"{v:.4g}"


def render_table(
    rows: Sequence[Dict],
    columns: Sequence[str],
    title: str = "",
    headers: Optional[Sequence[str]] = None,
) -> str:
    """Align a list of dict rows into a text table.

    ``columns`` selects and orders the keys; missing keys render as
    ``--``.  ``headers`` overrides the printed column names.
    """
    heads = list(headers) if headers is not None else list(columns)
    cells: List[List[str]] = [heads]
    for row in rows:
        cells.append([fmt(row.get(c)) for c in columns])
    widths = [max(len(r[i]) for r in cells) for i in range(len(heads))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for i, row in enumerate(cells):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append(sep)
    return "\n".join(lines)


def render_series(
    x: Sequence,
    series: Dict[str, Sequence],
    x_label: str,
    title: str = "",
) -> str:
    """Render figure data as columns: x plus one column per curve."""
    columns = [x_label] + list(series.keys())
    rows = []
    for i, xv in enumerate(x):
        row = {x_label: xv}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else None
        rows.append(row)
    return render_table(rows, columns, title=title)
