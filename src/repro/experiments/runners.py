"""Method runners: execute estimators on workloads, produce table rows.

Every row carries the same fields so tables compose; failures of a method
(search found nothing, regression under-determined) become rows with an
``error`` note rather than crashing the whole comparison — a method
failing *is* a benchmark result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.highsigma.gis import GradientImportanceSampling
from repro.highsigma.limitstate import LimitState
from repro.highsigma.mc import MonteCarloEstimator
from repro.highsigma.mnis import MinimumNormIS
from repro.highsigma.results import EstimateResult
from repro.highsigma.spherical import SphericalSearchIS
from repro.highsigma.sss import ScaledSigmaSampling
from repro.experiments.workloads import Workload

__all__ = [
    "MethodSpec",
    "default_methods",
    "run_method",
    "run_comparison",
    "mc_equivalent_cost",
]


@dataclass(frozen=True)
class MethodSpec:
    """A named estimator constructor: ``build(limit_state) -> estimator``."""

    name: str
    build: Callable[[LimitState], object]


def default_methods(
    n_max: int = 6000,
    target_rel_err: Optional[float] = 0.1,
    mc_budget: int = 200000,
    include_mc: bool = True,
    n_starts: int = 1,
    workers: int = 1,
    n_shards: Optional[int] = None,
) -> List[MethodSpec]:
    """The paper's comparison set with a shared sampling budget.

    ``workers`` / ``n_shards`` forward the :mod:`repro.engine` sharding
    knobs to every estimator: the sampling stages fan out over worker
    processes while every method keeps its exact shard-plan statistics.
    """
    methods = [
        MethodSpec(
            "gis",
            lambda ls: GradientImportanceSampling(
                ls, n_max=n_max, target_rel_err=target_rel_err, n_starts=n_starts,
                workers=workers, n_shards=n_shards,
            ),
        ),
        MethodSpec(
            "mnis",
            lambda ls: MinimumNormIS(
                ls,
                n_presample=max(500, n_max // 4),
                n_max=n_max,
                target_rel_err=target_rel_err,
                workers=workers,
                n_shards=n_shards,
            ),
        ),
        MethodSpec(
            "spherical",
            lambda ls: SphericalSearchIS(
                ls, n_max=n_max, target_rel_err=target_rel_err,
                workers=workers, n_shards=n_shards,
            ),
        ),
        MethodSpec(
            "sss",
            # Five scales share the same total budget as the IS methods.
            lambda ls: ScaledSigmaSampling(
                ls, n_per_scale=max(400, n_max // 5),
                workers=workers, n_shards=n_shards,
            ),
        ),
    ]
    if include_mc:
        methods.insert(
            0,
            MethodSpec(
                "mc",
                lambda ls: MonteCarloEstimator(
                    ls, n_max=mc_budget, target_rel_err=target_rel_err,
                    workers=workers, n_shards=n_shards,
                ),
            ),
        )
    return methods


def mc_equivalent_cost(p_fail: float, rel_err: float) -> float:
    """Samples plain MC would need to match an achieved relative error."""
    if p_fail <= 0 or rel_err <= 0 or not np.isfinite(rel_err):
        return float("nan")
    return (1.0 - p_fail) / (p_fail * rel_err**2)


def run_method(
    workload: Workload,
    method: MethodSpec,
    seed: int = 0,
) -> Dict:
    """One (workload, method, seed) cell of a comparison table."""
    ls = workload.make()
    estimator = method.build(ls)
    rng = np.random.default_rng(seed)
    row: Dict = {
        "workload": workload.name,
        "method": method.name,
        "seed": seed,
        "exact_pfail": workload.exact_pfail,
    }
    t0 = time.perf_counter()
    try:
        result: EstimateResult = estimator.run(rng)
    except ReproError as exc:
        row.update(
            p_fail=None,
            sigma=None,
            rel_err=None,
            n_evals=ls.n_evals,
            error=f"{type(exc).__name__}: {exc}",
            wall_s=time.perf_counter() - t0,
        )
        return row
    wall = time.perf_counter() - t0
    row.update(
        p_fail=result.p_fail,
        sigma=result.sigma_level,
        std_err=result.std_err,
        rel_err=result.rel_err,
        n_evals=result.n_evals,
        n_failures=result.n_failures,
        converged=result.converged,
        ess=result.ess,
        wall_s=wall,
        diagnostics=result.diagnostics,
    )
    if workload.exact_pfail is not None and result.p_fail > 0:
        row["err_vs_exact"] = abs(result.p_fail - workload.exact_pfail) / workload.exact_pfail
        row["log10_ratio"] = float(np.log10(result.p_fail / workload.exact_pfail))
    if result.p_fail and np.isfinite(result.rel_err):
        mc_cost = mc_equivalent_cost(result.p_fail, result.rel_err)
        row["mc_equiv_evals"] = mc_cost
        row["speedup_vs_mc"] = mc_cost / result.n_evals if result.n_evals else None
    return row


def run_comparison(
    workload: Workload,
    methods: Sequence[MethodSpec],
    seeds: Sequence[int] = (0,),
) -> List[Dict]:
    """All (method, seed) rows for one workload."""
    rows = []
    for method in methods:
        for seed in seeds:
            rows.append(run_method(workload, method, seed))
    return rows
