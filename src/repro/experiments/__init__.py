"""Experiment harness shared by the benchmarks and the examples.

* :mod:`repro.experiments.workloads` — named workload definitions: the
  analytic accuracy grid (T1), the SRAM read/write limit states (T2/T3)
  with spec calibration, and the surrogate workloads for the
  estimator-stability and dimension-scaling figures.
* :mod:`repro.experiments.runners` — run a set of estimation methods on a
  workload, collect uniform result rows, compute speedups vs the plain
  Monte Carlo cost model.
* :mod:`repro.experiments.tables` — plain-text table/series rendering so
  each bench prints the same rows/series the paper reports.
"""

from repro.experiments.workloads import (
    Workload,
    analytic_grid_workloads,
    cell_variation_space,
    make_read_limitstate,
    make_write_limitstate,
    make_disturb_limitstate,
    make_system_read_limitstate,
    calibrate_read_spec,
    calibrate_write_spec,
    surrogate_workload,
)
from repro.experiments.runners import (
    MethodSpec,
    default_methods,
    mc_equivalent_cost,
    run_comparison,
    run_method,
)
from repro.experiments.tables import render_series, render_table

__all__ = [
    "Workload",
    "analytic_grid_workloads",
    "cell_variation_space",
    "make_read_limitstate",
    "make_write_limitstate",
    "make_disturb_limitstate",
    "make_system_read_limitstate",
    "calibrate_read_spec",
    "calibrate_write_spec",
    "surrogate_workload",
    "MethodSpec",
    "default_methods",
    "run_method",
    "run_comparison",
    "mc_equivalent_cost",
    "render_table",
    "render_series",
]
