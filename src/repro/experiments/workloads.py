"""Named workloads: the limit states the benchmarks estimate.

Two families:

* **Analytic** — linear/quadratic/union limit states with closed-form
  failure probabilities, placed at exact sigma levels.  These anchor the
  accuracy tables: a method's error is measured against truth, not
  against another estimator.
* **SRAM** — read-access, write-trip and read-disturb limit states on the
  batched 6T engine, with the per-device threshold sigmas coming from the
  Pelgrom law of the model cards.  The spec (the failing delay / margin)
  is *calibrated* so the workload sits at a requested sigma level: a
  gradient MPFP search finds the failure direction once, a batched 1-D
  sweep along it maps metric vs distance, and the spec is read off at the
  target radius.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, RequestError, SimulationError
from repro.highsigma.analytic import (
    LinearLimitState,
    QuadraticLimitState,
    SramSurrogateLimitState,
)
from repro.highsigma.limitstate import LimitState
from repro.highsigma.mpfp import MpfpOptions, MpfpSearch
from repro.sram.array import ArrayConfig, ArraySlice
from repro.sram.batched import Batched6T
from repro.sram.cell import CELL_DEVICE_ORDER, CellDesign
from repro.sram.column import ColumnConfig, ReadColumn
from repro.sram.senseamp import SenseAmp, SenseAmpDesign
from repro.sram.testbench import OperationTiming
from repro.variation.pelgrom import beta_mismatch_sigma, vth_mismatch_sigma
from repro.variation.space import DeviceAxis, VariationSpace

__all__ = [
    "Workload",
    "WorkloadSpec",
    "WORKLOADS",
    "get_workload",
    "workload_names",
    "analytic_grid_workloads",
    "array_variation_space",
    "cell_variation_space",
    "column_variation_space",
    "make_read_limitstate",
    "make_write_limitstate",
    "make_disturb_limitstate",
    "make_senseamp_offset_limitstate",
    "make_system_read_limitstate",
    "make_column_read_limitstate",
    "make_array_read_limitstate",
    "calibrate_read_spec",
    "calibrate_write_spec",
    "surrogate_workload",
]


@dataclass
class Workload:
    """One named estimation problem.

    ``make`` builds a *fresh* limit state (with a zeroed evaluation
    counter) per run, so repeated runs bill independently.
    ``exact_pfail`` is None when only a golden-MC reference exists.
    """

    name: str
    make: Callable[[], LimitState]
    exact_pfail: Optional[float]
    dim: int
    description: str = ""


# ----------------------------------------------------------------------
# Analytic grid (table T1)
# ----------------------------------------------------------------------

def analytic_grid_workloads(
    sigmas=(4.0, 5.0, 6.0),
    dims=(6, 12, 24),
    kappa: float = 0.1,
) -> List[Workload]:
    """The T1 accuracy grid: linear and curved boundaries at exact sigmas.

    For the quadratic family ``beta`` is the *boundary distance*, so the
    exact probability is below ``Phi(-beta)``; the workload name carries
    the geometric sigma, the table reports the exact probability.
    """
    out: List[Workload] = []
    for d in dims:
        for s in sigmas:
            lin = LinearLimitState(beta=s, dim=d)
            out.append(
                Workload(
                    name=f"linear-{s:g}s-d{d}",
                    make=lambda s=s, d=d: LinearLimitState(beta=s, dim=d),
                    exact_pfail=lin.exact_pfail(),
                    dim=d,
                    description=f"hyperplane at {s:g} sigma, {d} dims",
                )
            )
            quad = QuadraticLimitState(beta=s, dim=d, kappa=kappa)
            out.append(
                Workload(
                    name=f"quadratic-{s:g}s-d{d}",
                    make=lambda s=s, d=d: QuadraticLimitState(beta=s, dim=d, kappa=kappa),
                    exact_pfail=quad.exact_pfail(),
                    dim=d,
                    description=f"curved boundary at distance {s:g}, {d} dims",
                )
            )
    return out


# ----------------------------------------------------------------------
# SRAM limit states (tables T2/T3, figures F1/F3/F4/F7)
# ----------------------------------------------------------------------

def cell_variation_space(
    design: Optional[CellDesign] = None, include_beta: bool = False
) -> VariationSpace:
    """Pelgrom u-space over the six cell transistors (canonical order)."""
    design = design or CellDesign()
    geometry = _cell_geometry(design)
    axes = []
    for name in CELL_DEVICE_ORDER:
        model, w = geometry[name]
        axes.append(DeviceAxis(name, "vth", vth_mismatch_sigma(model, w, design.l)))
    if include_beta:
        for name in CELL_DEVICE_ORDER:
            model, w = geometry[name]
            axes.append(DeviceAxis(name, "beta", beta_mismatch_sigma(model, w, design.l)))
    return VariationSpace(axes)


def _cell_geometry(design: CellDesign):
    return {
        "m_pu_l": (design.pmos, design.w_pu),
        "m_pd_l": (design.nmos, design.w_pd),
        "m_pg_l": (design.nmos, design.w_pg),
        "m_pu_r": (design.pmos, design.w_pu),
        "m_pd_r": (design.nmos, design.w_pd),
        "m_pg_r": (design.nmos, design.w_pg),
    }


def column_variation_space(
    design: Optional[CellDesign] = None, n_leakers: int = 15
) -> VariationSpace:
    """Pelgrom u-space over a whole read column.

    One vth axis per transistor of every cell on the column — the
    accessed cell first (canonical order), then each leaker — so the
    dimension is ``6 * (n_leakers + 1)``.  This is the dimension-scaling
    scenario: the u-space grows linearly with the column height while
    the failure region stays dominated by a handful of axes, exactly the
    regime where blind search degrades and gradient importance sampling
    earns its keep.
    """
    design = design or CellDesign()
    geometry = _cell_geometry(design)
    axes = []
    for suffix in ["_a"] + [f"_l{k}" for k in range(n_leakers)]:
        for name in CELL_DEVICE_ORDER:
            model, w = geometry[name]
            axes.append(
                DeviceAxis(f"{name}{suffix}", "vth",
                           vth_mismatch_sigma(model, w, design.l))
            )
    return VariationSpace(axes)


def array_variation_space(
    design: Optional[CellDesign] = None,
    n_cols: int = 4,
    n_leakers: int = 15,
) -> VariationSpace:
    """Pelgrom u-space over a whole array slice.

    One vth axis per transistor of every cell on every column — column
    by column, the accessed cell first, then that column's leakers — so
    the dimension is ``6 * n_cols * (n_leakers + 1)``: 384 axes at the
    default 4 columns of 16 cells.  This extends the column's
    dimension-scaling scenario by a second multiplicative direction
    (array width) while the failure region stays dominated by the
    selected column's handful of axes.
    """
    design = design or CellDesign()
    geometry = _cell_geometry(design)
    axes = []
    for c in range(n_cols):
        for suffix in ArraySlice._col_suffixes(c, n_leakers):
            for name in CELL_DEVICE_ORDER:
                model, w = geometry[name]
                axes.append(
                    DeviceAxis(f"{name}{suffix}", "vth",
                               vth_mismatch_sigma(model, w, design.l))
                )
    return VariationSpace(axes)


def _check_axes_cover_devices(space: VariationSpace, order, what: str) -> None:
    """Refuse a space whose axis names drift from the circuit's devices.

    ``VariationSpace.vth_matrix`` silently zero-fills devices no axis
    targets — correct for deliberately nominal devices (the mux pair),
    fatal when the suffix scheme of a variation-space builder drifts
    from the netlist builder's: the workload would sample *no* variation
    and report a garbage sigma with no error.  The factories call this
    to make that drift loud.
    """
    axis_devices = [a.device for a in space.axes]
    if axis_devices != list(order):
        missing = sorted(set(order) - set(axis_devices))
        extra = sorted(set(axis_devices) - set(order))
        raise SimulationError(
            f"{what} variation space does not match the circuit's device "
            f"names (missing axes for {missing[:4]}, axes without devices "
            f"{extra[:4]}, or a pure ordering mismatch)"
        )


# ----------------------------------------------------------------------
# Picklable batch evaluators
# ----------------------------------------------------------------------
# These used to be local ``batch_fn`` closures inside the factories —
# unpicklable, which silently pushed ``ShardedRunner``'s spawn pool into
# its in-process fallback.  As module-level callables the whole limit
# state travels through the spawn pickle pipe, compiled plans included
# (``CompiledTransient`` serializes its plan state and re-audits on
# arrival), so spawn workers deserialize instead of recompiling.


class _EngineBatch:
    """u-batch -> engine metric via the cell variation space."""

    def __init__(self, space: VariationSpace, metric_batch, include_beta: bool):
        self.space = space
        self.metric_batch = metric_batch
        self.include_beta = include_beta

    def __call__(self, u_batch: np.ndarray) -> np.ndarray:
        space = self.space
        dvth = space.vth_matrix(u_batch, CELL_DEVICE_ORDER)
        bmult = (
            space.beta_matrix(u_batch, CELL_DEVICE_ORDER)
            if self.include_beta else None
        )
        return self.metric_batch(dvth, bmult)


class _SenseAmpOffsetBatch:
    """u-batch -> input-referred offset via batched latch bisection."""

    def __init__(self, sense, sigmas, dv_max, n_bisect, n_steps, kernel):
        self.sense = sense
        self.sigmas = sigmas
        self.dv_max = dv_max
        self.n_bisect = n_bisect
        self.n_steps = n_steps
        self.kernel = kernel

    def __call__(self, u_batch: np.ndarray) -> np.ndarray:
        u_batch = np.atleast_2d(u_batch)
        return self.sense.offset_batch(
            u_batch * self.sigmas, dv_max=self.dv_max, n_bisect=self.n_bisect,
            n_steps=self.n_steps, kernel=self.kernel,
        )


class _SystemReadBatch:
    """u-batch -> read access time to a per-sample sense threshold."""

    def __init__(
        self, engine, sense, cell_space, sa_sigmas, sa_model, dv_base,
        dv_floor, kernel, sa_n_steps, sa_dv_max, sa_n_bisect,
        sa_on_unresolvable,
    ):
        self.engine = engine
        self.sense = sense
        self.cell_space = cell_space
        self.sa_sigmas = sa_sigmas
        self.sa_model = sa_model
        self.dv_base = dv_base
        self.dv_floor = dv_floor
        self.kernel = kernel
        self.sa_n_steps = sa_n_steps
        self.sa_dv_max = sa_dv_max
        self.sa_n_bisect = sa_n_bisect
        self.sa_on_unresolvable = sa_on_unresolvable

    def __call__(self, u_batch: np.ndarray) -> np.ndarray:
        u_batch = np.atleast_2d(u_batch)
        u_cell, u_sa = u_batch[:, :6], u_batch[:, 6:]
        dvth = self.cell_space.vth_matrix(u_cell, CELL_DEVICE_ORDER)
        if self.sa_model == "linear":
            offset = self.sense.offset_linear(u_sa)
        else:
            offset = self.sense.offset_batch(
                u_sa * self.sa_sigmas, dv_max=self.sa_dv_max,
                n_bisect=self.sa_n_bisect, n_steps=self.sa_n_steps,
                kernel=self.kernel,
                on_unresolvable=self.sa_on_unresolvable,
            )
        dv_req = np.maximum(self.dv_base + offset, self.dv_floor)
        return self.engine.read(dvth, dv_spec=dv_req).metric


class _ColumnReadBatch:
    """u-batch -> column access times on the compiled read column."""

    def __init__(self, column, space, order, n_steps, kernel, assembly):
        self.column = column
        self.space = space
        self.order = order
        self.n_steps = n_steps
        self.kernel = kernel
        self.assembly = assembly

    def __call__(self, u_batch: np.ndarray) -> np.ndarray:
        u_batch = np.atleast_2d(u_batch)
        dvth = self.space.vth_matrix(u_batch, self.order)
        return self.column.access_times_batch(
            dvth, n_steps=self.n_steps, kernel=self.kernel,
            assembly=self.assembly,
        )


class _ArrayReadBatch:
    """u-batch -> muxed array-slice access times on the compiled slice."""

    def __init__(self, array, space, order, n_steps, kernel, assembly, solver):
        self.array = array
        self.space = space
        self.order = order
        self.n_steps = n_steps
        self.kernel = kernel
        self.assembly = assembly
        self.solver = solver

    def __call__(self, u_batch: np.ndarray) -> np.ndarray:
        u_batch = np.atleast_2d(u_batch)
        dvth = self.space.vth_matrix(u_batch, self.order)
        return self.array.access_times_batch(
            dvth, n_steps=self.n_steps, kernel=self.kernel,
            assembly=self.assembly, solver=self.solver,
        )


def _engine_limitstate(
    engine: Batched6T,
    space: VariationSpace,
    metric_batch: Callable[[np.ndarray, Optional[np.ndarray]], np.ndarray],
    spec: float,
    direction: str,
    name: str,
) -> LimitState:
    include_beta = any(a.kind == "beta" for a in space.axes)

    # Caching is on: scalar evaluations (MPFP line searches) and
    # stencil-sized batches (MPFP gradients) share one bounded cache, so
    # a line search revisiting a stencil point costs nothing; bulk
    # sampling batches bypass the cache machinery entirely (see
    # LimitState.g_batch).  fn=None: scalar calls route through the
    # batched engine as one-row batches.
    return LimitState(
        fn=None,
        batch_fn=_EngineBatch(space, metric_batch, include_beta),
        spec=spec,
        dim=space.dim,
        direction=direction,
        name=name,
    )


def make_read_limitstate(
    spec: float,
    design: Optional[CellDesign] = None,
    vdd: float = 1.0,
    cbl: float = 10e-15,
    dv_spec: float = 0.12,
    n_steps: int = 400,
    include_beta: bool = False,
    timing: Optional[OperationTiming] = None,
    kernel: str = "fast",
) -> LimitState:
    """Read-access-time limit state: failure when access time >= spec."""
    design = design or CellDesign()
    engine = Batched6T(
        design=design, vdd=vdd, cbl=cbl, dv_spec=dv_spec, n_steps=n_steps, timing=timing,
        kernel=kernel,
    )
    space = cell_variation_space(design, include_beta)
    return _engine_limitstate(
        engine, space, engine.read_access_times, spec, "upper",
        name=f"sram-read(spec={spec:.3e}s, vdd={vdd:g}V)",
    )


def make_write_limitstate(
    spec: float,
    design: Optional[CellDesign] = None,
    vdd: float = 1.0,
    cbl: float = 10e-15,
    rdrv: float = 200.0,
    n_steps: int = 400,
    include_beta: bool = False,
    timing: Optional[OperationTiming] = None,
    kernel: str = "fast",
) -> LimitState:
    """Write-trip-time limit state: failure when trip time >= spec.

    A spec equal to the wordline pulse width makes this the dynamic
    write-failure probability.
    """
    design = design or CellDesign()
    engine = Batched6T(
        design=design, vdd=vdd, cbl=cbl, rdrv=rdrv, n_steps=n_steps, timing=timing,
        kernel=kernel,
    )
    space = cell_variation_space(design, include_beta)
    return _engine_limitstate(
        engine, space, engine.write_trip_times, spec, "upper",
        name=f"sram-write(spec={spec:.3e}s, vdd={vdd:g}V)",
    )


def make_disturb_limitstate(
    spec: float,
    design: Optional[CellDesign] = None,
    vdd: float = 1.0,
    cbl: float = 10e-15,
    n_steps: int = 400,
    include_beta: bool = False,
    timing: Optional[OperationTiming] = None,
    kernel: str = "fast",
) -> LimitState:
    """Dynamic read-stability limit state: failure when the low node's
    read bump reaches ``spec`` volts (the trip point, conventionally
    ``vdd/2``)."""
    design = design or CellDesign()
    engine = Batched6T(
        design=design, vdd=vdd, cbl=cbl, n_steps=n_steps, timing=timing, kernel=kernel
    )
    space = cell_variation_space(design, include_beta)
    return _engine_limitstate(
        engine, space, engine.read_disturb_peaks, spec, "upper",
        name=f"sram-disturb(spec={spec:.3f}V, vdd={vdd:g}V)",
    )


def make_senseamp_offset_limitstate(
    spec: float,
    sa_design: Optional[SenseAmpDesign] = None,
    vdd: float = 1.0,
    dv_max: float = 0.45,
    n_bisect: int = 12,
    n_steps: int = 260,
    kernel: str = "fast",
) -> LimitState:
    """Sense-amp offset limit state on the compiled latch.

    Four u-axes (the latch's variation-relevant devices in
    :data:`~repro.sram.senseamp.SA_DEVICE_ORDER`); the metric is the
    input-referred offset extracted by *simultaneous* batched bisection
    on the compiled latch — every bisection level is one compiled
    transient over the whole sample block, versus tens of scalar
    transients per sample on the reference path.  Failure is the offset
    reaching ``spec`` volts (the differential budget the column design
    allocates to the latch).
    """
    sense = SenseAmp(sa_design, vdd=vdd)
    sigmas = sense.design.vth_sigmas()

    return LimitState(
        fn=None,
        batch_fn=_SenseAmpOffsetBatch(
            sense, sigmas, dv_max, n_bisect, n_steps, kernel
        ),
        spec=spec,
        dim=len(sigmas),
        direction="upper",
        name=f"sram-sa-offset(spec={spec*1e3:.1f}mV, vdd={vdd:g}V)",
    )


def make_system_read_limitstate(
    spec: float,
    design: Optional[CellDesign] = None,
    sa_design: Optional[SenseAmpDesign] = None,
    vdd: float = 1.0,
    cbl: float = 10e-15,
    dv_base: float = 0.12,
    dv_floor: float = 0.02,
    n_steps: int = 400,
    timing: Optional[OperationTiming] = None,
    kernel: str = "fast",
    sa_model: str = "linear",
    sa_n_steps: int = 260,
    sa_dv_max: float = 0.45,
    sa_n_bisect: int = 12,
    sa_on_unresolvable: str = "saturate",
) -> LimitState:
    """System-level read limit state: cell *and* sense-amp variation.

    Ten u-axes: the six cell threshold shifts plus the four latch
    threshold shifts.  Each sample's required bitline differential is
    ``dv_base + offset(u_sa)`` (floored at ``dv_floor`` — a latch never
    resolves reliably below its noise floor even with a favourable
    offset), fed per-sample into the batched read engine.  Failure is
    the access time to *that* differential exceeding ``spec``.

    ``sa_model`` selects the offset extractor: ``"linear"`` — the
    validated first-order model (one dot product per sample);
    ``"latch"`` — batched bisection on the *compiled* latch transient,
    which keeps the full nonlinearity of the regeneration at a dozen
    compiled transients per block.  ``sa_dv_max`` / ``sa_n_bisect``
    bound the latch bisection.  A deep-tail sample whose offset exceeds
    ``sa_dv_max`` saturates to ``offset = +inf`` by default
    (``sa_on_unresolvable="saturate"``): its required differential
    becomes unreachable, the read counts as a failure, and the rest of
    the batch completes normally — which is exactly what a high-sigma
    sampler needs from the tails it deliberately explores.  Pass
    ``sa_on_unresolvable="raise"`` to restore the strict behaviour that
    treats such samples as a setup error.

    This is the workload where the single-cell view underestimates the
    failure rate: a moderately slow cell meeting a moderately deaf sense
    amp fails reads that neither would alone.
    """
    if sa_model not in ("linear", "latch"):
        raise SimulationError(
            f"sa_model must be 'linear' or 'latch', got {sa_model!r}"
        )
    design = design or CellDesign()
    sense = SenseAmp(sa_design, vdd=vdd)
    engine = Batched6T(
        design=design, vdd=vdd, cbl=cbl, dv_spec=dv_base, n_steps=n_steps,
        timing=timing, kernel=kernel,
    )
    cell_space = cell_variation_space(design)
    sa_sigmas = sense.design.vth_sigmas()

    return LimitState(
        fn=None,
        batch_fn=_SystemReadBatch(
            engine, sense, cell_space, sa_sigmas, sa_model, dv_base,
            dv_floor, kernel, sa_n_steps, sa_dv_max, sa_n_bisect,
            sa_on_unresolvable,
        ),
        spec=spec,
        dim=10,
        direction="upper",
        name=f"sram-system-read(spec={spec:.3e}s, vdd={vdd:g}V, sa={sa_model})",
    )


def make_column_read_limitstate(
    spec: float,
    design: Optional[CellDesign] = None,
    n_leakers: int = 15,
    leaker_data: str = "adversarial",
    vdd: float = 1.0,
    cbl: Optional[float] = None,
    dv_spec: float = 0.12,
    n_steps: int = 400,
    timing: Optional[OperationTiming] = None,
    kernel: str = "fast",
    assembly: str = "auto",
) -> LimitState:
    """Column-level read limit state: the full column is the device under test.

    ``6 * (n_leakers + 1)`` u-axes — every transistor of the accessed
    cell *and* of every leaker carries its own Pelgrom threshold axis —
    evaluated in bulk on the compiled column (sparse Jacobian assembly
    plus the structured Schur solves above the compiler's node-count
    threshold; ``assembly="dense"`` keeps the cross-check path).
    Failure is the access time to ``dv_spec`` exceeding ``spec``, with
    leakage from the unaccessed cells eroding the differential exactly
    as the scalar column testbench simulates it.  This is the
    dimension-scaling workload: the default 15 adversarial leakers make
    a 34-node circuit and a 96-dimensional u-space.
    """
    design = design or CellDesign()
    column = ReadColumn(
        design=design,
        config=ColumnConfig(
            n_leakers=n_leakers, leaker_data=leaker_data, cbl=cbl, vdd=vdd
        ),
        dv_spec=dv_spec,
        timing=timing,
    )
    space = column_variation_space(design, n_leakers=n_leakers)
    order = column.all_device_names()
    _check_axes_cover_devices(space, order, "column")

    return LimitState(
        fn=None,
        batch_fn=_ColumnReadBatch(column, space, order, n_steps, kernel, assembly),
        spec=spec,
        dim=space.dim,
        direction="upper",
        name=(
            f"sram-column-read(spec={spec:.3e}s, vdd={vdd:g}V, "
            f"leakers={n_leakers})"
        ),
    )


def make_array_read_limitstate(
    spec: float,
    design: Optional[CellDesign] = None,
    n_cols: int = 4,
    n_leakers: int = 15,
    leaker_data: str = "adversarial",
    vdd: float = 1.0,
    cbl: Optional[float] = None,
    cdl: Optional[float] = None,
    dv_spec: float = 0.12,
    n_steps: int = 400,
    timing: Optional[OperationTiming] = None,
    kernel: str = "fast",
    assembly: str = "auto",
    solver: str = "auto",
) -> LimitState:
    """Array-slice read limit state: the muxed slice is the device under test.

    ``6 * n_cols * (n_leakers + 1)`` u-axes — every transistor of every
    cell on every column — evaluated in bulk on the compiled slice
    (sparse scatter-stamp assembly plus the per-column Schur peel: cell
    pairs as interior blocks against a border of all bitlines, the mux
    data lines as interior singletons; ``assembly="dense"`` and
    ``solver="blocked"`` keep the cross-check paths).  Failure is the
    access time of the *muxed* data-line differential to ``dv_spec``
    exceeding ``spec``, so the metric includes the mux resistance and
    data-line loading on top of the column leakage.  This is the
    dimension-scaling workload at array scale: 4 columns of 16 cells is
    a 138-node circuit and a 384-dimensional u-space.
    """
    design = design or CellDesign()
    array = ArraySlice(
        design=design,
        config=ArrayConfig(
            n_cols=n_cols, n_leakers=n_leakers, leaker_data=leaker_data,
            cbl=cbl, cdl=cdl, vdd=vdd,
        ),
        dv_spec=dv_spec,
        timing=timing,
    )
    space = array_variation_space(design, n_cols=n_cols, n_leakers=n_leakers)
    order = array.all_device_names()
    _check_axes_cover_devices(space, order, "array slice")

    return LimitState(
        fn=None,
        batch_fn=_ArrayReadBatch(
            array, space, order, n_steps, kernel, assembly, solver
        ),
        spec=spec,
        dim=space.dim,
        direction="upper",
        name=(
            f"sram-array-read(spec={spec:.3e}s, vdd={vdd:g}V, "
            f"cols={n_cols}, leakers={n_leakers})"
        ),
    )


# ----------------------------------------------------------------------
# Spec calibration
# ----------------------------------------------------------------------

def _calibrate_spec(
    make_ls: Callable[[float], LimitState],
    provisional_spec: float,
    sigma_target: float,
    r_max: float = 8.0,
) -> float:
    """Place a workload at a requested sigma level.

    One gradient MPFP search at a provisional spec finds the failure
    direction; a batched sweep along that ray maps metric vs distance;
    the spec for ``sigma_target`` is the metric at radius ``sigma_target``
    along the ray (exact if the boundary is a sphere-tangent hyperplane,
    and within ~0.1 sigma for the mildly curved SRAM boundaries, which is
    ample for benchmark placement).
    """
    ls = make_ls(provisional_spec)
    search = MpfpSearch(ls, options=MpfpOptions(max_iterations=40))
    res = search.run()
    direction = res.u_star / max(res.beta, 1e-12)
    radii = np.linspace(0.0, r_max, 33)
    metrics = ls.g_batch(direction[None, :] * radii[:, None])
    # g = spec - metric  =>  metric = spec - g; invert monotone map.
    metric_vals = ls.spec - metrics
    return float(np.interp(sigma_target, radii, metric_vals))


def calibrate_read_spec(sigma_target: float, n_steps: int = 400, **kwargs) -> float:
    """Read-access spec placing the failure at ``sigma_target`` sigma."""
    def make(spec):
        return make_read_limitstate(spec, n_steps=n_steps, **kwargs)

    nominal = make_read_limitstate(1.0, n_steps=n_steps, **kwargs)
    t_nom = nominal.metric(np.zeros(nominal.dim))
    return _calibrate_spec(make, provisional_spec=1.6 * t_nom, sigma_target=sigma_target)


def calibrate_write_spec(sigma_target: float, n_steps: int = 400, **kwargs) -> float:
    """Write-trip spec placing the failure at ``sigma_target`` sigma."""
    def make(spec):
        return make_write_limitstate(spec, n_steps=n_steps, **kwargs)

    nominal = make_write_limitstate(1.0, n_steps=n_steps, **kwargs)
    t_nom = nominal.metric(np.zeros(nominal.dim))
    return _calibrate_spec(make, provisional_spec=1.8 * t_nom, sigma_target=sigma_target)


# ----------------------------------------------------------------------
# The named-workload registry (the repro.api / service catalogue)
# ----------------------------------------------------------------------
# Every estimation entry point that accepts a *workload name* — the
# ``repro.api`` facade, the HTTP job service, the load-test driver —
# resolves it here.  A :class:`WorkloadSpec` declares the limit-state
# factory plus the *remotely settable* knob surface: only JSON-scalar
# knobs are listed (rich objects like ``CellDesign``/``OperationTiming``
# stay Python-API-only), and enum-valued knobs carry their legal choices
# so a bad value is a structured eager-validation error instead of a
# failure deep inside a compile.


@dataclass(frozen=True)
class WorkloadSpec:
    """One named, remotely invokable estimation workload.

    ``factory(spec, **knobs)`` builds a fresh :class:`LimitState`;
    ``knobs`` is the exact set of keyword names a request may set;
    ``choices`` restricts enum-valued knobs; ``estimator_options`` are
    extra keyword arguments for the GIS estimator (the per-workload
    search tuning the CLI historically hard-coded, e.g. the sense-amp
    bisection-matched MPFP tolerances).
    """

    name: str
    factory: Callable[..., LimitState]
    description: str
    spec_unit: str
    knobs: Tuple[str, ...] = ()
    choices: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    estimator_options: Mapping[str, object] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-safe catalogue entry (what ``GET /v1/workloads`` serves)."""
        return {
            "name": self.name,
            "description": self.description,
            "spec_unit": self.spec_unit,
            "knobs": list(self.knobs),
            "choices": {k: list(v) for k, v in self.choices.items()},
        }


def _analytic_linear(spec: float, dim: int = 8) -> LimitState:
    return LinearLimitState(beta=spec, dim=int(dim))


def _analytic_quadratic(spec: float, dim: int = 8, kappa: float = 0.1) -> LimitState:
    return QuadraticLimitState(beta=spec, dim=int(dim), kappa=float(kappa))


_ASSEMBLY = ("auto", "dense", "sparse")
_KERNEL = ("fast", "reference")
_LEAKER_DATA = ("adversarial", "friendly")

WORKLOADS: Dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.name in WORKLOADS:
        raise ConfigError(f"workload {spec.name!r} registered twice")
    WORKLOADS[spec.name] = spec
    return spec


_register(WorkloadSpec(
    name="read",
    factory=make_read_limitstate,
    description="6T read-access-time failure (six cell vth axes)",
    spec_unit="s",
    knobs=("vdd", "cbl", "dv_spec", "n_steps", "include_beta", "kernel"),
    choices={"kernel": _KERNEL},
))
_register(WorkloadSpec(
    name="write",
    factory=make_write_limitstate,
    description="6T write-trip-time failure (six cell vth axes)",
    spec_unit="s",
    knobs=("vdd", "cbl", "rdrv", "n_steps", "include_beta", "kernel"),
    choices={"kernel": _KERNEL},
))
_register(WorkloadSpec(
    name="disturb",
    factory=make_disturb_limitstate,
    description="6T dynamic read-stability failure (read bump vs trip point)",
    spec_unit="V",
    knobs=("vdd", "cbl", "n_steps", "include_beta", "kernel"),
    choices={"kernel": _KERNEL},
))
_register(WorkloadSpec(
    name="sa-offset",
    factory=make_senseamp_offset_limitstate,
    description="sense-amp input-referred offset failure (compiled latch)",
    spec_unit="V",
    knobs=("vdd", "dv_max", "n_bisect", "n_steps", "kernel"),
    choices={"kernel": _KERNEL},
    # Bisection-quantised metric: match the MPFP tolerances to the
    # extractor resolution (the tuning the sa-sigma CLI always applied).
    estimator_options={
        "mpfp_options": MpfpOptions(max_iterations=25, tol_g=1e-2, tol_align=2e-2)
    },
))
_register(WorkloadSpec(
    name="system-read",
    factory=make_system_read_limitstate,
    description="system-level read failure (six cell + four sense-amp axes)",
    spec_unit="s",
    knobs=("vdd", "cbl", "dv_base", "dv_floor", "n_steps", "kernel",
           "sa_model", "sa_n_steps", "sa_dv_max", "sa_n_bisect"),
    choices={"kernel": _KERNEL, "sa_model": ("linear", "latch")},
))
_register(WorkloadSpec(
    name="column-read",
    factory=make_column_read_limitstate,
    description="column-level read failure (accessed cell + leakers)",
    spec_unit="s",
    knobs=("n_leakers", "leaker_data", "vdd", "cbl", "dv_spec", "n_steps",
           "kernel", "assembly"),
    choices={"kernel": _KERNEL, "assembly": _ASSEMBLY,
             "leaker_data": _LEAKER_DATA},
))
_register(WorkloadSpec(
    name="array-read",
    factory=make_array_read_limitstate,
    description="array-slice read failure (columns behind a shared mux)",
    spec_unit="s",
    knobs=("n_cols", "n_leakers", "leaker_data", "vdd", "cbl", "cdl",
           "dv_spec", "n_steps", "kernel", "assembly", "solver"),
    choices={"kernel": _KERNEL, "assembly": _ASSEMBLY,
             "leaker_data": _LEAKER_DATA,
             "solver": ("auto", "schur", "blocked")},
))
_register(WorkloadSpec(
    name="analytic-linear",
    factory=_analytic_linear,
    description="hyperplane boundary at an exact sigma (spec = beta); "
                "closed-form truth, no simulator — service/CI canary",
    spec_unit="sigma",
    knobs=("dim",),
))
_register(WorkloadSpec(
    name="analytic-quadratic",
    factory=_analytic_quadratic,
    description="curved boundary at an exact distance (spec = beta); "
                "closed-form truth, no simulator — service/CI canary",
    spec_unit="sigma",
    knobs=("dim", "kappa"),
))


def workload_names() -> Tuple[str, ...]:
    """Registered workload names in registration order."""
    return tuple(WORKLOADS)


def get_workload(name: str) -> WorkloadSpec:
    """Resolve a workload name; unknown names raise the stable ``A001``."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise RequestError(
            f"unknown workload {name!r}; registered workloads: "
            + ", ".join(WORKLOADS),
            code="A001",
        ) from None


# ----------------------------------------------------------------------
# Surrogate workloads (figures F2/F5)
# ----------------------------------------------------------------------

def surrogate_workload(sigma_target: float = 4.5, dim: int = 6) -> Workload:
    """SRAM-shaped quadratic-response workload at an exact sigma level."""
    spec = SramSurrogateLimitState.spec_for_sigma(sigma_target, dim=dim)
    ls = SramSurrogateLimitState(spec=spec, dim=dim)
    return Workload(
        name=f"surrogate-{sigma_target:g}s-d{dim}",
        make=lambda: SramSurrogateLimitState(spec=spec, dim=dim),
        exact_pfail=ls.exact_pfail(),
        dim=dim,
        description=f"quadratic response surface at {sigma_target:g} sigma, {dim} dims",
    )
