"""Package metadata.

Kept in classic setup.py form (rather than pyproject.toml) because the
target environment ships setuptools without the ``wheel`` package, and
PEP 660 editable installs need ``bdist_wheel``; the legacy path used for
``pip install -e .`` does not.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Gradient importance sampling for high-sigma SRAM dynamic "
        "characteristic extraction (DATE 2018 reproduction)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # The sharded engine spawns per-shard RNG streams via
    # numpy.random.Generator.spawn, which appeared in numpy 1.25.
    install_requires=["numpy>=1.25", "scipy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={
        "console_scripts": [
            # One benchmark entry point; the four benchmarks/*.py
            # drivers are back-compat shims over the same CLI.
            "repro-bench=repro.bench.cli:main",
        ],
    },
)
