"""tools/repro_lint.py: the source tree is clean; the codes fire on bait.

The lint is a gating CI step, so the clean-tree test is the same
assertion CI makes; the bait tests pin each code's detection logic
(including the sanctioned escapes: ``default_rng``, ``sorted(set)``,
``NotImplementedError``, ``argparse.ArgumentTypeError``).
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "repro_lint.py"

sys.path.insert(0, str(REPO / "tools"))
from repro_lint import _is_strict, lint_file  # noqa: E402


def _lint_source(tmp_path, source, strict):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return [(code, line) for (_p, line, code, _m) in lint_file(path, strict=strict)]


class TestCleanTree:
    def test_src_repro_is_clean(self):
        proc = subprocess.run(
            [sys.executable, str(LINT), "src/repro"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_tools_dir_is_clean_too(self):
        proc = subprocess.run(
            [sys.executable, str(LINT), "tools"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestR001GlobalRandom:
    def test_flags_global_draws(self, tmp_path):
        found = _lint_source(
            tmp_path,
            "import numpy as np\nx = np.random.rand(3)\nnp.random.seed(0)\n",
            strict=False,
        )
        assert [c for c, _l in found] == ["R001", "R001"]

    def test_allows_constructors(self, tmp_path):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "ss = np.random.SeedSequence(1)\n"
            "g = np.random.Generator(np.random.PCG64(ss))\n"
        )
        assert _lint_source(tmp_path, src, strict=True) == []


class TestR002SetIteration:
    @pytest.mark.parametrize(
        "expr", ["{1, 2}", "set(xs)", "frozenset(xs)", "{x for x in xs}"]
    )
    def test_flags_unordered_iteration(self, tmp_path, expr):
        src = f"xs = [1, 2]\nfor v in {expr}:\n    pass\n"
        assert ("R002", 2) in _lint_source(tmp_path, src, strict=True)

    def test_allows_sorted_wrap(self, tmp_path):
        src = "xs = [1, 2]\nfor v in sorted({x for x in xs}):\n    pass\n"
        assert _lint_source(tmp_path, src, strict=True) == []

    def test_comprehension_over_set_flagged(self, tmp_path):
        src = "ys = [v for v in {1, 2}]\n"
        assert [c for c, _l in _lint_source(tmp_path, src, strict=True)] == ["R002"]

    def test_not_enforced_outside_strict_dirs(self, tmp_path):
        src = "for v in {1, 2}:\n    pass\n"
        assert _lint_source(tmp_path, src, strict=False) == []


class TestR003BareAssert:
    def test_flags_assert_in_strict_dirs(self, tmp_path):
        found = _lint_source(tmp_path, "assert 1 == 1\n", strict=True)
        assert [c for c, _l in found] == ["R003"]

    def test_allowed_outside(self, tmp_path):
        assert _lint_source(tmp_path, "assert 1 == 1\n", strict=False) == []


class TestR004BuiltinRaise:
    @pytest.mark.parametrize(
        "exc", ["ValueError", "TypeError", "KeyError", "AssertionError",
                "RuntimeError", "Exception"]
    )
    def test_flags_builtin_raises(self, tmp_path, exc):
        found = _lint_source(tmp_path, f"raise {exc}('x')\n", strict=False)
        assert [c for c, _l in found] == ["R004"]

    def test_allows_typed_and_sanctioned(self, tmp_path):
        src = (
            "import argparse\n"
            "from repro.errors import ConfigError\n"
            "def f():\n"
            "    raise ConfigError('x')\n"
            "def g():\n"
            "    raise NotImplementedError\n"
            "def h():\n"
            "    raise argparse.ArgumentTypeError('x')\n"
        )
        assert _lint_source(tmp_path, src, strict=False) == []

    def test_bare_reraise_allowed(self, tmp_path):
        src = "try:\n    pass\nexcept Exception:\n    raise\n"
        assert _lint_source(tmp_path, src, strict=False) == []


class TestScoping:
    def test_strict_dirs(self):
        assert _is_strict(Path("src/repro/spice/compile.py"))
        assert _is_strict(Path("src/repro/engine/sharding.py"))
        assert not _is_strict(Path("src/repro/sram/column.py"))
        assert not _is_strict(Path("src/repro/cli.py"))
