"""Cross-cutting property-based invariants.

These pin down relationships that individual unit tests only spot-check:
estimator identities, model monotonicities, and conversion round-trips,
each over randomly drawn inputs via hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.highsigma.analytic import LinearLimitState
from repro.highsigma.estimators import (
    DefensiveMixture,
    GaussianProposal,
    effective_sample_size,
    is_estimate,
    log_std_normal_pdf,
)
from repro.spice.mosfet import nmos_45nm


class TestImportanceSamplingIdentities:
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_weights_bounded_by_inverse_alpha(self, n, seed):
        rng = np.random.default_rng(seed)
        alpha = 0.2
        mix = DefensiveMixture(
            [GaussianProposal(rng.normal(size=3) * 3, 1.0)], alpha=alpha
        )
        u = rng.normal(size=(n, 3)) * 4
        assert np.all(mix.log_weights(u) <= np.log(1 / alpha) + 1e-9)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_mixture_density_normalised_direction(self, seed):
        # logsumexp mixture must sit between the min and max component
        # log-densities plus the weight bounds.
        rng = np.random.default_rng(seed)
        comp = GaussianProposal(rng.normal(size=2), 1.0)
        mix = DefensiveMixture([comp], alpha=0.3)
        u = rng.normal(size=(50, 2)) * 3
        lo = np.minimum(log_std_normal_pdf(u), comp.logpdf(u)) + np.log(0.3)
        hi = np.maximum(log_std_normal_pdf(u), comp.logpdf(u))
        m = mix.logpdf(u)
        assert np.all(m >= lo - 1e-9)
        assert np.all(m <= hi + 1e-9)

    @given(st.lists(st.floats(min_value=-3, max_value=3), min_size=2, max_size=60),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_estimate_invariant_to_permutation(self, log_w_list, seed):
        rng = np.random.default_rng(seed)
        log_w = np.array(log_w_list)
        fails = rng.random(log_w.size) < 0.5
        p1, se1 = is_estimate(log_w, fails)
        perm = rng.permutation(log_w.size)
        p2, se2 = is_estimate(log_w[perm], fails[perm])
        assert p1 == pytest.approx(p2, rel=1e-12)
        assert se1 == pytest.approx(se2, rel=1e-12)

    @given(st.floats(min_value=-5, max_value=5), st.integers(min_value=2, max_value=50))
    @settings(max_examples=25)
    def test_ess_invariant_to_common_scaling(self, shift, n):
        # Multiplying all weights by a constant must not change the ESS.
        log_w = np.linspace(-1, 1, n)
        fails = np.ones(n, dtype=bool)
        assert effective_sample_size(log_w, fails) == pytest.approx(
            effective_sample_size(log_w + shift, fails), rel=1e-9
        )


class TestDeviceModelMonotonicity:
    @given(st.floats(min_value=0.3, max_value=1.0), st.floats(min_value=0.01, max_value=0.15))
    @settings(max_examples=25, deadline=None)
    def test_current_decreases_with_vth_shift(self, vg, dvth):
        m = nmos_45nm()
        base, *_ = m.ids(vg, 1.0, 0.0, w=120e-9, l=50e-9)
        shifted, *_ = m.ids(vg, 1.0, 0.0, delta_vth=dvth, w=120e-9, l=50e-9)
        assert shifted < base

    @given(st.floats(min_value=0.8, max_value=1.3))
    @settings(max_examples=20, deadline=None)
    def test_current_scales_monotone_with_beta(self, mult):
        m = nmos_45nm()
        base, *_ = m.ids(1.0, 1.0, 0.0, w=120e-9, l=50e-9)
        scaled, *_ = m.ids(1.0, 1.0, 0.0, beta_mult=mult, w=120e-9, l=50e-9)
        if mult > 1:
            assert scaled > base
        elif mult < 1:
            assert scaled < base

    @given(st.floats(min_value=-0.5, max_value=1.5), st.floats(min_value=0.0, max_value=1.5))
    @settings(max_examples=40, deadline=None)
    def test_current_and_conductances_always_finite(self, vg, vd):
        m = nmos_45nm()
        out = m.ids(vg, vd, 0.0, w=120e-9, l=50e-9)
        assert all(np.isfinite(float(x)) for x in out)


class TestLimitStateIdentities:
    @given(st.floats(min_value=2.0, max_value=6.0), st.integers(min_value=2, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_boundary_point_has_zero_margin(self, beta, dim):
        ls = LinearLimitState(beta=beta, dim=dim)
        u_boundary = beta * ls.a
        assert ls.g(u_boundary) == pytest.approx(0.0, abs=1e-12)

    @given(st.floats(min_value=2.0, max_value=6.0), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_batch_and_scalar_always_agree(self, beta, seed):
        ls = LinearLimitState(beta=beta, dim=4)
        rng = np.random.default_rng(seed)
        ub = rng.normal(size=(8, 4)) * 2
        np.testing.assert_allclose(ls.g_batch(ub), [ls.g(u) for u in ub], rtol=1e-12)
