"""Registry semantics: selection, setup/run split, repeats, failure capture."""

from __future__ import annotations

import pytest

from repro.bench.registry import (
    REGISTRY,
    Registry,
    Section,
    run_section,
    run_sections,
)
from repro.errors import ConfigError


def quiet(_line):
    pass


def make_registry():
    reg = Registry()

    @reg.section("alpha", tags=("smoke", "engine"))
    def alpha(ctx):
        return {"a": 1}

    @reg.section("beta", tags=("kernel",))
    def beta(ctx):
        return {"b": 2}

    @reg.section("gamma", tags=("smoke",))
    def gamma(ctx):
        return None

    return reg


class TestSelection:
    def test_default_selection_is_everything_in_order(self):
        reg = make_registry()
        assert [s.name for s in reg.select()] == ["alpha", "beta", "gamma"]

    def test_tags_filter_keeps_any_match(self):
        reg = make_registry()
        assert [s.name for s in reg.select(tags=["smoke"])] == ["alpha", "gamma"]
        assert [s.name for s in reg.select(tags=["kernel", "engine"])] == [
            "alpha", "beta",
        ]

    def test_only_filter(self):
        reg = make_registry()
        assert [s.name for s in reg.select(only=["gamma"])] == ["gamma"]

    def test_only_and_tags_compose(self):
        reg = make_registry()
        assert [s.name for s in reg.select(only=["alpha", "beta"], tags=["smoke"])] == [
            "alpha",
        ]

    def test_unknown_only_name_is_config_error_listing_known(self):
        reg = make_registry()
        with pytest.raises(ConfigError, match="unknown benchmark section"):
            reg.select(only=["nope"])

    def test_duplicate_registration_refused(self):
        reg = make_registry()
        with pytest.raises(ConfigError, match="registered twice"):
            reg.register(Section(name="alpha", fn=lambda ctx: None))


class TestExecution:
    def test_setup_runs_once_outside_timing(self):
        reg = Registry()
        calls = {"setup": 0, "run": 0}

        def setup(**params):
            calls["setup"] += 1
            return {"token": 42}

        @reg.section("s", setup=setup, repeats=3)
        def s(ctx):
            calls["run"] += 1
            assert ctx == {"token": 42}
            return {"token": ctx["token"]}

        res = run_section(reg.get("s"), echo=quiet)
        assert calls == {"setup": 1, "run": 3}
        assert res.values == {"token": 42}
        assert len(res.seconds_runs) == 3
        assert res.valid

    def test_repeats_report_median_and_cv(self):
        reg = Registry()
        durations = iter([0.0, 0.0, 0.0])

        @reg.section("s", repeats=3)
        def s(ctx):
            next(durations)

        res = run_section(reg.get("s"), echo=quiet)
        assert res.seconds == sorted(res.seconds_runs)[1]
        assert res.cv >= 0.0

    def test_single_run_has_zero_cv(self):
        reg = Registry()

        @reg.section("s")
        def s(ctx):
            return None

        res = run_section(reg.get("s"), echo=quiet)
        assert res.cv == 0.0
        assert len(res.seconds_runs) == 1

    def test_params_reach_setup_and_run(self):
        reg = Registry()
        seen = {}

        def setup(n=1):
            seen["setup_n"] = n
            return n * 2

        @reg.section("s", setup=setup)
        def s(ctx, n=1):
            seen["run_n"] = n
            return {"ctx": ctx}

        res = run_section(reg.get("s"), params={"n": 5}, echo=quiet)
        assert seen == {"setup_n": 5, "run_n": 5}
        assert res.values == {"ctx": 10}

    def test_exception_invalidates_but_does_not_abort(self):
        reg = Registry()

        @reg.section("broken")
        def broken(ctx):
            raise ValueError("kaboom")

        @reg.section("fine")
        def fine(ctx):
            return {"ok": True}

        results = run_sections(reg.select(), echo=quiet)
        assert not results["broken"].valid
        assert "kaboom" in results["broken"].reason
        assert results["fine"].valid

    def test_repeat_override(self):
        reg = Registry()

        @reg.section("s", repeats=1)
        def s(ctx):
            return None

        res = run_section(reg.get("s"), repeats=4, echo=quiet)
        assert len(res.seconds_runs) == 4

    def test_overrides_map_routes_params_by_name(self):
        reg = Registry()

        @reg.section("a")
        def a(ctx, x=0):
            return {"x": x}

        @reg.section("b")
        def b(ctx, x=0):
            return {"x": x}

        results = run_sections(
            reg.select(), overrides={"b": {"x": 7}}, echo=quiet
        )
        assert results["a"].values == {"x": 0}
        assert results["b"].values == {"x": 7}


class TestDefaultRegistry:
    def test_every_real_section_is_registered_with_gates_bound(self):
        import repro.bench.sections  # noqa: F401  (registration import)

        names = REGISTRY.names()
        for expected in (
            "streaming-core", "gis-6t-engine", "sharded-plan",
            "system-read-batched", "column-read-batched",
            "array-read-batched", "plan-cache",
            "kernel-6t", "kernel-latch", "kernel-array",
            "sharding-determinism", "chaos-recovery",
        ):
            assert expected in names
        for sec in REGISTRY.select():
            for gate in sec.gates:
                assert gate.section == sec.name or gate.section == "total"

    def test_every_historical_gate_is_a_gatespec(self):
        """The acceptance criterion: each threshold the four drivers
        asserted imperatively exists as declarative GateSpec data."""
        import repro.bench.sections  # noqa: F401

        by_id = {
            g.gate_id: g
            for s in REGISTRY.select()
            for g in s.gates
        }
        # smoke wall gates, one per section
        for name in ("streaming-core", "gis-6t-engine", "sharded-plan",
                     "system-read-batched", "column-read-batched",
                     "array-read-batched", "plan-cache"):
            assert by_id[f"wall.{name}"].kind == "wall_factor"
        # internal ratio floors and contracts
        assert by_id["system-read.batched_vs_scalar"].threshold == 2.0
        assert by_id["column-read.sparse_vs_dense"].threshold == 2.0
        assert by_id["array-read.schur_vs_blocked"].threshold == 1.5
        assert by_id["plan-cache.warm_vs_cold"].threshold == 2.0
        assert by_id["plan-cache.spawn_vs_fork"].kind == "ratio_max"
        assert by_id["plan-cache.spawn_vs_fork"].threshold == 1.5
        assert by_id["kernel-6t.read_fast_vs_reference"].threshold == 1.0
        assert by_id["kernel-6t.write_fast_vs_reference"].threshold == 1.0
        assert by_id["kernel-latch.fast_vs_reference"].threshold == 1.0
        assert by_id["kernel-array.fast_vs_reference"].threshold == 1.0
        assert by_id["sharding.bit_identical_across_workers"].kind == "bool_true"
        assert by_id["chaos.faulted_bit_identical"].kind == "bool_true"
        assert by_id["chaos.resumed_bit_identical"].kind == "bool_true"
