"""Report schema: build, validate, write/load round-trip."""

from __future__ import annotations

import json

import pytest

from repro.bench.gates import GateSpec, evaluate_gates
from repro.bench.registry import SectionResult
from repro.bench.report import (
    SCHEMA_VERSION,
    build_report,
    load_report,
    validate_report,
    write_report,
)
from repro.errors import ConfigError

META = {"cpu": "TestCPU", "cpu_count": 4, "python": "3.11.7", "numpy": "2.0"}


def sample_results():
    return {
        "fast-bit": SectionResult(
            name="fast-bit", tags=("smoke",), seconds=1.25,
            seconds_runs=(1.3, 1.25, 1.2), cv=0.033,
            values={"speedup": 2.4, "bit_equal": True},
        ),
        "broken-bit": SectionResult(
            name="broken-bit", tags=("smoke",), seconds=0.1,
            seconds_runs=(0.1,), valid=False, reason="RuntimeError: nope",
        ),
    }


def sample_outcomes(results):
    specs = [
        GateSpec("fast-bit.speedup", "ratio_min", section="fast-bit",
                 key="speedup", threshold=2.0),
        GateSpec("broken-bit.any", "bool_true", section="broken-bit",
                 key="bit_equal"),
    ]
    return evaluate_gates(specs, results)


class TestBuild:
    def test_schema_version_and_sections(self):
        results = sample_results()
        report = build_report(results, sample_outcomes(results), meta=META)
        assert report["schema_version"] == SCHEMA_VERSION
        sec = report["sections"]["fast-bit"]
        assert sec["seconds"] == 1.25
        assert sec["values"]["speedup"] == 2.4
        assert sec["valid"] is True
        assert sec["seconds_runs"] == [1.3, 1.25, 1.2]
        assert report["sections"]["broken-bit"]["valid"] is False
        assert "RuntimeError" in report["sections"]["broken-bit"]["reason"]
        assert report["total_seconds"] == pytest.approx(1.35)
        assert report["_meta"] == META

    def test_gate_outcomes_serialized(self):
        results = sample_results()
        report = build_report(results, sample_outcomes(results), meta=META)
        gates = {g["gate_id"]: g for g in report["gates"]}
        assert gates["fast-bit.speedup"]["passed"] is True
        assert gates["broken-bit.any"]["passed"] is False

    def test_baseline_deltas_and_missing_marker(self):
        results = sample_results()
        baseline = {"fast-bit": 1.0, "total": 2.0, "_meta": META}
        report = build_report(results, (), baseline=baseline, meta=META)
        sec = report["sections"]["fast-bit"]
        assert sec["baseline_seconds"] == 1.0
        assert sec["vs_baseline"] == 1.25
        assert report["sections"]["broken-bit"]["missing_from_baseline"] is True
        assert report["baseline_total_seconds"] == 2.0
        assert report["baseline_meta"] == META


class TestRoundTrip:
    def test_write_then_load_is_identical(self, tmp_path):
        results = sample_results()
        report = build_report(results, sample_outcomes(results), meta=META)
        path = tmp_path / "report.json"
        write_report(path, report)
        assert load_report(path) == report

    def test_load_refuses_wrong_schema_version(self, tmp_path):
        results = sample_results()
        report = build_report(results, (), meta=META)
        report["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        with pytest.raises(ConfigError, match="schema_version"):
            load_report(path)

    def test_load_refuses_non_json_and_missing(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_report(bad)
        with pytest.raises(ConfigError, match="cannot read"):
            load_report(tmp_path / "absent.json")


class TestValidate:
    def test_rejects_non_object(self):
        with pytest.raises(ConfigError, match="JSON object"):
            validate_report([1, 2, 3])

    def test_rejects_missing_version(self):
        with pytest.raises(ConfigError, match="schema_version"):
            validate_report({"sections": {}})

    def test_rejects_section_without_seconds(self):
        with pytest.raises(ConfigError, match="numeric 'seconds'"):
            validate_report({
                "schema_version": SCHEMA_VERSION,
                "sections": {"x": {"values": {}}},
            })

    def test_rejects_non_list_gates(self):
        with pytest.raises(ConfigError, match="'gates'"):
            validate_report({
                "schema_version": SCHEMA_VERSION,
                "sections": {},
                "gates": {},
            })

    def test_accepts_minimal_document(self):
        doc = {"schema_version": SCHEMA_VERSION, "sections": {}}
        assert validate_report(doc) is doc
