"""GateSpec evaluation: kinds, noise floor, messages, slowed sections."""

from __future__ import annotations

import time

import pytest

from repro.bench.gates import (
    GateOutcome,
    GateSpec,
    evaluate_gates,
    evaluate_total_gate,
    format_outcome,
)
from repro.bench.registry import Registry, SectionResult, run_section
from repro.errors import ConfigError


def result(name="sec", seconds=1.0, values=None, valid=True, reason=None):
    return SectionResult(
        name=name, seconds=seconds, seconds_runs=(seconds,),
        values=values or {}, valid=valid, reason=reason,
    )


def one(outcomes):
    assert len(outcomes) == 1
    return outcomes[0]


class TestKinds:
    def test_ratio_min_passes_at_and_above_threshold(self):
        spec = GateSpec("g.min", "ratio_min", section="sec", key="r", threshold=2.0)
        for value, expected in [(2.0, True), (3.5, True), (1.99, False)]:
            out = one(evaluate_gates([spec], {"sec": result(values={"r": value})}))
            assert out.passed is expected
            assert out.measured == value
            assert out.threshold == 2.0

    def test_ratio_max_passes_at_and_below_threshold(self):
        spec = GateSpec("g.max", "ratio_max", section="sec", key="r", threshold=1.5)
        for value, expected in [(1.5, True), (0.9, True), (1.51, False)]:
            out = one(evaluate_gates([spec], {"sec": result(values={"r": value})}))
            assert out.passed is expected

    def test_bool_true(self):
        spec = GateSpec("g.bool", "bool_true", section="sec", key="ok")
        assert one(evaluate_gates([spec], {"sec": result(values={"ok": True})})).passed
        out = one(evaluate_gates([spec], {"sec": result(values={"ok": False})}))
        assert not out.passed and not out.skipped

    def test_unknown_kind_refused(self):
        with pytest.raises(ConfigError):
            GateSpec("g.bad", "ratio_between", section="sec", key="r")


class TestWallFactor:
    SPEC = GateSpec("wall.sec", "wall_factor", section="sec", threshold=2.0)

    def test_within_budget_passes(self):
        out = one(evaluate_gates(
            [self.SPEC], {"sec": result(seconds=1.9)}, baseline={"sec": 1.0}
        ))
        assert out.passed and out.threshold == 2.0

    def test_regression_fails_with_measured_and_threshold(self):
        out = one(evaluate_gates(
            [self.SPEC], {"sec": result(seconds=2.5)}, baseline={"sec": 1.0}
        ))
        assert not out.passed
        assert out.measured == 2.5
        assert out.threshold == 2.0

    def test_min_section_noise_floor(self):
        # Baseline 0.01 s: without the floor a 0.4 s run (40x) would
        # fail; the 0.5 s floor gates it against 2 * 0.5 = 1.0 s.
        out = one(evaluate_gates(
            [self.SPEC], {"sec": result(seconds=0.4)},
            baseline={"sec": 0.01}, min_section=0.5,
        ))
        assert out.passed and out.threshold == 1.0
        out = one(evaluate_gates(
            [self.SPEC], {"sec": result(seconds=1.1)},
            baseline={"sec": 0.01}, min_section=0.5,
        ))
        assert not out.passed

    def test_factor_override(self):
        out = one(evaluate_gates(
            [self.SPEC], {"sec": result(seconds=2.5)},
            baseline={"sec": 1.0}, factor=3.0,
        ))
        assert out.passed and out.threshold == 3.0

    def test_no_baseline_skips(self):
        out = one(evaluate_gates([self.SPEC], {"sec": result(seconds=99.0)}))
        assert out.skipped and out.passed

    def test_section_missing_from_baseline_fails(self):
        out = one(evaluate_gates(
            [self.SPEC], {"sec": result(seconds=1.0)}, baseline={"other": 1.0}
        ))
        assert not out.passed
        assert "missing from the committed baseline" in out.reason

    def test_total_gate(self):
        out = evaluate_total_gate(13.0, {"total": 6.0})
        assert not out.passed and out.threshold == 12.0
        assert evaluate_total_gate(11.9, {"total": 6.0}).passed
        assert evaluate_total_gate(1.0, None).skipped
        assert not evaluate_total_gate(1.0, {}).passed  # stale baseline


class TestEdgeStates:
    def test_unselected_section_skips(self):
        spec = GateSpec("g", "ratio_min", section="absent", key="r", threshold=1.0)
        out = one(evaluate_gates([spec], {}))
        assert out.skipped and out.passed

    def test_invalid_section_fails_gate_with_reason(self):
        spec = GateSpec("g", "ratio_min", section="sec", key="r", threshold=1.0)
        out = one(evaluate_gates(
            [spec], {"sec": result(valid=False, reason="boom")}
        ))
        assert out.failed
        assert "boom" in out.reason

    def test_missing_value_fails_unless_skip_if_missing(self):
        strict = GateSpec("g1", "ratio_min", section="sec", key="r", threshold=1.0)
        lenient = GateSpec("g2", "bool_true", section="sec", key="b",
                           skip_if_missing=True)
        outs = evaluate_gates([strict, lenient], {"sec": result(values={})})
        assert outs[0].failed and "not measured" in outs[0].reason
        assert outs[1].skipped and outs[1].passed


class TestFailureMessage:
    def test_failure_line_has_id_measured_threshold(self):
        spec = GateSpec("column-read.sparse_vs_dense", "ratio_min",
                        section="sec", key="r", threshold=2.0)
        out = one(evaluate_gates([spec], {"sec": result(values={"r": 1.3})}))
        line = format_outcome(out)
        assert "column-read.sparse_vs_dense" in line
        assert "1.3" in line
        assert "2.0" in line
        assert "FAIL" in line

    def test_to_json_round_trips_the_same_fields(self):
        spec = GateSpec("g", "ratio_max", section="sec", key="r", threshold=1.5)
        out = one(evaluate_gates([spec], {"sec": result(values={"r": 2.0})}))
        doc = out.to_json()
        assert doc["gate_id"] == "g"
        assert doc["passed"] is False
        assert doc["measured"] == 2.0
        assert doc["threshold"] == 1.5


class TestDeliberatelySlowedSection:
    """The acceptance criterion: a slowed section trips its wall gate
    and the failure message carries gate id, measured value, threshold."""

    def test_slowed_section_trips_wall_gate(self):
        reg = Registry()

        @reg.section(
            "sleepy", tags=("synthetic",),
            gates=(GateSpec("wall.sleepy", "wall_factor", threshold=2.0),),
        )
        def sleepy(ctx):
            time.sleep(0.12)  # baseline below says this used to take 10 ms

        sec = reg.get("sleepy")
        res = run_section(sec, echo=lambda _line: None)
        outcomes = evaluate_gates(
            reg.gates_for([sec]), {"sleepy": res},
            baseline={"sleepy": 0.01}, min_section=0.02,
        )
        out = one(outcomes)
        assert out.failed
        line = format_outcome(out)
        assert "wall.sleepy" in line
        assert str(out.measured) in line
        assert str(out.threshold) in line
        # And the same section within budget passes.
        ok = one(evaluate_gates(
            reg.gates_for([sec]), {"sleepy": res},
            baseline={"sleepy": 0.1}, min_section=0.02,
        ))
        assert ok.passed


class TestBinding:
    def test_registration_binds_gate_section(self):
        reg = Registry()

        @reg.section("named", gates=(GateSpec("g", "bool_true", key="ok"),))
        def named(ctx):
            return {"ok": True}

        assert reg.get("named").gates[0].section == "named"

    def test_explicit_section_preserved(self):
        reg = Registry()

        @reg.section("a", gates=(GateSpec("g", "bool_true", section="b", key="x"),))
        def a(ctx):
            return None

        assert reg.get("a").gates[0].section == "b"


def test_outcome_failed_property():
    spec = GateSpec("g", "bool_true", section="s", key="k")
    assert GateOutcome(spec, passed=False).failed
    assert not GateOutcome(spec, passed=False, skipped=True).failed
    assert not GateOutcome(spec, passed=True).failed
