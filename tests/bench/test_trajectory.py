"""Trajectory: commit dedupe, window bound, same-host regression gate."""

from __future__ import annotations

import json

from repro.bench.report import SCHEMA_VERSION
from repro.bench.trajectory import (
    append_run,
    check_trajectory,
    load_trajectory,
)

META_A = {"cpu": "CPU-A", "cpu_count": 4, "python": "3.11.7", "numpy": "2.0"}
META_B = {"cpu": "CPU-B", "cpu_count": 1, "python": "3.11.7", "numpy": "2.0"}


def make_report(seconds=1.0, meta=META_A, name="sec", valid=True, gates=()):
    return {
        "schema_version": SCHEMA_VERSION,
        "sections": {
            name: {
                "seconds": seconds, "valid": valid, "tags": ["smoke"],
                "values": {"speedup": 2.0},
            },
        },
        "gates": list(gates),
        "total_seconds": seconds,
        "_meta": dict(meta),
    }


class TestAppend:
    def test_append_creates_and_accumulates(self, tmp_path):
        path = tmp_path / "trajectory.json"
        append_run(path, make_report(1.0))
        append_run(path, make_report(2.0))
        doc = load_trajectory(path)
        assert len(doc["runs"]) == 2
        assert doc["runs"][0]["sections"]["sec"]["seconds"] == 1.0
        assert doc["runs"][1]["sections"]["sec"]["seconds"] == 2.0
        assert doc["runs"][0]["sections"]["sec"]["speedup"] == 2.0

    def test_same_sha_replaces_never_double_appends(self, tmp_path):
        path = tmp_path / "trajectory.json"
        append_run(path, make_report(1.0), sha="abc")
        append_run(path, make_report(9.0), sha="abc")
        doc = load_trajectory(path)
        assert len(doc["runs"]) == 1
        assert doc["runs"][0]["sections"]["sec"]["seconds"] == 9.0
        assert doc["runs"][0]["commit"] == "abc"

    def test_different_shas_accumulate(self, tmp_path):
        path = tmp_path / "trajectory.json"
        append_run(path, make_report(1.0), sha="abc")
        append_run(path, make_report(2.0), sha="def")
        assert len(load_trajectory(path)["runs"]) == 2

    def test_window_bound(self, tmp_path):
        path = tmp_path / "trajectory.json"
        for i in range(10):
            append_run(path, make_report(float(i)), sha=f"sha{i}", keep=4)
        doc = load_trajectory(path)
        assert len(doc["runs"]) == 4
        assert [r["commit"] for r in doc["runs"]] == [
            "sha6", "sha7", "sha8", "sha9",
        ]

    def test_failed_gates_recorded(self, tmp_path):
        path = tmp_path / "trajectory.json"
        gates = [
            {"gate_id": "g.bad", "passed": False, "skipped": False},
            {"gate_id": "g.ok", "passed": True, "skipped": False},
            {"gate_id": "g.skip", "passed": False, "skipped": True},
        ]
        entry = append_run(path, make_report(1.0, gates=gates))
        assert entry["gates_failed"] == ["g.bad"]

    def test_legacy_document_shape_accepted(self, tmp_path):
        # The pre-schema committed file: {"runs": [...]} with entries in
        # the historical shape — append keeps them, check can read them.
        path = tmp_path / "trajectory.json"
        legacy = {"runs": [{
            "sections": {"sec": {"seconds": 1.0}},
            "total_seconds": 1.0,
            "_meta": dict(META_A),
        }]}
        path.write_text(json.dumps(legacy))
        append_run(path, make_report(2.0))
        doc = load_trajectory(path)
        assert len(doc["runs"]) == 2
        assert doc["schema_version"] == 1

    def test_corrupt_file_recovers_empty(self, tmp_path):
        path = tmp_path / "trajectory.json"
        path.write_text("{nope")
        assert load_trajectory(path)["runs"] == []
        append_run(path, make_report(1.0))
        assert len(load_trajectory(path)["runs"]) == 1


def seed_history(path, seconds_list, meta=META_A, name="sec"):
    for i, s in enumerate(seconds_list):
        append_run(path, make_report(s, meta=meta, name=name), sha=f"h{i}")


class TestCheck:
    def test_regression_detected_with_id_measured_threshold(self, tmp_path):
        path = tmp_path / "trajectory.json"
        seed_history(path, [1.0, 1.1, 0.9, 1.0])
        out = check_trajectory(
            path, make_report(3.0), min_section=0.1, factor=1.5
        )
        (o,) = out
        assert o.failed
        assert o.gate_id == "trajectory.sec"
        assert o.measured == 3.0
        # median 1.0 * 1.5
        assert o.threshold == 1.5

    def test_within_budget_passes(self, tmp_path):
        path = tmp_path / "trajectory.json"
        seed_history(path, [1.0, 1.1, 0.9, 1.0])
        (o,) = check_trajectory(
            path, make_report(1.2), min_section=0.1, factor=1.5
        )
        assert o.passed and not o.skipped

    def test_single_noisy_history_entry_cannot_fake_regression(self, tmp_path):
        # One historically slow run does not drag the median up — and one
        # historically fast run does not drag it down: sustained history
        # is what the current run is judged against.
        path = tmp_path / "trajectory.json"
        seed_history(path, [1.0, 1.0, 20.0, 1.0, 1.0])
        (o,) = check_trajectory(
            path, make_report(1.3), min_section=0.1, factor=1.5
        )
        assert o.passed

    def test_insufficient_history_skips(self, tmp_path):
        path = tmp_path / "trajectory.json"
        seed_history(path, [1.0, 1.0])
        (o,) = check_trajectory(path, make_report(99.0), min_history=3)
        assert o.skipped and o.passed
        assert "insufficient" in o.reason

    def test_other_host_history_excluded(self, tmp_path):
        path = tmp_path / "trajectory.json"
        seed_history(path, [0.1, 0.1, 0.1, 0.1], meta=META_B)
        # Plenty of CPU-B history, none for CPU-A: the check must skip,
        # not compare a 1-core container against a 4-core runner.
        (o,) = check_trajectory(path, make_report(5.0, meta=META_A))
        assert o.skipped

    def test_current_sha_excluded_from_history(self, tmp_path):
        path = tmp_path / "trajectory.json"
        seed_history(path, [1.0, 1.0, 1.0])
        # A previous run of this same commit was slow; it must not vouch
        # for (or against) the re-run.
        append_run(path, make_report(50.0), sha="current")
        (o,) = check_trajectory(
            path, make_report(1.2), sha="current", min_section=0.1
        )
        assert o.passed
        assert "3 same-host runs" in o.reason

    def test_min_section_noise_floor(self, tmp_path):
        path = tmp_path / "trajectory.json"
        seed_history(path, [0.01, 0.012, 0.009])
        # 0.4 s is 40x the median but under factor * floor.
        (o,) = check_trajectory(
            path, make_report(0.4), min_section=0.5, factor=1.5
        )
        assert o.passed

    def test_invalid_sections_ignored_both_sides(self, tmp_path):
        path = tmp_path / "trajectory.json"
        seed_history(path, [1.0, 1.0, 1.0])
        append_run(path, make_report(0.001, valid=False), sha="broken")
        outs = check_trajectory(path, make_report(1.0, valid=False))
        assert outs == []

    def test_window_limits_lookback(self, tmp_path):
        path = tmp_path / "trajectory.json"
        # Old slow era, then a fast era: window=3 compares against the
        # fast era only, so a return to the slow era is a regression.
        seed_history(path, [10.0, 10.0, 10.0, 1.0, 1.0, 1.0])
        (o,) = check_trajectory(
            path, make_report(9.0), window=3, min_section=0.1, factor=1.5
        )
        assert o.failed
