"""Exception hierarchy tests."""

import numpy as np
import pytest

from repro.errors import (
    CompileError,
    ConfigError,
    ConvergenceError,
    DiagnosticError,
    EstimationError,
    LintError,
    MeasurementError,
    NetlistError,
    PlanAuditError,
    ReproError,
    SearchError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [NetlistError, ConvergenceError, SimulationError, MeasurementError,
         EstimationError, SearchError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("x")

    def test_convergence_error_carries_diagnostics(self):
        err = ConvergenceError("failed", iterations=12, residual=3.5e-4)
        assert err.iterations == 12
        assert err.residual == pytest.approx(3.5e-4)

    def test_convergence_error_defaults(self):
        err = ConvergenceError("failed")
        assert err.iterations == -1
        assert err.residual != err.residual  # NaN

    def test_one_except_catches_everything(self):
        caught = []
        for exc in (NetlistError("a"), SearchError("b"), SimulationError("c")):
            try:
                raise exc
            except ReproError as e:
                caught.append(type(e).__name__)
        assert caught == ["NetlistError", "SearchError", "SimulationError"]


class TestDiagnosticHierarchy:
    """The typed diagnostic exceptions and their compatibility bridges."""

    def test_config_error_is_value_error(self):
        # Legacy callers catch the builtin; the bridge keeps them working.
        with pytest.raises(ValueError):
            raise ConfigError("bad knob")
        assert issubclass(ConfigError, ReproError)

    @pytest.mark.parametrize(
        "exc,family",
        [
            (CompileError, SimulationError),
            (PlanAuditError, SimulationError),
            (LintError, NetlistError),
        ],
    )
    def test_diagnostic_errors_keep_their_family(self, exc, family):
        assert issubclass(exc, DiagnosticError)
        assert issubclass(exc, family)
        with pytest.raises(family):
            raise exc("x")

    def test_code_and_diagnostics_carried(self):
        err = DiagnosticError("msg", code="P001", diagnostics=("d1", "d2"))
        assert err.code == "P001"
        assert err.diagnostics == ("d1", "d2")

    def test_defaults(self):
        err = DiagnosticError("msg")
        assert err.code is None
        assert err.diagnostics == ()


class TestNoBareBuiltins:
    """Public entry points reject bad input with typed repro errors.

    Every rejection must be catchable as ``ReproError`` — the builtin
    types (``ValueError`` et al.) may appear only as compatibility base
    classes, never as the raised type itself.
    """

    def _assert_typed(self, fn):
        with pytest.raises(ReproError) as exc:
            fn()
        assert isinstance(exc.value, ReproError)
        assert type(exc.value).__module__ == "repro.errors"

    def test_compile_rejections(self):
        from repro.spice.compile import CompiledTransient
        from repro.spice.netlist import Circuit

        grid = np.linspace(0.0, 1e-9, 4)
        self._assert_typed(
            lambda: CompiledTransient(Circuit("t"), grid, kernel="nope")
        )
        self._assert_typed(
            lambda: CompiledTransient(Circuit("t"), grid, assembly="nope")
        )
        self._assert_typed(lambda: CompiledTransient(Circuit("t"), grid))

    def test_netlist_rejections(self):
        from repro.spice.elements import Resistor
        from repro.spice.netlist import Circuit

        c = Circuit("t")
        c.add(Resistor("r1", "a", "b", 1.0))
        self._assert_typed(lambda: c.add(Resistor("r1", "a", "b", 1.0)))
        self._assert_typed(lambda: c.index_of("missing"))

    def test_engine_rejections(self):
        from repro.engine import split_budget

        self._assert_typed(lambda: split_budget(10, 0))
        self._assert_typed(lambda: split_budget(-1, 2))

    def test_config_rejections(self):
        from repro.highsigma.sigma import array_yield
        from repro.spice.sensitivity import mosfet_vth_gradient
        from repro.sram.column import ColumnConfig, ReadColumn
        from repro.variation.pelgrom import vth_mismatch_sigma

        self._assert_typed(lambda: array_yield(1.5, 1024))
        self._assert_typed(lambda: array_yield(0.1, 0))
        self._assert_typed(lambda: vth_mismatch_sigma(None, -1.0, 1.0))
        self._assert_typed(
            lambda: ReadColumn(config=ColumnConfig(leaker_data="nope"))
        )
        self._assert_typed(
            lambda: mosfet_vth_gradient(None, None, [], scheme="sideways")
        )

    def test_sram_config_rejections(self):
        from repro.sram.array import ArrayConfig, ArraySlice

        self._assert_typed(lambda: ArraySlice(config=ArrayConfig(n_cols=0)))
        self._assert_typed(
            lambda: ArraySlice(config=ArrayConfig(n_cols=2, sel_col=5))
        )
