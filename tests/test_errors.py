"""Exception hierarchy tests."""

import pytest

from repro.errors import (
    ConvergenceError,
    EstimationError,
    MeasurementError,
    NetlistError,
    ReproError,
    SearchError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [NetlistError, ConvergenceError, SimulationError, MeasurementError,
         EstimationError, SearchError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("x")

    def test_convergence_error_carries_diagnostics(self):
        err = ConvergenceError("failed", iterations=12, residual=3.5e-4)
        assert err.iterations == 12
        assert err.residual == pytest.approx(3.5e-4)

    def test_convergence_error_defaults(self):
        err = ConvergenceError("failed")
        assert err.iterations == -1
        assert err.residual != err.residual  # NaN

    def test_one_except_catches_everything(self):
        caught = []
        for exc in (NetlistError("a"), SearchError("b"), SimulationError("c")):
            try:
                raise exc
            except ReproError as e:
                caught.append(type(e).__name__)
        assert caught == ["NetlistError", "SearchError", "SimulationError"]
