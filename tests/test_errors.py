"""Exception hierarchy tests."""

import numpy as np
import pytest

from repro.errors import (
    CompileError,
    ConfigError,
    ConvergenceError,
    DiagnosticError,
    EstimationError,
    JournalError,
    LintError,
    MeasurementError,
    NetlistError,
    PlanAuditError,
    ReproError,
    SearchError,
    ShardExecutionError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [NetlistError, ConvergenceError, SimulationError, MeasurementError,
         EstimationError, SearchError, ShardExecutionError, JournalError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("x")

    def test_convergence_error_carries_diagnostics(self):
        err = ConvergenceError("failed", iterations=12, residual=3.5e-4)
        assert err.iterations == 12
        assert err.residual == pytest.approx(3.5e-4)

    def test_convergence_error_defaults(self):
        err = ConvergenceError("failed")
        assert err.iterations == -1
        assert err.residual != err.residual  # NaN

    def test_one_except_catches_everything(self):
        caught = []
        for exc in (NetlistError("a"), SearchError("b"), SimulationError("c")):
            try:
                raise exc
            except ReproError as e:
                caught.append(type(e).__name__)
        assert caught == ["NetlistError", "SearchError", "SimulationError"]


class TestDiagnosticHierarchy:
    """The typed diagnostic exceptions and their compatibility bridges."""

    def test_config_error_is_value_error(self):
        # Legacy callers catch the builtin; the bridge keeps them working.
        with pytest.raises(ValueError):
            raise ConfigError("bad knob")
        assert issubclass(ConfigError, ReproError)

    @pytest.mark.parametrize(
        "exc,family",
        [
            (CompileError, SimulationError),
            (PlanAuditError, SimulationError),
            (LintError, NetlistError),
            (JournalError, EstimationError),
        ],
    )
    def test_diagnostic_errors_keep_their_family(self, exc, family):
        assert issubclass(exc, DiagnosticError)
        assert issubclass(exc, family)
        with pytest.raises(family):
            raise exc("x")

    def test_code_and_diagnostics_carried(self):
        err = DiagnosticError("msg", code="P001", diagnostics=("d1", "d2"))
        assert err.code == "P001"
        assert err.diagnostics == ("d1", "d2")

    def test_defaults(self):
        err = DiagnosticError("msg")
        assert err.code is None
        assert err.diagnostics == ()


class TestFaultToleranceErrors:
    """The fault-tolerance layer's typed exceptions and their fields."""

    def test_shard_execution_error_carries_context(self):
        cause = ValueError("worker blew up")
        err = ShardExecutionError("shard 3 died", shard_index=3, attempts=2, cause=cause)
        assert err.shard_index == 3
        assert err.attempts == 2
        assert err.cause is cause
        # Estimation-family: one except EstimationError catches it.
        with pytest.raises(EstimationError):
            raise err

    def test_shard_execution_error_defaults(self):
        err = ShardExecutionError("x")
        assert err.shard_index == -1
        assert err.attempts == 0
        assert err.cause is None

    def test_journal_error_is_diagnostic_and_estimation(self):
        err = JournalError("bad journal", code="D005", diagnostics=("d",))
        assert err.code == "D005"
        assert err.diagnostics == ("d",)
        assert isinstance(err, DiagnosticError)
        assert isinstance(err, EstimationError)


class TestNoBareBuiltins:
    """Public entry points reject bad input with typed repro errors.

    Every rejection must be catchable as ``ReproError`` — the builtin
    types (``ValueError`` et al.) may appear only as compatibility base
    classes, never as the raised type itself.
    """

    def _assert_typed(self, fn):
        with pytest.raises(ReproError) as exc:
            fn()
        assert isinstance(exc.value, ReproError)
        assert type(exc.value).__module__ == "repro.errors"

    def test_compile_rejections(self):
        from repro.spice.compile import CompiledTransient
        from repro.spice.netlist import Circuit

        grid = np.linspace(0.0, 1e-9, 4)
        self._assert_typed(
            lambda: CompiledTransient(Circuit("t"), grid, kernel="nope")
        )
        self._assert_typed(
            lambda: CompiledTransient(Circuit("t"), grid, assembly="nope")
        )
        self._assert_typed(lambda: CompiledTransient(Circuit("t"), grid))

    def test_netlist_rejections(self):
        from repro.spice.elements import Resistor
        from repro.spice.netlist import Circuit

        c = Circuit("t")
        c.add(Resistor("r1", "a", "b", 1.0))
        self._assert_typed(lambda: c.add(Resistor("r1", "a", "b", 1.0)))
        self._assert_typed(lambda: c.index_of("missing"))

    def test_engine_rejections(self):
        from repro.engine import split_budget

        self._assert_typed(lambda: split_budget(10, 0))
        self._assert_typed(lambda: split_budget(-1, 2))

    def test_config_rejections(self):
        from repro.highsigma.sigma import array_yield
        from repro.spice.sensitivity import mosfet_vth_gradient
        from repro.sram.column import ColumnConfig, ReadColumn
        from repro.variation.pelgrom import vth_mismatch_sigma

        self._assert_typed(lambda: array_yield(1.5, 1024))
        self._assert_typed(lambda: array_yield(0.1, 0))
        self._assert_typed(lambda: vth_mismatch_sigma(None, -1.0, 1.0))
        self._assert_typed(
            lambda: ReadColumn(config=ColumnConfig(leaker_data="nope"))
        )
        self._assert_typed(
            lambda: mosfet_vth_gradient(None, None, [], scheme="sideways")
        )

    def test_sram_config_rejections(self):
        from repro.sram.array import ArrayConfig, ArraySlice

        self._assert_typed(lambda: ArraySlice(config=ArrayConfig(n_cols=0)))
        self._assert_typed(
            lambda: ArraySlice(config=ArrayConfig(n_cols=2, sel_col=5))
        )
