"""End-to-end integration: gradient IS on the real SRAM engine vs golden MC.

The full pipeline at a sigma level low enough (≈3) for a moderate golden
Monte Carlo run to resolve the truth: GIS's estimate (built from a
gradient MPFP search plus ~2k importance samples) must agree with the
golden failure fraction within its confidence interval — on the *actual*
transistor-level metric, not a surrogate.
"""

import numpy as np
import pytest

from repro.experiments.workloads import calibrate_read_spec, make_read_limitstate
from repro.highsigma.gis import GradientImportanceSampling
from repro.highsigma.mc import MonteCarloEstimator


@pytest.fixture(scope="module")
def calibrated():
    spec = calibrate_read_spec(sigma_target=3.0, n_steps=250)
    return spec


class TestEndToEnd:
    def test_gis_matches_golden_mc_on_sram(self, calibrated):
        spec = calibrated

        ls_gis = make_read_limitstate(spec, n_steps=250)
        gis = GradientImportanceSampling(ls_gis, n_max=2500, target_rel_err=0.08)
        res_gis = gis.run(np.random.default_rng(0))

        ls_mc = make_read_limitstate(spec, n_steps=250)
        mc = MonteCarloEstimator(ls_mc, n_max=60000, batch_size=8192,
                                 target_rel_err=0.15)
        res_mc = mc.run(np.random.default_rng(1))

        assert res_mc.n_failures >= 10, "golden MC must actually resolve the rate"
        # Agreement within the joint 95% confidence band.
        joint = 1.96 * np.hypot(res_gis.std_err, res_mc.std_err)
        assert abs(res_gis.p_fail - res_mc.p_fail) < joint + 0.3 * res_mc.p_fail

    def test_gis_costs_far_less_than_mc(self, calibrated):
        spec = calibrated
        ls = make_read_limitstate(spec, n_steps=250)
        res = GradientImportanceSampling(ls, n_max=2500, target_rel_err=0.1).run(
            np.random.default_rng(2)
        )
        # At ~3 sigma, MC for 10% needs ~ (1-p)/(p*0.01) ~ 7e4; GIS should
        # be at least an order of magnitude cheaper.
        assert res.n_evals < 7000

    def test_mpfp_identifies_pass_gate_as_critical(self, calibrated):
        from repro.highsigma.mpfp import MpfpSearch

        ls = make_read_limitstate(calibrated, n_steps=250)
        res = MpfpSearch(ls).run()
        # The read-access failure is dominated by the accessed-side pass
        # gate threshold (axis 2 in canonical order).
        dominant = int(np.argmax(np.abs(res.u_star)))
        assert dominant == 2
        assert res.u_star[2] > 0  # weaker pass gate slows the read
