"""Pelgrom mismatch-law tests."""

import pytest

from repro.spice.mosfet import nmos_45nm, pmos_45nm
from repro.variation.pelgrom import beta_mismatch_sigma, vth_mismatch_sigma


class TestVthSigma:
    def test_area_law(self):
        m = nmos_45nm()
        s = vth_mismatch_sigma(m, 100e-9, 50e-9)
        s4 = vth_mismatch_sigma(m, 400e-9, 50e-9)
        assert s4 == pytest.approx(s / 2)

    def test_magnitude_tens_of_millivolts(self):
        s = vth_mismatch_sigma(nmos_45nm(), 100e-9, 50e-9)
        assert 0.02 < s < 0.06

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            vth_mismatch_sigma(nmos_45nm(), -1e-9, 50e-9)
        with pytest.raises(ValueError):
            vth_mismatch_sigma(nmos_45nm(), 1e-9, 0.0)


class TestBetaSigma:
    def test_area_law(self):
        m = pmos_45nm()
        s = beta_mismatch_sigma(m, 80e-9, 50e-9)
        s4 = beta_mismatch_sigma(m, 320e-9, 50e-9)
        assert s4 == pytest.approx(s / 2)

    def test_fractional_range(self):
        s = beta_mismatch_sigma(nmos_45nm(), 100e-9, 50e-9)
        assert 0.01 < s < 0.5
