"""Correlated (global + local) variation model tests."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.sram.cell import CELL_DEVICE_ORDER, build_cell
from repro.variation.correlated import CorrelatedSpace, GlobalAxis
from repro.variation.space import VariationSpace

NMOS = ("m_pd_l", "m_pg_l", "m_pd_r", "m_pg_r")
PMOS = ("m_pu_l", "m_pu_r")


@pytest.fixture
def space():
    local = VariationSpace.from_mosfets(build_cell())
    return CorrelatedSpace.nmos_pmos_globals(local, NMOS, PMOS,
                                             sigma_nmos=0.02, sigma_pmos=0.03)


class TestGlobalAxis:
    def test_validation(self):
        with pytest.raises(NetlistError):
            GlobalAxis("g", "length", 0.02, ("m1",))
        with pytest.raises(NetlistError):
            GlobalAxis("g", "vth", -0.02, ("m1",))
        with pytest.raises(NetlistError):
            GlobalAxis("g", "vth", 0.02, ())


class TestLayout:
    def test_dim_is_local_plus_globals(self, space):
        assert space.dim == 6 + 2

    def test_labels(self, space):
        assert space.labels[-2:] == ["global:nmos.vth", "global:pmos.vth"]

    def test_split(self, space):
        u = np.arange(8.0)
        loc, glob = space.split(u)
        assert loc.shape == (6,)
        np.testing.assert_allclose(glob, [6.0, 7.0])

    def test_wrong_shape(self, space):
        with pytest.raises(NetlistError):
            space.split(np.zeros(6))

    def test_duplicate_globals_rejected(self):
        local = VariationSpace.from_mosfets(build_cell())
        axis = GlobalAxis("nmos", "vth", 0.02, NMOS)
        with pytest.raises(NetlistError):
            CorrelatedSpace(local, [axis, axis])


class TestPhysicalMapping:
    def test_global_shift_applied_to_all_members(self, space):
        u = np.zeros(8)
        u[6] = 2.0  # +2 sigma global NMOS
        phys = space.to_physical(u)
        for dev in NMOS:
            assert phys[dev]["delta_vth"] == pytest.approx(0.04)
        for dev in PMOS:
            assert phys[dev]["delta_vth"] == 0.0

    def test_local_and_global_add(self, space):
        u = np.zeros(8)
        u[2] = 1.0   # local pass-gate axis
        u[6] = 1.0   # global NMOS
        phys = space.to_physical(u)
        local_sigma = space.local.axes[2].sigma
        assert phys["m_pg_l"]["delta_vth"] == pytest.approx(local_sigma + 0.02)

    def test_apply_to_circuit(self, space):
        circuit = build_cell()
        u = np.zeros(8)
        u[7] = 1.0  # global PMOS
        space.apply(circuit, u)
        assert circuit["m_pu_l"].delta_vth == pytest.approx(0.03)
        assert circuit["m_pu_r"].delta_vth == pytest.approx(0.03)
        assert circuit["m_pd_l"].delta_vth == 0.0


class TestBatchMatrices:
    def test_vth_matrix_includes_globals(self, space):
        u = np.zeros((2, 8))
        u[0, 6] = 1.0
        mat = space.vth_matrix(u, CELL_DEVICE_ORDER)
        cols = {n: j for j, n in enumerate(CELL_DEVICE_ORDER)}
        assert mat[0, cols["m_pd_l"]] == pytest.approx(0.02)
        assert mat[0, cols["m_pu_l"]] == 0.0
        np.testing.assert_allclose(mat[1], 0.0)

    def test_matches_to_physical(self, space):
        rng = np.random.default_rng(0)
        u = rng.normal(size=8)
        mat = space.vth_matrix(u[None, :], CELL_DEVICE_ORDER)
        phys = space.to_physical(u)
        for j, name in enumerate(CELL_DEVICE_ORDER):
            assert mat[0, j] == pytest.approx(phys[name]["delta_vth"])

    def test_beta_matrix_multiplicative(self):
        local = VariationSpace.from_mosfets(build_cell(), include_beta=True)
        cspace = CorrelatedSpace(
            local, [GlobalAxis("nmos", "beta", 0.05, NMOS)]
        )
        u = np.zeros((1, cspace.dim))
        u[0, -1] = 1.0
        mat = cspace.beta_matrix(u, CELL_DEVICE_ORDER)
        cols = {n: j for j, n in enumerate(CELL_DEVICE_ORDER)}
        assert mat[0, cols["m_pd_l"]] == pytest.approx(1.05)
        assert mat[0, cols["m_pu_l"]] == 1.0


class TestEndToEnd:
    def test_global_slowdown_visible_in_engine(self):
        # A +2-sigma global NMOS slow-down must slow the read through the
        # batched engine driven by the correlated space.
        from repro.sram.batched import Batched6T

        local = VariationSpace.from_mosfets(build_cell())
        space = CorrelatedSpace.nmos_pmos_globals(local, NMOS, PMOS)
        engine = Batched6T(n_steps=300)
        u0 = np.zeros((1, space.dim))
        u1 = np.zeros((1, space.dim))
        u1[0, 6] = 2.0
        base = engine.read(space.vth_matrix(u0, CELL_DEVICE_ORDER)).metric[0]
        slow = engine.read(space.vth_matrix(u1, CELL_DEVICE_ORDER)).metric[0]
        assert slow > 1.1 * base
