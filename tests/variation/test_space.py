"""VariationSpace mapping tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.sram.cell import CELL_DEVICE_ORDER, build_cell
from repro.variation.space import DeviceAxis, VariationSpace


def two_axis_space():
    return VariationSpace(
        [DeviceAxis("m1", "vth", 0.03), DeviceAxis("m2", "beta", 0.05)]
    )


class TestDeviceAxis:
    def test_label(self):
        assert DeviceAxis("m1", "vth", 0.03).label == "m1.vth"

    def test_bad_kind_rejected(self):
        with pytest.raises(NetlistError):
            DeviceAxis("m1", "length", 0.03)

    def test_nonpositive_sigma_rejected(self):
        with pytest.raises(NetlistError):
            DeviceAxis("m1", "vth", 0.0)


class TestSpace:
    def test_dim_and_labels(self):
        s = two_axis_space()
        assert s.dim == 2
        assert s.labels == ["m1.vth", "m2.beta"]

    def test_duplicate_axes_rejected(self):
        with pytest.raises(NetlistError):
            VariationSpace([DeviceAxis("m1", "vth", 0.03)] * 2)

    def test_empty_rejected(self):
        with pytest.raises(NetlistError):
            VariationSpace([])

    def test_to_physical_scaling(self):
        s = two_axis_space()
        phys = s.to_physical(np.array([2.0, -1.0]))
        assert phys["m1"]["delta_vth"] == pytest.approx(0.06)
        assert phys["m1"]["beta_mult"] == 1.0
        assert phys["m2"]["beta_mult"] == pytest.approx(0.95)

    def test_wrong_shape_rejected(self):
        with pytest.raises(NetlistError):
            two_axis_space().to_physical(np.zeros(3))

    def test_sigma_vector(self):
        np.testing.assert_allclose(two_axis_space().sigma_vector(), [0.03, 0.05])


class TestApplyToCircuit:
    def test_apply_and_reset(self):
        circuit = build_cell()
        space = VariationSpace.from_mosfets(circuit)
        u = np.linspace(-2, 2, space.dim)
        space.apply(circuit, u)
        shifted = [m.delta_vth for m in circuit.mosfets()]
        assert any(abs(v) > 1e-4 for v in shifted)
        space.reset(circuit)
        assert all(m.delta_vth == 0.0 for m in circuit.mosfets())
        assert all(m.beta_mult == 1.0 for m in circuit.mosfets())

    def test_from_mosfets_dim(self):
        circuit = build_cell()
        assert VariationSpace.from_mosfets(circuit).dim == 6
        assert VariationSpace.from_mosfets(circuit, include_beta=True).dim == 12


class TestBatchMatrices:
    def test_vth_matrix_layout(self):
        circuit = build_cell()
        space = VariationSpace.from_mosfets(circuit)
        u = np.zeros((3, 6))
        u[1, 2] = 2.0  # third axis = m_pg_l
        mat = space.vth_matrix(u, CELL_DEVICE_ORDER)
        assert mat.shape == (3, 6)
        col = list(CELL_DEVICE_ORDER).index("m_pg_l")
        assert mat[1, col] == pytest.approx(2.0 * space.axes[2].sigma)
        assert np.count_nonzero(mat) == 1

    def test_beta_matrix_defaults_to_one(self):
        circuit = build_cell()
        space = VariationSpace.from_mosfets(circuit)  # vth only
        mat = space.beta_matrix(np.ones((2, 6)), CELL_DEVICE_ORDER)
        np.testing.assert_allclose(mat, 1.0)

    def test_wrong_batch_width_rejected(self):
        circuit = build_cell()
        space = VariationSpace.from_mosfets(circuit)
        with pytest.raises(NetlistError):
            space.vth_matrix(np.zeros((2, 5)), CELL_DEVICE_ORDER)

    @given(st.integers(min_value=0, max_value=5), st.floats(-3, 3))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_consistency(self, axis_idx, value):
        # vth_matrix must agree with to_physical for any single-axis u.
        circuit = build_cell()
        space = VariationSpace.from_mosfets(circuit)
        u = np.zeros(6)
        u[axis_idx] = value
        phys = space.to_physical(u)
        mat = space.vth_matrix(u[None, :], CELL_DEVICE_ORDER)
        device = space.axes[axis_idx].device
        col = list(CELL_DEVICE_ORDER).index(device)
        assert mat[0, col] == pytest.approx(phys[device]["delta_vth"])
