"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sram.batched import Batched6T
from repro.sram.cell import CellDesign


@pytest.fixture
def rng():
    """A deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def fast_engine():
    """A coarse-grid batched engine shared across tests (read/write)."""
    return Batched6T(n_steps=300)


@pytest.fixture(scope="session")
def default_design():
    return CellDesign()
