"""CLI tests (parser wiring plus one fast end-to-end command)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_read_sigma_requires_spec_or_target(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["read-sigma"])

    def test_spec_and_target_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["read-sigma", "--spec-ps", "55",
                               "--target-sigma", "4"])

    def test_defaults(self):
        args = build_parser().parse_args(["read-sigma", "--spec-ps", "55"])
        assert args.vdd == 1.0
        assert args.budget == 4000
        assert args.spec_ps == 55.0

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["read-sigma", "--spec-ps", "50"],
            ["read-sigma", "--spec-ps", "60", "--system", "--sa-model", "latch"],
            ["write-sigma", "--target-sigma", "4"],
            ["sa-sigma", "--spec-mv", "80"],
            ["column-sigma", "--spec-ps", "60", "--leakers", "7",
             "--assembly", "sparse"],
            ["array-sigma", "--spec-ps", "60", "--cols", "4", "--leakers", "7",
             "--assembly", "sparse", "--solver", "schur"],
            ["snm", "--vdd", "0.8"],
            ["compare", "--target-sigma", "3.5"],
        ):
            assert parser.parse_args(argv) is not None

    def test_column_sigma_defaults(self):
        args = build_parser().parse_args(["column-sigma", "--spec-ps", "60"])
        assert args.leakers == 15
        assert args.leaker_data == "adversarial"
        assert args.assembly == "auto"

    def test_column_sigma_requires_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["column-sigma"])

    def test_array_sigma_defaults(self):
        args = build_parser().parse_args(["array-sigma", "--spec-ps", "60"])
        assert args.cols == 4
        assert args.leakers == 15
        assert args.assembly == "auto"
        assert args.solver == "auto"

    def test_array_sigma_requires_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["array-sigma"])


class TestArgumentValidation:
    """Bad arguments must exit with the usage message (status 2), never a
    traceback — the contract argparse's type/choices machinery gives us."""

    @pytest.mark.parametrize("argv", [
        ["array-sigma", "--spec-ps", "60", "--cols", "0"],
        ["array-sigma", "--spec-ps", "60", "--cols", "-2"],
        ["array-sigma", "--spec-ps", "60", "--cols", "two"],
        ["array-sigma", "--spec-ps", "60", "--leakers", "-3"],
        ["column-sigma", "--spec-ps", "60", "--leakers", "0"],
        ["column-sigma", "--spec-ps", "60", "--leakers", "1.5"],
    ])
    def test_non_positive_counts_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "integer" in err

    @pytest.mark.parametrize("argv", [
        ["array-sigma", "--spec-ps", "60", "--assembly", "coo"],
        ["column-sigma", "--spec-ps", "60", "--assembly", "turbo"],
        ["array-sigma", "--spec-ps", "60", "--solver", "lu"],
    ])
    def test_bad_choice_rejected_with_usage(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice" in err

    def test_system_requires_explicit_spec(self, capsys):
        from repro.cli import main

        assert main(["read-sigma", "--target-sigma", "4", "--system"]) == 2
        assert "--spec-ps" in capsys.readouterr().out

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_snm_command_runs(self, capsys):
        assert main(["snm", "--vdd", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "hold SNM" in out
        assert "read SNM" in out

    def test_read_sigma_command_runs(self, capsys):
        code = main([
            "read-sigma", "--spec-ps", "55", "--budget", "1200",
            "--n-steps", "250", "--rel-err", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sigma" in out
        assert "p_fail" in out
