"""CLI tests (parser wiring plus one fast end-to-end command)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_read_sigma_requires_spec_or_target(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["read-sigma"])

    def test_spec_and_target_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["read-sigma", "--spec-ps", "55",
                               "--target-sigma", "4"])

    def test_defaults(self):
        args = build_parser().parse_args(["read-sigma", "--spec-ps", "55"])
        assert args.vdd == 1.0
        assert args.budget == 4000
        assert args.spec_ps == 55.0

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["read-sigma", "--spec-ps", "50"],
            ["read-sigma", "--spec-ps", "60", "--system", "--sa-model", "latch"],
            ["write-sigma", "--target-sigma", "4"],
            ["sa-sigma", "--spec-mv", "80"],
            ["column-sigma", "--spec-ps", "60", "--leakers", "7",
             "--assembly", "sparse"],
            ["array-sigma", "--spec-ps", "60", "--cols", "4", "--leakers", "7",
             "--assembly", "sparse", "--solver", "schur"],
            ["snm", "--vdd", "0.8"],
            ["compare", "--target-sigma", "3.5"],
        ):
            assert parser.parse_args(argv) is not None

    def test_column_sigma_defaults(self):
        args = build_parser().parse_args(["column-sigma", "--spec-ps", "60"])
        assert args.leakers == 15
        assert args.leaker_data == "adversarial"
        assert args.assembly == "auto"

    def test_column_sigma_requires_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["column-sigma"])

    def test_array_sigma_defaults(self):
        args = build_parser().parse_args(["array-sigma", "--spec-ps", "60"])
        assert args.cols == 4
        assert args.leakers == 15
        assert args.assembly == "auto"
        assert args.solver == "auto"

    def test_array_sigma_requires_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["array-sigma"])


class TestArgumentValidation:
    """Bad arguments must exit with the usage message (status 2), never a
    traceback — the contract argparse's type/choices machinery gives us."""

    @pytest.mark.parametrize("argv", [
        ["array-sigma", "--spec-ps", "60", "--cols", "0"],
        ["array-sigma", "--spec-ps", "60", "--cols", "-2"],
        ["array-sigma", "--spec-ps", "60", "--cols", "two"],
        ["array-sigma", "--spec-ps", "60", "--leakers", "-3"],
        ["column-sigma", "--spec-ps", "60", "--leakers", "0"],
        ["column-sigma", "--spec-ps", "60", "--leakers", "1.5"],
    ])
    def test_non_positive_counts_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "integer" in err

    @pytest.mark.parametrize("argv", [
        ["array-sigma", "--spec-ps", "60", "--assembly", "coo"],
        ["column-sigma", "--spec-ps", "60", "--assembly", "turbo"],
        ["array-sigma", "--spec-ps", "60", "--solver", "lu"],
    ])
    def test_bad_choice_rejected_with_usage(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice" in err

    def test_system_requires_explicit_spec(self, capsys):
        from repro.cli import main

        assert main(["read-sigma", "--target-sigma", "4", "--system"]) == 2
        assert "--spec-ps" in capsys.readouterr().out

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFaultToleranceFlags:
    def test_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["read-sigma", "--spec-ps", "55"])
        assert args.retries == 0
        assert args.shard_timeout is None
        assert args.journal is None
        assert args.resume is False

    def test_flags_parse_when_set(self):
        args = build_parser().parse_args([
            "read-sigma", "--spec-ps", "55", "--retries", "2",
            "--shard-timeout", "300", "--journal", "run.journal", "--resume",
        ])
        assert args.retries == 2
        assert args.shard_timeout == 300.0
        assert args.journal == "run.journal"
        assert args.resume is True

    def test_resume_without_journal_rejected(self, capsys):
        code = main([
            "read-sigma", "--spec-ps", "55", "--budget", "100", "--resume",
        ])
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().out

    def test_negative_retries_rejected(self, capsys):
        code = main([
            "read-sigma", "--spec-ps", "55", "--budget", "100",
            "--retries", "-1",
        ])
        assert code == 2
        assert "--retries" in capsys.readouterr().out

    def test_journal_needs_shard_plan(self, capsys):
        code = main([
            "read-sigma", "--spec-ps", "55", "--budget", "100",
            "--journal", "run.journal",
        ])
        assert code == 2
        assert "--shards" in capsys.readouterr().out

    def test_journaled_run_resumes(self, tmp_path, capsys):
        journal = str(tmp_path / "run.journal")
        argv = [
            "read-sigma", "--spec-ps", "55", "--budget", "1200",
            "--n-steps", "250", "--rel-err", "0.2", "--shards", "2",
            "--journal", journal,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "journal replays" in second
        # The resumed run reproduces the original estimate verbatim.
        line = next(l for l in first.splitlines() if "p_fail" in l)
        assert line in second

    def test_mismatched_journal_refused_with_code(self, tmp_path, capsys):
        """Resuming under a different seed is refused with the D005
        diagnostic as one readable error line, not a traceback."""
        journal = str(tmp_path / "run.journal")
        argv = [
            "read-sigma", "--spec-ps", "55", "--budget", "1200",
            "--n-steps", "250", "--rel-err", "0.2", "--shards", "2",
            "--journal", journal,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        code = main(argv + ["--resume", "--seed", "99"])
        assert code == 2
        out = capsys.readouterr().out
        assert "error:" in out
        assert "D005" in out


class TestExecution:
    def test_snm_command_runs(self, capsys):
        assert main(["snm", "--vdd", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "hold SNM" in out
        assert "read SNM" in out

    def test_read_sigma_command_runs(self, capsys):
        code = main([
            "read-sigma", "--spec-ps", "55", "--budget", "1200",
            "--n-steps", "250", "--rel-err", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sigma" in out
        assert "p_fail" in out
