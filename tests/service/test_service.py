"""The job service end to end: wire contract, concurrency, identity.

Everything runs through the in-process client (the same routing the
socket adapter serves); one smoke test binds a real socket.  The two
acceptance invariants of the serving layer are pinned here:

* for a fixed (workload, seed, n_shards), the HTTP service, the
  ``repro.api`` facade and the CLI return **bit-identical** estimates;
* N identical concurrent submissions incur **exactly one** plan-cache
  miss (single-flight compilation).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.errors import RequestError
from repro.service import ServiceApp, ServiceClient
from repro.spice.plan import default_plan_cache, reset_default_plan_cache


@pytest.fixture()
def app():
    service = ServiceApp(workers_total=2)
    yield service
    service.close(drain=True)


@pytest.fixture()
def client(app):
    return ServiceClient(app)


def linear(**overrides):
    base = dict(workload="analytic-linear", spec=4.0, budget=2000, seed=3)
    base.update(overrides)
    return api.EstimateRequest(**base)


def slow(seed=0):
    # Big-budget analytic job: ~a second of sampling, no compile — used
    # to hold a worker busy while concurrency behaviour is observed.
    return linear(budget=3_000_000, rel_err=None, seed=seed)


class TestWireContract:
    def test_healthz(self, client):
        status, payload = client.get("/v1/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_stats_shape(self, client):
        status, payload = client.get("/v1/stats")
        assert status == 200
        for key in ("workers_total", "workers_available", "queue_depth",
                    "running", "jobs", "plan_cache", "fault_stats", "accepting"):
            assert key in payload

    def test_workloads_route_backs_the_a001_hint(self, client):
        status, payload = client.get("/v1/workloads")
        assert status == 200
        names = [w["name"] for w in payload["workloads"]]
        assert "read" in names and "analytic-linear" in names

    @pytest.mark.parametrize(
        "body, code",
        [
            ({"workload": "nope", "spec": 1.0}, "A001"),
            ({"workload": "analytic-linear", "spec": 4.0,
              "knobs": {"bogus": 1}}, "A002"),
            ({"workload": "analytic-linear", "spec": 4.0, "budget": 0}, "A003"),
            ({"workload": "analytic-linear", "spec": 4.0,
              "method": "magic"}, "A004"),
            ({"workload": "analytic-linear", "spec": 4.0, "nope": 1}, "A005"),
            ([1, 2, 3], "A005"),
        ],
    )
    def test_validation_is_400_with_code(self, client, body, code):
        status, payload = client.post("/v1/jobs", body)
        assert status == 400
        assert payload["error"]["code"] == code
        assert payload["error"]["message"]

    def test_error_bodies_carry_fix_hints(self, client):
        _, payload = client.post("/v1/jobs", {"workload": "nope", "spec": 1.0})
        assert "hint" in payload["error"]

    def test_unknown_job_and_route_are_404_a006(self, client):
        for path in ("/v1/jobs/job-999999", "/v1/bogus", "/v2/jobs"):
            status, payload = client.get(path)
            assert status == 404
            assert payload["error"]["code"] == "A006"

    def test_method_not_allowed_is_405(self, client):
        status, _ = client.delete("/v1/jobs")
        assert status == 405


class TestLifecycle:
    def test_submit_poll_done(self, client):
        envelope = client.submit(linear())
        assert envelope["status"] in ("queued", "running")
        final = client.wait(envelope["job_id"])
        assert final["status"] == "done"
        assert final["granted_workers"] == 1
        assert final["prepare_s"] is not None
        result = api.EstimateResult.from_json(final["result"])
        assert 0.0 < result.p_fail < 1.0

    def test_job_list(self, client):
        client.wait(client.submit(linear())["job_id"])
        status, payload = client.get("/v1/jobs")
        assert status == 200 and len(payload["jobs"]) == 1

    def test_failed_job_is_an_envelope_not_a_500(self, client):
        # Eager validation passes (spec is a finite number, knobs
        # legal) but the run itself cannot produce an estimate: GIS on
        # a backwards spec finds no failure direction.  The job must
        # settle as failed with the typed error recorded.
        envelope = client.submit(linear(spec=-4.0, budget=300))
        final = client.wait(envelope["job_id"])
        assert final["status"] == "failed"
        assert final["error"]["type"]
        assert final["error"]["message"]

    def test_worker_grant_is_capped_not_refused(self, client):
        envelope = client.submit(linear(workers=64, n_shards=4))
        final = client.wait(envelope["job_id"])
        assert final["status"] == "done"
        assert final["granted_workers"] == 2  # budget of the fixture app
        # ... and capping cannot have changed the estimate:
        direct = api.estimate(linear(workers=64, n_shards=4))
        assert api.EstimateResult.from_json(final["result"]).identical_to(direct)

    def test_cancel_queued_job(self):
        app = ServiceApp(workers_total=1)
        try:
            client = ServiceClient(app)
            running = client.submit(slow())
            queued = client.submit(linear(seed=9))
            status, payload = client.delete(f"/v1/jobs/{queued['job_id']}")
            assert status == 200
            # Either it was still queued (now cancelled) or it had
            # already started (cancel is a no-op then) — both legal;
            # the job must still settle either way.
            final = client.wait(queued["job_id"])
            assert final["status"] in ("cancelled", "done")
            assert client.wait(running["job_id"])["status"] == "done"
        finally:
            app.close(drain=True)


class TestBackpressure:
    def test_queue_full_is_503_a007(self):
        app = ServiceApp(workers_total=1, queue_limit=1)
        try:
            client = ServiceClient(app)
            first = client.submit(slow())
            status, payload = client.post("/v1/jobs", linear(seed=1).to_json())
            assert status == 503
            assert payload["error"]["code"] == "A007"
            assert client.wait(first["job_id"])["status"] == "done"
        finally:
            app.close(drain=True)

    def test_shutdown_refuses_with_a007(self):
        app = ServiceApp(workers_total=1)
        client = ServiceClient(app)
        app.close(drain=True)
        status, payload = client.post("/v1/jobs", linear().to_json())
        assert status == 503 and payload["error"]["code"] == "A007"

    def test_drain_completes_queued_jobs(self):
        app = ServiceApp(workers_total=1)
        client = ServiceClient(app)
        envelopes = [client.submit(linear(seed=s)) for s in range(3)]
        app.close(drain=True)
        finals = [client.get(f"/v1/jobs/{e['job_id']}")[1] for e in envelopes]
        assert [f["status"] for f in finals] == ["done"] * 3

    def test_no_drain_cancels_queued_jobs(self):
        app = ServiceApp(workers_total=1)
        client = ServiceClient(app)
        envelopes = [client.submit(slow(seed=s)) for s in range(3)]
        app.close(drain=False)
        statuses = [client.get(f"/v1/jobs/{e['job_id']}")[1]["status"]
                    for e in envelopes]
        assert all(s in ("done", "cancelled") for s in statuses)
        assert "cancelled" in statuses  # 1 worker, 3 slow jobs: some queued


class TestIdentityAndCompileSharing:
    def test_service_api_cli_bit_identical_and_one_miss(self, capsys):
        """The two acceptance invariants, on the real 6T read circuit."""
        from repro.cli import main

        request = api.EstimateRequest(
            workload="read", spec=4.995e-11, seed=7, budget=150,
            rel_err=0.1, knobs={"n_steps": 300},
        )

        reset_default_plan_cache()
        app = ServiceApp(workers_total=2)
        try:
            client = ServiceClient(app)
            envelopes = [client.submit(request) for _ in range(3)]
            finals = [client.wait(e["job_id"], timeout=300.0) for e in envelopes]
        finally:
            app.close(drain=True)
        assert [f["status"] for f in finals] == ["done"] * 3

        # Exactly one plan-cache miss for three concurrent submissions.
        stats = default_plan_cache().stats
        assert stats["misses"] == 1, stats
        assert stats["mem_hits"] >= 2

        served = [api.EstimateResult.from_json(f["result"]) for f in finals]
        assert served[0].identical_to(served[1])
        assert served[0].identical_to(served[2])

        # Facade, same request object.
        direct = api.estimate(request)
        assert served[0].identical_to(direct)

        # CLI with the flag spelling of the same request.
        assert main([
            "read-sigma", "--spec-ps", "49.95", "--n-steps", "300",
            "--budget", "150", "--rel-err", "0.1", "--seed", "7", "--json",
        ]) == 0
        cli_doc = json.loads(capsys.readouterr().out)
        cli_result = api.EstimateResult.from_json(cli_doc)
        assert cli_result.identical_to(direct)
        assert cli_result.p_fail == served[0].p_fail

    def test_concurrent_submission_threads(self, client):
        # Submissions racing from many threads: ids unique, all settle.
        envelopes = []
        lock = threading.Lock()

        def submit(seed):
            envelope = client.submit(linear(seed=seed))
            with lock:
                envelopes.append(envelope)

        threads = [threading.Thread(target=submit, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [e["job_id"] for e in envelopes]
        assert len(set(ids)) == 8
        assert all(client.wait(i)["status"] == "done" for i in ids)


class TestSocketAdapter:
    def test_http_round_trip(self):
        from repro.service.http import make_server

        app = ServiceApp(workers_total=2)
        server = make_server(app, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://{host}:{port}"
        try:
            def call(method, path, body=None):
                data = json.dumps(body).encode() if body is not None else None
                req = urllib.request.Request(base + path, data=data, method=method)
                try:
                    with urllib.request.urlopen(req, timeout=30) as resp:
                        return resp.status, json.loads(resp.read())
                except urllib.error.HTTPError as err:
                    return err.code, json.loads(err.read())

            assert call("GET", "/v1/healthz")[0] == 200
            status, envelope = call("POST", "/v1/jobs", linear().to_json())
            assert status == 202
            import time
            deadline = time.monotonic() + 60
            while True:
                status, final = call("GET", f"/v1/jobs/{envelope['job_id']}")
                if final["status"] in ("done", "failed", "cancelled"):
                    break
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert final["status"] == "done"
            assert final["result"]["p_fail"] == api.estimate(linear()).p_fail

            status, payload = call("POST", "/v1/jobs", {"workload": "nope", "spec": 1})
            assert status == 400 and payload["error"]["code"] == "A001"

            raw = urllib.request.Request(base + "/v1/jobs", data=b"{not json",
                                         method="POST")
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(raw, timeout=30)
            assert exc.value.code == 400
            assert json.loads(exc.value.read())["error"]["code"] == "A005"
        finally:
            server.shutdown()
            server.server_close()
            app.close(drain=True)
