"""JobStore: lifecycle transitions, spooling, cwd-independence."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.errors import ConfigError
from repro.service.jobs import JobStore


def request():
    return api.EstimateRequest(workload="analytic-linear", spec=4.0, budget=500)


def result():
    return api.estimate(request())


class TestLifecycle:
    def test_create_assigns_sequential_ids(self):
        store = JobStore()
        try:
            a, b = store.create(request()), store.create(request())
            assert a.job_id == "job-000001" and b.job_id == "job-000002"
            assert [j.job_id for j in store.jobs()] == [a.job_id, b.job_id]
            assert store.counts()["queued"] == 2
        finally:
            store.close()

    def test_done_path(self):
        store = JobStore()
        try:
            job = store.create(request())
            assert store.mark_running(job, granted_workers=2)
            store.mark_done(job, result())
            assert job.status == "done" and job.settled
            assert job.granted_workers == 2
            assert job.finished_s >= job.started_s >= job.submitted_s
        finally:
            store.close()

    def test_cancel_only_from_queued(self):
        store = JobStore()
        try:
            job = store.create(request())
            assert store.mark_cancelled(job, "test")
            assert job.status == "cancelled"
            assert not store.mark_running(job, granted_workers=1)

            running = store.create(request())
            store.mark_running(running, granted_workers=1)
            assert not store.mark_cancelled(running, "too late")
            assert running.status == "running"
        finally:
            store.close()

    def test_failed_records_error(self):
        store = JobStore()
        try:
            job = store.create(request())
            store.mark_running(job, granted_workers=1)
            store.mark_failed(job, {"code": "A003", "message": "boom"})
            assert job.status == "failed"
            assert job.to_json()["error"]["code"] == "A003"
        finally:
            store.close()


class TestSpool:
    def test_default_spool_is_private_and_removed(self):
        store = JobStore()
        spool = store.spool_dir
        job = store.create(request())
        store.mark_running(job, granted_workers=1)
        store.mark_done(job, result())
        spooled = json.loads((spool / f"{job.job_id}.json").read_text())
        assert spooled["status"] == "done"
        assert spooled["result"]["p_fail"] == job.result.p_fail
        store.close()
        assert not spool.exists()

    def test_default_spool_is_cwd_independent(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = JobStore()
        try:
            assert tmp_path not in store.spool_dir.parents
            assert not list(tmp_path.iterdir())
        finally:
            store.close()

    def test_configured_spool_is_kept(self, tmp_path):
        spool = tmp_path / "spool"
        store = JobStore(spool_dir=spool)
        job = store.create(request())
        store.mark_running(job, granted_workers=1)
        store.mark_done(job, result())
        store.close()
        assert (spool / f"{job.job_id}.json").exists()  # not owned: kept

    def test_unwritable_spool_is_config_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        with pytest.raises(ConfigError):
            JobStore(spool_dir=blocker / "nested")  # a file cannot be a dir

    def test_envelope_shape(self):
        store = JobStore()
        try:
            job = store.create(request())
            doc = job.to_json()
            assert doc["status"] == "queued"
            assert doc["request"]["workload"] == "analytic-linear"
            assert doc["prepare_s"] is None
            assert "result" not in doc and "error" not in doc
        finally:
            store.close()
