"""The repro.api facade: validation codes, schemas, determinism."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.errors import ConfigError, RequestError


def linear(**overrides):
    base = dict(workload="analytic-linear", spec=4.0, budget=2000, seed=3)
    base.update(overrides)
    return api.EstimateRequest(**base)


class TestValidation:
    def test_unknown_workload_is_a001(self):
        with pytest.raises(RequestError) as exc:
            api.EstimateRequest(workload="nope", spec=1.0).validate()
        assert exc.value.code == "A001"

    def test_unknown_knob_is_a002(self):
        with pytest.raises(RequestError) as exc:
            linear(knobs={"bogus": 1}).validate()
        assert exc.value.code == "A002"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"budget": 0},
            {"budget": 2.5},
            {"seed": -1},
            {"workers": 0},
            {"n_shards": 0},
            {"retries": -1},
            {"rel_err": -0.1},
            {"rel_err": float("nan")},
            {"shard_timeout": 0.0},
            {"spec": float("inf")},
            {"n_starts": 0},
        ],
    )
    def test_bad_field_is_a003(self, overrides):
        with pytest.raises(RequestError) as exc:
            linear(**overrides).validate()
        assert exc.value.code == "A003"

    def test_bad_choice_knob_is_a003(self):
        with pytest.raises(RequestError) as exc:
            api.EstimateRequest(
                workload="read", spec=5e-11, knobs={"kernel": "bogus"}
            ).validate()
        assert exc.value.code == "A003"

    def test_unsupported_method_is_a004(self):
        with pytest.raises(RequestError) as exc:
            linear(method="magic").validate()
        assert exc.value.code == "A004"

    def test_request_error_is_config_error(self):
        # The CLI's exit-2 path catches ConfigError; eager API
        # validation must flow through it unchanged.
        with pytest.raises(ConfigError):
            linear(method="magic").validate()

    def test_knob_mutation_after_construction_is_inert(self):
        knobs = {"dim": 8}
        request = linear(knobs=knobs)
        knobs["bogus"] = 1
        request.validate()  # private copy: still clean


class TestRequestEnvelope:
    def test_round_trip(self):
        request = linear(knobs={"dim": 12}, n_shards=4, rel_err=None)
        doc = json.loads(json.dumps(request.to_json()))
        assert api.EstimateRequest.from_json(doc) == request

    def test_unknown_field_is_a005(self):
        with pytest.raises(RequestError) as exc:
            api.EstimateRequest.from_json({"workload": "x", "spec": 1.0, "nope": 2})
        assert exc.value.code == "A005"

    def test_non_object_is_a005(self):
        with pytest.raises(RequestError) as exc:
            api.EstimateRequest.from_json([1, 2])
        assert exc.value.code == "A005"

    def test_missing_required_is_a005(self):
        with pytest.raises(RequestError) as exc:
            api.EstimateRequest.from_json({"spec": 1.0})
        assert exc.value.code == "A005"

    def test_unknown_schema_version_is_a005(self):
        doc = linear().to_json()
        doc["schema_version"] = 999
        with pytest.raises(RequestError) as exc:
            api.EstimateRequest.from_json(doc)
        assert exc.value.code == "A005"

    def test_schema_version_optional_on_input(self):
        doc = linear().to_json()
        del doc["schema_version"]
        assert api.EstimateRequest.from_json(doc) == linear()


class TestResultEnvelope:
    def test_round_trip_through_json_text(self):
        result = api.estimate(linear())
        text = json.dumps(result.to_json(), sort_keys=True)
        back = api.EstimateResult.from_json(json.loads(text))
        assert back.identical_to(result)
        assert back.to_json() == result.to_json()
        assert back.request == result.request

    def test_schema_version_stamped_and_required(self):
        result = api.estimate(linear())
        doc = result.to_json()
        assert doc["schema_version"] == api.SCHEMA_VERSION
        del doc["schema_version"]
        with pytest.raises(RequestError) as exc:
            api.EstimateResult.from_json(doc)
        assert exc.value.code == "A005"

    def test_diagnostics_are_json_safe(self):
        result = api.estimate(linear())
        json.dumps(result.to_json(), allow_nan=False)  # no numpy, no NaN

    def test_derived_fields_recomputed(self):
        result = api.estimate(linear())
        doc = result.to_json()
        back = api.EstimateResult.from_json(doc)
        assert back.sigma_level == pytest.approx(doc["sigma_level"])
        lo, hi = back.ci()
        assert 0.0 <= lo <= back.p_fail <= hi <= 1.0


class TestEstimate:
    def test_deterministic_per_seed(self):
        a = api.estimate(linear())
        b = api.estimate(linear())
        assert a.identical_to(b)
        assert not a.identical_to(api.estimate(linear(seed=4)))

    def test_workers_never_change_the_estimate(self):
        pinned = api.estimate(linear(workers=1, n_shards=4))
        wide = api.estimate(linear(workers=2, n_shards=4))
        assert pinned.identical_to(wide)
        assert pinned.n_shards == wide.n_shards == 4

    def test_mc_method(self):
        result = api.estimate(
            linear(method="mc", spec=2.0, budget=20000, rel_err=None)
        )
        assert result.method == "mc"
        assert result.n_evals == 20000
        assert 0.0 < result.p_fail < 1.0

    def test_knobs_reach_the_factory(self):
        result = api.estimate(linear(knobs={"dim": 12}))
        assert result.dim == 12

    def test_list_workloads(self):
        names = [w.name for w in api.list_workloads()]
        assert "read" in names and "array-read" in names
        assert "analytic-linear" in names
        spec = next(w for w in api.list_workloads() if w.name == "read")
        doc = spec.to_json()
        assert "n_steps" in doc["knobs"] and doc["spec_unit"] == "s"

    def test_estimator_options_ride_along(self):
        # sa-offset registers bisection-matched MPFP tolerances; the
        # facade must apply them (the CLI used to hard-code them).
        spec = next(w for w in api.list_workloads() if w.name == "sa-offset")
        assert "mpfp_options" in spec.estimator_options
