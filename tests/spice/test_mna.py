"""Direct tests of the MNA stamp context and system assembly."""

import numpy as np

from repro.spice import mna
from repro.spice.elements import Resistor, VoltageSource
from repro.spice.netlist import GROUND_INDEX, Circuit


def simple_circuit():
    c = Circuit("t")
    c.add(VoltageSource("v1", "a", "0", 2.0))
    c.add(Resistor("r1", "a", "b", 1e3))
    c.add(Resistor("r2", "b", "0", 1e3))
    mna.assign_branches(c)
    return c


class TestStampContext:
    def test_ground_reads_zero(self):
        ctx = mna.StampContext(np.array([1.0, 2.0]), num_nodes=2)
        assert ctx.v(GROUND_INDEX) == 0.0
        assert ctx.v(0) == 1.0

    def test_ground_writes_ignored(self):
        ctx = mna.StampContext(np.zeros(2), num_nodes=2)
        ctx.add_kcl(GROUND_INDEX, 5.0)
        ctx.add_jac(GROUND_INDEX, 0, 1.0)
        ctx.add_jac(0, GROUND_INDEX, 1.0)
        assert np.all(ctx.residual == 0)
        assert np.all(ctx.jacobian == 0)

    def test_branch_rows_offset(self):
        x = np.array([0.0, 0.0, 0.5])  # 2 nodes + 1 branch
        ctx = mna.StampContext(x, num_nodes=2)
        assert ctx.branch_current(0) == 0.5
        assert ctx.branch_row(0) == 2

    def test_source_scaling(self):
        from repro.spice.sources import dc

        ctx = mna.StampContext(np.zeros(1), num_nodes=1, source_scale=0.5)
        assert ctx.source_value(dc(2.0)) == 1.0

    def test_time_none_uses_dc_value(self):
        from repro.spice.sources import pulse

        shape = pulse(0.0, 1.0, delay=0.0, rise=1e-12, width=1e-9)
        ctx = mna.StampContext(np.zeros(1), num_nodes=1, time=None)
        assert ctx.source_value(shape) == shape.dc_value()
        ctx_t = mna.StampContext(np.zeros(1), num_nodes=1, time=0.5e-9)
        assert ctx_t.source_value(shape) == 1.0


class TestAssembly:
    def test_system_size(self):
        c = simple_circuit()
        assert mna.system_size(c) == 3  # 2 nodes + 1 branch

    def test_residual_zero_at_solution(self):
        c = simple_circuit()
        # Exact solution: a=2, b=1, i(v1) = -1 mA.
        x = np.array([2.0, 1.0, -1e-3])
        ctx = mna.assemble(c, x)
        np.testing.assert_allclose(ctx.residual, 0.0, atol=1e-12)

    def test_jacobian_matches_fd(self):
        c = simple_circuit()
        rng = np.random.default_rng(0)
        x = rng.normal(size=3)
        ctx = mna.assemble(c, x)
        h = 1e-7
        for j in range(3):
            xp = x.copy()
            xp[j] += h
            fd = (mna.assemble(c, xp).residual - ctx.residual) / h
            np.testing.assert_allclose(ctx.jacobian[:, j], fd, atol=1e-5)

    def test_gmin_adds_diagonal(self):
        c = simple_circuit()
        x = np.ones(3)
        base = mna.assemble(c, x)
        with_gmin = mna.assemble(c, x, gmin=1e-3)
        np.testing.assert_allclose(
            np.diag(with_gmin.jacobian)[:2] - np.diag(base.jacobian)[:2], 1e-3
        )

    def test_extra_stamps_invoked(self):
        c = simple_circuit()
        hits = []
        mna.assemble(c, np.zeros(3), extra_stamps=[lambda ctx: hits.append(1)])
        assert hits == [1]

    def test_assign_branches_indices(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", 1.0))
        c.add(Resistor("r", "a", "b", 1.0))
        c.add(VoltageSource("v2", "b", "0", 1.0))
        mapping = mna.assign_branches(c)
        assert mapping == {"v1": 0, "v2": 1}
