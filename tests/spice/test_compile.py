"""Batched circuit compiler: solveN, compilation analysis, kernel parity.

The compiler's regression anchor is the 6T engine: ``tests/sram/test_kernel.py``
pins the compiled fast path against ``Batched6T``'s reference integrator at
~1e-9.  This module covers the compiler-specific surface: the batched
solver family against LAPACK, the netlist analysis (rails, C/G assembly,
rejection of unsupported elements), probe plumbing, and the compiled
reference kernel as the in-family cross-check on a non-6T circuit.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.spice.compile import (
    CompiledTransient,
    CrossProbe,
    PeakProbe,
    RetirePolicy,
    ValueProbe,
    _SchurSolver,
    solveN,
    transient_grid,
)
from repro.spice.elements import Capacitor, CurrentSource, Resistor, VoltageSource
from repro.spice.netlist import Circuit
from repro.spice.sources import dc, pulse
from repro.sram.batched import Batched6T


class TestSolveN:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_matches_lapack(self, n):
        """The satellite's acceptance sweep: n_nodes 2-8 (plus 1)."""
        rng = np.random.default_rng(n)
        a = rng.normal(size=(200, n, n)) + (n + 2.0) * np.eye(n)
        b = rng.normal(size=(200, n))
        ref = np.linalg.solve(a, b[..., None])[..., 0]
        x = solveN(
            np.ascontiguousarray(a.transpose(1, 2, 0)),
            np.ascontiguousarray(b.T),
        )
        np.testing.assert_allclose(x.T, ref, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("n", [2, 3, 5, 6])
    def test_pivot_guard_falls_back_to_lapack(self, n):
        # Vanishing (0, 0) pivot: natural-order elimination is invalid and
        # the guard must reroute those samples through the pivoted solver.
        a = np.eye(n)
        a[0, 0] = 0.0
        a[0, 1] = 1.0
        a[1, 0] = 1.0
        a[1, 1] = 0.0
        b = np.arange(1.0, n + 1.0)
        stack_a = np.repeat(a[:, :, None], 3, axis=2)
        stack_b = np.repeat(b[:, None], 3, axis=1)
        x = solveN(stack_a, stack_b)
        ref = np.linalg.solve(a, b)
        np.testing.assert_allclose(x[:, 1], ref, rtol=1e-12)

    @pytest.mark.parametrize("n", [2, 3, 6])
    def test_inputs_not_mutated(self, n):
        rng = np.random.default_rng(42)
        a = rng.normal(size=(n, n, 8)) + 4.0 * np.eye(n)[:, :, None]
        b = rng.normal(size=(n, 8))
        a0, b0 = a.copy(), b.copy()
        solveN(a, b)
        np.testing.assert_array_equal(a, a0)
        np.testing.assert_array_equal(b, b0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            solveN(np.zeros((3, 2, 4)), np.zeros((3, 4)))


class TestTransientGrid:
    def test_lands_on_breakpoints(self):
        grid = transient_grid(1e-9, breakpoints=(0.2e-9, 0.5e-9), n_steps=100)
        for b in (0.0, 0.2e-9, 0.5e-9, 1e-9):
            assert np.min(np.abs(grid - b)) == 0.0

    def test_monotone_and_bounded(self):
        grid = transient_grid(2e-9, breakpoints=(1e-9, 3e-9, -1e-9), n_steps=64)
        assert grid[0] == 0.0 and grid[-1] == 2e-9
        assert np.all(np.diff(grid) > 0)

    def test_invalid_stop_rejected(self):
        with pytest.raises(SimulationError):
            transient_grid(0.0)


def _rc_circuit():
    """Minimal supported circuit: one MOSFET, resistor drive, cap load."""
    from repro.spice.mosfet import nmos_45nm

    from repro.spice.elements import Mosfet

    c = Circuit("rc_test")
    c.add(VoltageSource("v_vdd", "vdd", "0", dc(1.0)))
    c.add(VoltageSource("v_in", "in", "0", pulse(0.0, 1.0, delay=0.1e-9,
                                                 rise=20e-12, width=1e-9)))
    c.add(Mosfet("m1", "out", "in", "0", "0", nmos_45nm(), w=200e-9, l=50e-9))
    c.add(Resistor("r_load", "vdd", "out", 20e3))
    c.add(Capacitor("c_load", "out", "0", 5e-15))
    return c


class TestCompilationAnalysis:
    def test_rails_and_unknowns_partitioned(self):
        ct = CompiledTransient(_rc_circuit(), grid=transient_grid(1.5e-9, n_steps=64))
        assert set(ct.rail_names) == {"vdd", "in"}
        assert ct.node_names == ["out"]
        assert ct.device_names == ["m1"]

    def test_compiled_cmat_matches_engine_assembly(self):
        """The compiled 6T capacitance matrix must equal the hand-built
        one in Batched6T — same values from the same model caps."""
        eng = Batched6T(n_steps=120)
        ct = eng._fast_kernel._compiled_for("read")
        np.testing.assert_array_equal(ct.cmat, eng._cmat)
        # WL coupling column agrees too.
        wl_col = ct.rail_names.index("wl")
        np.testing.assert_array_equal(ct._cap_rail[:, wl_col], eng._wl_coupling)

    def test_unsupported_element_rejected(self):
        c = _rc_circuit()
        c.add(CurrentSource("i_leak", "out", "0", dc(1e-9)))
        with pytest.raises(SimulationError, match="unsupported"):
            CompiledTransient(c, grid=transient_grid(1e-9, n_steps=32))

    def test_floating_voltage_source_rejected(self):
        c = Circuit("floating")
        c.add(VoltageSource("v_f", "a", "b", dc(1.0)))
        with pytest.raises(SimulationError, match="grounded"):
            CompiledTransient(c, grid=transient_grid(1e-9, n_steps=32))

    def test_duplicate_probe_rejected(self):
        with pytest.raises(SimulationError, match="duplicate probe"):
            CompiledTransient(
                _rc_circuit(),
                grid=transient_grid(1e-9, n_steps=32),
                probes=(PeakProbe("p", "out"), PeakProbe("p", "out")),
            )

    def test_probe_on_rail_rejected(self):
        with pytest.raises(SimulationError, match="not an unknown"):
            CompiledTransient(
                _rc_circuit(),
                grid=transient_grid(1e-9, n_steps=32),
                probes=(CrossProbe("x", {"vdd": 1.0}),),
            )

    def test_bad_kernel_rejected(self):
        with pytest.raises(SimulationError):
            CompiledTransient(_rc_circuit(), grid=transient_grid(1e-9, n_steps=32),
                              kernel="turbo")


class TestRunValidation:
    @pytest.fixture(scope="class")
    def ct(self):
        return CompiledTransient(_rc_circuit(), grid=transient_grid(1.5e-9, n_steps=64))

    def test_missing_ic_rejected(self, ct):
        with pytest.raises(SimulationError, match="initial conditions missing"):
            ct.run(ic={}, n=4)

    def test_unknown_device_rejected(self, ct):
        with pytest.raises(SimulationError, match="unknown device"):
            ct.run(ic={"out": 1.0}, n=4, delta_vth={"m_nope": 0.1})

    def test_bad_matrix_shape_rejected(self, ct):
        with pytest.raises(SimulationError, match="matrix shape"):
            ct.run(ic={"out": 1.0}, n=4, delta_vth=np.zeros((4, 3)))

    def test_retire_with_value_probe_rejected(self):
        ct = CompiledTransient(
            _rc_circuit(),
            grid=transient_grid(1.5e-9, n_steps=64),
            probes=(CrossProbe("c", {"out": 1.0}, offset=-0.5),
                    ValueProbe("v", {"out": 1.0}, t=1e-9)),
        )
        with pytest.raises(SimulationError, match="retirement and value probes"):
            ct.run(ic={"out": 1.0}, n=4, retire=RetirePolicy("c", after=0.5e-9))

    def test_unknown_retire_probe_rejected(self):
        ct = CompiledTransient(
            _rc_circuit(),
            grid=transient_grid(1.5e-9, n_steps=64),
            probes=(CrossProbe("c", {"out": 1.0}, offset=-0.5),),
        )
        with pytest.raises(SimulationError, match="unknown cross probe"):
            ct.run(ic={"out": 1.0}, n=4, retire=RetirePolicy("zzz", after=0.5e-9))


def _compiled_pair(circuit, grid, probes, **kwargs):
    """The same compile with dense and with sparse assembly."""
    return tuple(
        CompiledTransient(circuit, grid=grid, probes=probes, kernel="fast",
                          assembly=asm, **kwargs)
        for asm in ("dense", "sparse")
    )


def _assert_runs_bit_equal(res_d, res_s):
    for name in res_d.final:
        np.testing.assert_array_equal(res_d.final[name], res_s.final[name])
    for name in res_d.cross:
        np.testing.assert_array_equal(res_d.cross[name], res_s.cross[name])
    for name in res_d.peak:
        np.testing.assert_array_equal(res_d.peak[name], res_s.peak[name])
    np.testing.assert_array_equal(res_d.converged, res_s.converged)


class TestSparseAssembly:
    """The sparse scatter-stamp pass against the dense incidence matmuls.

    The contract is *bit-equality*, not tolerance: the stamps are exact
    ±1 and the rounds replay the matmuls' accumulation order, so any
    difference at all means the pass is wrong (see the stamp-determinism
    invariant in ROADMAP.md).
    """

    def test_bad_assembly_rejected(self):
        with pytest.raises(SimulationError, match="assembly"):
            CompiledTransient(_rc_circuit(), grid=transient_grid(1e-9, n_steps=32),
                              assembly="coo")

    def test_auto_selects_by_node_count(self):
        from repro.sram.column import ColumnConfig, ReadColumn

        small = CompiledTransient(_rc_circuit(),
                                  grid=transient_grid(1e-9, n_steps=32))
        assert small.assembly == "dense"
        column = ReadColumn(config=ColumnConfig(n_leakers=3)).compiled(n_steps=64)
        assert column.n_unknowns == 10
        assert column.assembly == "sparse"

    def test_bit_equal_on_6t(self):
        eng = Batched6T(n_steps=140)
        base = eng._fast_kernel._compiled_for("read")
        probes = (CrossProbe("cross", {"blb": 1.0, "bl": -1.0},
                             offset=-eng.dv_spec),
                  PeakProbe("q_peak", "q"))
        dense, sparse = _compiled_pair(base.circuit, base.grid, probes,
                                       clip=(-0.4, eng.vdd + 0.4))
        rng = np.random.default_rng(10)
        dvth = rng.normal(0.0, 0.04, size=(48, 6))
        ic = {"q": 0.0, "qb": eng.vdd, "bl": eng.vdd, "blb": eng.vdd}
        _assert_runs_bit_equal(
            dense.run(ic=ic, n=48, delta_vth=dvth),
            sparse.run(ic=ic, n=48, delta_vth=dvth),
        )

    def test_bit_equal_on_latch(self):
        from repro.sram.senseamp import SenseAmp

        sense = SenseAmp()
        base = sense.compiled(n_steps=200)
        probes = (CrossProbe("win_correct", {"soutb": 1.0, "sout": -1.0},
                             offset=-0.5 * sense.vdd),)
        dense, sparse = _compiled_pair(base.circuit, base.grid, probes)
        rng = np.random.default_rng(11)
        dvth = {"m_sn_l": rng.normal(0.0, 0.03, 40),
                "m_sn_r": rng.normal(0.0, 0.03, 40)}
        ic = {"sout": sense.vdd - 0.1, "soutb": sense.vdd, "tail": 0.0}
        _assert_runs_bit_equal(
            dense.run(ic=ic, n=40, delta_vth=dvth),
            sparse.run(ic=ic, n=40, delta_vth=dvth),
        )

    def test_bit_equal_on_column(self):
        from repro.sram.column import ColumnConfig, ReadColumn

        column = ReadColumn(config=ColumnConfig(n_leakers=3))
        rng = np.random.default_rng(12)
        dvth = rng.normal(0.0, 0.03, size=(32, 24))
        d = column.access_times_batch(dvth, n_steps=160, assembly="dense")
        s = column.access_times_batch(dvth, n_steps=160, assembly="sparse")
        np.testing.assert_array_equal(d, s)


class TestSchurSolver:
    @staticmethod
    def _bordered_stack(rng, n_blocks=5, h=2, m=64):
        """Diagonally dominant bordered-block-diagonal stacks."""
        n = 2 * n_blocks + h
        a = np.zeros((n, n, m))
        for i in range(n):
            a[i, i] = rng.uniform(2.0, 3.0, m)
        for b in range(n_blocks):
            i = h + 2 * b
            a[i, i + 1] = rng.normal(0, 0.3, m)
            a[i + 1, i] = rng.normal(0, 0.3, m)
            for j in range(h):
                a[i, j] = rng.normal(0, 0.3, m)
                a[j, i] = rng.normal(0, 0.3, m)
                a[i + 1, j] = rng.normal(0, 0.3, m)
                a[j, i + 1] = rng.normal(0, 0.3, m)
        b_rhs = rng.normal(size=(n, m))
        return a, b_rhs

    def test_matches_lapack_on_bordered_pattern(self):
        rng = np.random.default_rng(13)
        a, b = self._bordered_stack(rng)
        pattern = np.any(a != 0.0, axis=2)
        solver = _SchurSolver(pattern, min_pivot=1e-18)
        assert solver.h.size == 2
        x = solver.solve(a, b)
        ref = np.linalg.solve(
            np.ascontiguousarray(a.transpose(2, 0, 1)),
            np.ascontiguousarray(b.T)[..., None],
        )[..., 0].T
        np.testing.assert_allclose(x, ref, rtol=1e-9, atol=1e-12)

    def test_dense_pattern_rejected(self):
        pattern = np.ones((12, 12), dtype=bool)
        with pytest.raises(SimulationError, match="schur"):
            _SchurSolver(pattern, min_pivot=1e-18)

    def test_column_compiles_to_schur(self):
        from repro.sram.column import ColumnConfig, ReadColumn

        ct = ReadColumn(config=ColumnConfig(n_leakers=15)).compiled(n_steps=64)
        assert ct._schur is not None
        assert ct.solver == "schur"
        # The border is the two bitlines; every interior block is a
        # 2-node cell pair (accessed cell + 15 leakers).
        assert ct._schur.h.size == 2
        assert [(s, nodes.shape[0]) for s, nodes in ct._schur.groups] == [(2, 16)]

    def test_relative_border_cap_accepts_wide_borders(self):
        """A bordered pattern whose border exceeds the old fixed cap of
        4 must now decompose (the cap scales as nu // 4) and solve the
        border system through the blocked elimination."""
        rng = np.random.default_rng(14)
        a, b = self._bordered_stack(rng, n_blocks=12, h=6, m=32)
        pattern = np.any(a != 0.0, axis=2)
        solver = _SchurSolver(pattern, min_pivot=1e-18)
        assert solver.h.size == 6
        x = solver.solve(a, b)
        ref = np.linalg.solve(
            np.ascontiguousarray(a.transpose(2, 0, 1)),
            np.ascontiguousarray(b.T)[..., None],
        )[..., 0].T
        np.testing.assert_allclose(x, ref, rtol=1e-9, atol=1e-12)

    def test_relative_border_cap_still_rejects_dense(self):
        """The cap is relative, not unbounded: a dense pattern of any
        size must still refuse the peel."""
        for n in (12, 40):
            with pytest.raises(SimulationError, match="schur"):
                _SchurSolver(np.ones((n, n), dtype=bool), min_pivot=1e-18)


class TestSolverChoice:
    """The solver= knob: explicit policy over the Schur-vs-blocked pick."""

    def test_bad_solver_rejected(self):
        with pytest.raises(SimulationError, match="solver"):
            CompiledTransient(_rc_circuit(), grid=transient_grid(1e-9, n_steps=32),
                              solver="lu")

    def test_blocked_forces_generic_path(self):
        from repro.sram.column import ColumnConfig, ReadColumn

        ct = ReadColumn(config=ColumnConfig(n_leakers=15)).compiled(
            n_steps=64, kernel="fast", assembly="auto"
        )
        assert ct.solver == "schur"
        forced = CompiledTransient(
            ct.circuit, grid=ct.grid, kernel="fast", solver="blocked"
        )
        assert forced.solver == "blocked"
        assert forced._schur is None

    def test_schur_required_raises_on_small_circuit(self):
        with pytest.raises(SimulationError, match="schur"):
            CompiledTransient(_rc_circuit(), grid=transient_grid(1e-9, n_steps=32),
                              solver="schur")

    def test_schur_required_raises_on_nondecomposing_pattern(self):
        """A chain of pass devices couples every node to the next: no
        small border isolates blocks, so solver='schur' must refuse
        loudly instead of silently falling back."""
        from repro.spice.elements import Mosfet
        from repro.spice.mosfet import nmos_45nm

        c = Circuit("chain")
        c.add(VoltageSource("v_vdd", "vdd", "0", dc(1.0)))
        nm = nmos_45nm()
        for k in range(11):
            c.add(Mosfet(f"m{k}", f"n{k}", "vdd", f"n{k + 1}", "0",
                         nm, w=200e-9, l=50e-9))
        c.add(Capacitor("c_end", "n11", "0", 5e-15))
        with pytest.raises(SimulationError, match="schur"):
            CompiledTransient(c, grid=transient_grid(1e-9, n_steps=32),
                              solver="schur")
        # auto on the same circuit falls back to the generic elimination.
        auto = CompiledTransient(c, grid=transient_grid(1e-9, n_steps=32))
        assert auto.solver == "blocked"

    def test_solver_independent_of_assembly(self):
        from repro.sram.column import ColumnConfig, ReadColumn

        column = ReadColumn(config=ColumnConfig(n_leakers=3))
        for asm in ("dense", "sparse"):
            assert column.compiled(n_steps=64, assembly=asm).solver == "schur"


class TestFusedVsReferenceOnGenericCircuit:
    """The in-family cross-check on a circuit that is *not* the 6T cell:
    the fused transcription + solveN against per-device MosfetModel.ids
    + LAPACK inside the same step loop, at the PR 2 tolerance ladder."""

    def test_discharge_waveform_agreement(self):
        grid = transient_grid(1.5e-9, breakpoints=(0.1e-9, 0.12e-9), n_steps=120)
        probes = (
            CrossProbe("halfway", {"out": 1.0}, offset=-0.5),
            PeakProbe("peak", "out"),
        )
        rng = np.random.default_rng(3)
        dvth = rng.normal(0.0, 0.05, size=(32, 1))
        bmult = 1.0 + rng.normal(0.0, 0.05, size=(32, 1))
        results = {}
        for kernel in ("fast", "reference"):
            ct = CompiledTransient(_rc_circuit(), grid=grid, probes=probes,
                                   kernel=kernel)
            results[kernel] = ct.run(
                ic={"out": 1.0}, n=32, delta_vth=dvth, beta_mult=bmult
            )
        f, r = results["fast"], results["reference"]
        np.testing.assert_array_equal(f.converged, r.converged)
        np.testing.assert_allclose(f.final["out"], r.final["out"],
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(f.peak["peak"], r.peak["peak"],
                                   rtol=1e-9, atol=1e-12)
        # Crossing times: nan pattern identical, values at 1e-9.
        np.testing.assert_array_equal(
            np.isnan(f.cross["halfway"]), np.isnan(r.cross["halfway"])
        )
        ok = ~np.isnan(f.cross["halfway"])
        np.testing.assert_allclose(
            f.cross["halfway"][ok], r.cross["halfway"][ok], rtol=1e-9
        )
