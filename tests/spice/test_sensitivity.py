"""Gradient estimator tests on analytic functions and a real circuit."""

import numpy as np
import pytest

from repro.spice.elements import Capacitor, Mosfet, VoltageSource
from repro.spice.mosfet import nmos_45nm, pmos_45nm
from repro.spice.netlist import Circuit
from repro.spice.sensitivity import (
    central_difference,
    forward_difference,
    mosfet_vth_gradient,
    spsa_gradient,
)
from repro.spice.sources import pulse
from repro.spice.transient import run_transient


def quadratic(x):
    return float(x[0] ** 2 + 3.0 * x[1] + 0.5 * x[0] * x[1])


def quadratic_grad(x):
    return np.array([2 * x[0] + 0.5 * x[1], 3.0 + 0.5 * x[0]])


class TestFiniteDifferences:
    def test_central_matches_analytic(self):
        x = np.array([1.0, -2.0])
        np.testing.assert_allclose(
            central_difference(quadratic, x, step=1e-5), quadratic_grad(x), rtol=1e-5
        )

    def test_forward_matches_analytic(self):
        x = np.array([0.5, 0.5])
        np.testing.assert_allclose(
            forward_difference(quadratic, x, step=1e-6), quadratic_grad(x), rtol=1e-4
        )

    def test_forward_reuses_centre_value(self):
        calls = []

        def counted(x):
            calls.append(1)
            return quadratic(x)

        x = np.zeros(2)
        forward_difference(counted, x, step=1e-6, f0=quadratic(x))
        assert len(calls) == 2  # d evaluations only

    def test_central_exact_on_quadratics(self):
        # Central differences are exact (to roundoff) for quadratics
        # regardless of step size.
        x = np.array([1.0, 2.0])
        np.testing.assert_allclose(
            central_difference(quadratic, x, step=0.5), quadratic_grad(x), rtol=1e-10
        )


class TestSpsa:
    def test_exact_in_one_dimension(self):
        # With a single coordinate the perturbation cancels exactly.
        g = spsa_gradient(lambda x: float(3.0 * x[0]), np.zeros(1), repeats=1,
                          rng=np.random.default_rng(0))
        np.testing.assert_allclose(g, [3.0], rtol=1e-8)

    def test_unbiased_on_linear_function(self):
        # Single repeats are noisy (cross-terms a_j * D_j * D_i), but the
        # average over many repeats converges to the true gradient.
        a = np.array([1.0, -2.0, 0.5])
        g = spsa_gradient(lambda x: float(a @ x), np.zeros(3), repeats=2000,
                          rng=np.random.default_rng(0))
        np.testing.assert_allclose(g, a, atol=0.15)

    def test_converges_with_repeats(self):
        x = np.array([1.0, -1.0])
        rng = np.random.default_rng(1)
        g = spsa_gradient(quadratic, x, step=1e-4, repeats=256, rng=rng)
        err = np.linalg.norm(g - quadratic_grad(x)) / np.linalg.norm(quadratic_grad(x))
        assert err < 0.35  # stochastic but tame on a near-linear local patch

    def test_cost_is_two_evals_per_repeat(self):
        calls = []

        def counted(x):
            calls.append(1)
            return quadratic(x)

        spsa_gradient(counted, np.zeros(2), repeats=3, rng=np.random.default_rng(2))
        assert len(calls) == 6


class TestCircuitLevel:
    @pytest.fixture(scope="class")
    def inverter(self):
        c = Circuit("inv")
        c.add(VoltageSource("vdd", "vdd", "0", 1.0))
        c.add(
            VoltageSource(
                "vin", "in", "0", pulse(0, 1, delay=0.2e-9, rise=20e-12, width=1.5e-9)
            )
        )
        c.add(Mosfet("mp", "out", "in", "vdd", "vdd", pmos_45nm(), w=180e-9, l=50e-9))
        c.add(Mosfet("mn", "out", "in", "0", "0", nmos_45nm(), w=120e-9, l=50e-9))
        c.add(Capacitor("cl", "out", "0", 2e-15))
        return c

    def _delay(self, circuit):
        res = run_transient(circuit, 2e-9)
        return res.waveform("in").delay_to(
            res.waveform("out"), 0.5, 0.5, "rise", "fall"
        )

    def test_vth_gradient_signs(self, inverter):
        grad = mosfet_vth_gradient(
            inverter, lambda: self._delay(inverter), ["mn", "mp"], step=10e-3
        )
        # Raising the NMOS threshold slows the falling output: positive.
        assert grad[0] > 0
        # The PMOS barely participates in a falling transition.
        assert abs(grad[1]) < abs(grad[0])

    def test_restores_original_vth(self, inverter):
        before = (inverter["mn"].delta_vth, inverter["mp"].delta_vth)
        mosfet_vth_gradient(
            inverter, lambda: self._delay(inverter), ["mn", "mp"], step=5e-3
        )
        assert (inverter["mn"].delta_vth, inverter["mp"].delta_vth) == before

    def test_unknown_scheme_rejected(self, inverter):
        with pytest.raises(ValueError):
            mosfet_vth_gradient(inverter, lambda: 0.0, ["mn"], scheme="bogus")
