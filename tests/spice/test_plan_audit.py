"""Plan auditor: clean on every bench/assembly/solver, catches mutations.

The mutation tests are the auditor's reason to exist: each one injects a
defect class a corrupted cache entry or a hand-edited plan could carry
(colliding scatter round, reordered rounds, a broken Schur partition,
stamps that disagree with the wiring, stale hoisted tables, retirement
that can clobber a metric) and asserts the auditor reports the exact
code.
"""

import numpy as np
import pytest

from repro.errors import PlanAuditError, SimulationError
from repro.spice.audit import assert_plan_clean, audit_plan
from repro.spice.compile import RetirePolicy
from repro.sram.benches import (
    BENCH_NAMES,
    bench_compiled,
    bench_solver_choices,
    recompile,
)


def _codes(diags):
    return sorted({d.code for d in diags})


def _errors(diags):
    return [d for d in diags if d.severity == "error"]


MATRIX = [
    (name, assembly, solver)
    for name in BENCH_NAMES
    for assembly in ("dense", "sparse")
    for solver in bench_solver_choices(name)
]


class TestCleanMatrix:
    @pytest.mark.parametrize("name,assembly,solver", MATRIX)
    def test_bench_audits_clean(self, name, assembly, solver):
        """ISSUE acceptance: every bench, every assembly/solver combo."""
        ct = bench_compiled(name, assembly=assembly, solver=solver)
        diags = assert_plan_clean(ct)
        assert _errors(diags) == []

    def test_assert_plan_clean_raises_typed(self):
        ct = bench_compiled("column", assembly="sparse")
        ct._jac_rounds = None
        with pytest.raises(PlanAuditError) as exc:
            assert_plan_clean(ct)
        assert exc.value.code == "P002"
        assert isinstance(exc.value, SimulationError)  # family compatibility


class TestScatterRoundMutations:
    def test_p001_colliding_round(self):
        """Merging two rounds makes rows repeat inside one round."""
        ct = bench_compiled("column", assembly="sparse")
        r0, r1 = ct._jac_rounds[0], ct._jac_rounds[1]
        merged = tuple(np.concatenate([a, b]) for a, b in zip(r0, r1))
        ct._jac_rounds = [merged] + list(ct._jac_rounds[2:])
        codes = _codes(_errors(audit_plan(ct)))
        assert "P001" in codes

    def test_p002_reordered_rounds(self):
        """Reversed rounds apply stamps in descending column order."""
        ct = bench_compiled("column", assembly="sparse")
        ct._jac_rounds = list(reversed(ct._jac_rounds))
        codes = _codes(_errors(audit_plan(ct)))
        assert codes == ["P002"]

    def test_p002_sparse_without_rounds(self):
        ct = bench_compiled("column", assembly="sparse")
        ct._jac_rounds = None
        assert _codes(_errors(audit_plan(ct))) == ["P002"]

    def test_p002_dense_with_rounds(self):
        ct = bench_compiled("column", assembly="dense")
        ct._jac_rounds = []
        assert _codes(_errors(audit_plan(ct))) == ["P002"]


class TestSchurMutations:
    def test_p003_interior_node_leaked_into_border(self):
        ct = bench_compiled("array", assembly="sparse", solver="schur")
        schur = ct._schur
        leaked = int(np.asarray(schur.groups[0][1])[0][0])
        schur.h = np.unique(np.append(np.asarray(schur.h), leaked))
        diags = _errors(audit_plan(ct))
        assert "P003" in _codes(diags)
        assert any("border and an interior block" in d.message for d in diags)

    def test_p003_dropped_interior_block(self):
        ct = bench_compiled("array", assembly="sparse", solver="schur")
        schur = ct._schur
        s, nodes = schur.groups[0]
        nodes = np.asarray(nodes)
        assert nodes.shape[0] >= 2, "bench must have multiple blocks of this size"
        schur.groups[0] = (s, nodes[1:])
        diags = _errors(audit_plan(ct))
        assert "P003" in _codes(diags)
        assert any("neither the border nor any block" in d.message for d in diags)

    def test_p003_oversized_block(self):
        ct = bench_compiled("array", assembly="sparse", solver="schur")
        schur = ct._schur
        # Glue enough same-size blocks into one pseudo-block that the
        # result exceeds the unrolled-solve width.
        gi, (s, nodes) = max(
            enumerate(schur.groups), key=lambda g: np.asarray(g[1][1]).shape[0]
        )
        nodes = np.asarray(nodes)
        n_fuse = 4 // s + 1  # smallest count with n_fuse * s > 4
        assert nodes.shape[0] >= n_fuse, "bench too small for this mutation"
        fused = np.concatenate(list(nodes[:n_fuse]))[None, :]
        schur.groups[gi] = (n_fuse * s, fused)
        if nodes.shape[0] > n_fuse:
            schur.groups.append((s, nodes[n_fuse:]))
        diags = _errors(audit_plan(ct))
        assert "P003" in _codes(diags)
        assert any("unrolled-solve width" in d.message for d in diags)

    def test_p003_solver_mismatch(self):
        ct = bench_compiled("column", solver="blocked")
        donor = bench_compiled("column", solver="schur")
        ct._schur = donor._schur
        assert "P003" in _codes(_errors(audit_plan(ct)))


class TestIndexMapMutations:
    def test_p004_sign_flip_in_s_mat(self):
        ct = bench_compiled("6t")
        s = np.array(ct._s_mat, copy=True)
        r, c = np.argwhere(s != 0.0)[0]
        s[r, c] = -s[r, c]
        ct._s_mat = s
        diags = _errors(audit_plan(ct))
        assert "P004" in _codes(diags)
        assert any(d.subject == "s_mat" for d in diags)

    def test_p004_gather_out_of_range(self):
        ct = bench_compiled("6t")
        idx = np.array(ct._d_idx, copy=True)
        idx[0] = ct._n_ext  # one past the end of the extended state
        ct._d_idx = idx
        diags = _errors(audit_plan(ct))
        assert "P004" in _codes(diags)


class TestPlanTableMutations:
    def test_p005_stale_step_sizes(self):
        ct = bench_compiled("latch")
        ct._plan.hs = ct._plan.hs * 2.0
        diags = _errors(audit_plan(ct))
        assert _codes(diags) == ["P005"]

    def test_p005_stale_base_jacobian(self):
        ct = bench_compiled("latch")
        ct._plan.base_jac = ct._plan.base_jac + 1e-3
        diags = _errors(audit_plan(ct))
        assert "P005" in _codes(diags)
        assert any(d.subject == "base_jac" for d in diags)


class TestRetirementAudit:
    def test_p006_value_probe_with_retirement(self):
        ct = bench_compiled("array")
        retire = RetirePolicy("access", after=float(ct.grid[-1]) * 0.5)
        diags = _errors(audit_plan(ct, retire=retire))
        assert "P006" in _codes(diags)

    def test_p006_peak_window_after_retirement(self):
        ct = bench_compiled("write")
        t_from = float(ct._peak_probes[0].t_from)
        retire = RetirePolicy("trip", after=t_from * 0.5)
        diags = _errors(audit_plan(ct, retire=retire))
        assert "P006" in _codes(diags)

    def test_p006_unknown_retire_probe(self):
        ct = bench_compiled("6t")
        retire = RetirePolicy("nonesuch", after=float(ct.grid[-1]))
        diags = _errors(audit_plan(ct, retire=retire))
        assert "P006" in _codes(diags)

    def test_write_bench_retirement_is_legal_after_peak_opens(self):
        ct = bench_compiled("write")
        t_from = float(ct._peak_probes[0].t_from)
        retire = RetirePolicy("trip", after=t_from * 1.5)
        assert _errors(audit_plan(ct, retire=retire)) == []


class TestProbeTableMutations:
    def test_p007_peak_rows_out_of_range(self):
        ct = bench_compiled("write")
        rows = np.array(ct._peak_rows, copy=True)
        rows[0] = ct.n_unknowns
        ct._peak_rows = rows
        diags = _errors(audit_plan(ct))
        assert "P007" in _codes(diags)

    def test_p007_value_step_beyond_grid(self):
        ct = bench_compiled("array")
        steps = np.array(ct._value_steps, copy=True)
        steps[0] = ct._plan.n_steps
        ct._value_steps = steps
        diags = _errors(audit_plan(ct))
        assert "P007" in _codes(diags)


class TestRecompileHelper:
    def test_recompile_is_equivalent(self):
        base = bench_compiled("column")
        other = recompile(base, assembly="dense")
        assert other.assembly == "dense"
        assert other.n_unknowns == base.n_unknowns
        assert audit_plan(other) == []

    def test_recompile_preserves_probes(self):
        base = bench_compiled("array")
        other = recompile(base, solver="blocked")
        assert [p.name for p in other._cross_probes] == [
            p.name for p in base._cross_probes
        ]
        assert [p.name for p in other._value_probes] == [
            p.name for p in base._value_probes
        ]
