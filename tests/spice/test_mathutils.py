"""Unit and property tests for the numeric helpers behind the device model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice.mathutils import (
    sigmoid,
    smooth_abs,
    smooth_abs_grad,
    smooth_relu,
    smooth_relu_grad,
    softplus,
    softplus_grad,
)

finite_floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestSoftplus:
    def test_matches_naive_formula_in_safe_range(self):
        x = np.linspace(-30, 30, 201)
        np.testing.assert_allclose(softplus(x), np.log1p(np.exp(x)), rtol=1e-12)

    def test_no_overflow_for_huge_arguments(self):
        assert softplus(1e6) == pytest.approx(1e6)
        assert softplus(-1e6) == 0.0

    def test_positive_everywhere(self):
        x = np.linspace(-100, 100, 101)
        assert np.all(softplus(x) >= 0)

    @given(finite_floats)
    def test_finite_and_above_relu(self, x):
        y = float(softplus(x))
        assert np.isfinite(y)
        assert y >= max(x, 0.0) - 1e-9

    @given(st.floats(min_value=-50, max_value=50))
    @settings(max_examples=50)
    def test_gradient_matches_finite_difference(self, x):
        h = 1e-6
        fd = (softplus(x + h) - softplus(x - h)) / (2 * h)
        assert float(softplus_grad(x)) == pytest.approx(float(fd), abs=1e-5)


class TestSigmoid:
    def test_range_and_symmetry(self):
        x = np.linspace(-40, 40, 101)
        s = sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        np.testing.assert_allclose(s + sigmoid(-x), 1.0, atol=1e-12)

    def test_extreme_arguments(self):
        assert sigmoid(1e4) == 1.0
        assert sigmoid(-1e4) == 0.0

    def test_midpoint(self):
        assert float(sigmoid(0.0)) == pytest.approx(0.5)


class TestSmoothAbs:
    def test_zero_at_origin(self):
        assert float(smooth_abs(0.0)) == 0.0

    def test_close_to_abs_away_from_origin(self):
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        np.testing.assert_allclose(smooth_abs(x, eps=1e-3), np.abs(x), atol=1e-3)

    @given(st.floats(min_value=-100, max_value=100))
    @settings(max_examples=50)
    def test_gradient_matches_finite_difference(self, x):
        h = 1e-6
        fd = (smooth_abs(x + h) - smooth_abs(x - h)) / (2 * h)
        assert float(smooth_abs_grad(x)) == pytest.approx(float(fd), abs=1e-4)

    @given(finite_floats)
    def test_bounded_below_abs(self, x):
        assert float(smooth_abs(x)) <= abs(x) + 1e-12


class TestSmoothRelu:
    def test_strictly_positive(self):
        x = np.linspace(-10, 10, 101)
        assert np.all(smooth_relu(x) > 0)

    def test_approaches_relu(self):
        x = np.array([-5.0, -1.0, 1.0, 5.0])
        np.testing.assert_allclose(smooth_relu(x, eps=1e-4), np.maximum(x, 0), atol=1e-4)

    @given(st.floats(min_value=-100, max_value=100))
    @settings(max_examples=50)
    def test_gradient_matches_finite_difference(self, x):
        h = 1e-6
        fd = (smooth_relu(x + h) - smooth_relu(x - h)) / (2 * h)
        assert float(smooth_relu_grad(x)) == pytest.approx(float(fd), abs=1e-4)

    def test_gradient_range(self):
        x = np.linspace(-50, 50, 101)
        g = smooth_relu_grad(x)
        assert np.all((g >= 0) & (g <= 1))
