"""Operating-point solver tests: linear exactness, nonlinear circuits,
homotopy fallbacks and failure reporting."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.spice.dcop import NewtonOptions, solve_dc
from repro.spice.elements import CurrentSource, Mosfet, Resistor, VoltageSource
from repro.spice.mosfet import nmos_45nm, pmos_45nm
from repro.spice.netlist import Circuit


def divider(r1=1e3, r2=1e3, v=1.0):
    c = Circuit("divider")
    c.add(VoltageSource("vin", "in", "0", v))
    c.add(Resistor("r1", "in", "mid", r1))
    c.add(Resistor("r2", "mid", "0", r2))
    return c


class TestLinear:
    def test_divider_exact(self):
        op = solve_dc(divider())
        assert op.v("mid") == pytest.approx(0.5, abs=1e-9)

    def test_divider_unequal(self):
        op = solve_dc(divider(r1=3e3, r2=1e3, v=2.0))
        assert op.v("mid") == pytest.approx(0.5, abs=1e-9)

    def test_branch_current(self):
        op = solve_dc(divider())
        assert op.i("vin") == pytest.approx(-1.0 / 2e3, rel=1e-6)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add(CurrentSource("i1", "0", "a", 1e-3))
        c.add(Resistor("r1", "a", "0", 1e3))
        op = solve_dc(c)
        assert op.v("a") == pytest.approx(1.0, rel=1e-9)

    def test_two_sources_superposition(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", 1.0))
        c.add(VoltageSource("v2", "b", "0", 2.0))
        c.add(Resistor("r1", "a", "x", 1e3))
        c.add(Resistor("r2", "b", "x", 1e3))
        c.add(Resistor("r3", "x", "0", 1e3))
        op = solve_dc(c)
        assert op.v("x") == pytest.approx(1.0, rel=1e-9)

    def test_ground_reads_zero(self):
        op = solve_dc(divider())
        assert op.v("0") == 0.0


class TestNonlinear:
    def test_diode_connected_nmos(self):
        c = Circuit()
        c.add(VoltageSource("vdd", "vdd", "0", 1.0))
        c.add(Resistor("r", "vdd", "d", 10e3))
        c.add(Mosfet("m", "d", "d", "0", "0", nmos_45nm(), w=200e-9, l=50e-9))
        op = solve_dc(c)
        vd = op.v("d")
        assert 0.3 < vd < 0.9  # a Vgs-ish drop
        # KCL check: resistor current equals device current.
        i_r = (1.0 - vd) / 10e3
        i_m, *_ = nmos_45nm().ids(vd, vd, 0.0, w=200e-9, l=50e-9)
        assert i_r == pytest.approx(float(i_m), rel=1e-4)

    def test_inverter_rails(self):
        c = Circuit()
        c.add(VoltageSource("vdd", "vdd", "0", 1.0))
        c.add(VoltageSource("vin", "in", "0", 0.0))
        c.add(Mosfet("mp", "out", "in", "vdd", "vdd", pmos_45nm(), w=180e-9, l=50e-9))
        c.add(Mosfet("mn", "out", "in", "0", "0", nmos_45nm(), w=120e-9, l=50e-9))
        assert solve_dc(c).v("out") == pytest.approx(1.0, abs=1e-3)
        c["vin"].shape = __import__("repro.spice.sources", fromlist=["dc"]).dc(1.0)
        assert solve_dc(c).v("out") == pytest.approx(0.0, abs=1e-3)

    def test_inverter_vtc_monotone(self):
        from repro.spice.sources import dc

        c = Circuit()
        c.add(VoltageSource("vdd", "vdd", "0", 1.0))
        c.add(VoltageSource("vin", "in", "0", 0.0))
        c.add(Mosfet("mp", "out", "in", "vdd", "vdd", pmos_45nm(), w=180e-9, l=50e-9))
        c.add(Mosfet("mn", "out", "in", "0", "0", nmos_45nm(), w=120e-9, l=50e-9))
        outs = []
        for vin in np.linspace(0, 1, 11):
            c["vin"].shape = dc(float(vin))
            outs.append(solve_dc(c).v("out"))
        assert all(b <= a + 1e-9 for a, b in zip(outs, outs[1:]))

    def test_warm_start_reuses_previous_solution(self):
        c = divider()
        op1 = solve_dc(c)
        op2 = solve_dc(c, x0=op1.x)
        assert op2.iterations <= op1.iterations


class TestRobustness:
    def test_impossible_tolerance_raises(self):
        # An unsatisfiable iteration budget must raise ConvergenceError
        # from the plain-newton path... but gmin/source stepping may still
        # rescue it, so use the internal newton directly.
        from repro.spice.dcop import newton_solve
        from repro.spice import mna

        c = Circuit()
        c.add(VoltageSource("vdd", "vdd", "0", 1.0))
        c.add(Resistor("r", "vdd", "d", 10e3))
        c.add(Mosfet("m", "d", "d", "0", "0", nmos_45nm(), w=200e-9, l=50e-9))
        mna.assign_branches(c)
        opts = NewtonOptions(max_iterations=1)
        with pytest.raises(ConvergenceError) as err:
            newton_solve(c, np.zeros(mna.system_size(c)), options=opts)
        assert err.value.iterations == 1

    def test_strategy_reported(self):
        op = solve_dc(divider())
        assert op.strategy in ("newton", "gmin-stepping", "source-stepping")
