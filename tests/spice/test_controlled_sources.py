"""VCVS / VCCS element tests."""

import pytest

from repro.spice.dcop import solve_dc
from repro.spice.elements import Resistor, Vccs, Vcvs, VoltageSource
from repro.spice.netlist import Circuit


class TestVccs:
    def test_transconductance(self):
        c = Circuit()
        c.add(VoltageSource("vc", "ctl", "0", 0.5))
        # gm = 1 mS: 0.5 V control -> 0.5 mA out of 'out' into the element.
        c.add(Vccs("g1", "out", "0", "ctl", "0", gm=1e-3))
        c.add(Resistor("rl", "out", "0", 1e3))
        op = solve_dc(c)
        # Current leaves 'out' through the source, so the resistor pulls
        # the node negative: v = -i * R.
        assert op.v("out") == pytest.approx(-0.5, rel=1e-6)

    def test_zero_control_zero_output(self):
        c = Circuit()
        c.add(VoltageSource("vc", "ctl", "0", 0.0))
        c.add(Vccs("g1", "out", "0", "ctl", "0", gm=1e-3))
        c.add(Resistor("rl", "out", "0", 1e3))
        assert solve_dc(c).v("out") == pytest.approx(0.0, abs=1e-9)


class TestVcvs:
    def test_gain(self):
        c = Circuit()
        c.add(VoltageSource("vin", "in", "0", 0.25))
        c.add(Vcvs("e1", "out", "0", "in", "0", gain=4.0))
        c.add(Resistor("rl", "out", "0", 1e3))
        assert solve_dc(c).v("out") == pytest.approx(1.0, rel=1e-9)

    def test_differential_control(self):
        c = Circuit()
        c.add(VoltageSource("va", "a", "0", 0.8))
        c.add(VoltageSource("vb", "b", "0", 0.3))
        c.add(Vcvs("e1", "out", "0", "a", "b", gain=2.0))
        c.add(Resistor("rl", "out", "0", 1e3))
        assert solve_dc(c).v("out") == pytest.approx(1.0, rel=1e-9)

    def test_drives_load_through_divider(self):
        # VCVS output is stiff: a load divider sees the full source value.
        c = Circuit()
        c.add(VoltageSource("vin", "in", "0", 0.5))
        c.add(Vcvs("e1", "x", "0", "in", "0", gain=2.0))
        c.add(Resistor("r1", "x", "mid", 1e3))
        c.add(Resistor("r2", "mid", "0", 1e3))
        op = solve_dc(c)
        assert op.v("x") == pytest.approx(1.0, rel=1e-9)
        assert op.v("mid") == pytest.approx(0.5, rel=1e-9)
