"""Physics and consistency tests for the EKV-flavoured MOSFET model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice.mosfet import nmos_45nm, pmos_45nm

W, L = 120e-9, 50e-9
volts = st.floats(min_value=-1.2, max_value=1.2, allow_nan=False)


class TestNmosBasics:
    def setup_method(self):
        self.m = nmos_45nm()

    def test_off_current_small(self):
        ids, *_ = self.m.ids(vg=0.0, vd=1.0, vs=0.0, w=W, l=L)
        assert 0 < ids < 1e-7

    def test_on_current_realistic(self):
        ids, *_ = self.m.ids(vg=1.0, vd=1.0, vs=0.0, w=W, l=L)
        # Tens of microamps for a 120nm-wide device at VDD = 1 V.
        assert 5e-6 < ids < 5e-4

    def test_on_off_ratio(self):
        on, *_ = self.m.ids(vg=1.0, vd=1.0, vs=0.0, w=W, l=L)
        off, *_ = self.m.ids(vg=0.0, vd=1.0, vs=0.0, w=W, l=L)
        assert on / off > 1e4

    def test_zero_vds_zero_current(self):
        ids, *_ = self.m.ids(vg=1.0, vd=0.4, vs=0.4, w=W, l=L)
        assert ids == pytest.approx(0.0, abs=1e-15)

    def test_current_increases_with_vgs(self):
        currents = [
            float(self.m.ids(vg=v, vd=1.0, vs=0.0, w=W, l=L)[0])
            for v in np.linspace(0.2, 1.0, 9)
        ]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_current_increases_with_vds(self):
        currents = [
            float(self.m.ids(vg=1.0, vd=v, vs=0.0, w=W, l=L)[0])
            for v in np.linspace(0.05, 1.0, 9)
        ]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_subthreshold_slope_physical(self):
        # Slope should be n * UT * ln(10) per decade: 80-110 mV/dec.
        i1, *_ = self.m.ids(vg=0.20, vd=1.0, vs=0.0, w=W, l=L)
        i2, *_ = self.m.ids(vg=0.30, vd=1.0, vs=0.0, w=W, l=L)
        decades = np.log10(i2 / i1)
        slope = 0.1 / decades
        assert 0.070 < slope < 0.120

    def test_source_drain_symmetry(self):
        # Swapping source and drain must exactly negate the current.
        fwd, *_ = self.m.ids(vg=1.0, vd=0.7, vs=0.2, vb=0.0, w=W, l=L)
        rev, *_ = self.m.ids(vg=1.0, vd=0.2, vs=0.7, vb=0.0, w=W, l=L)
        assert fwd == pytest.approx(-rev, rel=1e-9)

    def test_body_effect_raises_threshold(self):
        # Same vgs/vds but raised source-bulk potential -> less current.
        low, *_ = self.m.ids(vg=0.8, vd=1.0, vs=0.0, vb=0.0, w=W, l=L)
        high, *_ = self.m.ids(vg=1.1, vd=1.3, vs=0.3, vb=0.0, w=W, l=L)
        assert high < low


class TestPmos:
    def setup_method(self):
        self.m = pmos_45nm()

    def test_off_when_gate_high(self):
        ids, *_ = self.m.ids(vg=1.0, vd=0.0, vs=1.0, vb=1.0, w=W, l=L)
        assert abs(ids) < 1e-7

    def test_on_current_negative_into_drain(self):
        # PMOS pulling its drain up: conventional current flows out of the
        # drain terminal, i.e. ids (into drain) is negative.
        ids, *_ = self.m.ids(vg=0.0, vd=0.0, vs=1.0, vb=1.0, w=W, l=L)
        assert ids < -1e-6

    def test_weaker_than_nmos(self):
        n = nmos_45nm()
        i_n, *_ = n.ids(vg=1.0, vd=1.0, vs=0.0, w=W, l=L)
        i_p, *_ = self.m.ids(vg=0.0, vd=0.0, vs=1.0, vb=1.0, w=W, l=L)
        assert abs(i_n) > abs(i_p)


class TestDerivatives:
    @pytest.mark.parametrize("model_fn", [nmos_45nm, pmos_45nm])
    @pytest.mark.parametrize(
        "vg,vd,vs,vb",
        [
            (0.9, 0.8, 0.0, 0.0),
            (0.5, 0.1, 0.0, 0.0),
            (0.2, 1.0, 0.0, 0.0),
            (1.0, 0.5, 0.3, 0.0),
            (0.0, 0.9, 1.0, 1.0),
        ],
    )
    def test_conductances_match_finite_differences(self, model_fn, vg, vd, vs, vb):
        m = model_fn()
        h = 1e-6
        _, gm, gds, gms, gmb = m.ids(vg, vd, vs, vb, w=W, l=L)

        def i(vg=vg, vd=vd, vs=vs, vb=vb):
            return float(m.ids(vg, vd, vs, vb, w=W, l=L)[0])

        assert float(gm) == pytest.approx((i(vg=vg + h) - i(vg=vg - h)) / (2 * h), rel=1e-4, abs=1e-12)
        assert float(gds) == pytest.approx((i(vd=vd + h) - i(vd=vd - h)) / (2 * h), rel=1e-4, abs=1e-12)
        assert float(gms) == pytest.approx((i(vs=vs + h) - i(vs=vs - h)) / (2 * h), rel=1e-4, abs=1e-12)
        assert float(gmb) == pytest.approx((i(vb=vb + h) - i(vb=vb - h)) / (2 * h), rel=1e-4, abs=1e-12)

    @given(vg=volts, vd=volts, vs=volts)
    @settings(max_examples=60, deadline=None)
    def test_conservation_identity(self, vg, vd, vs):
        # The current depends only on terminal differences, so the four
        # conductances must sum to zero (gmb = -(gm + gds + gms)).
        m = nmos_45nm()
        _, gm, gds, gms, gmb = m.ids(vg, vd, vs, 0.0, w=W, l=L)
        assert float(gm + gds + gms + gmb) == pytest.approx(0.0, abs=1e-9)

    @given(shift=st.floats(min_value=-0.3, max_value=0.3))
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance(self, shift):
        # Shifting all terminals together must not change the current.
        m = nmos_45nm()
        i0, *_ = m.ids(0.9, 0.8, 0.1, 0.0, w=W, l=L)
        i1, *_ = m.ids(0.9 + shift, 0.8 + shift, 0.1 + shift, 0.0 + shift, w=W, l=L)
        assert float(i1) == pytest.approx(float(i0), rel=1e-9)


class TestVariationKnobs:
    def test_delta_vth_reduces_current(self):
        m = nmos_45nm()
        base, *_ = m.ids(0.8, 1.0, 0.0, w=W, l=L)
        slow, *_ = m.ids(0.8, 1.0, 0.0, delta_vth=0.05, w=W, l=L)
        fast, *_ = m.ids(0.8, 1.0, 0.0, delta_vth=-0.05, w=W, l=L)
        assert slow < base < fast

    def test_delta_vth_sign_convention_pmos(self):
        # Positive delta_vth means a *weaker* device for both polarities.
        m = pmos_45nm()
        base, *_ = m.ids(0.0, 0.0, 1.0, 1.0, w=W, l=L)
        slow, *_ = m.ids(0.0, 0.0, 1.0, 1.0, delta_vth=0.05, w=W, l=L)
        assert abs(slow) < abs(base)

    def test_beta_mult_scales_current(self):
        m = nmos_45nm()
        base, *_ = m.ids(1.0, 1.0, 0.0, w=W, l=L)
        scaled, *_ = m.ids(1.0, 1.0, 0.0, beta_mult=1.2, w=W, l=L)
        # In strong inversion the scaling is nearly proportional.
        assert scaled == pytest.approx(1.2 * base, rel=0.05)

    def test_vectorised_evaluation_matches_scalar(self):
        m = nmos_45nm()
        vgs = np.linspace(0.0, 1.0, 7)
        vec_ids, vec_gm, *_ = m.ids(vgs, 1.0, 0.0, w=W, l=L)
        for i, vg in enumerate(vgs):
            s_ids, s_gm, *_ = m.ids(float(vg), 1.0, 0.0, w=W, l=L)
            assert vec_ids[i] == pytest.approx(float(s_ids), rel=1e-12)
            assert vec_gm[i] == pytest.approx(float(s_gm), rel=1e-12)


class TestModelCard:
    def test_pelgrom_sigmas(self):
        m = nmos_45nm()
        s1 = m.vth_sigma(W, L)
        s2 = m.vth_sigma(4 * W, L)
        assert s2 == pytest.approx(s1 / 2.0)
        assert 0.01 < s1 < 0.1  # tens of millivolts

    def test_capacitances_positive_and_scale_with_width(self):
        m = nmos_45nm()
        caps1 = m.capacitances(W, L)
        caps2 = m.capacitances(2 * W, L)
        assert all(c > 0 for c in caps1)
        assert all(b > a for a, b in zip(caps1, caps2))

    def test_with_overrides(self):
        m = nmos_45nm().with_overrides(vto=0.5)
        assert m.vto == 0.5
        assert m.kp == nmos_45nm().kp

    def test_beta_with_multiplier(self):
        m = nmos_45nm()
        assert m.beta(W, L, beta_mult=2.0) == pytest.approx(2 * m.beta(W, L))
