"""Waveform container and measurement tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeasurementError
from repro.spice.waveform import Waveform


def ramp(t0=0.0, t1=1.0, v0=0.0, v1=1.0, n=11):
    t = np.linspace(t0, t1, n)
    v = np.linspace(v0, v1, n)
    return Waveform(t, v, name="ramp")


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(MeasurementError):
            Waveform([0, 1, 2], [0, 1])

    def test_rejects_single_sample(self):
        with pytest.raises(MeasurementError):
            Waveform([0], [1])

    def test_rejects_non_monotone_times(self):
        with pytest.raises(MeasurementError):
            Waveform([0, 1, 1], [0, 1, 2])

    def test_repr_contains_name(self):
        assert "ramp" in repr(ramp())


class TestInterpolation:
    def test_at_interpolates_linearly(self):
        w = ramp()
        assert w.at(0.25) == pytest.approx(0.25)

    def test_at_clamps_outside(self):
        w = ramp()
        assert w.at(-1.0) == 0.0
        assert w.at(2.0) == 1.0

    @given(t=st.floats(min_value=0, max_value=1))
    @settings(max_examples=30)
    def test_identity_on_ramp(self, t):
        assert ramp(n=101).at(t) == pytest.approx(t, abs=1e-9)


class TestCrossings:
    def test_rising_cross_interpolated(self):
        w = ramp()
        assert w.cross(0.5, direction="rise") == pytest.approx(0.5)

    def test_falling_cross(self):
        w = Waveform([0, 1], [1.0, 0.0])
        assert w.cross(0.25, direction="fall") == pytest.approx(0.75)

    def test_direction_filtering(self):
        t = np.linspace(0, 2, 21)
        v = np.concatenate([np.linspace(0, 1, 11), np.linspace(0.9, 0, 10)])
        w = Waveform(t, v)
        rise = w.cross(0.5, direction="rise")
        fall = w.cross(0.5, direction="fall")
        assert rise < 1.0 < fall

    def test_occurrence_counting(self):
        t = np.linspace(0, 4, 41)
        v = np.sin(np.pi * t)  # crosses zero at 1, 2, 3
        w = Waveform(t, v)
        c1 = w.cross(0.0, occurrence=1, after=0.1)
        c2 = w.cross(0.0, occurrence=2, after=0.1)
        assert c1 == pytest.approx(1.0, abs=0.02)
        assert c2 == pytest.approx(2.0, abs=0.02)

    def test_after_skips_early_events(self):
        t = np.linspace(0, 4, 41)
        v = np.sin(np.pi * t)
        w = Waveform(t, v)
        assert w.cross(0.0, after=1.5) == pytest.approx(2.0, abs=0.02)

    def test_missing_cross_raises(self):
        with pytest.raises(MeasurementError):
            ramp().cross(2.0)

    def test_has_cross_predicate(self):
        w = ramp()
        assert w.has_cross(0.5)
        assert not w.has_cross(1.5)

    def test_bad_direction_rejected(self):
        with pytest.raises(MeasurementError):
            ramp().cross(0.5, direction="sideways")

    def test_bad_occurrence_rejected(self):
        with pytest.raises(MeasurementError):
            ramp().cross(0.5, occurrence=0)


class TestDerivedMeasurements:
    def test_delay_between_waveforms(self):
        a = ramp()  # crosses 0.5 at t=0.5
        b = Waveform(np.linspace(0, 2, 21), np.linspace(-0.5, 1.5, 21))  # 0.5 at t=1
        assert a.delay_to(b, 0.5, 0.5) == pytest.approx(0.5)

    def test_slew_10_90(self):
        w = ramp(n=101)
        assert w.slew(0.1, 0.9) == pytest.approx(0.8, abs=1e-6)

    def test_slew_flat_raises(self):
        w = Waveform([0, 1], [0.5, 0.5])
        with pytest.raises(MeasurementError):
            w.slew()

    def test_window_extraction(self):
        w = ramp(n=101)
        sub = w.window(0.25, 0.75)
        assert sub.t_start == pytest.approx(0.25)
        assert sub.t_stop == pytest.approx(0.75)
        assert sub.values[0] == pytest.approx(0.25)

    def test_window_empty_raises(self):
        with pytest.raises(MeasurementError):
            ramp().window(0.5, 0.5)

    def test_subtraction_on_union_grid(self):
        a = Waveform([0, 1], [0.0, 1.0])
        b = Waveform([0, 0.5, 1], [0.0, 0.0, 0.0])
        d = a - b
        assert d.at(0.5) == pytest.approx(0.5)

    def test_subtraction_no_overlap_raises(self):
        a = Waveform([0, 1], [0, 1])
        b = Waveform([2, 3], [0, 1])
        with pytest.raises(MeasurementError):
            a - b

    def test_extrema_and_final(self):
        w = ramp()
        assert w.vmax() == 1.0
        assert w.vmin() == 0.0
        assert w.final() == 1.0
