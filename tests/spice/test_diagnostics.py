"""Netlist linter: golden diagnostics per code, clean benches, strict mode.

Each defect class gets a minimal circuit that triggers exactly its code;
the five compiled benches and the example testbenches are pinned clean —
the linter must never regress into false positives on the real
workloads.
"""

import numpy as np
import pytest

from repro.errors import LintError
from repro.spice.compile import CompiledTransient, CrossProbe, PeakProbe
from repro.spice.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    format_diagnostics,
    lint_circuit,
    lint_errors,
)
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.mosfet import nmos_45nm
from repro.spice.netlist import Circuit
from repro.sram.benches import BENCH_NAMES, bench_compiled

W, L = 200e-9, 50e-9


def _codes(diags):
    return sorted({d.code for d in diags})


def base_circuit():
    """A minimal clean compilable circuit: one NMOS into a loaded node."""
    c = Circuit("lint-base")
    c.add(VoltageSource("vdd", "vdd", "0", 1.0))
    c.add(VoltageSource("vin", "in", "0", 0.5))
    c.add(Mosfet("m1", "out", "in", "0", "0", nmos_45nm(), w=W, l=L))
    c.add(Resistor("rl", "vdd", "out", 1e5))
    c.add(Capacitor("cl", "out", "0", 1e-15))
    return c


class TestRegistry:
    def test_every_code_documented(self):
        for code, (meaning, hint) in DIAGNOSTIC_CODES.items():
            assert code[0] in "NPDA" and code[1:].isdigit()
            assert meaning and hint

    def test_str_includes_code_and_hint(self):
        d = Diagnostic("N001", "warning", "x", "msg", "do this")
        assert "N001" in str(d) and "do this" in str(d)

    def test_format_empty_is_clean(self):
        assert "clean" in format_diagnostics([])


class TestGoldenDefects:
    def test_clean_base(self):
        assert lint_circuit(base_circuit()) == []

    def test_n001_dangling_node(self):
        c = base_circuit()
        c.add(Capacitor("cd", "stub", "out", 1e-15))
        diags = [d for d in lint_circuit(c) if d.code == "N001"]
        assert len(diags) == 1
        assert diags[0].severity == "warning"
        assert diags[0].subject == "stub"

    def test_n002_disconnected_island(self):
        c = base_circuit()
        c.add(Resistor("ri", "isla", "islb", 1e3))
        c.add(Capacitor("ci", "isla", "islb", 1e-15))
        diags = lint_circuit(c)
        codes = _codes(diags)
        assert "N002" in codes
        island = [d for d in diags if d.code == "N002"][0]
        assert island.severity == "error"
        assert "isla" in island.subject and "islb" in island.subject

    def test_n003_controlled_sources(self):
        c = base_circuit()
        c.add(Vcvs("e1", "out", "0", "in", "0", gain=2.0))
        c.add(Vccs("g1", "out", "0", "in", "0", gm=1e-3))
        diags = [d for d in lint_circuit(c) if d.code == "N003"]
        assert sorted(d.subject for d in diags) == ["e1", "g1"]
        assert all(d.severity == "error" for d in diags)

    def test_n004_current_source(self):
        c = base_circuit()
        c.add(CurrentSource("i1", "out", "0", 1e-6))
        assert "N004" in _codes(lint_circuit(c))

    def test_n005_floating_and_grounding_sources(self):
        c = base_circuit()
        c.add(VoltageSource("vf", "a", "b", 1.0))
        c.add(Capacitor("ca", "a", "0", 1e-15))
        c.add(Capacitor("cb", "b", "0", 1e-15))
        diags = [d for d in lint_circuit(c) if d.code == "N005"]
        assert [d.subject for d in diags] == ["vf"]

        c2 = base_circuit()
        c2.add(VoltageSource("vg", "0", "gnd", 1.0))
        diags2 = [d for d in lint_circuit(c2) if d.code == "N005"]
        assert [d.subject for d in diags2] == ["vg"]

    def test_n006_multi_driven_node(self):
        c = base_circuit()
        c.add(VoltageSource("vdd2", "vdd", "0", 0.9))
        diags = [d for d in lint_circuit(c) if d.code == "N006"]
        assert [d.subject for d in diags] == ["vdd"]
        assert "vdd2" in diags[0].message

    def test_n007_rail_only_device(self):
        c = base_circuit()
        c.add(Resistor("rr", "vdd", "0", 1e6))
        diags = [d for d in lint_circuit(c) if d.code == "N007"]
        assert [d.subject for d in diags] == ["rr"]

    def test_n008_probe_missing_node(self):
        c = base_circuit()
        probes = [
            CrossProbe("bad_cross", {"nope": 1.0}, offset=0.0),
            PeakProbe("bad_peak", "vdd", t_from=0.0),
        ]
        diags = [d for d in lint_circuit(c, probes=probes) if d.code == "N008"]
        assert sorted(d.subject for d in diags) == ["bad_cross", "bad_peak"]

    def test_n009_no_dc_path(self):
        c = base_circuit()
        # Node reachable only through capacitors: DC operating point is
        # undefined there.
        c.add(Capacitor("cf1", "float", "out", 1e-15))
        c.add(Capacitor("cf2", "float", "0", 1e-15))
        diags = [d for d in lint_circuit(c) if d.code == "N009"]
        assert [d.subject for d in diags] == ["float"]

    def test_n010_no_capacitance(self):
        c = Circuit("lint-nocap")
        c.add(VoltageSource("vdd", "vdd", "0", 1.0))
        c.add(VoltageSource("vin", "in", "0", 0.5))
        c.add(Mosfet("m1", "out", "in", "0", "0", nmos_45nm(), w=W, l=L))
        c.add(Resistor("rl", "vdd", "out", 1e5))
        diags = [d for d in lint_circuit(c) if d.code == "N010"]
        # the mosfet's intrinsic caps() cover its own terminals, so only
        # a truly C-free node reports
        assert all(d.severity == "warning" for d in diags)

    def test_n012_duplicate_probe(self):
        c = base_circuit()
        probes = [
            CrossProbe("p", {"out": 1.0}, offset=0.0),
            CrossProbe("p", {"out": -1.0}, offset=0.0),
        ]
        diags = [d for d in lint_circuit(c, probes=probes) if d.code == "N012"]
        assert [d.subject for d in diags] == ["p"]

    def test_n013_no_mosfets(self):
        c = Circuit("lint-rc")
        c.add(VoltageSource("vdd", "vdd", "0", 1.0))
        c.add(Resistor("r1", "vdd", "out", 1e3))
        c.add(Capacitor("c1", "out", "0", 1e-15))
        assert "N013" in _codes(lint_circuit(c))

    def test_n014_no_unknowns(self):
        c = Circuit("lint-rails")
        c.add(VoltageSource("vdd", "vdd", "0", 1.0))
        c.add(VoltageSource("vin", "in", "0", 0.5))
        c.add(Mosfet("m1", "vdd", "in", "0", "0", nmos_45nm(), w=W, l=L))
        diags = lint_circuit(c)
        assert "N014" in _codes(diags)

    def test_all_findings_in_one_sweep(self):
        """The linter reports every problem, not the first one."""
        c = base_circuit()
        c.add(CurrentSource("i1", "out", "0", 1e-6))
        c.add(Vcvs("e1", "out", "0", "in", "0", gain=2.0))
        c.add(VoltageSource("vf", "x", "y", 1.0))
        codes = _codes(lint_circuit(c))
        for expected in ("N003", "N004", "N005"):
            assert expected in codes

    def test_deterministic_order(self):
        c = base_circuit()
        c.add(CurrentSource("i1", "out", "0", 1e-6))
        c.add(Vcvs("e1", "out", "0", "in", "0", gain=2.0))
        a = lint_circuit(c)
        b = lint_circuit(c)
        assert a == b
        assert [d.code for d in a] == sorted(d.code for d in a)


class TestStrictCompile:
    def test_strict_rejects_linted_circuit(self):
        c = base_circuit()
        c.add(Capacitor("ci", "isla", "islb", 1e-15))  # island
        grid = np.linspace(0.0, 1e-9, 8)
        with pytest.raises(LintError) as exc:
            CompiledTransient(c, grid, strict=True)
        assert exc.value.code == "N002"
        assert any(d.code == "N002" for d in exc.value.diagnostics)

    def test_strict_accepts_clean_circuit(self):
        grid = np.linspace(0.0, 1e-9, 8)
        ct = CompiledTransient(base_circuit(), grid, strict=True)
        assert ct.n_unknowns == 1


class TestBenchesClean:
    @pytest.mark.parametrize("name", BENCH_NAMES)
    def test_bench_lints_clean(self, name):
        ct = bench_compiled(name)
        probes = (*ct._cross_probes, *ct._peak_probes, *ct._value_probes)
        diags = lint_circuit(ct.circuit, probes=probes)
        assert diags == [], format_diagnostics(diags)

    def test_example_testbenches_lint_clean(self):
        """The circuits the examples/ scripts build (read + write bench)."""
        from repro.sram.testbench import ReadTestbench, WriteTestbench

        for bench in (ReadTestbench(), WriteTestbench()):
            diags = lint_errors(lint_circuit(bench.circuit))
            assert diags == [], format_diagnostics(diags)
