"""Mosfet operating-point reporting tests."""

import pytest

from repro.spice.dcop import solve_dc
from repro.spice.elements import Mosfet, Resistor, VoltageSource
from repro.spice.mosfet import nmos_45nm, pmos_45nm
from repro.spice.netlist import Circuit


@pytest.fixture
def biased_nmos():
    c = Circuit("bias")
    c.add(VoltageSource("vdd", "vdd", "0", 1.0))
    c.add(VoltageSource("vg", "g", "0", 0.8))
    c.add(Resistor("rd", "vdd", "d", 5e3))
    c.add(Mosfet("m", "d", "g", "0", "0", nmos_45nm(), w=200e-9, l=50e-9))
    op = solve_dc(c)
    return c, op


class TestOpPoint:
    def test_bias_voltages_reported(self, biased_nmos):
        c, op = biased_nmos

        def volts(idx):
            return 0.0 if idx < 0 else op.x[idx]

        pt = c["m"].op_point(volts)
        assert pt.vgs == pytest.approx(0.8)
        assert 0.0 < pt.vds < 1.0
        assert pt.vbs == 0.0

    def test_current_consistent_with_resistor(self, biased_nmos):
        c, op = biased_nmos

        def volts(idx):
            return 0.0 if idx < 0 else op.x[idx]

        pt = c["m"].op_point(volts)
        i_r = (1.0 - op.v("d")) / 5e3
        assert pt.ids == pytest.approx(i_r, rel=1e-4)

    def test_conductances_positive_in_active_region(self, biased_nmos):
        c, op = biased_nmos

        def volts(idx):
            return 0.0 if idx < 0 else op.x[idx]

        pt = c["m"].op_point(volts)
        assert pt.gm > 0
        assert pt.gds > 0

    def test_repr_mentions_model_and_shift(self):
        m = Mosfet("mx", "d", "g", "s", "b", pmos_45nm(), w=100e-9, l=50e-9,
                   delta_vth=0.01)
        text = repr(m)
        assert "pmos_45nm" in text
        assert "+0.01" in text
