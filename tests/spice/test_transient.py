"""Transient engine tests against closed-form RC answers."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.spice.elements import Capacitor, Mosfet, Resistor, VoltageSource
from repro.spice.mosfet import nmos_45nm, pmos_45nm
from repro.spice.netlist import Circuit
from repro.spice.sources import dc, pulse, pwl
from repro.spice.transient import TransientOptions, run_transient


def rc_circuit(r=1e3, c=1e-12, src=None):
    circuit = Circuit("rc")
    circuit.add(VoltageSource("vin", "in", "0", src if src is not None else dc(1.0)))
    circuit.add(Resistor("r", "in", "out", r))
    circuit.add(Capacitor("c", "out", "0", c))
    return circuit


class TestRcAnalytic:
    def test_step_response_curve(self):
        # Step at t=1ns through tau=1ns: v(t) = 1 - exp(-(t-1ns)/tau).
        src = pulse(0, 1, delay=1e-9, rise=1e-13, width=50e-9)
        res = run_transient(rc_circuit(src=src), 8e-9)
        w = res.waveform("out")
        for t_after_tau in (0.5, 1.0, 2.0, 4.0):
            expected = 1.0 - np.exp(-t_after_tau)
            assert w.at(1e-9 + t_after_tau * 1e-9) == pytest.approx(expected, abs=0.01)

    def test_discharge(self):
        src = pulse(1, 0, delay=1e-9, rise=1e-13, width=50e-9)
        res = run_transient(rc_circuit(src=src), 6e-9)
        w = res.waveform("out")
        assert w.at(1e-9) == pytest.approx(1.0, abs=0.01)
        assert w.at(2e-9) == pytest.approx(np.exp(-1.0), abs=0.01)

    def test_dc_source_stays_settled(self):
        res = run_transient(rc_circuit(), 5e-9)
        w = res.waveform("out")
        assert np.all(np.abs(w.values - 1.0) < 1e-6)

    def test_pwl_ramp_tracks(self):
        # Slow ramp (much slower than tau): output follows input closely.
        src = pwl([(0.0, 0.0), (50e-9, 1.0)])
        res = run_transient(rc_circuit(src=src), 50e-9)
        w = res.waveform("out")
        # At 25 ns input is 0.5; output lags by about tau * slope = 0.02.
        assert w.at(25e-9) == pytest.approx(0.5 - 0.02, abs=0.01)

    def test_cap_divider_jump(self):
        # Two series caps divide a fast step by the capacitance ratio.
        circuit = Circuit("capdiv")
        circuit.add(VoltageSource("vin", "in", "0", pulse(0, 1, delay=0.5e-9, rise=1e-12)))
        circuit.add(Capacitor("c1", "in", "mid", 2e-15))
        circuit.add(Capacitor("c2", "mid", "0", 2e-15))
        circuit.add(Resistor("rleak", "mid", "0", 1e9))  # define DC
        res = run_transient(circuit, 2e-9)
        assert res.waveform("mid").vmax() == pytest.approx(0.5, abs=0.03)


class TestInitialConditions:
    def test_ic_clamp_holds_node(self):
        circuit = rc_circuit(src=dc(0.0))
        res = run_transient(circuit, 3e-9, ic={"out": 0.8})
        w = res.waveform("out")
        assert w.values[0] == pytest.approx(0.8, abs=0.01)
        # ... then discharges toward the source value with tau = 1 ns.
        assert w.at(1e-9) == pytest.approx(0.8 * np.exp(-1.0), abs=0.02)

    def test_sram_like_bistable_holds_state(self):
        # Cross-coupled inverters must hold the state the ICs set.
        c = Circuit("latch")
        c.add(VoltageSource("vdd", "vdd", "0", 1.0))
        for side, (inp, out) in enumerate((("qb", "q"), ("q", "qb"))):
            c.add(Mosfet(f"mp{side}", out, inp, "vdd", "vdd", pmos_45nm(), w=80e-9, l=50e-9))
            c.add(Mosfet(f"mn{side}", out, inp, "0", "0", nmos_45nm(), w=140e-9, l=50e-9))
        res = run_transient(c, 5e-9, ic={"q": 0.0, "qb": 1.0})
        assert res.final_voltage("q") == pytest.approx(0.0, abs=0.02)
        assert res.final_voltage("qb") == pytest.approx(1.0, abs=0.02)


class TestErrors:
    def test_negative_tstop_rejected(self):
        with pytest.raises(SimulationError):
            run_transient(rc_circuit(), -1e-9)

    def test_pure_resistive_circuit_rejected(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", 1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        with pytest.raises(SimulationError):
            run_transient(c, 1e-9)


class TestStepControl:
    def test_breakpoints_are_hit_exactly(self):
        src = pulse(0, 1, delay=1e-9, rise=0.1e-9, width=1e-9)
        res = run_transient(rc_circuit(src=src), 4e-9)
        for corner in (1e-9, 1.1e-9, 2.1e-9):
            assert np.min(np.abs(res.times - corner)) < 1e-15

    def test_max_step_respected(self):
        opts = TransientOptions(max_step=0.05e-9)
        res = run_transient(rc_circuit(), 2e-9, options=opts)
        assert np.max(np.diff(res.times)) <= 0.05e-9 + 1e-18

    def test_counters_populated(self):
        res = run_transient(rc_circuit(), 2e-9)
        assert res.steps_accepted == len(res.times) - 1
        assert res.newton_iterations >= res.steps_accepted
