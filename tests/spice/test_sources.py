"""Tests for source waveform shapes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.spice.sources import dc, pulse, pwl


class TestDc:
    def test_constant(self):
        s = dc(0.7)
        assert s.value(0.0) == 0.7
        assert s.value(1e9) == 0.7
        assert s.dc_value() == 0.7


class TestPulse:
    def setup_method(self):
        self.p = pulse(0.0, 1.0, delay=1e-9, rise=0.1e-9, fall=0.2e-9, width=2e-9)

    def test_before_delay(self):
        assert self.p.value(0.5e-9) == 0.0

    def test_mid_rise(self):
        assert self.p.value(1.05e-9) == pytest.approx(0.5)

    def test_plateau(self):
        assert self.p.value(2.0e-9) == 1.0

    def test_mid_fall(self):
        assert self.p.value(3.2e-9) == pytest.approx(0.5)

    def test_after_pulse(self):
        assert self.p.value(5e-9) == 0.0

    def test_periodic_repeat(self):
        p = pulse(0.0, 1.0, delay=0.0, rise=1e-12, fall=1e-12, width=1e-9, period=4e-9)
        assert p.value(0.5e-9) == 1.0
        assert p.value(2e-9) == 0.0
        assert p.value(4.5e-9) == 1.0  # second period

    def test_breakpoints_are_the_corners(self):
        bps = self.p.breakpoints()
        assert bps == pytest.approx((1e-9, 1.1e-9, 3.1e-9, 3.3e-9), rel=1e-12)

    def test_negative_timing_rejected(self):
        with pytest.raises(NetlistError):
            pulse(0, 1, rise=-1e-12)

    @given(t=st.floats(min_value=0, max_value=1e-8))
    @settings(max_examples=50)
    def test_value_always_within_levels(self, t):
        v = self.p.value(t)
        assert 0.0 <= v <= 1.0


class TestPwl:
    def test_interpolation(self):
        s = pwl([(0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)])
        assert s.value(0.5e-9) == pytest.approx(0.5)
        assert s.value(1.5e-9) == pytest.approx(0.75)

    def test_clamps_outside_range(self):
        s = pwl([(1e-9, 0.2), (2e-9, 0.8)])
        assert s.value(0.0) == pytest.approx(0.2)
        assert s.value(5e-9) == pytest.approx(0.8)

    def test_breakpoints(self):
        s = pwl([(0.0, 0.0), (1e-9, 1.0)])
        assert s.breakpoints() == (0.0, 1e-9)

    def test_non_monotone_times_rejected(self):
        with pytest.raises(NetlistError):
            pwl([(1e-9, 0.0), (0.5e-9, 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(NetlistError):
            pwl([])
