"""Tests for circuit construction and node bookkeeping."""

import pytest

from repro.errors import NetlistError
from repro.spice.elements import Capacitor, Resistor, VoltageSource
from repro.spice.netlist import GROUND_INDEX, Circuit


class TestNodes:
    def test_ground_aliases(self):
        c = Circuit()
        assert c.node("0") == GROUND_INDEX
        assert c.node("gnd") == GROUND_INDEX
        assert c.node("GND") == GROUND_INDEX

    def test_indices_in_first_mention_order(self):
        c = Circuit()
        assert c.node("a") == 0
        assert c.node("b") == 1
        assert c.node("a") == 0  # stable on re-mention
        assert c.node_names == ["a", "b"]

    def test_empty_node_name_rejected(self):
        with pytest.raises(NetlistError):
            Circuit().node("")

    def test_node_name_roundtrip(self):
        c = Circuit()
        c.node("x")
        assert c.node_name(0) == "x"
        assert c.node_name(GROUND_INDEX) == "0"

    def test_index_of_unknown_node(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            c.index_of("nope")

    def test_ground_not_counted(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "0", 1.0))
        assert c.num_nodes == 1


class TestElements:
    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "b", 1.0))
        with pytest.raises(NetlistError):
            c.add(Resistor("r1", "b", "c", 1.0))

    def test_lookup_by_name(self):
        c = Circuit()
        r = Resistor("r1", "a", "b", 42.0)
        c.add(r)
        assert c["r1"] is r
        assert "r1" in c
        assert "r2" not in c

    def test_lookup_missing_raises(self):
        with pytest.raises(NetlistError):
            Circuit()["ghost"]

    def test_add_returns_self_for_chaining(self):
        c = Circuit()
        out = c.add(Resistor("r1", "a", "b", 1.0)).add(Resistor("r2", "b", "0", 1.0))
        assert out is c
        assert len(c.elements) == 2

    def test_binding_resolves_indices(self):
        c = Circuit()
        r = Resistor("r1", "in", "0", 1.0)
        c.add(r)
        assert r.nodes == [0, GROUND_INDEX]

    def test_branch_elements(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "0", 1.0))
        c.add(VoltageSource("v1", "a", "0", 1.0))
        c.add(VoltageSource("v2", "b", "0", 2.0))
        assert [e.name for e in c.branch_elements()] == ["v1", "v2"]

    def test_summary_lists_elements(self):
        c = Circuit("demo")
        c.add(Capacitor("c1", "a", "0", 1e-12))
        text = c.summary()
        assert "demo" in text
        assert "c1" in text

    def test_repr(self):
        c = Circuit("x")
        c.add(Resistor("r1", "a", "b", 1.0))
        assert "nodes=2" in repr(c)
